#!/usr/bin/env python3
"""Replicating a network server (paper §5.2).

An epoll-based web server runs under ReMon with 2..4 replicas while a
wrk-style client hammers it across the simulated network. Externally
the replicated server is indistinguishable from a single instance: one
set of responses, one listener — the master performs the real I/O and
IP-MON feeds identical results to the slave replicas.

Run:  python examples/server_replication.py
"""

from repro.bench.harness import (
    native_server_runner,
    remon_server_runner,
)
from repro.core import Level
from repro.kernel import Kernel, KernelConfig
from repro.workloads.clients import ClientSpec, run_server_benchmark
from repro.workloads.servers import SERVERS


def run(latency_ns: int):
    spec = SERVERS["lighttpd-wrk"]
    client = ClientSpec(tool="wrk", concurrency=8, total_requests=120)

    kernel = Kernel(config=KernelConfig(network_latency_ns=latency_ns))
    native = run_server_benchmark(
        kernel, spec.program(), client, spec.port, native_server_runner
    )
    print("  native:           %7.2f ms  (%.0f req/s)"
          % (native.duration_ns / 1e6, native.throughput_rps()))

    for replicas in (2, 3, 4):
        kernel = Kernel(config=KernelConfig(network_latency_ns=latency_ns))
        result = run_server_benchmark(
            kernel,
            spec.program(),
            client,
            spec.port,
            remon_server_runner(Level.SOCKET_RW, replicas),
        )
        overhead = result.duration_ns / native.duration_ns - 1
        print("  ReMon %d replicas: %7.2f ms  (overhead %+5.1f%%, %d/%d ok)"
              % (replicas, result.duration_ns / 1e6, 100 * overhead,
                 result.completed, result.completed + result.errors))

    kernel = Kernel(config=KernelConfig(network_latency_ns=latency_ns))
    strict = run_server_benchmark(
        kernel, spec.program(), client, spec.port,
        remon_server_runner(Level.NO_IPMON, 2),
    )
    print("  GHUMVEE alone x2: %7.2f ms  (overhead %+5.1f%%) — no IP-MON"
          % (strict.duration_ns / 1e6,
             100 * (strict.duration_ns / native.duration_ns - 1)))


def main():
    print("lighttpd-like epoll server, wrk-style keep-alive client\n")
    print("worst case: 0.1 ms gigabit LAN (nothing hides monitor latency)")
    run(100_000)
    print("\nrealistic: 2 ms network")
    run(2_000_000)


if __name__ == "__main__":
    main()
