#!/usr/bin/env python3
"""Quickstart: run a program natively, then under ReMon.

A guest program is a Python generator that performs compute work and
system calls against the simulated kernel. ReMon runs N diversified
replicas of it in lockstep, cross-checking their system calls.

Run:  python examples/quickstart.py
"""

from repro.baselines import run_native
from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.kernel import constants as C


def make_program() -> Program:
    """A little log-crunching job: read input, compute, write a report."""

    def main(ctx):
        libc = ctx.libc
        fd = yield from libc.open("/data/events.log")
        assert fd >= 0
        lines = 0
        while True:
            ret, chunk = yield from libc.read(fd, 512)
            if ret <= 0:
                break
            lines += chunk.count(b"\n")
            yield Compute(20_000)  # 20 us of parsing per chunk
        yield from libc.close(fd)

        out = yield from libc.open("/tmp/report.txt", C.O_WRONLY | C.O_CREAT)
        yield from libc.write(out, b"events: %d\n" % lines)
        yield from libc.close(out)
        return 0

    log = b"".join(b"event %d\n" % i for i in range(3000))
    return Program("quickstart", main, files={"/data/events.log": log})


def main():
    # 1. Native run: the baseline.
    native = run_native(make_program())
    print("native:     %6.2f ms, %d syscalls, exit=%d"
          % (native.wall_time_ns / 1e6, native.syscalls, native.exit_code))

    # 2. ReMon with two diversified replicas, default relaxation policy.
    kernel = Kernel()
    mvee = ReMon(kernel, make_program(), ReMonConfig(replicas=2))
    result = mvee.run()
    print("ReMon x2:   %6.2f ms  (overhead %.1f%%)"
          % (result.wall_time_ns / 1e6,
             100 * (result.wall_time_ns / native.wall_time_ns - 1)))
    print("            monitored calls: %d, unmonitored (IP-MON): %d"
          % (result.monitored_calls, result.unmonitored_calls))
    print("            replica exits: %s, diverged: %s"
          % (result.exit_codes, result.diverged))

    # 3. The conservative baseline: every call monitored (GHUMVEE alone).
    kernel = Kernel()
    strict = ReMon(kernel, make_program(),
                   ReMonConfig(replicas=2, level=Level.NO_IPMON))
    sres = strict.run()
    print("GHUMVEE x2: %6.2f ms  (overhead %.1f%%) — the cost ReMon avoids"
          % (sres.wall_time_ns / 1e6,
             100 * (sres.wall_time_ns / native.wall_time_ns - 1)))

    # The output file was written exactly once (master-calls model).
    node, err = kernel.fs.resolve("/tmp/report.txt")
    assert err == 0
    print("report.txt: %r" % bytes(node.data))


if __name__ == "__main__":
    main()
