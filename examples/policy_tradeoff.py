#!/usr/bin/env python3
"""The security/performance dial: sweep all five relaxation levels.

Reproduces the paper's central trade-off (Table 1 / Figure 4) on one
mixed workload: as more system-call categories run unmonitored through
IP-MON, overhead falls — and the §4 analysis says which residual risks
each level accepts.

Run:  python examples/policy_tradeoff.py
"""

from repro.baselines import run_native
from repro.core import Level, ReMon, ReMonConfig
from repro.core.policies import RelaxationPolicy
from repro.kernel import Kernel
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

DESCRIPTIONS = {
    Level.NO_IPMON: "every call monitored (GHUMVEE alone)",
    Level.BASE: "process-local getters exempt",
    Level.NONSOCKET_RO: "+ file/pipe reads, futexes",
    Level.NONSOCKET_RW: "+ file/pipe writes, syncs",
    Level.SOCKET_RO: "+ socket reads, epoll_wait",
    Level.SOCKET_RW: "+ socket writes (everything relaxable)",
}


def make_workload() -> SyntheticWorkload:
    """A network-service-like mix: heavy socket traffic plus file I/O."""
    return SyntheticWorkload(
        name="mixed-service",
        native_ms=25.0,
        mix=CategoryMix(
            {
                "base": 8_000,
                "file_ro": 20_000,
                "futex": 10_000,
                "file_rw": 12_000,
                "sock_ro": 25_000,
                "sock_rw": 25_000,
                "mgmt": 1_500,
            }
        ),
        threads=2,
    )


def main():
    workload = make_workload()
    native = run_native(build_program(workload))
    print("native: %.2f ms, %d syscalls (%.0fk calls/s)\n"
          % (native.wall_time_ns / 1e6, native.syscalls,
             native.syscall_rate_per_sec() / 1e3))
    print("%-14s  %-42s  %9s  %10s  %12s"
          % ("level", "meaning", "overhead", "monitored", "unmonitored"))
    print("-" * 95)
    for level in Level:
        kernel = Kernel()
        mvee = ReMon(kernel, build_program(workload),
                     ReMonConfig(replicas=2, level=level))
        result = mvee.run()
        assert not result.diverged, result.divergence
        overhead = result.wall_time_ns / native.wall_time_ns - 1
        print("%-14s  %-42s  %8.1f%%  %10d  %12d"
              % (level.name, DESCRIPTIONS[level], 100 * overhead,
                 result.monitored_calls, result.unmonitored_calls))

    # Which calls may each level exempt?
    print("\nunmonitored-capable call sets (registered with IK-B):")
    for level in list(Level)[1:]:
        names = sorted(RelaxationPolicy(level).unmonitored_set())
        print("  %-14s %d calls" % (level.name, len(names)))


if __name__ == "__main__":
    main()
