"""poll/select, futex, epoll and timerfd semantics."""

from repro.guest.program import Compute, Program
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from tests.conftest import run_guest


class TestFutex:
    def test_wait_returns_eagain_on_changed_value(self):
        def main(ctx):
            word = yield from ctx.libc.malloc(4)
            ctx.mem.write_u32(word, 7)
            ret = yield from ctx.libc.futex_wait(word, 3)
            assert ret == -E.EAGAIN
            return 0

        _k, _p, code = run_guest(Program("futex-eagain", main))
        assert code == 0

    def test_wake_returns_number_woken(self):
        def main(ctx):
            libc = ctx.libc
            word = yield from libc.malloc(4)
            ctx.mem.write_u32(word, 0)
            started = yield from libc.malloc(4)
            ctx.mem.write_u32(started, 0)

            def waiter(cctx, arg):
                def body():
                    cctx.mem.write_u32(started, cctx.mem.read_u32(started) + 1)
                    yield from cctx.libc.futex_wait(arg, 0)

                return body()

            for _ in range(3):
                yield ctx.spawn_thread(waiter, word)
            while ctx.mem.read_u32(started) < 3:
                yield from libc.nanosleep(100_000)
            yield from libc.nanosleep(500_000)
            woken = yield from libc.futex_wake(word, 2)
            assert woken == 2, woken
            woken = yield from libc.futex_wake(word, 10)
            assert woken == 1, woken
            return 0

        _k, _p, code = run_guest(Program("futex-count", main))
        assert code == 0

    def test_wake_with_no_waiters_returns_zero(self):
        def main(ctx):
            word = yield from ctx.libc.malloc(4)
            woken = yield from ctx.libc.futex_wake(word, 1)
            assert woken == 0
            return 0

        _k, _p, code = run_guest(Program("futex-none", main))
        assert code == 0

    def test_futex_on_unmapped_address_efault(self):
        def main(ctx):
            ret = yield ctx.sys.futex(0xDEAD0000, C.FUTEX_WAIT, 0, 0, 0, 0)
            assert ret == -E.EFAULT
            return 0

        _k, _p, code = run_guest(Program("futex-efault", main))
        assert code == 0

    def test_futex_works_across_shared_memory_at_different_addresses(self):
        """The futex key is (region, offset) — the property IP-MON's
        cross-replica condvars rely on."""
        from repro.kernel import Kernel
        from repro.kernel.memory import SharedRegion
        from repro.guest import GuestRuntime

        kernel = Kernel()
        region = SharedRegion(4096, "x")
        proc_a = kernel.create_process("a")
        proc_b = kernel.create_process("b")
        map_a = proc_a.space.map(None, 4096, 3, region=region, shared=True)
        map_b = proc_b.space.map(0x1234000, 4096, 3, region=region, shared=True)
        order = []

        def waiter(ctx):
            ret = yield from ctx.libc.futex_wait(map_a.start + 64, 0)
            order.append(("woken", ret))
            return 0

        def waker(ctx):
            yield from ctx.libc.nanosleep(1_000_000)
            ctx.mem.write_u32(map_b.start + 64, 1)
            woken = yield from ctx.libc.futex_wake(map_b.start + 64, 1)
            order.append(("woke", woken))
            return 0

        GuestRuntime(kernel, proc_a, Program("waiter", waiter)).start()
        GuestRuntime(kernel, proc_b, Program("waker", waker)).start()
        kernel.sim.run(max_steps=1_000_000)
        assert order == [("woke", 1), ("woken", 0)]


class TestEpoll:
    def test_ctl_add_twice_eexist(self):
        def main(ctx):
            libc = ctx.libc
            rfd, _ = yield from libc.pipe()
            epfd = yield from libc.epoll_create()
            assert (yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_ADD, rfd, C.EPOLLIN)) == 0
            ret = yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_ADD, rfd, C.EPOLLIN)
            assert ret == -E.EEXIST
            return 0

        _k, _p, code = run_guest(Program("ep-eexist", main))
        assert code == 0

    def test_ctl_del_missing_enoent(self):
        def main(ctx):
            libc = ctx.libc
            rfd, _ = yield from libc.pipe()
            epfd = yield from libc.epoll_create()
            ret = yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_DEL, rfd)
            assert ret == -E.ENOENT
            return 0

        _k, _p, code = run_guest(Program("ep-enoent", main))
        assert code == 0

    def test_level_triggered_rereports_until_drained(self):
        def main(ctx):
            libc = ctx.libc
            rfd, wfd = yield from libc.pipe()
            epfd = yield from libc.epoll_create()
            yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_ADD, rfd, C.EPOLLIN, data=1)
            yield from libc.write(wfd, b"xx")
            ret, events = yield from libc.epoll_wait(epfd, timeout_ms=0)
            assert ret == 1
            ret, events = yield from libc.epoll_wait(epfd, timeout_ms=0)
            assert ret == 1  # still readable: level triggered
            yield from libc.read(rfd, 16)
            ret, events = yield from libc.epoll_wait(epfd, timeout_ms=0)
            assert ret == 0
            return 0

        _k, _p, code = run_guest(Program("ep-level", main))
        assert code == 0

    def test_wait_timeout_zero_nonblocking(self):
        def main(ctx):
            libc = ctx.libc
            rfd, _ = yield from libc.pipe()
            epfd = yield from libc.epoll_create()
            yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_ADD, rfd, C.EPOLLIN)
            before = ctx.kernel.sim.now
            ret, _ = yield from libc.epoll_wait(epfd, timeout_ms=0)
            assert ret == 0
            assert ctx.kernel.sim.now - before < 100_000
            return 0

        _k, _p, code = run_guest(Program("ep-zero", main))
        assert code == 0

    def test_wait_timeout_elapses(self):
        def main(ctx):
            libc = ctx.libc
            rfd, _ = yield from libc.pipe()
            epfd = yield from libc.epoll_create()
            yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_ADD, rfd, C.EPOLLIN)
            before = ctx.kernel.sim.now
            ret, _ = yield from libc.epoll_wait(epfd, timeout_ms=5)
            assert ret == 0
            assert ctx.kernel.sim.now - before >= 5_000_000
            return 0

        _k, _p, code = run_guest(Program("ep-timeout", main))
        assert code == 0

    def test_epollrdhup_on_peer_close(self):
        def main(ctx):
            libc = ctx.libc
            listener = yield from libc.socket()
            yield from libc.bind(listener, "0.0.0.0", 6100)
            yield from libc.listen(listener)
            client = yield from libc.socket()
            yield from libc.connect(client, ctx.process.host_ip, 6100)
            conn = yield from libc.accept(listener)
            epfd = yield from libc.epoll_create()
            yield from libc.epoll_ctl(
                epfd, C.EPOLL_CTL_ADD, conn, C.EPOLLIN | C.EPOLLRDHUP
            )
            yield from libc.close(client)
            ret, events = yield from libc.epoll_wait(epfd, timeout_ms=100)
            assert ret == 1
            revents, _data = events[0]
            assert revents & C.EPOLLRDHUP
            return 0

        _k, _p, code = run_guest(Program("ep-rdhup", main))
        assert code == 0


class TestPollSelect:
    def test_poll_reports_bad_fd_as_pollnval(self):
        def main(ctx):
            from repro.kernel.structs import POLLFD_SIZE, pack_pollfd, unpack_pollfd

            buf = yield from ctx.libc.malloc(POLLFD_SIZE)
            ctx.mem.write(buf, pack_pollfd(321, C.POLLIN, 0))
            ret = yield ctx.sys.poll(buf, 1, 0)
            assert ret == 1
            _fd, _ev, revents = unpack_pollfd(ctx.mem.read(buf, POLLFD_SIZE))
            assert revents & C.POLLNVAL
            return 0

        _k, _p, code = run_guest(Program("pollnval", main))
        assert code == 0

    def test_poll_wakes_on_data(self):
        def main(ctx):
            from repro.kernel.structs import POLLFD_SIZE, pack_pollfd, unpack_pollfd

            libc = ctx.libc
            rfd, wfd = yield from libc.pipe()

            def writer(cctx, arg):
                def body():
                    yield from cctx.libc.nanosleep(1_000_000)
                    yield from cctx.libc.write(arg, b"!")

                return body()

            yield ctx.spawn_thread(writer, wfd)
            buf = yield from libc.malloc(POLLFD_SIZE)
            ctx.mem.write(buf, pack_pollfd(rfd, C.POLLIN, 0))
            ret = yield ctx.sys.poll(buf, 1, -1)
            assert ret == 1
            _fd, _ev, revents = unpack_pollfd(ctx.mem.read(buf, POLLFD_SIZE))
            assert revents & C.POLLIN
            return 0

        _k, _p, code = run_guest(Program("poll-data", main))
        assert code == 0

    def test_select_readable_set(self):
        def main(ctx):
            libc = ctx.libc
            rfd, wfd = yield from libc.pipe()
            yield from libc.write(wfd, b"ready")
            rset = yield from libc.malloc(128)
            ctx.mem.write(rset, bytes(128))
            ctx.mem.write(rset + rfd // 8, bytes([1 << (rfd % 8)]))
            ret = yield ctx.sys.select(rfd + 1, rset, 0, 0, 0)
            assert ret == 1
            bits = ctx.mem.read(rset, 128)
            assert bits[rfd // 8] & (1 << (rfd % 8))
            return 0

        _k, _p, code = run_guest(Program("select", main))
        assert code == 0


class TestTimerfd:
    def test_timerfd_read_counts_expirations(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield ctx.sys.timerfd_create(C.CLOCK_MONOTONIC, 0)
            assert fd >= 0
            from repro.kernel.structs import pack_timespec

            buf = yield from libc.malloc(32)
            # interval 2ms, first expiry 2ms
            ctx.mem.write(buf, pack_timespec(2_000_000) + pack_timespec(2_000_000))
            assert (yield ctx.sys.timerfd_settime(fd, 0, buf, 0)) == 0
            yield from libc.nanosleep(7_000_000)
            ret, data = yield from libc.read(fd, 8)
            assert ret == 8
            count = int.from_bytes(data, "little")
            assert count == 3, count
            return 0

        _k, _p, code = run_guest(Program("tfd", main))
        assert code == 0

    def test_timerfd_blocking_read_waits(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield ctx.sys.timerfd_create(C.CLOCK_MONOTONIC, 0)
            from repro.kernel.structs import pack_timespec

            buf = yield from libc.malloc(32)
            ctx.mem.write(buf, pack_timespec(0) + pack_timespec(3_000_000))
            yield ctx.sys.timerfd_settime(fd, 0, buf, 0)
            before = ctx.kernel.sim.now
            ret, data = yield from libc.read(fd, 8)
            assert int.from_bytes(data, "little") == 1
            assert ctx.kernel.sim.now - before >= 3_000_000
            return 0

        _k, _p, code = run_guest(Program("tfd-block", main))
        assert code == 0

    def test_timerfd_gettime_reports_remaining(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield ctx.sys.timerfd_create(C.CLOCK_MONOTONIC, 0)
            from repro.kernel.structs import TIMESPEC_SIZE, pack_timespec, unpack_timespec

            buf = yield from libc.malloc(32)
            ctx.mem.write(buf, pack_timespec(0) + pack_timespec(10_000_000))
            yield ctx.sys.timerfd_settime(fd, 0, buf, 0)
            yield from libc.nanosleep(4_000_000)
            out = yield from libc.malloc(32)
            yield ctx.sys.timerfd_gettime(fd, out)
            remaining = unpack_timespec(
                ctx.mem.read(out + TIMESPEC_SIZE, TIMESPEC_SIZE)
            )
            assert 5_000_000 <= remaining <= 6_100_000, remaining
            return 0

        _k, _p, code = run_guest(Program("tfd-gettime", main))
        assert code == 0


class TestShm:
    def test_shmget_shmat_roundtrip(self):
        def main(ctx):
            shmid = yield ctx.sys.shmget(C.IPC_PRIVATE, 8192, C.IPC_CREAT)
            assert shmid > 0
            addr = yield ctx.sys.shmat(shmid, 0, 0)
            assert addr > 0
            ctx.mem.write(addr, b"shared!")
            addr2 = yield ctx.sys.shmat(shmid, 0, 0)
            assert addr2 != addr
            assert ctx.mem.read(addr2, 7) == b"shared!"
            assert (yield ctx.sys.shmdt(addr)) == 0
            assert (yield ctx.sys.shmctl(shmid, C.IPC_RMID, 0)) == 0
            return 0

        _k, _p, code = run_guest(Program("shm", main))
        assert code == 0

    def test_shmget_by_key_and_excl(self):
        def main(ctx):
            a = yield ctx.sys.shmget(1234, 4096, C.IPC_CREAT)
            b = yield ctx.sys.shmget(1234, 4096, C.IPC_CREAT)
            assert a == b
            c = yield ctx.sys.shmget(1234, 4096, C.IPC_CREAT | C.IPC_EXCL)
            assert c == -E.EEXIST
            return 0

        _k, _p, code = run_guest(Program("shm-key", main))
        assert code == 0
