"""Signal semantics tests."""

from repro.guest.program import Compute, Program
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from tests.conftest import run_guest


def test_sig_ign_drops_signal():
    def main(ctx):
        yield ctx.sys.rt_sigaction(C.SIGUSR1, C.SIG_IGN)
        yield ctx.sys.kill(ctx.process.pid, C.SIGUSR1)
        yield Compute(1000)
        return 0

    _k, _p, code = run_guest(Program("ign", main))
    assert code == 0


def test_blocked_signal_stays_pending_until_unblocked():
    order = []

    def main(ctx):
        def handler(hctx, signo):
            order.append("handler")

        yield ctx.sys.rt_sigaction(C.SIGUSR1, handler)
        mask = 1 << (C.SIGUSR1 - 1)
        yield ctx.sys.rt_sigprocmask(C.SIG_BLOCK, mask, 0)
        yield ctx.sys.kill(ctx.process.pid, C.SIGUSR1)
        yield Compute(1000)
        order.append("still-blocked")
        # Verify it shows as pending.
        buf = yield from ctx.libc.malloc(8)
        yield ctx.sys.rt_sigpending(buf)
        assert ctx.mem.read_u64(buf) & mask
        yield ctx.sys.rt_sigprocmask(C.SIG_UNBLOCK, mask, 0)
        yield Compute(1000)
        order.append("done")
        return 0

    _k, _p, code = run_guest(Program("mask", main))
    assert code == 0
    assert order == ["still-blocked", "handler", "done"]


def test_sigkill_cannot_be_blocked_or_handled():
    def main(ctx):
        ret = yield ctx.sys.rt_sigaction(C.SIGKILL, lambda c, s: None)
        assert ret == -E.EINVAL
        yield ctx.sys.rt_sigprocmask(C.SIG_BLOCK, 1 << (C.SIGKILL - 1), 0)
        assert C.SIGKILL not in ctx.thread.sigmask
        yield ctx.sys.kill(ctx.process.pid, C.SIGKILL)
        yield Compute(10_000)
        return 0

    _k, _p, code = run_guest(Program("sigkill", main))
    assert code == 128 + C.SIGKILL


def test_signal_interrupts_blocking_read():
    result = {}

    def main(ctx):
        def handler(hctx, signo):
            result["handled"] = True

        yield ctx.sys.rt_sigaction(C.SIGALRM, handler)
        libc = ctx.libc
        rfd, _wfd = yield from libc.pipe()

        def alarm_thread(cctx, arg):
            def body():
                yield from cctx.libc.nanosleep(2_000_000)
                yield cctx.sys.kill(cctx.process.pid, C.SIGALRM)

            return body()

        yield ctx.spawn_thread(alarm_thread, None)
        ret, _ = yield from libc.read(rfd, 16)
        result["read_ret"] = ret
        return 0

    _k, _p, code = run_guest(Program("eintr", main))
    assert code == 0
    assert result["read_ret"] == -E.EINTR
    assert result.get("handled")


def test_alarm_delivers_sigalrm():
    hits = []

    def main(ctx):
        def handler(hctx, signo):
            hits.append(ctx.kernel.sim.now)

        yield ctx.sys.rt_sigaction(C.SIGALRM, handler)
        yield ctx.sys.alarm(1)  # one second
        yield from ctx.libc.nanosleep(1_500_000_000)
        return 0

    kernel, _p, code = run_guest(Program("alarm", main))
    assert code == 0
    assert len(hits) == 1
    assert hits[0] >= 1_000_000_000


def test_setitimer_interval_fires_repeatedly():
    hits = []

    def main(ctx):
        def handler(hctx, signo):
            hits.append(ctx.kernel.sim.now)

        yield ctx.sys.rt_sigaction(C.SIGALRM, handler)
        from repro.kernel.structs import pack_timeval

        buf = yield from ctx.libc.malloc(32)
        # interval 10ms, first expiry 10ms
        ctx.mem.write(buf, pack_timeval(10_000_000) + pack_timeval(10_000_000))
        yield ctx.sys.setitimer(0, buf, 0)
        for _ in range(5):
            yield from ctx.libc.nanosleep(10_500_000)
        # disarm
        ctx.mem.write(buf, pack_timeval(0) + pack_timeval(0))
        yield ctx.sys.setitimer(0, buf, 0)
        return 0

    _k, _p, code = run_guest(Program("itimer", main))
    assert code == 0
    assert len(hits) >= 3


def test_signal_to_specific_thread_with_tgkill():
    hits = []

    def main(ctx):
        def handler(hctx, signo):
            hits.append(hctx.thread.tid)

        yield ctx.sys.rt_sigaction(C.SIGUSR2, handler)
        words = {}

        def child(cctx, arg):
            def body():
                words["tid"] = cctx.thread.tid
                yield from cctx.libc.nanosleep(3_000_000)

            return body()

        yield ctx.spawn_thread(child, None)
        yield from ctx.libc.nanosleep(1_000_000)
        ret = yield ctx.sys.tgkill(ctx.process.pid, words["tid"], C.SIGUSR2)
        assert ret == 0
        yield from ctx.libc.nanosleep(4_000_000)
        return 0

    _k, _p, code = run_guest(Program("tgkill", main))
    assert code == 0
    assert len(hits) == 1


def test_kill_missing_process_esrch():
    def main(ctx):
        ret = yield ctx.sys.kill(99999, C.SIGTERM)
        assert ret == -E.ESRCH
        ret = yield ctx.sys.kill(ctx.process.pid, 0)  # probe only
        assert ret == 0
        return 0

    _k, _p, code = run_guest(Program("esrch", main))
    assert code == 0


def test_handler_generator_can_do_syscalls():
    seen = {}

    def main(ctx):
        def handler(hctx, signo):
            def body():
                pid = yield hctx.sys.getpid()
                seen["pid_in_handler"] = pid

            return body()

        yield ctx.sys.rt_sigaction(C.SIGUSR1, handler)
        yield ctx.sys.kill(ctx.process.pid, C.SIGUSR1)
        yield Compute(1000)
        return 0

    _k, process, code = run_guest(Program("hgen", main))
    assert code == 0
    assert seen["pid_in_handler"] == process.pid


def test_pause_returns_eintr_on_signal():
    def main(ctx):
        yield ctx.sys.rt_sigaction(C.SIGUSR1, lambda c, s: None)

        def waker(cctx, arg):
            def body():
                yield from cctx.libc.nanosleep(1_000_000)
                yield cctx.sys.kill(cctx.process.pid, C.SIGUSR1)

            return body()

        yield ctx.spawn_thread(waker, None)
        ret = yield ctx.sys.pause()
        assert ret == -E.EINTR
        return 0

    _k, _p, code = run_guest(Program("pause", main))
    assert code == 0
