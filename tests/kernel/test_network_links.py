"""Per-link bandwidth, jitter, and FIFO-delivery tests for Network."""

from __future__ import annotations

from repro.kernel.sockets import Network
from repro.sim import Simulator

A = ("10.0.0.1", 5000)
B = ("10.0.0.2", 6000)
C = ("10.0.0.3", 7000)


def test_default_delay_is_flat_latency():
    net = Network(latency_ns=250_000)
    assert net.delay_for(A, B, 0) == 250_000
    assert net.delay_for(A, B, 1 << 20) == 250_000  # no bandwidth model


def test_loopback_ignores_bandwidth_and_jitter():
    net = Network(latency_ns=100_000, loopback_latency_ns=7_000,
                  bandwidth_bps=1e6, jitter_ns=50_000)
    local = ("10.0.0.1", 1234)
    assert net.delay_for(A, local, 1 << 20) == 7_000


def test_bandwidth_adds_serialisation_delay():
    net = Network(latency_ns=100_000, bandwidth_bps=1e9)  # 1 Gbit/s
    # 125_000 bytes = 1 Mbit -> 1 ms on a 1 Gbit/s link.
    assert net.delay_for(A, B, 125_000) == 100_000 + 1_000_000
    assert net.delay_for(A, B, 0) == 100_000


def test_set_link_overrides_one_pair_only():
    net = Network(latency_ns=100_000)
    net.set_link(A[0], B[0], latency_ns=900_000, bandwidth_bps=1e6)
    assert net.link_params(A[0], B[0]) == (900_000, 1e6, 0)
    assert net.link_params(B[0], A[0]) == (900_000, 1e6, 0)  # unordered
    assert net.link_params(A[0], C[0]) == (100_000, None, 0)
    assert net.delay_for(A, B, 0) == 900_000
    assert net.delay_for(A, C, 0) == 100_000


def test_partial_override_keeps_global_defaults():
    net = Network(latency_ns=100_000, bandwidth_bps=1e9, jitter_ns=10)
    net.set_link(A[0], B[0], latency_ns=500_000)
    assert net.link_params(A[0], B[0]) == (500_000, 1e9, 10)


def test_jitter_is_bounded_and_deterministic():
    net1 = Network(latency_ns=100_000, jitter_ns=30_000, jitter_seed=42)
    net2 = Network(latency_ns=100_000, jitter_ns=30_000, jitter_seed=42)
    d1 = [net1.delay_for(A, B) for _ in range(200)]
    d2 = [net2.delay_for(A, B) for _ in range(200)]
    assert d1 == d2  # same seed, same draws
    assert all(100_000 <= d <= 130_000 for d in d1)
    assert len(set(d1)) > 1  # actually varies

    net3 = Network(latency_ns=100_000, jitter_ns=30_000, jitter_seed=43)
    assert [net3.delay_for(A, B) for _ in range(200)] != d1


def test_transmit_counts_and_schedules():
    sim = Simulator()
    net = Network(latency_ns=100_000)
    got = []
    when = net.transmit(sim, A, B, 500, got.append, "x")
    assert when == 100_000
    assert (net.bytes_sent, net.segments_sent) == (500, 1)
    net.transmit(sim, A, B, 0, got.append, "fin", count=False)
    assert (net.bytes_sent, net.segments_sent) == (500, 1)  # uncounted
    sim.run()
    assert got == ["x", "fin"]


def test_fifo_clamp_prevents_jitter_reordering():
    sim = Simulator()
    net = Network(latency_ns=100_000, jitter_ns=80_000, jitter_seed=7)
    order = []
    times = [
        net.transmit(sim, A, B, 64, order.append, i) for i in range(50)
    ]
    # Delivery times never decrease for a directed pair, so delivery
    # order matches send order even with jitter comparable to latency.
    assert times == sorted(times)
    sim.run()
    assert order == list(range(50))


def test_fifo_clamp_is_per_directed_pair():
    sim = Simulator()
    net = Network(latency_ns=100_000, jitter_ns=80_000, jitter_seed=7)
    t_ab = net.transmit(sim, A, B, 64, lambda: None)
    # The reverse direction and other pairs are unconstrained by A->B.
    assert (B[0], A[0]) not in net._fifo_clock or True
    t_ba = net.transmit(sim, B, A, 64, lambda: None)
    assert t_ba >= 100_000  # its own delay, not clamped up to t_ab
    assert net._fifo_clock[(A[0], B[0])] == t_ab


def test_loss_is_seeded_and_deterministic():
    def outcomes(seed):
        sim = Simulator()
        net = Network(latency_ns=100_000, loss_prob=0.3, fault_seed=seed)
        got = []
        for i in range(100):
            net.transmit(sim, A, B, 64, got.append, i)
        sim.run()
        return got, net.segments_lost

    got1, lost1 = outcomes(17)
    got2, lost2 = outcomes(17)
    assert (got1, lost1) == (got2, lost2)  # same seed, same drops
    assert 0 < lost1 < 100
    assert len(got1) == 100 - lost1

    got3, lost3 = outcomes(18)
    assert got3 != got1  # a different seed drops different segments


def test_lost_segments_are_billed_but_never_delivered():
    sim = Simulator()
    net = Network(latency_ns=100_000, loss_prob=1.0)
    got = []
    net.transmit(sim, A, B, 500, got.append, "x")
    sim.run()
    assert got == []
    assert (net.bytes_sent, net.segments_sent) == (500, 1)
    assert net.segments_lost == 1


def test_duplicate_delivers_twice_and_bills_the_copy():
    sim = Simulator()
    net = Network(latency_ns=100_000, dup_prob=1.0)
    got = []
    net.transmit(sim, A, B, 500, got.append, "x")
    sim.run()
    assert got == ["x", "x"]
    assert net.bytes_sent == 1000  # the trailing copy crossed the wire
    assert net.segments_duplicated == 1


def test_reorder_can_invert_delivery_order():
    # With reorder_prob=1 every segment is held back past the FIFO floor
    # by an independent draw, so some pair must arrive out of order.
    sim = Simulator()
    net = Network(latency_ns=100_000, reorder_prob=1.0, fault_seed=5)
    got = []
    for i in range(50):
        net.transmit(sim, A, B, 64, got.append, i)
    sim.run()
    assert sorted(got) == list(range(50))  # nothing lost
    assert got != list(range(50))
    assert net.segments_reordered == 50


def test_faults_false_exempts_a_segment():
    sim = Simulator()
    net = Network(latency_ns=100_000, loss_prob=1.0)
    got = []
    net.transmit(sim, A, B, 64, got.append, "tcp", faults=False)
    sim.run()
    assert got == ["tcp"]  # guest TCP already recovered its losses
    assert net.segments_lost == 0


def test_zero_probability_leaves_jitter_stream_untouched():
    # The fault lane draws from its own LCG: a run with every fault knob
    # at zero must see the exact jitter sequence of a pre-fault-model run.
    net_plain = Network(latency_ns=100_000, jitter_ns=30_000, jitter_seed=42)
    net_zero = Network(latency_ns=100_000, jitter_ns=30_000, jitter_seed=42,
                       loss_prob=0.0, dup_prob=0.0, reorder_prob=0.0)
    d1 = [net_plain.delay_for(A, B) for _ in range(200)]
    d2 = [net_zero.delay_for(A, B) for _ in range(200)]
    assert d1 == d2


def test_directed_fault_override_wins_then_pair_then_global():
    net = Network(loss_prob=0.01)
    net.set_link(A[0], B[0], loss_prob=0.1)
    net.set_link_directed(A[0], B[0], loss_prob=0.5)
    assert net.link_faults(A[0], B[0]) == (0.5, 0.0, 0.0)  # directed wins
    assert net.link_faults(B[0], A[0]) == (0.1, 0.0, 0.0)  # pair next
    assert net.link_faults(A[0], C[0]) == (0.01, 0.0, 0.0)  # global floor


def test_set_link_directed_snapshot_restores_exactly():
    net = Network(latency_ns=100_000)
    net.set_link_directed(A[0], B[0], latency_ns=900_000)
    snapshot = net.set_link_directed(A[0], B[0], latency_ns=5_000_000,
                                     loss_prob=0.25)
    assert net.link_faults(A[0], B[0])[0] == 0.25
    net.replace_link_directed(A[0], B[0], snapshot)
    assert net.link_faults(A[0], B[0]) == (0.0, 0.0, 0.0)
    assert net._directed[(A[0], B[0])] == {"latency_ns": 900_000}

    # An empty snapshot removes the directed entry entirely.
    empty = net.set_link_directed(A[0], C[0], loss_prob=1.0)
    net.replace_link_directed(A[0], C[0], empty)
    assert (A[0], C[0]) not in net._directed


def test_lossy_detects_global_pair_and_directed_knobs():
    assert not Network().lossy()
    assert Network(loss_prob=0.1).lossy()
    assert Network(dup_prob=0.1).lossy()
    assert Network(reorder_prob=0.1).lossy()

    net = Network()
    net.set_link(A[0], B[0], loss_prob=0.1)
    assert net.lossy()

    net = Network()
    net.set_link_directed(A[0], B[0], reorder_prob=0.1)
    assert net.lossy()

    net = Network()
    net.set_link(A[0], B[0], latency_ns=5)  # latency-only override
    assert not net.lossy()


def test_wildcard_binds_are_host_scoped():
    class _FakeListener:
        def __init__(self, host_ip):
            self.host_ip = host_ip

    net = Network()
    l1 = _FakeListener("10.0.0.1")
    l2 = _FakeListener("10.0.0.2")
    assert net.bind_listener(("0.0.0.0", 80), l1) == 0
    # A second host may bind the same wildcard port on one shared switch.
    assert net.bind_listener(("0.0.0.0", 80), l2) == 0
    assert net.lookup(("10.0.0.1", 80)) is l1
    assert net.lookup(("10.0.0.2", 80)) is l2
    assert net.lookup(("10.0.0.3", 80)) is None
