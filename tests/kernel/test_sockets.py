"""Socket and network-model tests."""

from repro.guest import GuestRuntime
from repro.guest.program import Program
from repro.kernel import Kernel, KernelConfig
from repro.kernel import constants as C
from repro.kernel import errno_codes as E


def run_pair(server_main, client_main, latency_ns=100_000, max_steps=4_000_000):
    kernel = Kernel(config=KernelConfig(network_latency_ns=latency_ns))
    sproc = kernel.create_process("server", host_ip="10.0.0.1")
    cproc = kernel.create_process("client", host_ip="10.0.0.2")
    _t1, stask = GuestRuntime(kernel, sproc, Program("server", server_main)).start()
    _t2, ctask = GuestRuntime(kernel, cproc, Program("client", client_main)).start()
    kernel.sim.run(max_steps=max_steps)
    for task in (stask, ctask):
        if task.failure:
            raise task.failure
    return kernel, sproc, cproc


def test_connect_refused_when_no_listener():
    outcome = {}

    def client(ctx):
        libc = ctx.libc
        fd = yield from libc.socket()
        ret = yield from libc.connect(fd, "10.0.0.1", 5555)
        outcome["ret"] = ret
        return 0

    def server(ctx):
        yield from ctx.libc.nanosleep(1_000_000)
        return 0

    run_pair(server, client)
    assert outcome["ret"] == -E.ECONNREFUSED


def test_latency_delays_data():
    stamps = {}

    def server(ctx):
        libc = ctx.libc
        fd = yield from libc.socket()
        yield from libc.bind(fd, "0.0.0.0", 5001)
        yield from libc.listen(fd)
        conn = yield from libc.accept(fd)
        ret, _ = yield from libc.recv(conn, 16)
        stamps["recv_at"] = ctx.kernel.sim.now
        return 0

    def client(ctx):
        libc = ctx.libc
        yield from libc.nanosleep(500_000)
        fd = yield from libc.socket()
        yield from libc.connect(fd, "10.0.0.1", 5001)
        stamps["send_at"] = ctx.kernel.sim.now
        yield from libc.send(fd, b"timed")
        return 0

    run_pair(server, client, latency_ns=1_000_000)
    assert stamps["recv_at"] - stamps["send_at"] >= 1_000_000


def test_loopback_bypasses_latency():
    stamps = {}

    def server(ctx):
        libc = ctx.libc
        listener = yield from libc.socket()
        yield from libc.bind(listener, "0.0.0.0", 5002)
        yield from libc.listen(listener)
        client = yield from libc.socket()
        yield from libc.connect(client, ctx.process.host_ip, 5002)
        conn = yield from libc.accept(listener)
        stamps["send_at"] = ctx.kernel.sim.now
        yield from libc.send(client, b"fast")
        ret, _ = yield from libc.recv(conn, 16)
        stamps["recv_at"] = ctx.kernel.sim.now
        return 0

    def noop(ctx):
        yield from ctx.libc.nanosleep(1)
        return 0

    run_pair(server, noop, latency_ns=5_000_000)
    assert stamps["recv_at"] - stamps["send_at"] < 1_000_000


def test_shutdown_write_delivers_eof():
    outcome = {}

    def server(ctx):
        libc = ctx.libc
        fd = yield from libc.socket()
        yield from libc.bind(fd, "0.0.0.0", 5003)
        yield from libc.listen(fd)
        conn = yield from libc.accept(fd)
        ret, data = yield from libc.recv(conn, 16)
        assert data == b"bye"
        ret, data = yield from libc.recv(conn, 16)
        outcome["eof"] = ret
        return 0

    def client(ctx):
        libc = ctx.libc
        yield from libc.nanosleep(500_000)
        fd = yield from libc.socket()
        yield from libc.connect(fd, "10.0.0.1", 5003)
        yield from libc.send(fd, b"bye")
        yield from libc.shutdown(fd, C.SHUT_WR)
        yield from libc.nanosleep(2_000_000)
        return 0

    run_pair(server, client)
    assert outcome["eof"] == 0


def test_write_after_peer_close_raises_sigpipe():
    outcome = {}

    def server(ctx):
        libc = ctx.libc
        fd = yield from libc.socket()
        yield from libc.bind(fd, "0.0.0.0", 5004)
        yield from libc.listen(fd)
        conn = yield from libc.accept(fd)
        yield from libc.close(conn)
        yield from libc.nanosleep(3_000_000)
        return 0

    def client(ctx):
        def handler(hctx, signo):
            outcome["sigpipe"] = signo

        yield ctx.sys.rt_sigaction(C.SIGPIPE, handler)
        libc = ctx.libc
        yield from libc.nanosleep(500_000)
        fd = yield from libc.socket()
        yield from libc.connect(fd, "10.0.0.1", 5004)
        yield from libc.nanosleep(2_000_000)  # let the close arrive
        ret = yield from libc.send(fd, b"anyone there?")
        outcome["send_ret"] = ret
        return 0

    run_pair(server, client)
    assert outcome["send_ret"] == -E.EPIPE
    assert outcome["sigpipe"] == C.SIGPIPE


def test_nonblocking_connect_einprogress_then_ready():
    outcome = {}

    def server(ctx):
        libc = ctx.libc
        fd = yield from libc.socket()
        yield from libc.bind(fd, "0.0.0.0", 5005)
        yield from libc.listen(fd)
        conn = yield from libc.accept(fd)
        yield from libc.nanosleep(1_000_000)
        return 0

    def client(ctx):
        libc = ctx.libc
        yield from libc.nanosleep(500_000)
        fd = yield from libc.socket(nonblocking=True)
        ret = yield from libc.connect(fd, "10.0.0.1", 5005)
        outcome["first"] = ret
        yield from libc.nanosleep(2_000_000)
        buf = yield from libc.malloc(4)
        yield ctx.sys.getsockopt(fd, C.SOL_SOCKET, C.SO_ERROR, buf, 4)
        outcome["so_error"] = ctx.mem.read_u32(buf)
        return 0

    run_pair(server, client)
    assert outcome["first"] == -E.EINPROGRESS
    assert outcome["so_error"] == 0


def test_nonblocking_recv_eagain():
    def main(ctx):
        libc = ctx.libc
        listener = yield from libc.socket()
        yield from libc.bind(listener, "0.0.0.0", 5006)
        yield from libc.listen(listener)
        client = yield from libc.socket()
        yield from libc.connect(client, ctx.process.host_ip, 5006)
        conn = yield from libc.accept(listener)
        yield from libc.set_nonblocking(conn)
        ret, _ = yield from libc.recv(conn, 16)
        assert ret == -E.EAGAIN
        return 0

    from tests.conftest import run_guest

    _k, _p, code = run_guest(Program("nb-recv", main))
    assert code == 0


def test_getsockname_getpeername():
    names = {}

    def server(ctx):
        libc = ctx.libc
        fd = yield from libc.socket()
        yield from libc.bind(fd, "0.0.0.0", 5007)
        yield from libc.listen(fd)
        conn = yield from libc.accept(fd)
        from repro.kernel.structs import SOCKADDR_SIZE, unpack_sockaddr

        buf = yield from libc.malloc(SOCKADDR_SIZE)
        yield ctx.sys.getpeername(conn, buf, 0)
        names["peer"] = unpack_sockaddr(ctx.mem.read(buf, SOCKADDR_SIZE))
        yield ctx.sys.getsockname(conn, buf, 0)
        names["local"] = unpack_sockaddr(ctx.mem.read(buf, SOCKADDR_SIZE))
        return 0

    def client(ctx):
        libc = ctx.libc
        yield from libc.nanosleep(500_000)
        fd = yield from libc.socket()
        yield from libc.connect(fd, "10.0.0.1", 5007)
        yield from libc.nanosleep(1_000_000)
        return 0

    run_pair(server, client)
    assert names["peer"][1] == "10.0.0.2"
    assert names["local"] == (2, "10.0.0.1", 5007)


def test_bind_conflict_eaddrinuse():
    def main(ctx):
        libc = ctx.libc
        a = yield from libc.socket()
        yield from libc.bind(a, "0.0.0.0", 5008)
        yield from libc.listen(a)
        b = yield from libc.socket()
        yield from libc.bind(b, "0.0.0.0", 5008)
        ret = yield from libc.listen(b)
        assert ret == -E.EADDRINUSE
        return 0

    from tests.conftest import run_guest

    _k, _p, code = run_guest(Program("addrinuse", main))
    assert code == 0


def test_sendmsg_recvmsg_iovec_paths():
    def main(ctx):
        import struct

        libc = ctx.libc
        listener = yield from libc.socket()
        yield from libc.bind(listener, "0.0.0.0", 5009)
        yield from libc.listen(listener)
        client = yield from libc.socket()
        yield from libc.connect(client, ctx.process.host_ip, 5009)
        conn = yield from libc.accept(listener)
        # Build an iovec pair and a msghdr in guest memory.
        from repro.kernel.structs import pack_iovec

        part1 = yield from libc.push_bytes(b"hello ")
        part2 = yield from libc.push_bytes(b"world")
        iov = yield from libc.push_bytes(pack_iovec(part1, 6) + pack_iovec(part2, 5))
        msg = yield from libc.push_bytes(struct.pack("<QQ", iov, 2))
        sent = yield ctx.sys.sendmsg(client, msg, 0)
        assert sent == 11
        # Scattered receive.
        buf1 = yield from libc.malloc(4)
        buf2 = yield from libc.malloc(16)
        riov = yield from libc.push_bytes(pack_iovec(buf1, 4) + pack_iovec(buf2, 7))
        rmsg = yield from libc.push_bytes(struct.pack("<QQ", riov, 2))
        got = yield ctx.sys.recvmsg(conn, rmsg, 0)
        assert got == 11
        assert ctx.mem.read(buf1, 4) == b"hell"
        assert ctx.mem.read(buf2, 7) == b"o world"
        return 0

    from tests.conftest import run_guest

    _k, _p, code = run_guest(Program("msgio", main))
    assert code == 0
