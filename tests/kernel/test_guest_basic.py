"""End-to-end guest programs exercising the kernel substrate natively."""

from repro.guest.program import Compute, Program
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from tests.conftest import run_guest

RESULTS = {}


def test_hello_file_io():
    def main(ctx):
        libc = ctx.libc
        fd = yield from libc.open("/data/greeting.txt")
        assert fd >= 0
        ret, data = yield from libc.read(fd, 100)
        RESULTS["read"] = (ret, data)
        yield from libc.close(fd)
        return 0

    program = Program("hello", main, files={"/data/greeting.txt": b"hello world"})
    _kernel, _process, code = run_guest(program)
    assert code == 0
    assert RESULTS["read"] == (11, b"hello world")


def test_write_then_read_back():
    def main(ctx):
        libc = ctx.libc
        fd = yield from libc.open("/tmp/out.txt", C.O_WRONLY | C.O_CREAT)
        wrote = yield from libc.write(fd, b"abc123")
        assert wrote == 6
        yield from libc.close(fd)
        fd = yield from libc.open("/tmp/out.txt")
        ret, data = yield from libc.read(fd, 32)
        assert (ret, data) == (6, b"abc123")
        return 0

    _k, _p, code = run_guest(Program("rw", main))
    assert code == 0


def test_missing_file_returns_enoent():
    def main(ctx):
        fd = yield from ctx.libc.open("/no/such/file")
        return -fd  # make the errno the exit code

    _k, _p, code = run_guest(Program("missing", main))
    assert code == E.ENOENT


def test_compute_advances_clock():
    def main(ctx):
        yield Compute(1_000_000)
        return 0

    kernel, _p, code = run_guest(Program("compute", main))
    assert code == 0
    assert kernel.sim.now >= 1_000_000


def test_pipe_between_threads():
    seen = {}

    def main(ctx):
        libc = ctx.libc
        rfd, wfd = yield from libc.pipe()
        assert rfd >= 0 and wfd >= 0

        def child(cctx, arg):
            def body():
                ret = yield from cctx.libc.write(arg, b"ping")
                assert ret == 4
            return body()

        tid = yield ctx.spawn_thread(child, wfd)
        assert tid > 0
        ret, data = yield from libc.read(rfd, 16)
        seen["msg"] = data
        return 0

    _k, _p, code = run_guest(Program("pipes", main))
    assert code == 0
    assert seen["msg"] == b"ping"


def test_pipe_blocking_read_waits_for_writer():
    order = []

    def main(ctx):
        libc = ctx.libc
        rfd, wfd = yield from libc.pipe()

        def writer(cctx, arg):
            def body():
                yield from cctx.libc.nanosleep(5_000_000)
                yield from cctx.libc.write(arg, b"late")
                order.append("wrote")
            return body()

        yield ctx.spawn_thread(writer, wfd)
        ret, data = yield from libc.read(rfd, 16)
        order.append("read:%s" % data.decode())
        return 0

    kernel, _p, code = run_guest(Program("blocking-pipe", main))
    assert code == 0
    assert order == ["wrote", "read:late"]
    assert kernel.sim.now >= 5_000_000


def test_stat_and_getdents():
    def main(ctx):
        libc = ctx.libc
        ret, st = yield from libc.stat("/data/a.txt")
        assert ret == 0
        assert st["st_size"] == 4
        fd = yield from libc.open("/data", C.O_RDONLY | C.O_DIRECTORY)
        ret, raw = yield from libc.getdents(fd)
        assert ret > 0
        from repro.kernel.structs import unpack_dirents

        names = [name for _ino, name, _t in unpack_dirents(raw)]
        assert b"a.txt" in names and b"b.txt" in names
        return 0

    program = Program(
        "dents", main, files={"/data/a.txt": b"aaaa", "/data/b.txt": b"bb"}
    )
    _k, _p, code = run_guest(program)
    assert code == 0


def test_tcp_client_server_roundtrip():
    """Two separate processes talk over the simulated network."""
    from repro.guest import GuestRuntime
    from repro.kernel import Kernel

    kernel = Kernel()
    transcript = {}

    def server_main(ctx):
        libc = ctx.libc
        fd = yield from libc.socket()
        assert (yield from libc.bind(fd, "0.0.0.0", 8080)) == 0
        assert (yield from libc.listen(fd)) == 0
        conn = yield from libc.accept(fd)
        assert conn >= 0
        ret, data = yield from libc.recv(conn, 64)
        transcript["server_got"] = data
        yield from libc.send(conn, b"pong:" + data)
        yield from libc.close(conn)
        return 0

    def client_main(ctx):
        libc = ctx.libc
        yield from libc.nanosleep(1_000_000)  # let the server bind
        fd = yield from libc.socket()
        ret = yield from libc.connect(fd, "10.0.0.1", 8080)
        assert ret == 0
        yield from libc.send(fd, b"ping")
        ret, data = yield from libc.recv(fd, 64)
        transcript["client_got"] = data
        return 0

    sproc = kernel.create_process("server", host_ip="10.0.0.1")
    cproc = kernel.create_process("client", host_ip="10.0.0.2")
    GuestRuntime(kernel, sproc, Program("server", server_main)).start()
    GuestRuntime(kernel, cproc, Program("client", client_main)).start()
    kernel.sim.run()
    assert transcript["server_got"] == b"ping"
    assert transcript["client_got"] == b"pong:ping"
    # Cross-host traffic paid network latency both ways.
    assert kernel.sim.now > 2 * kernel.config.network_latency_ns


def test_epoll_event_delivery():
    def main(ctx):
        libc = ctx.libc
        rfd, wfd = yield from libc.pipe()
        epfd = yield from libc.epoll_create()
        assert epfd >= 0
        ret = yield from libc.epoll_ctl(
            epfd, C.EPOLL_CTL_ADD, rfd, C.EPOLLIN, data=0xDEADBEEF
        )
        assert ret == 0

        def writer(cctx, arg):
            def body():
                yield from cctx.libc.nanosleep(2_000_000)
                yield from cctx.libc.write(arg, b"x")
            return body()

        yield ctx.spawn_thread(writer, wfd)
        ret, events = yield from libc.epoll_wait(epfd)
        assert ret == 1
        revents, data = events[0]
        assert revents & C.EPOLLIN
        assert data == 0xDEADBEEF
        return 0

    _k, _p, code = run_guest(Program("epoll", main))
    assert code == 0


def test_futex_wait_wake_between_threads():
    order = []

    def main(ctx):
        libc = ctx.libc
        word = yield from libc.malloc(4)
        ctx.mem.write_u32(word, 0)

        def waker(cctx, arg):
            def body():
                yield from cctx.libc.nanosleep(1_000_000)
                cctx.mem.write_u32(arg, 1)
                woken = yield from cctx.libc.futex_wake(arg, 1)
                order.append("woke:%d" % woken)
            return body()

        yield ctx.spawn_thread(waker, word)
        ret = yield from libc.futex_wait(word, 0)
        order.append("wait:%d" % ret)
        assert ctx.mem.read_u32(word) == 1
        return 0

    _k, _p, code = run_guest(Program("futex", main))
    assert code == 0
    assert order == ["woke:1", "wait:0"]


def test_guest_mutex_mutual_exclusion():
    trace = []

    def main(ctx):
        libc = ctx.libc
        mutex = yield from libc.mutex()
        done = yield from libc.malloc(4)
        ctx.mem.write_u32(done, 0)

        def contender(cctx, arg):
            def body():
                yield from arg.lock(cctx)
                trace.append("child-in")
                yield Compute(1000)
                trace.append("child-out")
                yield from arg.unlock(cctx)
                cctx.mem.write_u32(done, 1)
                yield from cctx.libc.futex_wake(done, 1)
            return body()

        yield from mutex.lock(ctx)
        trace.append("main-in")
        yield ctx.spawn_thread(contender, mutex)
        yield Compute(5000)
        trace.append("main-out")
        yield from mutex.unlock(ctx)
        while ctx.mem.read_u32(done) == 0:
            yield from libc.futex_wait(done, 0)
        return 0

    _k, _p, code = run_guest(Program("mutex", main))
    assert code == 0
    assert trace == ["main-in", "main-out", "child-in", "child-out"]


def test_signal_handler_runs_on_kill():
    hits = []

    def main(ctx):
        def handler(hctx, signo):
            hits.append(signo)

        yield ctx.sys.rt_sigaction(C.SIGUSR1, handler)
        yield ctx.sys.kill(ctx.process.pid, C.SIGUSR1)
        yield Compute(100)
        return 0

    _k, _p, code = run_guest(Program("sig", main))
    assert code == 0
    assert hits == [C.SIGUSR1]


def test_fatal_signal_kills_process():
    def main(ctx):
        yield ctx.sys.kill(ctx.process.pid, C.SIGTERM)
        yield Compute(10_000)
        return 0

    _k, process, code = run_guest(Program("fatal", main))
    assert code == 128 + C.SIGTERM
    assert process.exited


def test_sigsegv_on_wild_write():
    def main(ctx):
        ctx.mem.write(0xDEAD0000, b"boom")
        yield Compute(1)
        return 0

    _k, _p, code = run_guest(Program("segv", main))
    assert code == 128 + C.SIGSEGV


def test_nanosleep_advances_time():
    def main(ctx):
        yield from ctx.libc.nanosleep(3_000_000)
        return 0

    kernel, _p, code = run_guest(Program("sleep", main))
    assert code == 0
    assert kernel.sim.now >= 3_000_000


def test_getpid_and_uname():
    def main(ctx):
        pid = yield ctx.sys.getpid()
        assert pid == ctx.process.pid
        buf = yield from ctx.libc.malloc(390)
        ret = yield ctx.sys.uname(buf)
        assert ret == 0
        sysname = ctx.mem.read(buf, 5)
        assert sysname == b"Linux"
        return 0

    _k, _p, code = run_guest(Program("ids", main))
    assert code == 0


def test_brk_and_mmap_grow_address_space():
    def main(ctx):
        base = yield ctx.sys.brk(0)
        new = yield ctx.sys.brk(base + 8192)
        assert new >= base + 8192
        ctx.mem.write(base, b"heap")
        addr = yield ctx.sys.mmap(
            0, 4096, C.PROT_READ | C.PROT_WRITE, C.MAP_PRIVATE | C.MAP_ANONYMOUS, -1, 0
        )
        assert addr > 0
        ctx.mem.write(addr, b"mapped")
        assert ctx.mem.read(addr, 6) == b"mapped"
        ret = yield ctx.sys.munmap(addr, 4096)
        assert ret == 0
        return 0

    _k, _p, code = run_guest(Program("mm", main))
    assert code == 0


def test_proc_maps_readable():
    def main(ctx):
        libc = ctx.libc
        fd = yield from libc.open("/proc/self/maps")
        assert fd >= 0
        ret, data = yield from libc.read(fd, 65536)
        assert b"text:" in data
        return 0

    _k, _p, code = run_guest(Program("maps", main))
    assert code == 0
