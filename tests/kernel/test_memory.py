"""Unit and property tests for the address-space model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernel import constants as C
from repro.kernel.memory import (
    AddressSpace,
    MemoryFault,
    SharedRegion,
    page_align_down,
    page_align_up,
)

RW = C.PROT_READ | C.PROT_WRITE


def make_space():
    return AddressSpace(0x7F00_0000_0000, 0x5555_0000_0000)


class TestMapping:
    def test_map_read_write_roundtrip(self):
        space = make_space()
        mapping = space.map(None, 8192, RW, name="test")
        space.write(mapping.start + 100, b"hello world")
        assert space.read(mapping.start + 100, 11) == b"hello world"

    def test_mappings_do_not_overlap(self):
        space = make_space()
        for _ in range(50):
            space.map(None, 4096 * 3, RW)
        mappings = space.mappings()
        for a, b in zip(mappings, mappings[1:]):
            assert a.end <= b.start

    def test_map_fixed_clobbers_overlap(self):
        space = make_space()
        first = space.map(0x1000_0000, 8192, RW, fixed=True)
        space.write(first.start, b"AAAA")
        second = space.map(0x1000_0000, 4096, RW, fixed=True)
        assert space.read(second.start, 4) == b"\x00\x00\x00\x00"
        # The non-clobbered tail of the first mapping survives.
        assert space.find_mapping(0x1000_1000) is not None

    def test_unmap_middle_splits(self):
        space = make_space()
        mapping = space.map(0x2000_0000, 4096 * 3, RW, fixed=True)
        space.write(mapping.start, b"A" * (4096 * 3))
        space.unmap(mapping.start + 4096, 4096)
        assert space.find_mapping(mapping.start) is not None
        assert space.find_mapping(mapping.start + 4096) is None
        assert space.find_mapping(mapping.start + 8192) is not None
        # Both remainders kept their bytes.
        assert space.read(mapping.start, 4096) == b"A" * 4096
        assert space.read(mapping.start + 8192, 4096) == b"A" * 4096

    def test_read_unmapped_faults(self):
        space = make_space()
        with pytest.raises(MemoryFault):
            space.read(0xDEAD_0000, 4)

    def test_write_readonly_faults(self):
        space = make_space()
        mapping = space.map(None, 4096, C.PROT_READ)
        with pytest.raises(MemoryFault):
            space.write(mapping.start, b"x")
        space.write(mapping.start, b"x", check_prot=False)  # ptrace path

    def test_read_crosses_contiguous_mappings(self):
        space = make_space()
        first = space.map(0x3000_0000, 4096, RW, fixed=True)
        space.map(0x3000_1000, 4096, RW, fixed=True)
        space.write(first.start + 4090, b"ABCDEFGHIJ")
        assert space.read(first.start + 4090, 10) == b"ABCDEFGHIJ"

    def test_protect_splits_mapping(self):
        space = make_space()
        mapping = space.map(0x4000_0000, 4096 * 3, RW, fixed=True)
        space.protect(mapping.start + 4096, 4096, C.PROT_READ)
        with pytest.raises(MemoryFault):
            space.write(mapping.start + 4096, b"x")
        space.write(mapping.start, b"x")
        space.write(mapping.start + 8192, b"x")

    def test_brk_grows_heap(self):
        space = make_space()
        base = space.brk_current
        new = space.brk(base + 10_000)
        assert new >= base + 10_000
        space.write(base, b"heap-data")
        assert space.read(base, 9) == b"heap-data"

    def test_brk_shrink_request_is_ignored_below_base(self):
        space = make_space()
        base = space.brk_current
        assert space.brk(base - 4096) == base

    def test_cstr_reading(self):
        space = make_space()
        mapping = space.map(None, 4096, RW)
        space.write(mapping.start, b"hello\x00trailing")
        assert space.read_cstr(mapping.start) == b"hello"

    def test_u32_u64_accessors(self):
        space = make_space()
        mapping = space.map(None, 4096, RW)
        space.write_u64(mapping.start, 0x1122334455667788)
        assert space.read_u64(mapping.start) == 0x1122334455667788
        space.write_u32(mapping.start + 8, 0xDEADBEEF)
        assert space.read_u32(mapping.start + 8) == 0xDEADBEEF


class TestSharedRegions:
    def test_shared_region_visible_across_spaces(self):
        region = SharedRegion(8192, "shared")
        space_a = make_space()
        space_b = AddressSpace(0x7E00_0000_0000, 0x5666_0000_0000)
        map_a = space_a.map(None, 8192, RW, region=region, shared=True)
        map_b = space_b.map(None, 8192, RW, region=region, shared=True)
        assert map_a.start != map_b.start
        space_a.write(map_a.start + 16, b"cross-process")
        assert space_b.read(map_b.start + 16, 13) == b"cross-process"

    def test_attach_counting(self):
        region = SharedRegion(4096)
        space = make_space()
        mapping = space.map(None, 4096, RW, region=region, shared=True)
        assert region.attach_count == 1
        space.unmap(mapping.start, 4096)
        assert region.attach_count == 0


class TestAlignmentHelpers:
    @given(st.integers(min_value=0, max_value=1 << 48))
    def test_page_align_invariants(self, addr):
        down = page_align_down(addr)
        up = page_align_up(addr)
        assert down <= addr <= up
        assert down % C.PAGE_SIZE == 0
        assert up % C.PAGE_SIZE == 0
        assert up - down in (0, C.PAGE_SIZE)


@settings(max_examples=40, deadline=None)
@given(
    writes=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3000),
            st.binary(min_size=1, max_size=128),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_last_write_wins(writes):
    """Overlapping writes behave like writes to a flat bytearray."""
    space = make_space()
    mapping = space.map(None, 4096, RW)
    model = bytearray(4096)
    for offset, data in writes:
        space.write(mapping.start + offset, data)
        model[offset : offset + len(data)] = data
    assert space.read(mapping.start, 4096) == bytes(model)


@settings(max_examples=30, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=1 << 20), min_size=1, max_size=12)
)
def test_property_allocations_disjoint_and_page_aligned(sizes):
    space = make_space()
    mappings = [space.map(None, size, RW) for size in sizes]
    for mapping, size in zip(mappings, sizes):
        assert mapping.start % C.PAGE_SIZE == 0
        assert mapping.length >= size
    ordered = sorted(mappings, key=lambda m: m.start)
    for a, b in zip(ordered, ordered[1:]):
        assert a.end <= b.start
