"""Coverage for the long tail of system calls."""

import struct

from repro.guest.program import Compute, Program
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from tests.conftest import run_guest


class TestIdentityAndInfo:
    def test_id_getters(self):
        def main(ctx):
            assert (yield ctx.sys.getuid()) == 1000
            assert (yield ctx.sys.geteuid()) == 1000
            assert (yield ctx.sys.getgid()) == 1000
            assert (yield ctx.sys.getegid()) == 1000
            assert (yield ctx.sys.getppid()) == 1
            pid = yield ctx.sys.getpid()
            assert (yield ctx.sys.getpgrp()) == pid
            tid = yield ctx.sys.gettid()
            assert tid == ctx.thread.tid
            return 0

        _k, _p, code = run_guest(Program("ids", main))
        assert code == 0

    def test_getcwd(self):
        def main(ctx):
            buf = yield from ctx.libc.malloc(64)
            ret = yield ctx.sys.getcwd(buf, 64)
            assert ret == 2
            assert ctx.mem.read_cstr(buf) == b"/"
            ret = yield ctx.sys.getcwd(buf, 1)
            assert ret == -E.ERANGE
            return 0

        _k, _p, code = run_guest(Program("cwd", main))
        assert code == 0

    def test_sysinfo_uptime(self):
        def main(ctx):
            yield Compute(3_000_000_000)
            buf = yield from ctx.libc.malloc(64)
            assert (yield ctx.sys.sysinfo(buf)) == 0
            uptime = struct.unpack_from("<q", ctx.mem.read(buf, 8))[0]
            assert uptime >= 3
            return 0

        _k, _p, code = run_guest(Program("sysinfo", main))
        assert code == 0

    def test_times_accumulates_utime(self):
        def main(ctx):
            yield Compute(50_000_000)  # 50 ms of CPU
            buf = yield from ctx.libc.malloc(32)
            yield ctx.sys.times(buf)
            utime_ticks = struct.unpack_from("<q", ctx.mem.read(buf, 8))[0]
            assert utime_ticks >= 4  # 100 Hz ticks
            return 0

        _k, _p, code = run_guest(Program("times", main))
        assert code == 0

    def test_getrusage(self):
        def main(ctx):
            yield Compute(20_000_000)
            buf = yield from ctx.libc.malloc(144)
            assert (yield ctx.sys.getrusage(0, buf)) == 0
            sec, usec = struct.unpack_from("<qq", ctx.mem.read(buf, 16))
            assert sec * 1_000_000 + usec >= 19_000
            return 0

        _k, _p, code = run_guest(Program("rusage", main))
        assert code == 0

    def test_time_and_gettimeofday_agree(self):
        def main(ctx):
            tv = yield from ctx.libc.malloc(16)
            yield ctx.sys.gettimeofday(tv, 0)
            sec = struct.unpack_from("<q", ctx.mem.read(tv, 8))[0]
            t = yield ctx.sys.time(0)
            assert abs(t - sec) <= 1
            assert t > 1_700_000_000  # a modern epoch
            return 0

        _k, _p, code = run_guest(Program("tod", main))
        assert code == 0

    def test_trivial_calls_succeed(self):
        def main(ctx):
            assert (yield ctx.sys.sched_yield()) == 0
            assert (yield ctx.sys.capget(0, 0)) == 0
            assert (yield ctx.sys.prctl(1, 2, 3, 4, 5)) == 0
            assert (yield ctx.sys.sync()) == 0
            assert (yield ctx.sys.madvise(0, 4096, 4)) == 0
            assert (yield ctx.sys.getpriority(0, 0)) == 20
            assert (yield ctx.sys.set_tid_address(0)) == ctx.thread.tid
            assert (yield ctx.sys.sigaltstack(0, 0)) == 0
            return 0

        _k, _p, code = run_guest(Program("trivial", main))
        assert code == 0

    def test_unknown_syscall_enosys(self):
        def main(ctx):
            from repro.kernel.syscalls import SyscallRequest

            ret = yield SyscallRequest("no_such_call", ())
            assert ret == -E.ENOSYS
            return 0

        _k, _p, code = run_guest(Program("enosys", main))
        assert code == 0


class TestVectoredIO:
    def test_readv_scatters(self):
        def main(ctx):
            from repro.kernel.structs import pack_iovec

            libc = ctx.libc
            fd = yield from libc.open("/data/f")
            a = yield from libc.malloc(4)
            b = yield from libc.malloc(8)
            iov = yield from libc.push_bytes(pack_iovec(a, 4) + pack_iovec(b, 6))
            ret = yield ctx.sys.readv(fd, iov, 2)
            assert ret == 10
            assert ctx.mem.read(a, 4) == b"0123"
            assert ctx.mem.read(b, 6) == b"456789"
            return 0

        _k, _p, code = run_guest(Program("readv", main, files={"/data/f": b"0123456789"}))
        assert code == 0

    def test_writev_gathers(self):
        def main(ctx):
            from repro.kernel.structs import pack_iovec

            libc = ctx.libc
            fd = yield from libc.open("/tmp/out", C.O_WRONLY | C.O_CREAT)
            a = yield from libc.push_bytes(b"head-")
            b = yield from libc.push_bytes(b"tail")
            iov = yield from libc.push_bytes(pack_iovec(a, 5) + pack_iovec(b, 4))
            ret = yield ctx.sys.writev(fd, iov, 2)
            assert ret == 9
            return 0

        kernel, _p, code = run_guest(Program("writev", main))
        assert code == 0
        node, err = kernel.fs.resolve("/tmp/out")
        assert bytes(node.data) == b"head-tail"

    def test_preadv_at_offset(self):
        def main(ctx):
            from repro.kernel.structs import pack_iovec

            libc = ctx.libc
            fd = yield from libc.open("/data/f")
            buf = yield from libc.malloc(4)
            iov = yield from libc.push_bytes(pack_iovec(buf, 4))
            ret = yield ctx.sys.preadv(fd, iov, 1, 3)
            assert ret == 4
            assert ctx.mem.read(buf, 4) == b"3456"
            return 0

        _k, _p, code = run_guest(Program("preadv", main, files={"/data/f": b"0123456789"}))
        assert code == 0


class TestMemoryCalls:
    def test_mremap_grow_preserves_content(self):
        def main(ctx):
            addr = yield ctx.sys.mmap(
                0, 4096, C.PROT_READ | C.PROT_WRITE,
                C.MAP_PRIVATE | C.MAP_ANONYMOUS, -1, 0,
            )
            ctx.mem.write(addr, b"persist-me")
            new = yield ctx.sys.mremap(addr, 4096, 16384, 0, 0)
            assert new > 0
            assert ctx.mem.read(new, 10) == b"persist-me"
            ctx.mem.write(new + 9000, b"grown")
            return 0

        _k, _p, code = run_guest(Program("mremap", main))
        assert code == 0

    def test_mprotect_then_fault(self):
        def main(ctx):
            addr = yield ctx.sys.mmap(
                0, 4096, C.PROT_READ | C.PROT_WRITE,
                C.MAP_PRIVATE | C.MAP_ANONYMOUS, -1, 0,
            )
            ctx.mem.write(addr, b"ok")
            ret = yield ctx.sys.mprotect(addr, 4096, C.PROT_READ)
            assert ret == 0
            ctx.mem.write(addr, b"boom")  # -> SIGSEGV
            return 0

        _k, _p, code = run_guest(Program("wprot", main))
        assert code == 128 + C.SIGSEGV

    def test_file_backed_private_mapping(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/f")
            addr = yield ctx.sys.mmap(0, 4096, C.PROT_READ, C.MAP_PRIVATE, fd, 0)
            assert addr > 0
            assert ctx.mem.read(addr, 8) == b"mmapped!"
            return 0

        _k, _p, code = run_guest(Program("filemap", main, files={"/data/f": b"mmapped!"}))
        assert code == 0

    def test_mmap_bad_fd(self):
        def main(ctx):
            ret = yield ctx.sys.mmap(0, 4096, C.PROT_READ, C.MAP_PRIVATE, 99, 0)
            assert ret == -E.EBADF
            return 0

        _k, _p, code = run_guest(Program("badmap", main))
        assert code == 0


class TestIoctl:
    def test_fionread_on_pipe(self):
        def main(ctx):
            libc = ctx.libc
            rfd, wfd = yield from libc.pipe()
            yield from libc.write(wfd, b"12345")
            out = yield from libc.malloc(4)
            assert (yield ctx.sys.ioctl(rfd, 0x541B, out)) == 0
            assert ctx.mem.read_u32(out) == 5
            return 0

        _k, _p, code = run_guest(Program("fionread", main))
        assert code == 0

    def test_fionbio_toggles_nonblock(self):
        def main(ctx):
            libc = ctx.libc
            rfd, _ = yield from libc.pipe()
            arg = yield from libc.malloc(4)
            ctx.mem.write_u32(arg, 1)
            assert (yield ctx.sys.ioctl(rfd, 0x5421, arg)) == 0
            ret, _ = yield from libc.read(rfd, 4)
            assert ret == -E.EAGAIN
            return 0

        _k, _p, code = run_guest(Program("fionbio", main))
        assert code == 0

    def test_unknown_ioctl_enotty(self):
        def main(ctx):
            fd = yield from ctx.libc.open("/data/f")
            ret = yield ctx.sys.ioctl(fd, 0x1234, 0)
            assert ret == -E.ENOTTY
            return 0

        _k, _p, code = run_guest(Program("enotty", main, files={"/data/f": b"x"}))
        assert code == 0


class TestErrnoHelpers:
    def test_errno_names(self):
        from repro.kernel.errno_codes import errno_name, is_error

        assert errno_name(E.ENOENT) == "ENOENT"
        assert errno_name(-E.EAGAIN) == "EAGAIN"
        assert errno_name(9999).startswith("E?")
        assert is_error(-E.EINVAL)
        assert not is_error(0)
        assert not is_error(42)
        assert not is_error(0x7F0000000000)  # mmap address, not an error
