"""Tests for the ptrace-like tracing layer."""

import pytest

from repro.errors import MonitorError
from repro.guest import GuestRuntime
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.kernel import constants as C
from repro.kernel.syscalls import SyscallRequest
from repro.ptrace.api import Tracer


def traced_run(main, stop_handler, signal_handler=None, max_steps=2_000_000):
    kernel = Kernel()
    process = kernel.create_process("tracee")
    tracer = Tracer(kernel)
    tracer.stop_handler = stop_handler
    if signal_handler is not None:
        tracer.signal_handler = signal_handler
    tracer.attach(process)
    runtime = GuestRuntime(kernel, process, Program("tracee", main))
    _t, task = runtime.start()
    kernel.sim.run(max_steps=max_steps)
    if task.failure:
        raise task.failure
    return kernel, process, tracer


def test_entry_and_exit_stops_reported_in_order():
    events = []

    def handler(stop):
        events.append((stop.kind, stop.req.name))
        stop.thread.tracer.resume(stop.thread)

    def main(ctx):
        yield ctx.sys.getpid()
        return 0

    traced_run(main, handler)
    names = [e for e in events if e[1] == "getpid"]
    assert names == [("syscall-entry", "getpid"), ("syscall-exit", "getpid")]


def test_skip_call_forces_result():
    def handler(stop):
        tracer = stop.thread.tracer
        if stop.kind == "syscall-entry" and stop.req.name == "getpid":
            tracer.skip_call(stop.thread, 4242)
        tracer.resume(stop.thread)

    observed = {}

    def main(ctx):
        pid = yield ctx.sys.getpid()
        observed["pid"] = pid
        return 0

    traced_run(main, handler)
    assert observed["pid"] == 4242


def test_exit_stop_can_rewrite_result():
    def handler(stop):
        tracer = stop.thread.tracer
        if stop.kind == "syscall-exit" and stop.req.name == "getuid":
            tracer.resume(stop.thread, final_result=7777)
        else:
            tracer.resume(stop.thread)

    observed = {}

    def main(ctx):
        observed["uid"] = yield ctx.sys.getuid()
        return 0

    traced_run(main, handler)
    assert observed["uid"] == 7777


def test_rewrite_args_at_entry():
    """The tracer can rewrite the request the kernel executes (how a
    monitor would redirect a path, for example)."""

    def handler(stop):
        tracer = stop.thread.tracer
        if stop.kind == "syscall-entry" and stop.req.name == "lseek":
            tracer.rewrite_args(stop.thread, stop.req.replace(args=(stop.req.args[0], 2, 0)))
        tracer.resume(stop.thread)

    observed = {}

    def main(ctx):
        fd = yield from ctx.libc.open("/data/f")
        observed["pos"] = yield ctx.sys.lseek(fd, 9, 0)  # tracer changes 9 -> 2
        return 0

    kernel = Kernel()
    kernel.fs.write_file("/data/f", b"0123456789")
    process = kernel.create_process("tracee")
    tracer = Tracer(kernel)
    tracer.stop_handler = handler
    tracer.attach(process)
    _t, task = GuestRuntime(kernel, process, Program("t", main)).start()
    kernel.sim.run(max_steps=2_000_000)
    if task.failure:
        raise task.failure
    assert observed["pos"] == 2


def test_peek_poke_cross_memory():
    poked = {}

    def handler(stop):
        tracer = stop.thread.tracer
        if stop.kind == "syscall-entry" and stop.req.name == "write":
            addr = stop.req.args[1]
            data = tracer.peek(stop.thread.process, addr, stop.req.args[2])
            poked["seen"] = data
            tracer.poke(stop.thread.process, addr, b"REWRITTEN!")
        tracer.resume(stop.thread)

    def main(ctx):
        yield from ctx.libc.write(1, b"ORIGINAL!!")
        return 0

    _k, process, _t = traced_run(main, handler)
    assert poked["seen"] == b"ORIGINAL!!"
    assert process.console.text() == "REWRITTEN!"


def test_signal_interception_and_injection():
    deferred = []

    def stop_handler(stop):
        stop.thread.tracer.resume(stop.thread)

    def signal_handler(stop):
        deferred.append(stop.signo)
        # Deliver it later, the GHUMVEE way.
        stop.thread.tracer.inject_signal(stop.thread, stop.signo)

    hits = []

    def main(ctx):
        def handler(hctx, signo):
            hits.append(signo)

        yield ctx.sys.rt_sigaction(C.SIGUSR1, handler)
        yield ctx.sys.kill(ctx.process.pid, C.SIGUSR1)
        yield Compute(1000)
        yield ctx.sys.getpid()
        return 0

    traced_run(main, stop_handler, signal_handler)
    assert deferred == [C.SIGUSR1]
    assert hits == [C.SIGUSR1]


def test_untraced_kernel_does_not_stop():
    def main(ctx):
        yield ctx.sys.getpid()
        return 0

    kernel = Kernel()
    process = kernel.create_process("free")
    runtime = GuestRuntime(kernel, process, Program("free", main))
    _t, task = runtime.start()
    kernel.sim.run()
    assert task.failure is None
    assert process.exit_code == 0


def test_resume_unstopped_thread_is_error():
    kernel = Kernel()
    process = kernel.create_process("p")
    thread = kernel.create_thread(process)
    tracer = Tracer(kernel)
    with pytest.raises(MonitorError):
        tracer.resume(thread)


def test_detach_stops_tracing():
    counted = {"stops": 0}

    def handler(stop):
        counted["stops"] += 1
        stop.thread.tracer.resume(stop.thread)

    def main(ctx):
        yield ctx.sys.getpid()
        # Detach mid-run from inside the test via the tracer handle
        # stashed on the process.
        ctx.process.tracer.detach(ctx.process)
        yield ctx.sys.getpid()
        yield ctx.sys.getpid()
        return 0

    _k, process, tracer = traced_run(main, handler)
    # Two stops (entry+exit) for the first getpid only.
    assert counted["stops"] == 2
