"""Binary layout round-trip tests (hypothesis-driven)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kernel import structs


@given(
    st.integers(min_value=0, max_value=(1 << 31) - 1),
    st.binary(min_size=1, max_size=64).filter(lambda b: b"\x00" not in b),
    st.integers(min_value=0, max_value=255),
)
def test_dirent_roundtrip(ino, name, dtype):
    packed = structs.pack_dirent(ino, name, dtype)
    [(got_ino, got_name, got_type)] = structs.unpack_dirents(packed)
    assert (got_ino, got_name, got_type) == (ino, name, dtype)


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=(1 << 31) - 1),
            st.binary(min_size=1, max_size=32).filter(lambda b: b"\x00" not in b),
            st.integers(min_value=0, max_value=255),
        ),
        min_size=0,
        max_size=8,
    )
)
def test_dirent_stream_roundtrip(entries):
    blob = b"".join(structs.pack_dirent(*e) for e in entries)
    assert structs.unpack_dirents(blob) == entries


@given(st.integers(min_value=0, max_value=(1 << 62) - 1))
def test_timespec_roundtrip(ns):
    assert structs.unpack_timespec(structs.pack_timespec(ns)) == ns


@given(
    st.integers(min_value=0, max_value=0xFFFFFFFF),
    st.integers(min_value=0, max_value=(1 << 64) - 1),
)
def test_epoll_event_roundtrip(events, data):
    packed = structs.pack_epoll_event(events, data)
    assert len(packed) == structs.EPOLL_EVENT_SIZE
    assert structs.unpack_epoll_event(packed) == (events, data)


@given(
    st.integers(min_value=0, max_value=65535),
    st.tuples(*[st.integers(min_value=0, max_value=255)] * 4),
)
def test_sockaddr_roundtrip(port, ip_parts):
    ip = ".".join(str(p) for p in ip_parts)
    packed = structs.pack_sockaddr(2, ip, port)
    family, got_ip, got_port = structs.unpack_sockaddr(packed)
    assert (family, got_ip, got_port) == (2, ip, port)


@given(
    st.integers(min_value=-1, max_value=(1 << 31) - 1),
    st.integers(min_value=-32768, max_value=32767),
    st.integers(min_value=-32768, max_value=32767),
)
def test_pollfd_roundtrip(fd, events, revents):
    packed = structs.pack_pollfd(fd, events, revents)
    assert structs.unpack_pollfd(packed) == (fd, events, revents)


def test_stat_roundtrip():
    packed = structs.pack_stat(1, 42, 0o100644, 1, 1000, 1000, 12345)
    st_ = structs.unpack_stat(packed)
    assert st_["st_ino"] == 42
    assert st_["st_mode"] == 0o100644
    assert st_["st_size"] == 12345


def test_iovec_helpers():
    from repro.kernel.memory import AddressSpace

    space = AddressSpace(0x7F00_0000_0000, 0x5555_0000_0000)
    mapping = space.map(None, 4096, 3)
    iov = structs.pack_iovec(0x1000, 64) + structs.pack_iovec(0x2000, 128)
    space.write(mapping.start, iov)
    assert structs.read_iovecs(space, mapping.start, 2) == [
        (0x1000, 64),
        (0x2000, 128),
    ]
