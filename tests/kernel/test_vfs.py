"""VFS and descriptor-layer tests driven through guest programs."""

import pytest

from repro.guest.program import Program
from repro.kernel import Kernel
from repro.kernel import constants as C
from repro.kernel import errno_codes as E
from repro.kernel.vfs import Directory, Filesystem, RegularFile, Symlink
from tests.conftest import run_guest


class TestPathResolution:
    def test_resolve_absolute(self):
        fs = Filesystem()
        fs.write_file("/data/a/b.txt", b"x")
        node, err = fs.resolve("/data/a/b.txt")
        assert err == 0 and isinstance(node, RegularFile)

    def test_resolve_relative_to_cwd(self):
        fs = Filesystem()
        fs.write_file("/data/rel.txt", b"x")
        node, err = fs.resolve("rel.txt", cwd="/data")
        assert err == 0 and node is not None

    def test_missing_component_enoent(self):
        fs = Filesystem()
        node, err = fs.resolve("/no/such/path")
        assert node is None and err == E.ENOENT

    def test_file_as_directory_enotdir(self):
        fs = Filesystem()
        fs.write_file("/data/file.txt", b"x")
        node, err = fs.resolve("/data/file.txt/sub")
        assert node is None and err == E.ENOTDIR

    def test_symlink_followed(self):
        fs = Filesystem()
        fs.write_file("/data/real.txt", b"target")
        fs.symlink("/data/link.txt", "/data/real.txt")
        node, err = fs.resolve("/data/link.txt")
        assert err == 0 and isinstance(node, RegularFile)

    def test_symlink_not_followed_when_asked(self):
        fs = Filesystem()
        fs.write_file("/data/real.txt", b"target")
        fs.symlink("/data/link.txt", "/data/real.txt")
        node, err = fs.resolve("/data/link.txt", follow=False)
        assert err == 0 and isinstance(node, Symlink)

    def test_symlink_loop_detected(self):
        fs = Filesystem()
        fs.symlink("/data/x", "/data/y")
        fs.symlink("/data/y", "/data/x")
        node, err = fs.resolve("/data/x")
        assert node is None and err == E.ELOOP

    def test_dot_segments_collapse(self):
        fs = Filesystem()
        fs.write_file("/data/f", b"x")
        node, err = fs.resolve("/data/./f")
        assert err == 0 and node is not None


class TestOpenSemantics:
    def test_o_creat_and_excl(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/tmp/new.txt", C.O_WRONLY | C.O_CREAT)
            assert fd >= 0
            yield from libc.close(fd)
            fd2 = yield from libc.open(
                "/tmp/new.txt", C.O_WRONLY | C.O_CREAT | C.O_EXCL
            )
            assert fd2 == -E.EEXIST
            return 0

        _k, _p, code = run_guest(Program("creat", main))
        assert code == 0

    def test_o_trunc_empties_file(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/t.txt", C.O_WRONLY | C.O_TRUNC)
            assert fd >= 0
            ret, st = yield from libc.fstat(fd)
            assert st["st_size"] == 0
            return 0

        _k, _p, code = run_guest(Program("trunc", main, files={"/data/t.txt": b"full"}))
        assert code == 0

    def test_o_append_positions_at_end(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/log", C.O_WRONLY | C.O_APPEND)
            yield from libc.write(fd, b"-suffix")
            yield from libc.close(fd)
            fd = yield from libc.open("/data/log")
            _ret, data = yield from libc.read(fd, 64)
            assert data == b"prefix-suffix", data
            return 0

        _k, _p, code = run_guest(Program("append", main, files={"/data/log": b"prefix"}))
        assert code == 0

    def test_o_directory_on_file_fails(self):
        def main(ctx):
            fd = yield from ctx.libc.open("/data/f", C.O_RDONLY | C.O_DIRECTORY)
            assert fd == -E.ENOTDIR
            return 0

        _k, _p, code = run_guest(Program("odir", main, files={"/data/f": b"x"}))
        assert code == 0

    def test_open_directory_for_write_is_eisdir(self):
        def main(ctx):
            fd = yield from ctx.libc.open("/data", C.O_RDWR)
            assert fd == -E.EISDIR
            return 0

        _k, _p, code = run_guest(Program("eisdir", main, files={"/data/f": b"x"}))
        assert code == 0


class TestDescriptorOps:
    def test_dup_shares_offset(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/ten")
            dup = yield ctx.sys.dup(fd)
            assert dup >= 0 and dup != fd
            ret, _ = yield from libc.read(fd, 5)
            offset = yield ctx.sys.lseek(dup, 0, C.SEEK_CUR)
            assert offset == 5  # dup shares the open file description
            return 0

        _k, _p, code = run_guest(Program("dup", main, files={"/data/ten": b"0123456789"}))
        assert code == 0

    def test_dup2_closes_target(self):
        def main(ctx):
            libc = ctx.libc
            a = yield from libc.open("/data/a")
            b = yield from libc.open("/data/b")
            ret = yield ctx.sys.dup2(a, b)
            assert ret == b
            ret, data = yield from libc.read(b, 4)
            assert data == b"AAAA"
            return 0

        _k, _p, code = run_guest(
            Program("dup2", main, files={"/data/a": b"AAAA", "/data/b": b"BBBB"})
        )
        assert code == 0

    def test_close_bad_fd_is_ebadf(self):
        def main(ctx):
            ret = yield ctx.sys.close(555)
            assert ret == -E.EBADF
            return 0

        _k, _p, code = run_guest(Program("ebadf", main))
        assert code == 0

    def test_fcntl_nonblock_toggles(self):
        def main(ctx):
            libc = ctx.libc
            rfd, _wfd = yield from libc.pipe()
            ret = yield from libc.set_nonblocking(rfd, True)
            assert ret == 0
            flags = yield ctx.sys.fcntl(rfd, C.F_GETFL, 0)
            assert flags & C.O_NONBLOCK
            ret, _ = yield from libc.read(rfd, 4)
            assert ret == -E.EAGAIN
            return 0

        _k, _p, code = run_guest(Program("nb", main))
        assert code == 0

    def test_fcntl_dupfd_respects_floor(self):
        def main(ctx):
            fd = yield from ctx.libc.open("/data/f")
            new = yield ctx.sys.fcntl(fd, C.F_DUPFD, 20)
            assert new >= 20
            return 0

        _k, _p, code = run_guest(Program("dupfd", main, files={"/data/f": b"x"}))
        assert code == 0

    def test_lseek_set_cur_end(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/ten")
            assert (yield ctx.sys.lseek(fd, 4, C.SEEK_SET)) == 4
            assert (yield ctx.sys.lseek(fd, 2, C.SEEK_CUR)) == 6
            assert (yield ctx.sys.lseek(fd, -1, C.SEEK_END)) == 9
            assert (yield ctx.sys.lseek(fd, -100, C.SEEK_SET)) == -E.EINVAL
            return 0

        _k, _p, code = run_guest(
            Program("lseek", main, files={"/data/ten": b"0123456789"})
        )
        assert code == 0

    def test_lseek_pipe_is_espipe(self):
        def main(ctx):
            rfd, _ = yield from ctx.libc.pipe()
            ret = yield ctx.sys.lseek(rfd, 0, C.SEEK_SET)
            assert ret == -E.ESPIPE
            return 0

        _k, _p, code = run_guest(Program("espipe", main))
        assert code == 0


class TestNamespaceOps:
    def test_unlink_then_enoent(self):
        def main(ctx):
            libc = ctx.libc
            addr = yield from libc.push_cstr("/data/victim")
            assert (yield ctx.sys.unlink(addr)) == 0
            fd = yield from libc.open("/data/victim")
            assert fd == -E.ENOENT
            return 0

        _k, _p, code = run_guest(
            Program("unlink", main, files={"/data/victim": b"x"})
        )
        assert code == 0

    def test_rename_moves_content(self):
        def main(ctx):
            libc = ctx.libc
            old = yield from libc.push_cstr("/data/old")
            new = yield from libc.push_cstr("/data/new")
            assert (yield ctx.sys.rename(old, new)) == 0
            fd = yield from libc.open("/data/new")
            _ret, data = yield from libc.read(fd, 16)
            assert data == b"contents"
            return 0

        _k, _p, code = run_guest(Program("rename", main, files={"/data/old": b"contents"}))
        assert code == 0

    def test_mkdir_and_getdents(self):
        def main(ctx):
            libc = ctx.libc
            path = yield from libc.push_cstr("/data/subdir")
            assert (yield ctx.sys.mkdir(path, 0o755)) == 0
            assert (yield ctx.sys.mkdir(path, 0o755)) == -E.EEXIST
            fd = yield from libc.open("/data", C.O_RDONLY | C.O_DIRECTORY)
            ret, raw = yield from libc.getdents(fd)
            from repro.kernel.structs import unpack_dirents

            names = [n for _i, n, _t in unpack_dirents(raw)]
            assert b"subdir" in names
            return 0

        _k, _p, code = run_guest(Program("mkdir", main, files={"/data/f": b"x"}))
        assert code == 0

    def test_getdents_paginates(self):
        files = {"/data/file%02d" % i: b"x" for i in range(30)}

        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data", C.O_RDONLY | C.O_DIRECTORY)
            seen = []
            from repro.kernel.structs import unpack_dirents

            while True:
                ret, raw = yield from libc.getdents(fd, count=128)
                if ret <= 0:
                    break
                seen.extend(n for _i, n, _t in unpack_dirents(raw))
            assert len(seen) == 30, seen
            return 0

        _k, _p, code = run_guest(Program("dents-pages", main, files=files))
        assert code == 0

    def test_ftruncate_grows_and_shrinks(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/f", C.O_RDWR)
            assert (yield ctx.sys.ftruncate(fd, 2)) == 0
            ret, st = yield from libc.fstat(fd)
            assert st["st_size"] == 2
            assert (yield ctx.sys.ftruncate(fd, 100)) == 0
            ret, st = yield from libc.fstat(fd)
            assert st["st_size"] == 100
            return 0

        _k, _p, code = run_guest(Program("trunc2", main, files={"/data/f": b"abcdef"}))
        assert code == 0


class TestXattrsAndReadlink:
    def test_getxattr_roundtrip(self):
        kernel = Kernel()
        node = kernel.fs.write_file("/data/tagged", b"x")
        node.xattrs[b"user.origin"] = b"repro"

        def main(ctx):
            libc = ctx.libc
            path = yield from libc.push_cstr("/data/tagged")
            name = yield from libc.push_cstr("user.origin")
            buf = yield from libc.malloc(32)
            ret = yield ctx.sys.getxattr(path, name, buf, 32)
            assert ret == 5
            assert ctx.mem.read(buf, 5) == b"repro"
            missing = yield from libc.push_cstr("user.nope")
            ret = yield ctx.sys.getxattr(path, missing, buf, 32)
            assert ret == -E.ENODATA
            return 0

        _k, _p, code = run_guest(Program("xattr", main), kernel=kernel)
        assert code == 0

    def test_readlink(self):
        kernel = Kernel()
        kernel.fs.write_file("/data/real", b"x")
        kernel.fs.symlink("/data/ln", "/data/real")

        def main(ctx):
            ret, target = yield from ctx.libc.readlink("/data/ln")
            assert target == b"/data/real"
            ret, _ = yield from ctx.libc.readlink("/data/real")
            assert ret == -E.EINVAL
            return 0

        _k, _p, code = run_guest(Program("readlink", main), kernel=kernel)
        assert code == 0


class TestSendfileAndPwrite:
    def test_sendfile_to_pipe(self):
        def main(ctx):
            libc = ctx.libc
            src = yield from libc.open("/data/src")
            rfd, wfd = yield from libc.pipe()
            sent = yield ctx.sys.sendfile(wfd, src, 0, 5)
            assert sent == 5
            ret, data = yield from libc.read(rfd, 16)
            assert data == b"01234"
            return 0

        _k, _p, code = run_guest(
            Program("sendfile", main, files={"/data/src": b"0123456789"})
        )
        assert code == 0

    def test_pwrite_does_not_move_offset(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/f", C.O_RDWR)
            yield from libc.pwrite(fd, b"XY", 2)
            pos = yield ctx.sys.lseek(fd, 0, C.SEEK_CUR)
            assert pos == 0
            ret, data = yield from libc.pread(fd, 6, 0)
            assert data == b"abXYef"
            return 0

        _k, _p, code = run_guest(Program("pwrite", main, files={"/data/f": b"abcdef"}))
        assert code == 0


def test_console_collects_stdout():
    def main(ctx):
        yield from ctx.libc.write(1, b"to stdout\n")
        yield from ctx.libc.write(2, b"to stderr\n")
        return 0

    _k, process, code = run_guest(Program("console", main))
    assert code == 0
    assert process.console.text() == "to stdout\nto stderr\n"
