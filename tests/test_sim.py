"""Tests for the discrete-event simulator core."""

import pytest

from repro.errors import SimulationError
from repro.sim import Event, Simulator, Sleep, Spawn, WaitEvent


def test_sleep_advances_virtual_time():
    sim = Simulator()

    def task():
        yield Sleep(100)
        yield Sleep(250)
        return sim.now

    assert sim.run_task(task()) == 350
    assert sim.now == 350


def test_tasks_interleave_deterministically():
    sim = Simulator()
    log = []

    def worker(name, delay):
        yield Sleep(delay)
        log.append((sim.now, name))

    sim.spawn(worker("b", 20), "b")
    sim.spawn(worker("a", 10), "a")
    sim.run()
    assert log == [(10, "a"), (20, "b")]


def test_event_wakes_all_waiters_with_value():
    sim = Simulator()
    event = Event("go")
    results = []

    def waiter():
        fired, value = yield WaitEvent(event)
        results.append((fired, value, sim.now))

    def firer():
        yield Sleep(50)
        sim.fire(event, "payload")

    sim.spawn(waiter(), "w1")
    sim.spawn(waiter(), "w2")
    sim.spawn(firer(), "f")
    sim.run()
    assert results == [(True, "payload", 50), (True, "payload", 50)]


def test_wait_on_already_fired_event_returns_immediately():
    sim = Simulator()
    event = Event("done")
    sim.fire(event, 42)

    def waiter():
        fired, value = yield WaitEvent(event)
        return fired, value, sim.now

    assert sim.run_task(waiter()) == (True, 42, 0)


def test_wait_timeout_loses_to_event():
    sim = Simulator()
    event = Event("never")

    def waiter():
        fired, value = yield WaitEvent(event, timeout_ns=75)
        return fired, value, sim.now

    assert sim.run_task(waiter()) == (False, None, 75)


def test_stale_timeout_does_not_rewake_task():
    sim = Simulator()
    event = Event("fast")
    wakeups = []

    def waiter():
        fired, _ = yield WaitEvent(event, timeout_ns=100)
        wakeups.append((sim.now, fired))
        yield Sleep(500)
        wakeups.append((sim.now, "slept"))

    def firer():
        yield Sleep(10)
        sim.fire(event)

    sim.spawn(waiter(), "w")
    sim.spawn(firer(), "f")
    sim.run()
    assert wakeups == [(10, True), (510, "slept")]


def test_spawn_effect_returns_task_handle():
    sim = Simulator()

    def child():
        yield Sleep(5)
        return "child-done"

    def parent():
        task = yield Spawn(child(), "child")
        fired, value = yield WaitEvent(task.done_event)
        return fired, value

    assert sim.run_task(parent()) == (True, "child-done")


def test_cpu_contention_stretches_compute():
    sim = Simulator(cores=2)
    finish_times = {}

    def burner(name):
        yield Sleep(1000, cpu=True)
        finish_times[name] = sim.now

    for i in range(4):
        sim.spawn(burner("t%d" % i), "t%d" % i)
    sim.run()
    # With 4 burners on 2 cores, at least some must take longer than 1000.
    assert max(finish_times.values()) > 1000


def test_no_contention_when_cores_suffice():
    sim = Simulator(cores=8)
    finish_times = {}

    def burner(name):
        yield Sleep(1000, cpu=True)
        finish_times[name] = sim.now

    for i in range(4):
        sim.spawn(burner("t%d" % i), "t%d" % i)
    sim.run()
    assert all(t == 1000 for t in finish_times.values())


def test_task_failure_is_captured_and_reraised():
    sim = Simulator()

    def bad():
        yield Sleep(1)
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        sim.run_task(bad())


def test_run_task_detects_deadlock():
    sim = Simulator()
    event = Event("never-fired")

    def stuck():
        yield WaitEvent(event)

    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_task(stuck())


def test_yielding_non_effect_raises_inside_task():
    sim = Simulator()

    def confused():
        try:
            yield "not-an-effect"
        except SimulationError:
            return "caught"

    assert sim.run_task(confused()) == "caught"


def test_call_at_past_rejected():
    sim = Simulator()
    sim.now = 100
    with pytest.raises(SimulationError):
        sim.call_at(50, lambda: None)


def test_event_listener_runs_on_fire():
    sim = Simulator()
    seen = []
    event = Event("e")
    event.add_listener(seen.append)
    sim.fire(event, 7)
    assert seen == [7]
    # Listener registered after firing runs immediately.
    event.add_listener(seen.append)
    assert seen == [7, 7]


def test_run_until_stops_at_boundary():
    sim = Simulator()
    log = []

    def ticker():
        while True:
            yield Sleep(10)
            log.append(sim.now)

    sim.spawn(ticker(), "tick")
    sim.run(until=35)
    assert log == [10, 20, 30]
    assert sim.now == 35
