"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.guest import GuestRuntime
from repro.kernel import Kernel, KernelConfig
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator(cores=16)


@pytest.fixture
def kernel():
    return Kernel()


def run_guest(program, kernel=None, max_steps=2_000_000):
    """Run a single program natively (no MVEE) to completion.

    Returns (kernel, process, exit_code).
    """
    kernel = kernel or Kernel()
    program.install_files(kernel)
    process = kernel.create_process(program.name)
    runtime = GuestRuntime(kernel, process, program)
    _thread, task = runtime.start()
    kernel.sim.run(max_steps=max_steps)
    if task.failure is not None:
        raise task.failure
    assert process.exited, "guest did not exit (deadlock at t=%d)" % kernel.sim.now
    return kernel, process, process.exit_code


@pytest.fixture
def guest_runner():
    return run_guest
