"""Node-crash and stall faults across the cluster (PR-1 fault framework
driving PR-2 distributed degradation)."""

from __future__ import annotations

from repro.core import DegradationPolicy, Level, ReMonConfig
from repro.dist import DistConfig, DistMvee, run_distributed
from repro.faults import CrashFault, FaultPlan, StallFault
from repro.guest.program import Program
from repro.kernel import constants as C

MAX_STEPS = 120_000_000


def worker_program(calls=50, exit_code=7):
    def main(ctx):
        libc = ctx.libc
        for _ in range(calls):
            yield ctx.sys.getpid()
        out = yield from libc.open("/tmp/survived.txt", C.O_WRONLY | C.O_CREAT)
        yield from libc.write(out, b"survived")
        yield from libc.close(out)
        return exit_code

    return Program("dist-worker", main)


def run_cluster(program, plan=None, degradation=None, replicas=3,
                dist_kwargs=None, level=Level.NONSOCKET_RW):
    config = ReMonConfig(
        replicas=replicas, level=level, degradation=degradation,
        dist=DistConfig(**(dist_kwargs or {})),
    )
    mvee = DistMvee(program, config)
    if plan is not None:
        from repro.faults import FaultInjector

        mvee.attach_faults(FaultInjector(plan))
    result = mvee.run(max_steps=MAX_STEPS)
    return mvee, result


class TestFollowerCrash:
    def test_follower_crash_quarantined_and_survivors_finish(self):
        plan = FaultPlan([CrashFault(replica=2, after_syscalls=20)])
        mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
        )
        assert not result.diverged, result.divergence
        assert result.quarantined_replicas == [2]
        assert result.stats["replicas_quarantined"] == 1
        assert result.stats["master_promotions"] == 0
        assert result.exit_codes[0] == 7 and result.exit_codes[1] == 7
        assert result.exit_codes[2] >= 128
        assert result.fault_events[0].kind == "crash"
        assert result.fault_events[0].detected_by == "dist-heartbeat"
        # Survivors wrote their output on their own nodes.
        for index in (0, 1):
            vfs_node, err = mvee.nodes[index].kernel.fs.resolve(
                "/tmp/survived.txt"
            )
            assert err == 0 and bytes(vfs_node.data) == b"survived"

    def test_crash_without_policy_fail_stops(self):
        plan = FaultPlan([CrashFault(replica=1, after_syscalls=20)])
        _mvee, result = run_cluster(worker_program(), plan=plan)
        assert result.diverged
        assert result.divergence.kind == "crash"
        assert result.stats["replicas_quarantined"] == 0

    def test_quorum_loss_fail_stops(self):
        plan = FaultPlan([CrashFault(replica=1, after_syscalls=20)])
        _mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=3),
        )
        assert result.diverged
        assert "quorum lost" in result.divergence.detail


class TestLeaderCrash:
    def test_leader_crash_promotes_and_survivors_finish(self):
        plan = FaultPlan([CrashFault(replica=0, after_syscalls=20)])
        mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
        )
        assert not result.diverged, result.divergence
        assert result.quarantined_replicas == [0]
        assert result.stats["master_promotions"] == 1
        assert mvee.leader_index == 1
        assert result.exit_codes[1] == 7 and result.exit_codes[2] == 7
        # The run's wall time reflects the *promoted* leader's exit.
        assert result.wall_time_ns > 0

    def test_leader_crash_mid_replication_no_deadlock(self):
        """Crash the leader while followers depend on it for replicated
        clock reads: promotion must unblock them."""

        def main(ctx):
            libc = ctx.libc
            for _ in range(60):
                _now = yield from libc.clock_gettime()
            return 3

        plan = FaultPlan([CrashFault(replica=0, after_syscalls=25)])
        mvee, result = run_cluster(
            Program("clocky", main), plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
        )
        assert not result.diverged, result.divergence
        assert result.stats["master_promotions"] == 1
        assert result.exit_codes[1] == 3 and result.exit_codes[2] == 3
        # The promoted leader executed replicated calls itself after
        # the failover.
        assert result.stats["dist_promoted_executions"] > 0

    def test_leader_crash_without_promotion_fail_stops(self):
        plan = FaultPlan([CrashFault(replica=0, after_syscalls=20)])
        _mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=2, promote_master=False),
        )
        assert result.diverged


class TestFastPathFaults:
    def test_leader_crash_promotes_with_fast_path_on(self):
        """Sharded rendezvous + coded mirrors must not break failover:
        the crashed node leaves the owner set and survivors finish."""
        plan = FaultPlan([CrashFault(replica=0, after_syscalls=20)])
        mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
            dist_kwargs={"shard_rendezvous": True, "compress": "dict"},
        )
        assert not result.diverged, result.divergence
        assert result.quarantined_replicas == [0]
        assert result.stats["master_promotions"] == 1
        assert mvee.leader_index == 1
        assert result.exit_codes[1] == 7 and result.exit_codes[2] == 7
        assert result.stats["dist_wire_errors"] == 0

    def test_follower_crash_quarantined_with_fast_path_on(self):
        plan = FaultPlan([CrashFault(replica=2, after_syscalls=20)])
        _mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
            dist_kwargs={"shard_rendezvous": True, "compress": "rle"},
        )
        assert not result.diverged, result.divergence
        assert result.quarantined_replicas == [2]
        assert result.exit_codes[0] == 7 and result.exit_codes[1] == 7


class TestStalls:
    def test_long_stall_is_blamed_and_quarantined(self):
        plan = FaultPlan([StallFault(replica=2, duration_ns=400_000_000,
                                     after_syscalls=20)])
        _mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
            dist_kwargs={"stall_timeout_ns": 10_000_000},
        )
        assert not result.diverged, result.divergence
        assert result.quarantined_replicas == [2]
        assert result.stats["dist_stall_reports"] >= 1
        assert result.fault_events[0].kind == "stall"
        assert result.fault_events[0].detected_by == "dist-watchdog"

    def test_short_stall_is_absorbed(self):
        plan = FaultPlan([StallFault(replica=1, duration_ns=1_000_000,
                                     after_syscalls=20)])
        _mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
            dist_kwargs={"stall_timeout_ns": 50_000_000},
        )
        assert not result.diverged, result.divergence
        assert result.quarantined_replicas == []
        assert result.exit_codes == [7, 7, 7]


class TestFaultAccounting:
    def test_injected_faults_counted_in_stats(self):
        plan = FaultPlan([CrashFault(replica=2, after_syscalls=20)])
        _mvee, result = run_cluster(
            worker_program(), plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
        )
        assert result.stats["faults_injected"] == 1

    def test_fault_free_run_counts_zero(self):
        _mvee, result = run_cluster(
            worker_program(), plan=FaultPlan([]),
            degradation=DegradationPolicy(min_quorum=2),
        )
        assert result.stats["faults_injected"] == 0
        assert not result.diverged
