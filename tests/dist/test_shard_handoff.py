"""Per-shard monitor state and epoch-based ownership handoff (PR-5).

Three load-bearing guarantees:

* **Happy path is free** — with no membership change the epoch stays 0,
  no handoff stat key even exists, and repeated runs are bit-identical
  (the refactor from one God-object monitor to per-owner shards must be
  unobservable until someone dies).
* **Blast radius** — crashing a shard owner loses exactly that owner's
  open rounds; every lost round belonged to the dead owner under the
  pre-crash assignment, and resubmissions re-collect only those.
* **Stale frames die at the door** — a frame sent under epoch N that
  arrives after the epoch-N+1 handoff is dropped by the transport's
  epoch gate, never merged into a fresh shard's state.
"""

from __future__ import annotations

import pytest

from repro.core import DegradationPolicy, Level, ReMonConfig
from repro.dist import DistConfig, DistMvee
from repro.dist.shard import MonitorShard, RendezvousState, shard_owner
from repro.dist.wire import (
    Frame,
    T_CALL_DIGEST,
    T_RENDEZVOUS_REQ,
    T_ROUND_RESUBMIT,
    digest_payload,
    handoff_payload,
    owners_payload,
    parse_handoff_payload,
    parse_owners_payload,
)
from repro.errors import WireError
from repro.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    ShardOwnerCrashFault,
)
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

MAX_STEPS = 200_000_000

RATE = 900_000.0


def _workload(threads=4, native_ms=0.5):
    return SyntheticWorkload(
        name="handoff",
        native_ms=native_ms,
        mix=CategoryMix(
            {"base": RATE * 0.55, "file_ro": RATE * 0.25, "mgmt": RATE * 0.2}
        ),
        threads=threads,
    )


def run_sharded(plan=None, nodes=4, shards=2, threads=4):
    config = ReMonConfig(
        replicas=nodes, level=Level.NO_IPMON,
        degradation=DegradationPolicy(min_quorum=2),
        dist=DistConfig(link_latency_ns=100_000, shard_rendezvous=True,
                        rendezvous_shards=shards),
    )
    mvee = DistMvee(build_program(_workload(threads=threads)), config)
    if plan is not None:
        mvee.attach_faults(FaultInjector(plan))
    result = mvee.run(max_steps=MAX_STEPS)
    return mvee, result


class TestHappyPathUnchanged:
    def test_no_membership_change_keeps_epoch_zero_and_no_handoff_stats(self):
        mvee, result = run_sharded()
        assert not result.diverged, result.divergence
        assert mvee.epoch == 0
        # The handoff machinery must be invisible until a node dies: no
        # stat key for epochs, handoffs or stale drops may exist.
        leaked = [key for key in result.stats
                  if "handoff" in key or "epoch" in key or "stale" in key]
        assert leaked == []
        assert mvee.monitor.lost_keys == set()
        assert mvee.monitor.resubmitted_keys == set()

    def test_repeated_runs_are_bit_identical(self):
        _mvee_a, a = run_sharded()
        _mvee_b, b = run_sharded()
        assert a.wall_time_ns == b.wall_time_ns
        assert a.stats == b.stats
        assert list(a.exit_codes) == list(b.exit_codes)

    def test_per_owner_shards_live_on_their_nodes(self):
        mvee, result = run_sharded()
        assert not result.diverged
        # Both configured shard owners served rounds during the run
        # (shard_owners() itself shrinks once replicas exit cleanly).
        owners = set(mvee.monitor.rounds_by_owner)
        assert owners == {0, 1}
        for owner in owners:
            shard = mvee.nodes[owner].shard
            assert isinstance(shard, MonitorShard)
            assert shard.owner == owner
            assert shard.rounds > 0
            assert not shard.dead
        # Non-owners host no shard state at all.
        for index in range(len(mvee.nodes)):
            if index not in owners:
                assert mvee.nodes[index].shard is None


class TestOwnerCrashBlastRadius:
    def test_owner_crash_loses_only_that_owners_rounds(self):
        owners_before = (0, 1)  # 4 live nodes, cap 2: lowest indices
        plan = FaultPlan([CrashFault(replica=1, at_ns=2_000_000)])
        mvee, result = run_sharded(plan=plan)
        assert not result.diverged, result.divergence
        assert result.quarantined_replicas == [1]
        assert mvee.epoch == 1
        # Every lost round was hosted by the dead owner pre-crash...
        assert mvee.monitor.lost_keys, "crash landed after all rounds closed"
        for vtid, seq in mvee.monitor.lost_keys:
            assert shard_owner(vtid, seq, owners_before) == 1
        # ...and resubmission re-collected exactly those rounds.
        assert mvee.monitor.resubmitted_keys <= mvee.monitor.lost_keys
        stats = result.stats
        assert stats["dist_epoch"] == 1
        assert stats["dist_handoff_lost_rounds"] == len(mvee.monitor.lost_keys)
        assert stats["dist_round_resubmits"] > 0
        # Recovery work is billed: dist_handoff_ns per rebuilt round.
        costs = mvee.nodes[0].kernel.config.costs
        rebuilt = len(mvee.monitor.resubmitted_keys)
        assert stats["dist_handoff_cost_ns"] >= rebuilt * costs.dist_handoff_ns

    def test_shard_owner_crash_fault_targets_live_owner(self):
        plan = FaultPlan([ShardOwnerCrashFault(at_ns=2_000_000)])
        mvee, result = run_sharded(plan=plan)
        assert not result.diverged, result.divergence
        # Victim resolved at fire time: the first non-leader owner.
        assert result.quarantined_replicas == [1]
        assert result.stats["dist_epoch"] == 1
        assert mvee.nodes[0].kernel.fault_injector.stats["crashes"] == 1

    def test_follower_crash_bumps_epoch_but_moves_no_state(self):
        plan = FaultPlan([CrashFault(replica=3, at_ns=2_000_000)])
        mvee, result = run_sharded(plan=plan)
        assert not result.diverged, result.divergence
        assert mvee.epoch == 1
        assert result.stats["dist_handoff_cost_ns"] == 0
        assert result.stats["dist_handoff_lost_rounds"] == 0
        assert mvee.monitor.lost_keys == set()

    def test_owner_crash_is_deterministic(self):
        plan = FaultPlan([CrashFault(replica=1, at_ns=2_000_000)])
        _a_mvee, a = run_sharded(plan=plan)
        plan = FaultPlan([CrashFault(replica=1, at_ns=2_000_000)])
        _b_mvee, b = run_sharded(plan=plan)
        assert a.wall_time_ns == b.wall_time_ns
        assert a.stats == b.stats


class TestStaleEpochGate:
    def _fresh_mvee(self):
        config = ReMonConfig(
            replicas=4, level=Level.NO_IPMON,
            degradation=DegradationPolicy(min_quorum=2),
            dist=DistConfig(shard_rendezvous=True, rendezvous_shards=2),
        )
        return DistMvee(build_program(_workload(threads=1)), config)

    def test_old_epoch_frame_to_wrong_owner_is_dropped(self):
        mvee = self._fresh_mvee()
        vtid, seq = 0, 7
        owner = mvee.shard_owner(vtid, seq)
        stranger = next(i for i in range(4) if i != owner)
        mvee.epoch = 1  # a handoff has happened since the frame was sent
        frame = Frame(T_RENDEZVOUS_REQ, 2 if stranger != 2 else 3, vtid, seq,
                      aux=0, payload=digest_payload(0xAB, "getpid"))
        assert mvee._stale_frame(stranger, frame) is True
        assert mvee.monitor.handoff_stats["stale_epoch_rejects"] == 1
        # The same frame addressed to the round's current owner passes:
        # a same-owner race with the bump is a valid resubmission.
        assert mvee._stale_frame(owner, frame) is False

    def test_current_epoch_frame_always_passes(self):
        mvee = self._fresh_mvee()
        mvee.epoch = 2
        frame = Frame(T_ROUND_RESUBMIT, 1, 0, 7, aux=2,
                      payload=digest_payload(0xAB, "getpid"))
        assert mvee._stale_frame(3, frame) is False

    def test_digest_content_is_epoch_independent(self):
        mvee = self._fresh_mvee()
        mvee.epoch = 5
        frame = Frame(T_CALL_DIGEST, 1, 0, 7, aux=0,
                      payload=digest_payload(0xAB, "getpid"))
        assert mvee._stale_frame(0, frame) is False

    def test_quarantined_senders_frames_never_count(self):
        mvee = self._fresh_mvee()
        mvee.nodes[1].process.quarantined = True
        frame = Frame(T_CALL_DIGEST, 1, 0, 7, aux=0,
                      payload=digest_payload(0xAB, "getpid"))
        assert mvee._stale_frame(0, frame) is True
        assert mvee.monitor.handoff_stats["stale_epoch_rejects"] == 1


class TestHandoffWireFormat:
    def test_owners_payload_round_trip(self):
        for owners in ((0,), (0, 2), (3, 1, 0), tuple(range(12))):
            assert parse_owners_payload(owners_payload(owners)) == owners

    def test_owners_payload_rejects_truncation(self):
        data = owners_payload((0, 1, 2))
        with pytest.raises(WireError):
            parse_owners_payload(data[:-1])

    def test_handoff_payload_round_trip(self):
        digests = {0: ("read", 0x1234), 2: ("read", 0x1234),
                   3: ("read", 0xFFFF_FFFF_FFFF_FFFF)}
        assert parse_handoff_payload(handoff_payload(digests)) == digests

    def test_handoff_payload_rejects_trailing_garbage(self):
        data = handoff_payload({0: ("getpid", 1)})
        with pytest.raises(WireError):
            parse_handoff_payload(data + b"x")

    def test_rendezvous_state_defaults(self):
        state = RendezvousState()
        assert state.digests == {}
        assert state.verdict is None
        assert not state.completing
        shard = MonitorShard(owner=2)
        assert shard.open_rounds() == []
        assert "owner=2" in repr(shard)
