"""Property-based round-trip tests for the cross-node wire format.

The invariants a distributed monitor lives or dies by:

* encode -> decode is the identity for every representable frame/batch;
* a truncated or length-corrupted buffer is always *rejected* (raises
  WireError), never silently mis-decoded;
* flipping any bit of an encoded frame is either rejected or yields a
  frame unequal to the original — corruption cannot round-trip clean.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.wire import (
    BATCH_HEADER_SIZE,
    HEADER_SIZE,
    Frame,
    FRAME_TYPES,
    call_digest,
    decode_batch,
    decode_frame,
    digest_payload,
    encode_batch,
    encode_frame,
    parse_digest_payload,
)
from repro.errors import WireError

frames = st.builds(
    Frame,
    type=st.sampled_from(FRAME_TYPES),
    sender=st.integers(0, 0xFFFF),
    vtid=st.integers(0, 0xFFFFFFFF),
    seq=st.integers(0, (1 << 64) - 1),
    aux=st.integers(-(1 << 63), (1 << 63) - 1),
    flags=st.integers(0, 0xFFFF),
    payload=st.binary(max_size=300),
)


@given(frames)
def test_frame_round_trip_identity(frame):
    data = encode_frame(frame)
    assert len(data) == HEADER_SIZE + len(frame.payload) == frame.size()
    decoded, consumed = decode_frame(data)
    assert consumed == len(data)
    assert decoded == frame


@given(st.lists(frames, max_size=8))
def test_batch_round_trip_identity(batch):
    data = encode_batch(batch)
    assert len(data) == BATCH_HEADER_SIZE + sum(f.size() for f in batch)
    assert decode_batch(data) == batch


@given(frames, st.data())
def test_truncated_frame_rejected(frame, data):
    encoded = encode_frame(frame)
    cut = data.draw(st.integers(0, len(encoded) - 1))
    with pytest.raises(WireError):
        decode_frame(encoded[:cut])


@given(st.lists(frames, min_size=1, max_size=4), st.data())
def test_truncated_batch_rejected(batch, data):
    encoded = encode_batch(batch)
    cut = data.draw(st.integers(0, len(encoded) - 1))
    with pytest.raises(WireError):
        decode_batch(encoded[:cut])


@given(st.lists(frames, max_size=4), st.binary(min_size=1, max_size=16))
def test_trailing_garbage_rejected(batch, garbage):
    with pytest.raises(WireError):
        decode_batch(encode_batch(batch) + garbage)


@settings(max_examples=300)
@given(frames, st.data())
def test_corruption_never_round_trips_clean(frame, data):
    encoded = bytearray(encode_frame(frame))
    index = data.draw(st.integers(0, len(encoded) - 1))
    bit = data.draw(st.integers(0, 7))
    encoded[index] ^= 1 << bit
    try:
        decoded, consumed = decode_frame(bytes(encoded))
    except WireError:
        return  # rejected: the desired outcome
    # CRC32 detects all single-bit errors, so an accepted decode should
    # be impossible — but if one ever slips through, it must at least
    # not masquerade as the original frame.
    assert decoded != frame or consumed != len(encoded)


@given(st.integers(0, (1 << 64) - 1), st.text(max_size=32))
def test_digest_payload_round_trip(digest, name):
    got_digest, got_name = parse_digest_payload(digest_payload(digest, name))
    assert got_digest == digest
    # Names survive when encodable; decode uses errors="replace" so it
    # never raises, but plain ASCII syscall names round-trip exactly.
    if name.isascii():
        assert got_name == name


def test_digest_payload_too_short_rejected():
    with pytest.raises(WireError):
        parse_digest_payload(b"1234567")


@given(st.text(max_size=16), st.binary(max_size=64))
def test_call_digest_is_stable_and_sensitive(name, blob):
    assert call_digest(name, blob) == call_digest(name, blob)
    assert call_digest(name, blob) != call_digest(name + "x", blob)
    assert call_digest(name, blob) != call_digest(name, blob + b"\x00")


def test_aux_out_of_range_rejected():
    with pytest.raises(WireError):
        encode_frame(Frame(FRAME_TYPES[0], 0, 0, 0, aux=1 << 63))


def test_unknown_type_rejected_both_ways():
    with pytest.raises(WireError):
        encode_frame(Frame(99, 0, 0, 0))
    good = bytearray(encode_frame(Frame(FRAME_TYPES[0], 0, 0, 0)))
    good[3] = 99  # type byte; CRC now wrong too, but type is checked first
    with pytest.raises(WireError):
        decode_frame(bytes(good))
