"""End-to-end distributed MVEE tests: completion, adoption, determinism,
and both divergence-detection lanes (async digest + lockstep)."""

from __future__ import annotations

import pytest

from repro.core import Level, ReMonConfig
from repro.dist import DistConfig, DistMvee, run_distributed
from repro.guest.program import Program
from repro.kernel import constants as C

MAX_STEPS = 80_000_000


def dist_config(**kwargs):
    return ReMonConfig(
        replicas=kwargs.pop("replicas", 3),
        level=kwargs.pop("level", Level.NONSOCKET_RW),
        dist=DistConfig(**kwargs.pop("dist_kwargs", {})),
        **kwargs,
    )


def mixed_program(exit_code=5):
    """Local file I/O + replicated clock reads + monitored open."""

    def main(ctx):
        libc = ctx.libc
        for _ in range(10):
            _pid = yield ctx.sys.getpid()
            _now = yield from libc.clock_gettime()
        fd = yield from libc.open("/data/input.txt", C.O_RDONLY)
        assert fd >= 0, fd
        ret, data = yield from libc.read(fd, 64)
        assert data == b"same bytes on every node"
        yield from libc.close(fd)
        out = yield from libc.open("/tmp/out.txt", C.O_WRONLY | C.O_CREAT)
        ret = yield from libc.write(out, b"distributed")
        assert ret == len(b"distributed")
        yield from libc.close(out)
        return exit_code

    return Program(
        "mixed", main, files={"/data/input.txt": b"same bytes on every node"}
    )


class TestCompletion:
    def test_three_nodes_complete_identically(self):
        result = run_distributed(mixed_program(), dist_config(),
                                 max_steps=MAX_STEPS)
        assert not result.diverged, result.divergence
        assert result.exit_codes == [5, 5, 5]
        assert result.shutdown_reason == "all replicas exited"
        assert result.stats["dist_nodes"] == 3
        # Every lane saw traffic: local file I/O, replicated clock
        # reads, and monitored (rendezvous) calls.
        assert result.stats["dist_local_calls"] > 0
        assert result.stats["dist_replicated_calls"] > 0
        assert result.stats["dist_rendezvous_calls"] > 0
        assert result.stats["dist_async_mismatches"] == 0

    def test_followers_adopt_leader_results(self):
        result = run_distributed(mixed_program(), dist_config(),
                                 max_steps=MAX_STEPS)
        # Two followers adopt each of the leader's replicated results.
        assert result.stats["dist_adopted_results"] == (
            2 * result.stats["dist_replicated_calls"]
        )

    def test_each_node_wrote_its_own_filesystem(self):
        mvee = DistMvee(mixed_program(), dist_config())
        result = mvee.run(max_steps=MAX_STEPS)
        assert not result.diverged
        for node in mvee.nodes:
            vfs_node, err = node.kernel.fs.resolve("/tmp/out.txt")
            assert err == 0
            assert bytes(vfs_node.data) == b"distributed"

    def test_solo_node_runs_without_monitor_traffic(self):
        result = run_distributed(
            mixed_program(), dist_config(replicas=1), max_steps=MAX_STEPS
        )
        assert not result.diverged
        assert result.exit_codes == [5]
        assert result.stats["dist_messages"] == 0

    def test_two_node_cluster(self):
        result = run_distributed(
            mixed_program(), dist_config(replicas=2), max_steps=MAX_STEPS
        )
        assert not result.diverged
        assert result.exit_codes == [5, 5]

    def test_wall_time_exceeds_single_machine_compute(self):
        result = run_distributed(mixed_program(), dist_config(),
                                 max_steps=MAX_STEPS)
        # Rendezvous rounds pay cross-node round trips.
        assert result.wall_time_ns > 2 * 100_000


class TestDeterminism:
    def test_identical_runs_are_bit_identical(self):
        a = run_distributed(mixed_program(), dist_config(
            dist_kwargs={"link_jitter_ns": 20_000}), max_steps=MAX_STEPS)
        b = run_distributed(mixed_program(), dist_config(
            dist_kwargs={"link_jitter_ns": 20_000}), max_steps=MAX_STEPS)
        assert a.wall_time_ns == b.wall_time_ns
        assert a.stats == b.stats
        assert a.exit_codes == b.exit_codes

    def test_latency_slows_the_cluster(self):
        fast = run_distributed(mixed_program(), dist_config(
            dist_kwargs={"link_latency_ns": 20_000}), max_steps=MAX_STEPS)
        slow = run_distributed(mixed_program(), dist_config(
            dist_kwargs={"link_latency_ns": 2_000_000}), max_steps=MAX_STEPS)
        assert slow.wall_time_ns > fast.wall_time_ns


class TestDivergenceDetection:
    def test_async_digest_lane_catches_local_divergence(self):
        """A compromised follower writes different bytes to a local file:
        caught lazily by the digest cross-check, not a rendezvous."""

        def main(ctx):
            libc = ctx.libc
            evil = ctx.process.name.endswith(".n1")
            out = yield from libc.open("/tmp/log.txt", C.O_WRONLY | C.O_CREAT)
            yield from libc.write(out, b"EVIL BYTES" if evil else b"good data!")
            yield from libc.close(out)
            for _ in range(40):
                yield ctx.sys.getpid()
            return 0

        result = run_distributed(Program("async-div", main), dist_config(),
                                 max_steps=MAX_STEPS)
        assert result.diverged
        assert result.divergence.detected_by == "dist-async"
        assert result.stats["dist_async_mismatches"] >= 1

    def test_lockstep_lane_catches_monitored_divergence(self):
        """Divergent *monitored* arguments stall the call itself: the
        rendezvous digest vote fails before anyone executes."""

        def main(ctx):
            libc = ctx.libc
            evil = ctx.process.name.endswith(".n2")
            path = "/tmp/exfil" if evil else "/tmp/legit"
            fd = yield from libc.open(path, C.O_WRONLY | C.O_CREAT)
            yield from libc.close(fd)
            return 0

        result = run_distributed(
            Program("lockstep-div", main),
            dist_config(level=Level.BASE),
            max_steps=MAX_STEPS,
        )
        assert result.diverged
        assert result.divergence.detected_by == "dist-lockstep"
        # The diverging call was never released on any node.
        assert "divergence" in result.shutdown_reason

    def test_clean_program_raises_no_false_positives_at_every_level(self):
        for level in (Level.NO_IPMON, Level.BASE, Level.NONSOCKET_RW,
                      Level.SOCKET_RW):
            result = run_distributed(mixed_program(), dist_config(level=level),
                                     max_steps=MAX_STEPS)
            assert not result.diverged, (level, result.divergence)


#: The off-by-default fast-path knobs, enabled together.
FAST_PATH = {"shard_rendezvous": True, "compress": "dict"}


class TestFastPath:
    def test_clean_program_completes_with_fast_path(self):
        result = run_distributed(
            mixed_program(), dist_config(dist_kwargs=dict(FAST_PATH)),
            max_steps=MAX_STEPS,
        )
        assert not result.diverged, result.divergence
        assert result.exit_codes == [5, 5, 5]
        assert result.stats["dist_wire_errors"] == 0
        # The codec actually touched mirror traffic, and rounds were
        # owned by more than one shard.
        assert result.stats["dist_payload_raw_bytes"] > 0
        assert result.stats["dist_shards"] > 1

    def test_fast_path_matches_baseline_semantics(self):
        base = run_distributed(mixed_program(), dist_config(),
                               max_steps=MAX_STEPS)
        fast = run_distributed(
            mixed_program(), dist_config(dist_kwargs=dict(FAST_PATH)),
            max_steps=MAX_STEPS,
        )
        # Same outcome and identical lane traffic — the fast path only
        # changes who owns each round and how bytes travel.
        assert fast.exit_codes == base.exit_codes
        for key in ("dist_local_calls", "dist_replicated_calls",
                    "dist_rendezvous_calls", "dist_rendezvous_completed",
                    "dist_async_mismatches"):
            assert fast.stats[key] == base.stats[key], key
        assert fast.stats["dist_wire_bytes"] <= base.stats["dist_wire_bytes"]

    def test_fast_path_is_deterministic(self):
        kwargs = dict(FAST_PATH, link_jitter_ns=20_000)
        a = run_distributed(mixed_program(),
                            dist_config(dist_kwargs=dict(kwargs)),
                            max_steps=MAX_STEPS)
        b = run_distributed(mixed_program(),
                            dist_config(dist_kwargs=dict(kwargs)),
                            max_steps=MAX_STEPS)
        assert a.wall_time_ns == b.wall_time_ns
        assert a.stats == b.stats
        assert a.exit_codes == b.exit_codes

    def test_shard_cap_limits_owner_set(self):
        result = run_distributed(
            mixed_program(),
            dist_config(dist_kwargs={"shard_rendezvous": True,
                                     "rendezvous_shards": 2}),
            max_steps=MAX_STEPS,
        )
        assert not result.diverged, result.divergence
        assert 1 < result.stats["dist_shards"] <= 2

    def test_async_lane_still_catches_divergence(self):
        def main(ctx):
            libc = ctx.libc
            evil = ctx.process.name.endswith(".n1")
            out = yield from libc.open("/tmp/log.txt", C.O_WRONLY | C.O_CREAT)
            yield from libc.write(out, b"EVIL BYTES" if evil else b"good data!")
            yield from libc.close(out)
            for _ in range(40):
                yield ctx.sys.getpid()
            return 0

        result = run_distributed(
            Program("async-div-fast", main),
            dist_config(dist_kwargs=dict(FAST_PATH)),
            max_steps=MAX_STEPS,
        )
        assert result.diverged
        assert result.divergence.detected_by == "dist-async"

    def test_lockstep_lane_still_catches_divergence(self):
        def main(ctx):
            libc = ctx.libc
            evil = ctx.process.name.endswith(".n2")
            path = "/tmp/exfil" if evil else "/tmp/legit"
            fd = yield from libc.open(path, C.O_WRONLY | C.O_CREAT)
            yield from libc.close(fd)
            return 0

        result = run_distributed(
            Program("lockstep-div-fast", main),
            dist_config(level=Level.BASE, dist_kwargs=dict(FAST_PATH)),
            max_steps=MAX_STEPS,
        )
        assert result.diverged
        assert result.divergence.detected_by == "dist-lockstep"
        assert "divergence" in result.shutdown_reason


class TestConfig:
    def test_bad_dist_config_rejected(self):
        from repro.errors import MonitorError

        with pytest.raises(MonitorError):
            DistMvee(mixed_program(), ReMonConfig(replicas=3, dist="nope"))

    def test_relaxation_reduces_rendezvous_rounds(self):
        strict = run_distributed(mixed_program(),
                                 dist_config(level=Level.NO_IPMON),
                                 max_steps=MAX_STEPS)
        relaxed = run_distributed(mixed_program(),
                                  dist_config(level=Level.NONSOCKET_RW),
                                  max_steps=MAX_STEPS)
        assert (strict.stats["dist_rendezvous_calls"]
                > relaxed.stats["dist_rendezvous_calls"])
        assert strict.wall_time_ns > relaxed.wall_time_ns
