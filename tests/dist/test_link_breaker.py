"""Per-link circuit breakers and soft link degradation (WAN PR).

Three load-bearing guarantees:

* **The breaker is a clean state machine** — closed opens on either
  consecutive retransmit failures or sustained RTT drift; half-open
  closes on one acked probe and re-opens (with doubled, capped
  cooldown) on one failed probe. Acks while fully open do *not* close
  it: only a probe that survives the link proves the link.
* **An open breaker degrades, it does not kill** — when the breaker on
  a leader link opens, the far node drops to leader-replicated-only
  membership (``link_degraded``), keeps its guest running, and rejoins
  once a half-open probe closes the breaker. The run finishes with
  every exit code 0 and no divergence.
* **Determinism** — the whole episode (degrade, retransmit storm,
  breaker trip, probe, restore) is a pure function of the seed and the
  fault plan: two runs produce identical stats.
"""

from __future__ import annotations

import pytest

from repro.core import DegradationPolicy, Level, ReMonConfig
from repro.dist import DistConfig, DistMvee
from repro.dist.reliable import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
)
from repro.errors import FaultConfigError
from repro.faults import FaultInjector, FaultPlan, LinkDegradeFault
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

MAX_STEPS = 400_000_000


# ---------------------------------------------------------------------------
# Breaker state machine
# ---------------------------------------------------------------------------
class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        assert not breaker.record_failure(now=10)
        assert not breaker.record_failure(now=20)
        assert breaker.record_failure(now=30)
        assert breaker.state == BREAKER_OPEN
        assert breaker.opened_at == 30 and breaker.opens == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure(now=10)
        breaker.record_failure(now=20)
        breaker.record_success()  # streak broken: back to zero
        breaker.record_failure(now=30)
        breaker.record_failure(now=40)
        assert breaker.state == BREAKER_CLOSED

    def test_rtt_drift_opens_after_slow_threshold(self):
        breaker = CircuitBreaker(rtt_factor=4.0, slow_threshold=3)
        min_rtt = 100
        assert not breaker.record_rtt(500, min_rtt, now=10)
        assert not breaker.record_rtt(500, min_rtt, now=20)
        assert breaker.record_rtt(500, min_rtt, now=30)
        assert breaker.state == BREAKER_OPEN

    def test_one_fast_sample_resets_the_slow_streak(self):
        breaker = CircuitBreaker(rtt_factor=4.0, slow_threshold=2)
        breaker.record_rtt(500, 100, now=10)
        breaker.record_rtt(120, 100, now=20)  # healthy again
        breaker.record_rtt(500, 100, now=30)
        assert breaker.state == BREAKER_CLOSED

    def test_rtt_ignored_without_a_min_rtt_baseline(self):
        breaker = CircuitBreaker(slow_threshold=1)
        assert not breaker.record_rtt(10**9, 0, now=10)
        assert breaker.state == BREAKER_CLOSED

    def test_probe_waits_out_the_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ns=1000)
        breaker.record_failure(now=500)
        assert not breaker.probe_due(now=1499)
        assert breaker.probe_due(now=1500)
        breaker.begin_probe()
        assert breaker.state == BREAKER_HALF_OPEN and breaker.probes == 1

    def test_half_open_probe_ack_closes_and_resets_cooldown(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ns=1000,
                                 cooldown_cap_ns=4000)
        breaker.record_failure(now=0)
        breaker.begin_probe()
        breaker.record_failure(now=2000)  # probe died: cooldown doubles
        assert breaker.state == BREAKER_OPEN
        assert breaker.current_cooldown_ns == 2000
        breaker.begin_probe()
        assert breaker.record_success()
        assert breaker.state == BREAKER_CLOSED and breaker.closes == 1
        assert breaker.current_cooldown_ns == 1000  # reset on close

    def test_half_open_failure_cooldown_is_capped(self):
        breaker = CircuitBreaker(failure_threshold=1, cooldown_ns=1000,
                                 cooldown_cap_ns=3000)
        breaker.record_failure(now=0)
        for now in (1, 2, 3, 4):
            breaker.begin_probe()
            breaker.record_failure(now=now)
        assert breaker.current_cooldown_ns == 3000

    def test_ack_while_fully_open_does_not_close(self):
        # A straggler ack from before the storm proves nothing about the
        # link now; only a half-open probe may close the breaker.
        breaker = CircuitBreaker(failure_threshold=1)
        breaker.record_failure(now=0)
        assert not breaker.record_success()
        assert breaker.state == BREAKER_OPEN


# ---------------------------------------------------------------------------
# Fault validation
# ---------------------------------------------------------------------------
class TestLinkDegradeFaultValidation:
    def test_rejects_nonpositive_duration(self):
        with pytest.raises(FaultConfigError):
            LinkDegradeFault(at_ns=0, src=0, dst=1, duration_ns=0)

    def test_rejects_self_link(self):
        with pytest.raises(FaultConfigError):
            LinkDegradeFault(at_ns=0, src=1, dst=1, duration_ns=100)

    def test_rejects_out_of_range_probability(self):
        with pytest.raises(FaultConfigError):
            LinkDegradeFault(at_ns=0, src=0, dst=1, duration_ns=100,
                             loss_prob=1.5)


# ---------------------------------------------------------------------------
# End to end: blackholed link -> breaker open -> degrade -> probe -> rejoin
# ---------------------------------------------------------------------------
def _wan_workload():
    rate = 900_000.0
    return SyntheticWorkload(
        name="wan-breaker",
        native_ms=2.0,
        mix=CategoryMix(
            {"base": rate * 0.5, "file_ro": rate * 0.3, "sock_rw": rate * 0.2}
        ),
        threads=2,
    )


def _run_wan(plan=None):
    config = ReMonConfig(
        replicas=3, level=Level.SOCKET_RW,
        degradation=DegradationPolicy(min_quorum=2),
        dist=DistConfig(link_latency_ns=200_000),
    )
    mvee = DistMvee(build_program(_wan_workload()), config)
    if plan is not None:
        mvee.attach_faults(FaultInjector(plan))
    result = mvee.run(max_steps=MAX_STEPS)
    return mvee, result


def _blackhole_plan():
    # Blackhole the leader->follower-2 link for 20ms. With the retransmit
    # timer at 800us doubling, 8 consecutive failures accumulate within a
    # few ms; the 50ms cooldown lands well after the restore, so the
    # half-open probe finds a healthy link and re-closes the breaker.
    return FaultPlan(
        [
            LinkDegradeFault(at_ns=2_000_000, src=0, dst=2,
                             duration_ns=20_000_000, loss_prob=1.0),
        ]
    )


class TestLinkBreakerEndToEnd:
    def test_blackholed_link_degrades_then_restores(self):
        mvee, result = _run_wan(_blackhole_plan())
        assert not result.diverged, result.divergence
        assert result.exit_codes == [0, 0, 0]

        stats = result.stats
        assert stats["dist_retransmits"] > 0
        assert stats["dist_breaker_opens"] >= 1
        assert stats["dist_breaker_closes"] >= 1
        assert stats["dist_probes_sent"] >= 1
        assert stats["dist_link_degrades"] >= 1
        assert stats["dist_link_restores"] >= 1
        assert stats["net_segments_lost"] > 0

        # The degraded follower rejoined: flag cleared, nobody quarantined.
        assert all(not node.link_degraded for node in mvee.nodes)
        assert mvee.nodes[0].kernel.fault_injector.stats["link_degrades"] == 1

        # The episode is audit-visible as a benign "link" fault event,
        # not a security divergence.
        kinds = [report.kind for report in result.fault_events]
        assert "link" in kinds
        link_report = next(r for r in result.fault_events if r.kind == "link")
        assert link_report.detected_by == "dist-breaker"
        assert link_report.replica == 2  # dst side of the leader link

    def test_degrade_episode_is_deterministic(self):
        _, first = _run_wan(_blackhole_plan())
        _, second = _run_wan(_blackhole_plan())
        assert first.stats == second.stats
        assert first.wall_time_ns == second.wall_time_ns
        assert first.exit_codes == second.exit_codes

    def test_clean_run_has_no_breaker_or_reliability_stats(self):
        # No faults, no lossy links: the reliable layer stays off and no
        # wan stat key may leak into the happy path.
        _, result = _run_wan()
        assert not result.diverged
        for key in result.stats:
            assert not key.startswith(("dist_breaker", "dist_retransmit",
                                       "dist_link_", "net_segments")), key
