"""Property tests for HRW shard ownership (:mod:`repro.dist.shard`).

The handoff protocol's blast radius bound rests entirely on two
rendezvous-hashing properties:

* **determinism** — every node, given the same live owner set, computes
  the identical assignment for every round key (there is no coordinator
  to ask, so agreement must be structural);
* **minimal disruption** — removing owners from the set remaps *only*
  rounds those owners held; every other round keeps its owner, so a
  crash never forces surviving shards to exchange unrelated state.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.shard import round_key, shard_owner
from repro.errors import MonitorError

vtids = st.integers(0, 0xFFFFFFFF)
seqs = st.integers(0, (1 << 64) - 1)
owner_sets = st.lists(
    st.integers(0, 64), min_size=1, max_size=12, unique=True
)


@given(vtids, seqs, owner_sets)
@settings(max_examples=300)
def test_assignment_is_deterministic_and_order_blind(vtid, seq, owners):
    """Every node agrees: the owner depends only on the key and the
    *set* of owners, never on the order a node learned them in."""
    chosen = shard_owner(vtid, seq, tuple(owners))
    assert chosen in owners
    assert chosen == shard_owner(vtid, seq, tuple(owners))
    assert chosen == shard_owner(vtid, seq, tuple(sorted(owners)))
    assert chosen == shard_owner(vtid, seq, tuple(reversed(owners)))


@given(
    st.lists(st.tuples(vtids, seqs), min_size=1, max_size=80),
    owner_sets,
    st.data(),
)
@settings(max_examples=200)
def test_shrinking_remaps_only_removed_owners_rounds(rounds, owners, data):
    """Kill any subset of owners (leaving at least one): rounds hosted
    by survivors keep their owner; only the dead owners' rounds move,
    and they land on survivors."""
    owners = tuple(owners)
    dead = data.draw(
        st.lists(st.sampled_from(owners), max_size=len(owners) - 1,
                 unique=True),
        label="dead",
    )
    survivors = tuple(o for o in owners if o not in dead)
    before = {key: shard_owner(key[0], key[1], owners) for key in rounds}
    after = {key: shard_owner(key[0], key[1], survivors) for key in rounds}
    for key in rounds:
        assert after[key] in survivors
        if before[key] not in dead:
            assert after[key] == before[key], key


@given(vtids, seqs, owner_sets, st.integers(65, 128))
@settings(max_examples=200)
def test_growing_steals_only_for_the_new_owner(vtid, seq, owners, new):
    """The dual bound: adding an owner either leaves a round alone or
    hands it to the newcomer — it never shuffles two old owners."""
    owners = tuple(owners)
    before = shard_owner(vtid, seq, owners)
    after = shard_owner(vtid, seq, owners + (new,))
    assert after == before or after == new


@given(vtids, seqs)
@settings(max_examples=200)
def test_round_key_is_stable_and_64_bit(vtid, seq):
    key = round_key(vtid, seq)
    assert key == round_key(vtid, seq)
    assert 0 <= key < (1 << 64)


def test_empty_owner_set_is_rejected():
    with pytest.raises(MonitorError):
        shard_owner(1, 2, ())


def test_spread_is_roughly_even_across_four_owners():
    """Sanity anchor for the property suite: 4 owners x 4000 keys, no
    owner hoards more than half nor starves below 10%."""
    owners = (0, 1, 2, 3)
    counts = {owner: 0 for owner in owners}
    for vtid in range(8):
        for seq in range(500):
            counts[shard_owner(vtid, seq, owners)] += 1
    total = sum(counts.values())
    for owner, count in counts.items():
        assert 0.10 * total < count < 0.50 * total, counts
