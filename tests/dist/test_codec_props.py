"""Property-based tests for the RB mirror payload codec and shard
routing (repro.dist.codec, repro.dist.cluster.shard_owner).

The invariants the fast path lives or dies by:

* encode -> decode is the identity for every payload, with or without
  a dictionary, across whole FIFO sequences (the rings stay in sync);
* the codec is self-describing and honest — incompressible data ships
  raw, repeats become tiny dictionary references;
* every malformed coded payload is *rejected* (WireError), never
  silently expanded into wrong bytes;
* shard routing is a pure, stable function that every node computes
  identically, and it actually spreads load.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.cluster import shard_owner
from repro.dist.codec import (
    DICT_SLOTS,
    TAG_DICT,
    TAG_RAW,
    TAG_RLE,
    PayloadDict,
    decode_payload,
    encode_payload,
    rle_decode,
    rle_encode,
)
from repro.errors import MonitorError, WireError

payloads = st.one_of(
    st.binary(max_size=400),
    # Run-heavy payloads: repeated chunks the RLE path actually bites on.
    st.lists(
        st.tuples(st.binary(min_size=1, max_size=4), st.integers(1, 200)),
        max_size=8,
    ).map(lambda parts: b"".join(chunk * n for chunk, n in parts)),
)


@given(payloads)
def test_rle_round_trip_identity(payload):
    assert rle_decode(rle_encode(payload)) == payload


@given(payloads)
def test_dictless_round_trip_identity(payload):
    coded = encode_payload(payload)
    assert coded[0] in (TAG_RAW, TAG_RLE)
    assert decode_payload(coded) == payload


@given(st.lists(payloads, max_size=40))
def test_paired_dictionaries_round_trip_fifo_sequence(sequence):
    # One sender ring, one receiver ring, payloads processed in FIFO
    # order — exactly the transport's per-directed-pair discipline.
    sender, receiver = PayloadDict(), PayloadDict()
    for payload in sequence:
        assert decode_payload(encode_payload(payload, sender), receiver) == payload


@given(st.binary(min_size=1, max_size=200), st.integers(2, 5))
def test_repeats_become_dictionary_references(payload, times):
    sender, receiver = PayloadDict(), PayloadDict()
    codings = [encode_payload(payload, sender) for _ in range(times)]
    # First sighting is never a reference; every repeat is a 6-byte ref.
    assert codings[0][0] != TAG_DICT
    for coded in codings[1:]:
        assert coded[0] == TAG_DICT
        assert len(coded) == 6
    for coded in codings:
        assert decode_payload(coded, receiver) == payload


def test_run_heavy_payload_takes_rle_tag():
    coded = encode_payload(b"z" * 512)
    assert coded[0] == TAG_RLE
    assert len(coded) < 16


def test_incompressible_payload_ships_raw():
    payload = bytes(range(256))
    coded = encode_payload(payload)
    assert coded[0] == TAG_RAW
    assert len(coded) == len(payload) + 1


@given(payloads)
def test_coding_never_inflates_beyond_tag_byte(payload):
    assert len(encode_payload(payload)) <= len(payload) + 1


def test_ring_eviction_forgets_old_payloads():
    sender = PayloadDict()
    first = b"evict-me" * 4
    sender.push(first)
    for i in range(DICT_SLOTS):
        sender.push(b"filler-%03d" % i)
    assert sender.find(first) is None


@given(st.binary(max_size=64))
def test_unknown_tag_rejected(body):
    with pytest.raises(WireError):
        decode_payload(bytes([TAG_DICT + 1]) + body)


def test_empty_coded_payload_rejected():
    with pytest.raises(WireError):
        decode_payload(b"")


@given(st.binary(min_size=1, max_size=4))
def test_truncated_dict_reference_rejected(short_body):
    with pytest.raises(WireError):
        decode_payload(bytes([TAG_DICT]) + short_body, PayloadDict())


def test_dict_reference_without_dictionary_rejected():
    sender = PayloadDict()
    payload = b"hello world"
    encode_payload(payload, sender)
    ref = encode_payload(payload, sender)
    assert ref[0] == TAG_DICT
    with pytest.raises(WireError):
        decode_payload(ref)


def test_desynchronized_dictionary_rejected_by_crc():
    # The receiver's ring holds a different payload in the referenced
    # slot: the CRC must catch it rather than expand wrong bytes.
    sender, receiver = PayloadDict(), PayloadDict()
    payload = b"the real payload"
    encode_payload(payload, sender)
    ref = encode_payload(payload, sender)
    assert ref[0] == TAG_DICT
    receiver.push(b"an imposter body")
    with pytest.raises(WireError):
        decode_payload(ref, receiver)


@given(st.binary(min_size=2, max_size=60), st.data())
def test_truncated_rle_body_rejected_or_unequal(payload, data):
    # Truncating a coded RLE body must never decode back to the
    # original payload: WireError or a strictly different result.
    body = rle_encode(payload)
    cut = data.draw(st.integers(0, len(body) - 1))
    try:
        assert rle_decode(body[:cut]) != payload
    except WireError:
        pass


vtids = st.integers(0, 0xFFFFFFFF)
seqs = st.integers(0, (1 << 64) - 1)
owner_sets = st.lists(
    st.integers(0, 31), min_size=1, max_size=8, unique=True
).map(tuple)


@given(vtids, seqs, owner_sets)
def test_shard_owner_deterministic_and_member(vtid, seq, owners):
    owner = shard_owner(vtid, seq, owners)
    assert owner in owners
    # Pure function: every node computes the same owner.
    assert shard_owner(vtid, seq, owners) == owner


@given(vtids, seqs)
def test_shard_owner_single_owner_trivial(vtid, seq):
    assert shard_owner(vtid, seq, (7,)) == 7


def test_shard_owner_empty_owner_set_rejected():
    with pytest.raises(MonitorError):
        shard_owner(1, 1, ())


@settings(max_examples=30)
@given(vtids, st.integers(2, 4))
def test_shard_owner_spreads_one_hot_thread(vtid, nowners):
    # Consecutive sequence numbers of one thread must not pin a single
    # owner: over 64 rounds every shard sees some work.
    owners = tuple(range(nowners))
    seen = {shard_owner(vtid, seq, owners) for seq in range(64)}
    assert seen == set(owners)
