"""Replication-policy classification tests."""

from __future__ import annotations

from repro.dist.selective import (
    LOCAL,
    REPLICATED,
    full_replication,
    selective_replication,
    syscall_class,
)


def test_selective_keeps_reproducible_calls_local():
    policy = selective_replication()
    for name in ("read", "pread64", "fstat", "getpid", "lseek", "uname",
                 "open", "close", "brk"):
        assert policy.classify(name) == LOCAL, name
    # fd-polymorphic calls stay local on regular files...
    assert policy.classify("read", fd_kind="reg") == LOCAL
    assert policy.classify("write", fd_kind="reg") == LOCAL


def test_selective_replicates_external_io_and_time():
    policy = selective_replication()
    for name in ("recvfrom", "recvmsg", "sendto", "sendmsg", "sendfile"):
        assert policy.classify(name) == REPLICATED, name
    # ... and cross the network on sockets.
    assert policy.classify("read", fd_kind="sock") == REPLICATED
    assert policy.classify("write", fd_kind="sock") == REPLICATED
    for name in ("clock_gettime", "gettimeofday", "time"):
        assert policy.classify(name) == REPLICATED, name


def test_time_replication_can_be_disabled():
    from repro.dist.selective import SelectiveReplication

    policy = SelectiveReplication("no-time", replicate_time=False)
    assert policy.classify("clock_gettime") == LOCAL
    assert policy.classify("recvfrom") == REPLICATED


def test_full_replicates_everything_reproducible_too():
    policy = full_replication()
    for name in ("read", "fstat", "getpid", "recvfrom", "clock_gettime"):
        assert policy.classify(name) == REPLICATED, name


def test_process_local_calls_never_replicated():
    for policy in (selective_replication(), full_replication()):
        for name in ("futex", "nanosleep", "epoll_wait", "sched_yield",
                     "madvise"):
            assert policy.classify(name) == LOCAL, (policy.name, name)


def test_syscall_class_buckets():
    assert syscall_class("clock_gettime") == "time"
    assert syscall_class("recvfrom") == "sock"
    assert syscall_class("read", fd_kind="sock") == "sock"
    assert syscall_class("read", fd_kind="reg") == "file"
    assert syscall_class("read") == "file"
    assert syscall_class("fstat") == "file"
    assert syscall_class("getpid") == "proc"
    assert syscall_class("futex") == "proc"
    assert syscall_class("mmap") == "mgmt"
