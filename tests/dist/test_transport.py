"""Transport batching, flushing, delivery, and payload-codec tests."""

from __future__ import annotations

import pytest

from repro.costs.model import CostModel
from repro.dist.transport import Transport
from repro.dist.wire import (
    BATCH_HEADER_SIZE,
    Frame,
    T_CALL_DIGEST,
    T_CONTROL,
    T_SYSCALL_RESULT,
)
from repro.errors import WireError
from repro.kernel.sockets import Network
from repro.sim import Simulator

ADDRS = [("10.1.0.1", 0), ("10.1.1.1", 0), ("10.1.2.1", 0)]


def make_transport(sim, batch_bytes=4096, flush_interval_ns=50_000,
                   codec=None, **net_kwargs):
    net = Network(latency_ns=100_000, **net_kwargs)
    transport = Transport(sim, net, ADDRS, CostModel(),
                          batch_bytes=batch_bytes,
                          flush_interval_ns=flush_interval_ns,
                          codec=codec)
    inbox = []
    transport.dispatch = lambda dst, frame: inbox.append((dst, frame))
    return transport, inbox


def frame(seq=0, payload=b"", ftype=T_CALL_DIGEST):
    return Frame(ftype, 0, 1, seq, payload=payload)


def test_timer_flush_delivers_batched_frames():
    sim = Simulator()
    transport, inbox = make_transport(sim)
    for seq in range(3):
        transport.send(0, 1, frame(seq))
    assert inbox == []  # nothing crosses the wire synchronously
    sim.run()
    assert [f.seq for _, f in inbox] == [0, 1, 2]
    assert all(dst == 1 for dst, _ in inbox)
    # One coalesced message, three frames.
    assert transport.stats["messages_sent"] == 1
    assert transport.stats["frames_sent"] == 3
    assert transport.stats["flushes_timer"] == 1
    # Delivery paid the flush timer + per-message cost + link latency.
    assert sim.now > 150_000


def test_size_flush_triggers_before_timer():
    sim = Simulator()
    transport, inbox = make_transport(sim, batch_bytes=256)
    transport.send(0, 1, frame(0, payload=b"x" * 300))
    assert transport.stats["flushes_size"] == 1
    sim.run()
    assert len(inbox) == 1


def test_urgent_flush_is_immediate():
    sim = Simulator()
    transport, inbox = make_transport(sim)
    transport.send(0, 1, frame(7), urgent=True)
    assert transport.stats["flushes_urgent"] == 1
    sim.run()
    assert [f.seq for _, f in inbox] == [7]


def test_urgent_flush_carries_earlier_pending_frames():
    sim = Simulator()
    transport, inbox = make_transport(sim)
    transport.send(0, 1, frame(0))
    transport.send(0, 1, frame(1), urgent=True)
    sim.run()
    # FIFO: the earlier non-urgent frame rides the same transfer unit.
    assert [f.seq for _, f in inbox] == [0, 1]
    assert transport.stats["messages_sent"] == 1


def test_channels_are_per_directed_pair():
    sim = Simulator()
    transport, inbox = make_transport(sim)
    transport.send(0, 1, frame(1), urgent=True)
    transport.send(0, 2, frame(2), urgent=True)
    transport.send(1, 0, frame(3), urgent=True)
    sim.run()
    assert sorted((dst, f.seq) for dst, f in inbox) == [(0, 3), (1, 1), (2, 2)]
    assert transport.stats["messages_sent"] == 3


def test_self_send_rejected():
    sim = Simulator()
    transport, _ = make_transport(sim)
    with pytest.raises(WireError):
        transport.send(1, 1, frame())


def test_per_class_accounting():
    sim = Simulator()
    transport, _ = make_transport(sim)
    transport.send(0, 1, frame(0), cls="digest")
    transport.send(0, 1, frame(1, payload=b"abc"), cls="result_sock")
    transport.send(0, 1, frame(2, ftype=T_CONTROL), cls="control", urgent=True)
    assert transport.frames_by_class == {
        "digest": 1, "result_sock": 1, "control": 1,
    }
    assert transport.bytes_by_class["result_sock"] == frame(1, payload=b"abc").size()


def test_ordering_survives_jitter():
    sim = Simulator()
    transport, inbox = make_transport(sim, jitter_ns=80_000, jitter_seed=3)
    for seq in range(20):
        transport.send(0, 1, frame(seq), urgent=True)
    sim.run()
    assert [f.seq for _, f in inbox] == list(range(20))


def test_corrupt_batch_counted_and_dropped():
    sim = Simulator()
    transport, inbox = make_transport(sim)
    transport._deliver(1, b"\x00garbage that is not a batch")
    assert transport.stats["wire_errors"] == 1
    assert inbox == []


def test_flush_all_drains_pending():
    sim = Simulator()
    transport, inbox = make_transport(sim)
    transport.send(0, 1, frame(0))
    transport.send(0, 2, frame(1))
    transport.flush_all()
    sim.run()
    assert len(inbox) == 2


def test_codec_round_trips_result_payloads():
    sim = Simulator()
    transport, inbox = make_transport(sim, codec="dict")
    payload = b"response-bytes " * 20
    for seq in range(4):
        transport.send(0, 1, frame(seq, payload=payload,
                                    ftype=T_SYSCALL_RESULT), urgent=True)
    sim.run()
    # Delivered frames carry the original raw payload, coded flag clear.
    assert [f.payload for _, f in inbox] == [payload] * 4
    assert all(f.flags == 0 for _, f in inbox)
    assert transport.stats["wire_errors"] == 0
    # Repeats collapsed to dictionary references on the wire.
    assert transport.stats["codec_dict"] == 3
    assert (transport.stats["payload_coded_bytes"]
            < transport.stats["payload_raw_bytes"])


def test_codec_leaves_non_result_frames_alone():
    sim = Simulator()
    transport, inbox = make_transport(sim, codec="rle")
    payload = b"z" * 64  # highly compressible, but not a result frame
    transport.send(0, 1, frame(0, payload=payload), urgent=True)
    sim.run()
    assert transport.stats["payload_raw_bytes"] == 0
    assert transport.stats["frame_bytes"] == frame(0, payload=payload).size()
    assert [f.payload for _, f in inbox] == [payload]


def test_codec_ships_tiny_payloads_unwrapped():
    sim = Simulator()
    transport, _ = make_transport(sim, codec="dict")
    transport.send(0, 1, frame(0, payload=b"abc", ftype=T_SYSCALL_RESULT),
                   urgent=True)
    assert transport.stats["payload_raw_bytes"] == 0
    assert transport.stats["codec_dict"] == 0


def test_wire_byte_accounting_is_consistent():
    sim = Simulator()
    transport, _ = make_transport(sim, codec="dict")
    payload = b"the same answer every time!" * 4
    for seq in range(6):
        transport.send(0, 1, frame(seq, payload=payload,
                                    ftype=T_SYSCALL_RESULT))
    transport.send(0, 2, frame(9, ftype=T_CONTROL), urgent=True)
    transport.flush_all()
    sim.run()
    # After a full flush, frame bytes (counted once at send, post-codec)
    # plus one batch header per message equals the total wire bytes.
    stats = transport.stats
    assert stats["wire_bytes"] == (
        stats["messages_sent"] * BATCH_HEADER_SIZE + stats["frame_bytes"]
    )
