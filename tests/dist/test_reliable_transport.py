"""WAN-grade reliable transport: seq/ack windows, retransmission with
exponential backoff, and the zero-loss byte-identity gate.

Three load-bearing guarantees:

* **Exactly-once, in-order** — under any seeded combination of link
  loss, duplication, and reordering, every frame a channel sent is
  dispatched exactly once, in send order (the hypothesis property).
* **Backoff is the schedule it claims** — attempt k waits
  ``min(initial << k, cap)``; retransmission never gives up.
* **Loss-free runs are byte-identical** — with every fault knob at
  zero the transport keeps the legacy 8-byte batch header, the stats
  view, wall times, and wire traffic of the pre-reliability design
  (``golden_dist_stats.json``, captured before this layer existed).
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DegradationPolicy, Level, ReMonConfig
from repro.costs.model import CostModel
from repro.dist import DistConfig, DistMvee, full_replication
from repro.dist.reliable import (
    ReceiverWindow,
    RetransmitPolicy,
    SenderWindow,
)
from repro.dist.transport import Transport
from repro.dist.wire import (
    BATCH_HEADER_SIZE,
    RBATCH_HEADER_SIZE,
    Frame,
    T_CALL_DIGEST,
    WireError,
    batch_frame_count,
    encode_batch,
    encode_reliable_batch,
    parse_batch,
)
from repro.kernel.sockets import Network
from repro.sim import Simulator
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

ADDRS = [("10.1.0.1", 0), ("10.1.1.1", 0), ("10.1.2.1", 0)]

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_dist_stats.json")


def make_reliable(sim, *, policy=None, window=32, **net_kwargs):
    net = Network(latency_ns=100_000, **net_kwargs)
    transport = Transport(sim, net, ADDRS, CostModel())
    transport.enable_reliable(policy=policy, window=window)
    inbox = []
    transport.dispatch = lambda dst, frame: inbox.append((dst, frame))
    return transport, inbox


def frame(seq=0, payload=b""):
    return Frame(T_CALL_DIGEST, 0, 1, seq, payload=payload)


# ---------------------------------------------------------------------------
# Backoff schedule
# ---------------------------------------------------------------------------
class TestRetransmitPolicy:
    def test_schedule_doubles_then_caps(self):
        policy = RetransmitPolicy(initial_ns=800_000, cap_ns=12_800_000)
        assert [policy.timeout_for(k) for k in range(7)] == [
            800_000, 1_600_000, 3_200_000, 6_400_000,
            12_800_000, 12_800_000, 12_800_000,
        ]

    def test_huge_attempt_counts_stay_capped(self):
        policy = RetransmitPolicy(initial_ns=1_000, cap_ns=64_000)
        # Past the doubling range the schedule is flat at the cap and
        # never overflows (retransmission retries forever).
        assert policy.timeout_for(100) == 64_000
        assert policy.timeout_for(10_000) == 64_000

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetransmitPolicy(initial_ns=0)
        with pytest.raises(ValueError):
            RetransmitPolicy(initial_ns=1000, cap_ns=999)
        with pytest.raises(ValueError):
            RetransmitPolicy().timeout_for(-1)


# ---------------------------------------------------------------------------
# Window state machines
# ---------------------------------------------------------------------------
class TestSenderWindow:
    def test_sequences_start_at_one_and_acks_are_cumulative(self):
        window = SenderWindow(window=4)
        for expected in (1, 2, 3):
            assert window.register(b"x", 1, now=100) == expected
        acked, _ = window.ack(2, now=200)
        assert acked == [1, 2]
        assert window.in_flight == 1

    def test_karn_filter_drops_retransmitted_samples(self):
        window = SenderWindow()
        window.register(b"a", 1, now=0)
        window.register(b"b", 1, now=0)
        window.mark_retransmit(1)
        _, samples = window.ack(2, now=500)
        # Only the never-retransmitted seq 2 yields an RTT sample.
        assert samples == [500]
        assert window.srtt_ns == 500 and window.min_rtt_ns == 500

    def test_window_full_blocks_and_deferred_queue_gates_sends(self):
        window = SenderWindow(window=2)
        window.register(b"a", 1, now=0)
        window.register(b"b", 1, now=0)
        assert not window.can_send()
        window.defer(["frames"], 10)
        window.ack(2, now=100)
        # Even with the window open, a backlog must drain first (FIFO).
        assert not window.can_send()
        assert window.pop_deferred() == (["frames"], 10)
        assert window.can_send()


class TestReceiverWindow:
    def test_in_order_release_and_gap_buffering(self):
        window = ReceiverWindow()
        assert window.accept(1, "a") == ["a"]
        assert window.accept(3, "c") == []  # gap: buffered
        assert window.cumulative_ack == 1
        assert window.accept(2, "b") == ["b", "c"]
        assert window.cumulative_ack == 3

    def test_duplicates_rejected_delivered_and_buffered(self):
        window = ReceiverWindow()
        window.accept(1, "a")
        window.accept(3, "c")
        assert window.accept(1, "dup") == []  # already delivered
        assert window.accept(3, "dup") == []  # still buffered
        assert window.dups == 2 and window.ooo == 1


# ---------------------------------------------------------------------------
# Wire format
# ---------------------------------------------------------------------------
class TestReliableBatchHeader:
    def test_roundtrip_carries_seq_and_ack(self):
        data = encode_reliable_batch([frame(7)], seq=42, ack=41)
        frames, seq, ack = parse_batch(data)
        assert (seq, ack) == (42, 41)
        assert [f.seq for f in frames] == [7]

    def test_legacy_batches_parse_with_no_seq(self):
        frames, seq, ack = parse_batch(encode_batch([frame(1)]))
        assert seq is None and ack is None and len(frames) == 1

    def test_header_sizes(self):
        assert len(encode_reliable_batch([], 0, 0)) == RBATCH_HEADER_SIZE
        assert len(encode_batch([])) == BATCH_HEADER_SIZE

    def test_frame_count_survives_body_damage(self):
        data = bytearray(encode_reliable_batch([frame(1), frame(2)], 5, 0))
        data[-1] ^= 0xFF  # corrupt a payload byte past the header
        with pytest.raises(WireError):
            parse_batch(bytes(data))
        assert batch_frame_count(bytes(data)) == 2
        assert batch_frame_count(b"\x00\x00\x00\x00\x00\x00\x00\x00") is None


# ---------------------------------------------------------------------------
# Reliable transport behaviour
# ---------------------------------------------------------------------------
class TestReliableTransport:
    def test_enable_after_traffic_is_rejected(self):
        sim = Simulator()
        net = Network(latency_ns=100_000)
        transport = Transport(sim, net, ADDRS, CostModel())
        transport.send(0, 1, frame(0), urgent=True)
        with pytest.raises(WireError):
            transport.enable_reliable()

    def test_loss_is_recovered_by_retransmission(self):
        sim = Simulator()
        transport, inbox = make_reliable(
            sim, loss_prob=0.5, fault_seed=7,
        )
        for seq in range(40):
            transport.send(0, 1, frame(seq), urgent=True)
        sim.run()
        assert [f.seq for _, f in inbox] == list(range(40))
        assert transport.stats["retransmits"] > 0
        assert transport.stats["acks_sent"] > 0
        # Retransmitted bytes are billed on top of first transmissions.
        assert transport.stats["wire_bytes"] > transport.stats["frame_bytes"]

    def test_duplicate_batches_are_dropped_once(self):
        sim = Simulator()
        transport, inbox = make_reliable(sim, dup_prob=1.0, fault_seed=7)
        for seq in range(10):
            transport.send(0, 1, frame(seq), urgent=True)
        sim.run()
        assert [f.seq for _, f in inbox] == list(range(10))
        assert transport.stats["dup_batches_dropped"] >= 10

    def test_reordered_batches_dispatch_in_order(self):
        sim = Simulator()
        transport, inbox = make_reliable(sim, reorder_prob=0.4, fault_seed=3)
        for seq in range(30):
            transport.send(0, 1, frame(seq), urgent=True)
        sim.run()
        assert [f.seq for _, f in inbox] == list(range(30))

    def test_window_full_defers_and_drains_in_order(self):
        sim = Simulator()
        transport, inbox = make_reliable(sim, window=2)
        for seq in range(12):
            transport.send(0, 1, frame(seq), urgent=True)
        assert transport.stats["window_stalls"] > 0
        sim.run()
        assert [f.seq for _, f in inbox] == list(range(12))

    def test_damaged_batch_counts_dropped_frames_by_class(self):
        sim = Simulator()
        net = Network(latency_ns=100_000)
        transport = Transport(sim, net, ADDRS, CostModel())
        transport.dispatch = lambda dst, f: None
        data = bytearray(encode_batch([frame(1), frame(2), frame(3)]))
        data[-1] ^= 0xFF
        transport._deliver(1, bytes(data))
        assert transport.stats["wire_errors"] == 1
        assert transport.stats["frames_dropped"] == 3
        assert transport.frames_dropped_by_class == {"undecodable": 3}


# ---------------------------------------------------------------------------
# The property: exactly-once, in-order, both directions, any faults
# ---------------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=1, max_value=2**32),
    loss=st.floats(min_value=0.0, max_value=0.6),
    dup=st.floats(min_value=0.0, max_value=0.5),
    reorder=st.floats(min_value=0.0, max_value=0.5),
    count=st.integers(min_value=1, max_value=25),
)
def test_exactly_once_in_order_under_any_link_faults(
    seed, loss, dup, reorder, count
):
    sim = Simulator()
    transport, inbox = make_reliable(
        sim, loss_prob=loss, dup_prob=dup, reorder_prob=reorder,
        fault_seed=seed, jitter_ns=30_000, jitter_seed=seed,
    )
    for seq in range(count):
        transport.send(0, 1, frame(seq), urgent=True)
        transport.send(1, 0, frame(1000 + seq), urgent=True)
    sim.run()
    got_fwd = [f.seq for dst, f in inbox if dst == 1]
    got_rev = [f.seq for dst, f in inbox if dst == 0]
    assert got_fwd == list(range(count))
    assert got_rev == [1000 + s for s in range(count)]


# ---------------------------------------------------------------------------
# Zero-loss byte-identity against the pre-reliability golden snapshot
# ---------------------------------------------------------------------------
def _golden_workload():
    return SyntheticWorkload(
        name="wan-golden",
        native_ms=2.0,
        mix=CategoryMix(
            {
                "base": 65_000.0,
                "file_ro": 117_000.0,
                "sock_ro": 26_000.0,
                "sock_rw": 26_000.0,
                "mgmt": 26_000.0,
            }
        ),
        threads=2,
    )


def _golden_run(**dist_kwargs):
    config = ReMonConfig(
        replicas=3, level=Level.SOCKET_RW,
        degradation=DegradationPolicy(min_quorum=2),
        dist=DistConfig(link_latency_ns=200_000, **dist_kwargs),
    )
    mvee = DistMvee(build_program(_golden_workload()), config)
    result = mvee.run(max_steps=400_000_000)
    return {
        "wall_time_ns": result.wall_time_ns,
        "exit_codes": list(result.exit_codes),
        "stats": dict(sorted(result.stats.items())),
        "network_bytes_sent": mvee.network.bytes_sent,
        "network_segments_sent": mvee.network.segments_sent,
    }


class TestZeroLossByteIdentity:
    """With every fault knob at zero the reliable machinery must be
    unobservable: same wire traffic, same stats keys and values, same
    wall time as the snapshot captured before this layer existed."""

    @pytest.fixture(scope="class")
    def golden(self):
        with open(GOLDEN) as handle:
            return json.load(handle)

    @pytest.mark.parametrize(
        "variant,kwargs",
        [
            ("selective", {}),
            ("full", {"replication": full_replication()}),
            ("shard-dict", {"shard_rendezvous": True, "compress": "dict"}),
        ],
    )
    def test_run_matches_golden_snapshot(self, golden, variant, kwargs):
        snap = _golden_run(**kwargs)
        want = golden[variant]
        assert snap["exit_codes"] == want["exit_codes"]
        # Stats first (the most diagnostic diff on failure)...
        assert snap["stats"] == want["stats"]
        # ...then raw wire traffic and timing, bit for bit.
        assert snap["network_bytes_sent"] == want["network_bytes_sent"]
        assert snap["network_segments_sent"] == want["network_segments_sent"]
        assert snap["wall_time_ns"] == want["wall_time_ns"]
