"""Stats-equivalence gate for the PR-8 engine refactor.

``golden_engine_stats.json`` was captured by running two pinned-seed
sweeps — a 3-replica single-node ReMon run and a 4-node sharded
DistMvee run — on the **pre-refactor** engine (single heap, closure
wakeups, isinstance dispatch, per-consumer digest caches). The same
configurations must reproduce those results *bit-for-bit* on the
current engine: identical virtual wall time, exit codes, every stats
counter, and (for the dist run) every wire byte.

Host-side counters (``sim.steps``) are deliberately excluded: batch
event draining collapses N wakeup callbacks into one drain entry, which
is exactly the point and changes nothing simulated.
"""

from __future__ import annotations

import json
import os

from repro.core import DegradationPolicy, Level, ReMon, ReMonConfig
from repro.kernel import Kernel
from repro.dist import DistConfig, DistMvee
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

_GOLDEN = os.path.join(os.path.dirname(__file__), "golden_engine_stats.json")

MAX_STEPS = 400_000_000


def _golden():
    with open(_GOLDEN) as handle:
        return json.load(handle)


def _remon_snapshot():
    workload = SyntheticWorkload(
        name="engine-golden",
        native_ms=1.5,
        mix=CategoryMix(
            {
                "base": 90_000.0,
                "file_ro": 120_000.0,
                "sock_ro": 30_000.0,
                "sock_rw": 30_000.0,
                "mgmt": 15_000.0,
            }
        ),
        threads=3,
    )
    mvee = ReMon(
        Kernel(),
        build_program(workload),
        ReMonConfig(replicas=3, level=Level.SOCKET_RW),
    )
    result = mvee.run(max_steps=MAX_STEPS)
    assert not result.diverged, result.divergence
    return {
        "wall_time_ns": result.wall_time_ns,
        "exit_codes": list(result.exit_codes),
        "stats": {k: result.stats[k] for k in sorted(result.stats)},
    }


def _dist_snapshot():
    workload = SyntheticWorkload(
        name="engine-golden-dist",
        native_ms=1.0,
        mix=CategoryMix(
            {
                "base": 160_000.0,
                "file_ro": 120_000.0,
                "sock_ro": 20_000.0,
                "sock_rw": 20_000.0,
                "mgmt": 40_000.0,
            }
        ),
        threads=3,
    )
    config = ReMonConfig(
        replicas=4,
        level=Level.NO_IPMON,
        degradation=DegradationPolicy(min_quorum=2),
        dist=DistConfig(
            link_latency_ns=100_000,
            shard_rendezvous=True,
            rendezvous_shards=2,
        ),
    )
    mvee = DistMvee(build_program(workload), config)
    result = mvee.run(max_steps=MAX_STEPS)
    assert not result.diverged, result.divergence
    return {
        "wall_time_ns": result.wall_time_ns,
        "exit_codes": list(result.exit_codes),
        "stats": {k: result.stats[k] for k in sorted(result.stats)},
        "network_bytes_sent": mvee.network.bytes_sent,
        "network_segments_sent": mvee.network.segments_sent,
    }


class TestStatsEquivalence:
    def test_remon_pinned_seed_stats_bit_identical(self):
        golden = _golden()["remon"]
        snapshot = _remon_snapshot()
        assert snapshot == golden, _diff(snapshot, golden)

    def test_dist_pinned_seed_stats_bit_identical(self):
        golden = _golden()["dist"]
        snapshot = _dist_snapshot()
        assert snapshot == golden, _diff(snapshot, golden)


def _diff(snapshot, golden):
    lines = ["engine refactor changed simulated results:"]
    keys = sorted(set(snapshot) | set(golden))
    for key in keys:
        new, old = snapshot.get(key), golden.get(key)
        if new == old:
            continue
        if isinstance(new, dict) and isinstance(old, dict):
            for stat in sorted(set(new) | set(old)):
                if new.get(stat) != old.get(stat):
                    lines.append(
                        "  %s.%s: %r (golden %r)"
                        % (key, stat, new.get(stat), old.get(stat))
                    )
        else:
            lines.append("  %s: %r (golden %r)" % (key, new, old))
    return "\n".join(lines)
