"""Properties of the calendar event queue (PR-8 engine refactor).

The load-bearing guarantee: the bucketed calendar queue dequeues
callbacks in *exactly* the same ``(when, seq)`` order as the single
binary heap it replaced — including same-timestamp bursts, callbacks
scheduled from inside callbacks, ``until`` boundaries, and ``max_steps``
interruptions. A reference heap model (the old engine's data structure,
verbatim) computes the expected order for arbitrary schedules.
"""

from __future__ import annotations

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Event, Simulator, Sleep, WaitEvent


# ---------------------------------------------------------------------------
# Reference model: the old single-heap engine's dequeue order
# ---------------------------------------------------------------------------
class HeapModel:
    """The pre-calendar queue: one heap ordered by ``(when, seq)``."""

    def __init__(self):
        self.now = 0
        self._queue = []
        self._seq = 0

    def call_at(self, when, fn, *args):
        assert when >= self.now
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, fn, args))

    def call_soon(self, fn, *args):
        self.call_at(self.now, fn, *args)

    def run(self, until=None):
        while self._queue:
            when, _seq, fn, args = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
        # (mirrors the old loop verbatim)
            heapq.heappop(self._queue)
            if when > self.now:
                self.now = when
            fn(*args)
        return self.now


#: A schedule is a list of initial (delay, burst) pairs; each burst
#: schedules that many tagged callbacks at now+delay, and each callback
#: may itself schedule a follow-up at a derived delay — exercising
#: mid-drain appends to the currently-draining bucket.
schedules = st.lists(
    st.tuples(st.integers(min_value=0, max_value=50),
              st.integers(min_value=1, max_value=4),
              st.integers(min_value=0, max_value=3)),
    min_size=1, max_size=30,
)


def _drive(engine, schedule, log):
    tag = 0

    def emit(t, chain_delay):
        nonlocal tag
        log.append((engine.now, t))
        if chain_delay:
            mine = tag
            tag += 1
            engine.call_at(engine.now + chain_delay, emit, 10_000 + mine, 0)

    for delay, burst, chain in schedule:
        for b in range(burst):
            mine = tag
            tag += 1
            engine.call_at(engine.now + delay, emit, mine, chain)


class TestDequeueOrderMatchesHeap:
    @given(schedule=schedules)
    @settings(max_examples=200, deadline=None)
    def test_arbitrary_schedules_dequeue_in_heap_order(self, schedule):
        sim_log, ref_log = [], []
        sim = Simulator()
        _drive(sim, schedule, sim_log)
        sim.run()
        ref = HeapModel()
        _drive(ref, schedule, ref_log)
        ref.run()
        assert sim_log == ref_log
        assert sim.now == ref.now
        assert sim.pending == 0

    @given(schedule=schedules, until=st.integers(min_value=0, max_value=60))
    @settings(max_examples=200, deadline=None)
    def test_until_boundary_matches_heap(self, schedule, until):
        sim_log, ref_log = [], []
        sim = Simulator()
        _drive(sim, schedule, sim_log)
        sim.run(until=until)
        ref = HeapModel()
        _drive(ref, schedule, ref_log)
        ref.run(until=until)
        assert sim_log == ref_log
        assert sim.now == ref.now

    @given(schedule=schedules, budget=st.integers(min_value=1, max_value=20))
    @settings(max_examples=200, deadline=None)
    def test_max_steps_interrupt_preserves_prefix_and_resumability(
        self, schedule, budget
    ):
        """Tripping the step budget mid-bucket must execute exactly the
        first ``budget`` callbacks of the heap order, and a later run()
        must continue with the untouched tail."""
        sim_log, ref_log = [], []
        sim = Simulator()
        _drive(sim, schedule, sim_log)
        interrupted = False
        try:
            sim.run(max_steps=budget)
        except SimulationError:
            interrupted = True
        ref = HeapModel()
        _drive(ref, schedule, ref_log)
        ref.run()
        if interrupted:
            assert sim_log == ref_log[:budget]
            # The queue survives the interruption: draining the rest
            # yields the reference tail, in order.
            sim.run()
        assert sim_log == ref_log

    @given(
        delays=st.lists(st.integers(min_value=0, max_value=30),
                        min_size=1, max_size=20)
    )
    @settings(max_examples=100, deadline=None)
    def test_same_timestamp_burst_is_fifo(self, delays):
        """All callbacks landing on one timestamp run in submission
        (seq) order, even interleaved with other timestamps."""
        sim = Simulator()
        log = []
        for i, d in enumerate(delays):
            sim.call_at(d, log.append, (d, i))
        sim.run()
        assert log == sorted(log, key=lambda pair: (pair[0], pair[1]))


class TestPerCallStepBudget:
    def test_second_run_gets_a_fresh_budget(self):
        """max_steps budgets one run() call; it must not count callbacks
        executed by earlier calls (the old engine compared against the
        lifetime counter, so a second run tripped immediately)."""
        sim = Simulator()

        def ticker():
            while True:
                yield Sleep(10)

        sim.spawn(ticker(), "tick")
        sim.run(until=1_000, max_steps=500)
        executed = sim.steps
        assert executed > 100
        # Old behavior: this raised at once because lifetime steps
        # already exceeded the budget.
        sim.run(until=2_000, max_steps=500)
        assert sim.steps > executed

    def test_budget_still_trips_within_one_call(self):
        sim = Simulator()

        def ticker():
            while True:
                yield Sleep(10)

        sim.spawn(ticker(), "tick")
        with pytest.raises(SimulationError, match="exceeded 50 steps"):
            sim.run(max_steps=50)

    def test_lifetime_steps_counter_still_accumulates(self):
        sim = Simulator()

        def ticker(n):
            for _ in range(n):
                yield Sleep(10)

        sim.spawn(ticker(5), "a")
        sim.run()
        first = sim.steps
        sim.spawn(ticker(5), "b")
        sim.run()
        assert sim.steps > first


class TestBatchEventDrain:
    def test_storm_release_wakes_all_waiters_in_spawn_order(self):
        sim = Simulator()
        gate = Event("gate")
        order = []

        def waiter(i):
            fired, value = yield WaitEvent(gate)
            order.append((i, fired, value, sim.now))

        for i in range(64):
            sim.spawn(waiter(i), "w%d" % i)

        def firer():
            yield Sleep(100)
            sim.fire(gate, "go")

        sim.spawn(firer(), "f")
        sim.run()
        assert order == [(i, True, "go", 100) for i in range(64)]

    def test_waiter_scheduling_more_work_runs_after_remaining_waiters(self):
        """Work scheduled from inside a released waiter must run after
        the other waiters' releases — exactly as with per-waiter queue
        entries (the follow-up's seq is higher)."""
        sim = Simulator()
        gate = Event("gate")
        log = []

        def waiter(i):
            yield WaitEvent(gate)
            log.append(("woke", i))
            if i == 0:
                sim.call_soon(log.append, ("follow-up", i))

        for i in range(4):
            sim.spawn(waiter(i), "w%d" % i)
        sim.fire(gate)
        sim.run()
        assert log == [
            ("woke", 0), ("woke", 1), ("woke", 2), ("woke", 3),
            ("follow-up", 0),
        ]

    def test_stale_waiters_are_skipped_at_drain_time(self):
        """A waiter resumed by its timeout before the drain entry runs
        must not be resumed a second time by the event value."""
        sim = Simulator()
        gate = Event("gate")
        wakeups = []

        def racer():
            fired, value = yield WaitEvent(gate, timeout_ns=100)
            wakeups.append((sim.now, fired, value))
            yield Sleep(1_000)
            wakeups.append((sim.now, "alive"))

        def other():
            fired, _ = yield WaitEvent(gate)
            wakeups.append((sim.now, "other", fired))

        sim.spawn(racer(), "r")
        sim.spawn(other(), "o")

        def firer():
            yield Sleep(100)  # exactly the racer's timeout instant
            sim.fire(gate, "late")

        sim.spawn(firer(), "f")
        sim.run()
        # The racer saw exactly one resumption (timeout or event — the
        # earlier queue entry wins), then kept running normally.
        assert len(wakeups) == 3
        assert wakeups[-2] == (100, "other", True)
        assert wakeups[-1] == (1_100, "alive")
