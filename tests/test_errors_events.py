"""Error hierarchy and result-record tests."""

import pytest

from repro import errors
from repro.core.events import DivergenceReport, MveeResult


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (
            errors.SimulationError,
            errors.KernelError,
            errors.GuestFault,
            errors.MonitorError,
            errors.DivergenceError,
            errors.PolicyError,
            errors.SecurityViolation,
        ):
            assert issubclass(cls, errors.ReproError)

    def test_divergence_error_carries_report(self):
        report = DivergenceReport(10, 0, "open", "args differ", "ghumvee")
        err = errors.DivergenceError("diverged", report=report)
        assert err.report is report


class TestRecords:
    def test_divergence_report_repr(self):
        report = DivergenceReport(1234, 2, "write", "arg 1 differs", "ipmon")
        text = repr(report)
        assert "write" in text and "ipmon" in text and "1234" in text

    def test_mvee_result_accessors(self):
        result = MveeResult()
        assert not result.diverged
        result.monitored_calls = 3
        result.unmonitored_calls = 7
        assert result.syscall_total() == 10
        assert "ok" in repr(result)
        result.divergence = DivergenceReport(0, 0, "x", "d", "exit")
        assert result.diverged
        assert "DIVERGED" in repr(result)


class TestSyscallRequest:
    def test_replace_preserves_unset_fields(self):
        from repro.kernel.syscalls import SyscallRequest

        req = SyscallRequest("read", (1, 2, 3), site="app", token=None)
        restarted = req.replace(site="ipmon", token=42)
        assert restarted.name == "read"
        assert restarted.args == (1, 2, 3)
        assert restarted.site == "ipmon"
        assert restarted.token == 42
        assert req.site == "app"  # original untouched

    def test_arg_defaulting(self):
        from repro.kernel.syscalls import SyscallRequest

        req = SyscallRequest("ioctl", (5,))
        assert req.arg(0) == 5
        assert req.arg(3) == 0
        assert req.arg(3, default=-1) == -1

    def test_duplicate_registration_rejected(self):
        from repro.kernel.syscalls import syscall

        with pytest.raises(ValueError):

            @syscall("getpid")
            def clash(kernel, thread):
                return 0
