"""SWIM gossip membership: determinism and convergence properties.

The two properties the lifecycle manager leans on:

* **Convergence** — under seeded loss and reorder, every surviving
  agent's view settles on the same membership set: the killed nodes
  dead, the live nodes alive (false suspicions are refuted by direct
  frames and incarnation bumps).
* **Bit-identity** — the same seed produces the identical beat targets,
  traffic log, and final views, run after run. Gossip randomness is one
  LCG stream per agent, nothing else.

The harness is a scripted discrete-tick network (no simulator, no
cluster): beats fan out, frames travel one-or-more ticks with seeded
loss/reordering, checks age silent peers. That keeps the properties
cheap enough for Hypothesis to sweep seeds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.wire import GOSSIP_ALIVE, GOSSIP_DEAD, GOSSIP_SUSPECT
from repro.lifecycle.gossip import GossipAgent

_LCG_MULT = 6364136223846793005
_LCG_ADD = 1442695040888963407
_MASK = (1 << 64) - 1

INTERVAL = 10
TIMEOUT = 45


def run_gossip(n, *, seed, loss_seed=0, loss_permille=0, reorder=False,
               ticks=60, kill=(), kill_at=15, settle=30, on_dead=None):
    """Scripted gossip network. Returns (agents, traffic_log).

    ``traffic_log`` records every delivered frame as
    ``(deliver_tick, sender, target, entries)`` — the full observable
    gossip traffic, byte-for-byte equivalent to the wire payloads.
    """
    agents = [
        GossipAgent(i, n, suspicion_timeout_ns=TIMEOUT, fanout=2, seed=seed,
                    on_dead=(lambda peer, inc, i=i: on_dead(i, peer, inc))
                    if on_dead else None)
        for i in range(n)
    ]
    rng = (loss_seed or 1) & _MASK

    def rand():
        nonlocal rng
        rng = (rng * _LCG_MULT + _LCG_ADD) & _MASK
        return rng >> 16

    in_flight = []  # (deliver_tick, order, sender, target, entries)
    log = []
    order = 0
    for tick in range(ticks + settle):
        now = tick * INTERVAL
        lossy = tick < ticks  # the settle phase runs loss-free
        for agent in agents:
            if agent.index in kill and tick >= kill_at:
                continue
            agent.check(now)
            for target in agent.beat(now):
                if lossy and loss_permille and rand() % 1000 < loss_permille:
                    continue
                delay = 1 + (rand() % 3 if (reorder and lossy) else 0)
                in_flight.append(
                    (tick + delay, order, agent.index, target, agent.view())
                )
                order += 1
        due = sorted(f for f in in_flight if f[0] <= tick + 1)
        in_flight = [f for f in in_flight if f[0] > tick + 1]
        for deliver_tick, _, sender, target, entries in due:
            if target in kill and deliver_tick >= kill_at:
                continue
            agents[target].merge(deliver_tick * INTERVAL, sender, entries)
            log.append((deliver_tick, sender, target, entries))
    return agents, log


class TestAgentUnit:
    def test_silence_promotes_suspect_then_dead(self):
        agent = GossipAgent(0, 3, suspicion_timeout_ns=100, fanout=2, seed=1)
        assert agent.check(90) == []
        assert agent.check(150) == [(1, GOSSIP_SUSPECT), (2, GOSSIP_SUSPECT)]
        assert agent.check(250) == [(1, GOSSIP_DEAD), (2, GOSSIP_DEAD)]
        assert agent.alive_peers() == []

    def test_direct_frame_refutes_suspicion_but_not_death(self):
        agent = GossipAgent(0, 3, suspicion_timeout_ns=100, fanout=2, seed=1)
        agent.check(150)
        assert agent.states[1] == GOSSIP_SUSPECT
        agent.merge(160, 1, ())
        assert agent.states[1] == GOSSIP_ALIVE
        agent.check(400)
        assert agent.states[2] == GOSSIP_DEAD
        agent.merge(410, 2, ())  # a frame alone cannot revive the dead
        assert agent.states[2] == GOSSIP_DEAD
        # ... but the peer's bumped incarnation can.
        agent.merge(420, 2, ((2, 1, GOSSIP_ALIVE),))
        assert agent.states[2] == GOSSIP_ALIVE

    def test_own_obituary_is_outlived_by_incarnation_bump(self):
        agent = GossipAgent(1, 3, suspicion_timeout_ns=100, fanout=2, seed=1)
        agent.merge(50, 0, ((1, 0, GOSSIP_DEAD),))
        assert agent.incarnations[1] == 1
        assert agent.states[1] == GOSSIP_ALIVE

    def test_on_dead_fires_once_per_incarnation(self):
        fired = []
        agent = GossipAgent(
            0, 3, suspicion_timeout_ns=100, fanout=2, seed=1,
            on_dead=lambda peer, inc: fired.append((peer, inc)),
        )
        agent.check(250)
        agent.merge(260, 2, ((1, 0, GOSSIP_DEAD),))  # rumour repeats it
        assert fired.count((1, 0)) == 1
        agent.revive(300, 1)
        agent.check(600)
        assert fired.count((1, 1)) == 1

    def test_restart_forgives_outage_silence(self):
        agent = GossipAgent(0, 4, suspicion_timeout_ns=100, fanout=2, seed=1)
        agent.check(150)   # 1, 2, 3 suspect
        agent.check(250)   # ... then dead
        agent.merge(260, 1, ((1, 1, GOSSIP_ALIVE),))
        agent.check(380)   # peer 1 suspect again under its new incarnation
        assert agent.states[1] == GOSSIP_SUSPECT
        agent.restart(400)
        # Obituary outlived, suspect graced, dead marks kept.
        assert agent.incarnations[0] == 1
        assert agent.states[1] == GOSSIP_ALIVE
        assert agent.states[2] == GOSSIP_DEAD
        # Silence clocks restarted: nothing ages out immediately.
        assert agent.check(450) == []

    def test_beat_targets_bounded_and_sorted(self):
        agent = GossipAgent(0, 6, suspicion_timeout_ns=100, fanout=2, seed=9)
        for now in range(0, 100, 10):
            targets = agent.beat(now)
            assert len(targets) == 2
            assert targets == sorted(targets)
            assert agent.index not in targets


class TestConvergence:
    def test_faultless_views_identical(self):
        agents, _ = run_gossip(4, seed=3)
        views = {agent.view() for agent in agents}
        assert len(views) == 1
        assert all(state == GOSSIP_ALIVE
                   for _, _, state in views.pop())

    def test_killed_node_declared_dead_everywhere(self):
        agents, _ = run_gossip(4, seed=3, kill=(2,))
        for agent in agents:
            if agent.index == 2:
                continue
            assert agent.states[2] == GOSSIP_DEAD
            assert 2 not in agent.alive_peers()

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(1, 2**32),
        loss_seed=st.integers(1, 2**32),
        loss_permille=st.integers(0, 400),
        reorder=st.booleans(),
        n=st.integers(3, 6),
    )
    def test_views_converge_under_loss_and_reorder(
        self, seed, loss_seed, loss_permille, reorder, n
    ):
        kill = (n - 1,)
        agents, _ = run_gossip(
            n, seed=seed, loss_seed=loss_seed, loss_permille=loss_permille,
            reorder=reorder, kill=kill,
        )
        live = [agent for agent in agents if agent.index not in kill]
        alive_sets = {tuple(sorted(set(a.alive_peers()) | {a.index}))
                      for a in live}
        assert alive_sets == {tuple(i for i in range(n) if i not in kill)}
        for agent in live:
            assert agent.states[n - 1] == GOSSIP_DEAD


class TestDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(1, 2**32),
        loss_seed=st.integers(1, 2**32),
        loss_permille=st.integers(0, 300),
        n=st.integers(3, 6),
    )
    def test_same_seed_bit_identical_traffic_and_views(
        self, seed, loss_seed, loss_permille, n
    ):
        runs = [
            run_gossip(n, seed=seed, loss_seed=loss_seed,
                       loss_permille=loss_permille, reorder=True, kill=(0,))
            for _ in range(2)
        ]
        (agents_a, log_a), (agents_b, log_b) = runs
        assert log_a == log_b
        assert [a.view() for a in agents_a] == [b.view() for b in agents_b]
        assert ([a.beats_sent for a in agents_a]
                == [b.beats_sent for b in agents_b])

    def test_different_seed_changes_traffic(self):
        _, log_a = run_gossip(4, seed=1)
        _, log_b = run_gossip(4, seed=2)
        assert log_a != log_b
