"""Drift watchdog + auto-scaler decision logic (DESIGN.md §12).

The watchdog is pure decision logic over histogram *deltas*: windowed
p99 against the first window's baseline for scaling, and stuck-round
vote attribution for proactive quarantine. These tests drive it with
real ``repro.obs`` histograms so the bucketing math is the production
math, then one end-to-end smoke run proves the armed watchdog stays
deterministic and invisible to a healthy cluster.
"""

from __future__ import annotations

from repro.lifecycle import LifecycleConfig
from repro.lifecycle.autoscale import DriftWatchdog, _delta_p99
from repro.obs.metrics import Histogram

from .test_rejoin import run_lifecycle


def _config(**overrides):
    overrides.setdefault("autoscale", True)
    overrides.setdefault("drift_windows", 3)
    return LifecycleConfig(**overrides)


def _feed(hist, value, times):
    for _ in range(times):
        hist.observe(value)


class TestDeltaP99:
    def test_empty_window_is_none(self):
        hist = Histogram("w")
        _feed(hist, 1_000, 100)
        counts = list(hist.counts)
        assert _delta_p99(hist.bounds, counts, counts, hist.max) is None

    def test_window_ignores_history(self):
        """A long healthy history cannot mask a fresh drift: only the
        observations added since the previous sample count."""
        hist = Histogram("w")
        _feed(hist, 1_000, 10_000)
        prev = list(hist.counts)
        whole = _delta_p99(hist.bounds, [0] * len(prev), prev, hist.max)
        _feed(hist, 50_000_000, 10)
        fresh = _delta_p99(hist.bounds, prev, list(hist.counts), hist.max)
        assert whole <= 1_000 * 2
        assert fresh >= 50_000_000


class TestScaling:
    def test_sustained_drift_votes_scale_up(self):
        watchdog = DriftWatchdog(_config())
        hist = Histogram("dist_rendezvous_wait_ns")
        hists = {"dist_rendezvous_wait_ns": hist}
        _feed(hist, 1_000, 100)
        assert watchdog.observe_histograms(hists) == 0  # baseline window
        votes = []
        for _ in range(3):
            _feed(hist, 50_000_000, 100)
            votes.append(watchdog.observe_histograms(hists))
        assert votes == [0, 0, 1]
        assert watchdog.stats["scale_up_votes"] == 1
        assert watchdog.stats["drift_windows"] == 3

    def test_quiet_recovery_votes_scale_down(self):
        watchdog = DriftWatchdog(_config())
        hist = Histogram("dist_monitor_wait_ns")
        hists = {"dist_monitor_wait_ns": hist}
        _feed(hist, 10_000, 100)
        # The baseline window is trivially quiet (p99 <= itself), so it
        # already opens the quiet streak; two more close it out.
        watchdog.observe_histograms(hists)
        votes = []
        for _ in range(2):
            _feed(hist, 1_000, 100)
            votes.append(watchdog.observe_histograms(hists))
        assert votes == [0, -1]
        assert watchdog.stats["scale_down_votes"] == 1

    def test_interrupted_drift_resets_the_streak(self):
        watchdog = DriftWatchdog(_config())
        hist = Histogram("dist_rendezvous_wait_ns")
        hists = {"dist_rendezvous_wait_ns": hist}
        _feed(hist, 1_000, 100)
        watchdog.observe_histograms(hists)  # baseline
        for value in (50_000_000, 50_000_000, 1_000,
                      50_000_000, 50_000_000):
            _feed(hist, value, 100)
            assert watchdog.observe_histograms(hists) == 0
        _feed(hist, 50_000_000, 100)
        assert watchdog.observe_histograms(hists) == 1

    def test_idle_windows_hold(self):
        watchdog = DriftWatchdog(_config())
        hist = Histogram("dist_rendezvous_wait_ns")
        hists = {"dist_rendezvous_wait_ns": hist}
        _feed(hist, 1_000, 10)
        watchdog.observe_histograms(hists)
        for _ in range(6):  # no new observations at all
            assert watchdog.observe_histograms(hists) == 0
        assert watchdog.stats["scale_up_votes"] == 0
        assert watchdog.stats["scale_down_votes"] == 0


class TestStuckRounds:
    def test_single_culprit_blamed_after_threshold(self):
        watchdog = DriftWatchdog(_config(stuck_round_ticks=3))
        rounds = {(0, 1, 7): (2,), (1, 3, 9): (2,)}
        assert watchdog.observe_rounds(rounds) is None
        assert watchdog.observe_rounds(rounds) is None
        assert watchdog.observe_rounds(rounds) == 2

    def test_split_blame_returns_none(self):
        watchdog = DriftWatchdog(_config(stuck_round_ticks=1))
        rounds = {(0, 1, 7): (2,), (1, 3, 9): (3,)}
        assert watchdog.observe_rounds(rounds) is None

    def test_strict_majority_required(self):
        watchdog = DriftWatchdog(_config(stuck_round_ticks=1))
        # Node 2 misses two rounds of four missing votes total: exactly
        # half, not a strict majority.
        rounds = {(0, 1, 7): (2, 3), (1, 3, 9): (2, 4)}
        assert watchdog.observe_rounds(rounds) is None
        rounds = {(0, 1, 7): (2,), (1, 3, 9): (2, 4)}
        assert watchdog.observe_rounds(rounds) == 2

    def test_closed_round_resets_its_counter(self):
        watchdog = DriftWatchdog(_config(stuck_round_ticks=2))
        assert watchdog.observe_rounds({(0, 1, 7): (2,)}) is None
        assert watchdog.observe_rounds({}) is None  # round completed
        assert watchdog.observe_rounds({(0, 1, 7): (2,)}) is None
        assert watchdog.observe_rounds({(0, 1, 7): (2,)}) == 2


class TestEndToEnd:
    def test_armed_watchdog_is_quiet_on_a_healthy_cluster(self):
        mvee, result = run_lifecycle(
            plan=None, lifecycle=LifecycleConfig(autoscale=True, seed=7)
        )
        assert not result.diverged, result.divergence
        assert result.stats["lifecycle_watch_ticks"] > 0
        assert result.stats["lifecycle_proactive_quarantines"] == 0
        assert [node.process.exit_code for node in mvee.nodes] == [0] * 4

    def test_armed_watchdog_runs_stay_bit_identical(self):
        runs = [
            run_lifecycle(
                plan=None, lifecycle=LifecycleConfig(autoscale=True, seed=7)
            )
            for _ in range(2)
        ]
        (_, a), (_, b) = runs
        assert a.stats == b.stats
        assert a.wall_time_ns == b.wall_time_ns
