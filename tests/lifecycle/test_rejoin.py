"""Replay-based re-admission, end to end (DESIGN.md §12).

The acceptance story: a seeded run crashes one node; the gossip layer
detects it; the slot is re-imaged; the replacement fast-replays the
recorded window (RB mirror records + rendezvous verdicts), is
re-admitted under a bumped ownership epoch, and the run finishes with
every exit code 0 — while runs with the lifecycle disabled stay
bit-identical to a run that never heard of the subsystem.
"""

from __future__ import annotations

import pytest

from repro.core import DegradationPolicy, Level, ReMonConfig
from repro.dist import DistConfig, DistMvee
from repro.errors import FaultConfigError
from repro.faults import CrashFault, FaultInjector, FaultPlan, NodeRejoinFault
from repro.lifecycle import LifecycleConfig
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

MAX_STEPS = 400_000_000
RATE = 900_000.0
CRASH_AT = 1_000_000


def _workload(threads=2, native_ms=1.0):
    # sock_ro keeps the replicated lane busy so the replay window holds
    # RB mirror records, not just rendezvous verdicts.
    return SyntheticWorkload(
        name="lct",
        native_ms=native_ms,
        mix=CategoryMix(
            {"base": RATE * 0.35, "file_ro": RATE * 0.2,
             "sock_ro": RATE * 0.25, "mgmt": RATE * 0.2}
        ),
        threads=threads,
    )


def run_lifecycle(plan=None, lifecycle="default", nodes=4, shards=2):
    if lifecycle == "default":
        lifecycle = LifecycleConfig(seed=7)
    config = ReMonConfig(
        replicas=nodes,
        level=Level.SOCKET_RO,
        degradation=DegradationPolicy(min_quorum=2),
        dist=DistConfig(
            link_latency_ns=100_000,
            shard_rendezvous=True,
            rendezvous_shards=shards,
            lifecycle=lifecycle,
        ),
    )
    mvee = DistMvee(build_program(_workload()), config)
    if plan is not None:
        mvee.attach_faults(FaultInjector(plan))
    result = mvee.run(max_steps=MAX_STEPS)
    return mvee, result


def _rejoin_plan(replica=3, at_ns=CRASH_AT):
    return FaultPlan(faults=[NodeRejoinFault(replica=replica, at_ns=at_ns)])


class TestRejoin:
    def test_follower_crash_replays_and_rejoins(self):
        mvee, result = run_lifecycle(_rejoin_plan(replica=3))
        assert not result.diverged, result.divergence
        stats = result.stats
        assert stats["lifecycle_rejoins_scheduled"] == 1
        assert stats["lifecycle_rejoins_completed"] == 1
        assert stats["lifecycle_rejoins_refused"] == 0
        # The replacement adopted recorded artifacts on every lane.
        assert stats["lifecycle_replayed_records"] > 0
        assert stats["lifecycle_replayed_verdicts"] > 0
        assert stats["lifecycle_replayed_local"] > 0
        # Quarantine bumped the epoch once, re-admission once more.
        assert mvee.epoch == 2
        assert stats["lifecycle_rejoin_ns_total"] > 0
        # The replacement finished the program: every slot exits 0.
        assert [node.process.exit_code for node in mvee.nodes] == [0] * 4

    def test_shard_owner_crash_rejoins(self):
        mvee, result = run_lifecycle(_rejoin_plan(replica=1))
        assert not result.diverged, result.divergence
        assert result.stats["lifecycle_rejoins_completed"] == 1
        assert mvee.epoch == 2
        assert [node.process.exit_code for node in mvee.nodes] == [0] * 4

    def test_leader_crash_rejoins_behind_promoted_leader(self):
        mvee, result = run_lifecycle(_rejoin_plan(replica=0))
        assert not result.diverged, result.divergence
        assert result.stats["lifecycle_rejoins_completed"] == 1
        assert result.stats["master_promotions"] == 1
        assert mvee.leader_index != 0
        assert [node.process.exit_code for node in mvee.nodes] == [0] * 4

    def test_gossip_detects_crash_before_timeout(self):
        mvee, result = run_lifecycle(_rejoin_plan(replica=3))
        assert result.stats["lifecycle_gossip_detections"] == 1
        assert result.stats["lifecycle_suspicions"] > 0
        assert result.stats["lifecycle_false_suspicions"] == 0

    def test_rejoin_without_gossip_uses_crash_timeout(self):
        mvee, result = run_lifecycle(
            _rejoin_plan(replica=3),
            lifecycle=LifecycleConfig(gossip=False, seed=7),
        )
        assert not result.diverged, result.divergence
        assert result.stats["lifecycle_rejoins_completed"] == 1
        assert "lifecycle_gossip_detections" not in result.stats or (
            result.stats["lifecycle_gossip_detections"] == 0
        )

    def test_plain_crash_rejoins_when_config_allows(self):
        mvee, result = run_lifecycle(
            FaultPlan(faults=[CrashFault(replica=3, at_ns=CRASH_AT)])
        )
        assert not result.diverged, result.divergence
        assert result.stats["lifecycle_rejoins_completed"] == 1

    def test_rejoin_fault_overrides_disabled_rejoin(self):
        mvee, result = run_lifecycle(
            _rejoin_plan(replica=3),
            lifecycle=LifecycleConfig(rejoin=False, seed=7),
        )
        assert not result.diverged, result.divergence
        assert result.stats["lifecycle_rejoins_completed"] == 1

    def test_plain_crash_stays_out_when_rejoin_disabled(self):
        mvee, result = run_lifecycle(
            FaultPlan(faults=[CrashFault(replica=3, at_ns=CRASH_AT)]),
            lifecycle=LifecycleConfig(rejoin=False, seed=7),
        )
        assert not result.diverged, result.divergence
        assert result.stats["lifecycle_rejoins_scheduled"] == 0
        assert result.stats["replicas_quarantined"] == 1
        assert mvee.epoch == 1  # quarantine only, no re-admission bump

    def test_window_overflow_refuses_rejoin(self):
        mvee, result = run_lifecycle(
            _rejoin_plan(replica=3),
            lifecycle=LifecycleConfig(replay_window=8, seed=7),
        )
        assert not result.diverged, result.divergence
        assert result.stats["lifecycle_rejoins_refused"] == 1
        assert result.stats["lifecycle_rejoins_completed"] == 0
        assert result.stats["lifecycle_window_overflowed"] == 1


class TestBitIdentity:
    def test_same_seed_same_stats_and_wire_bytes(self):
        runs = [run_lifecycle(_rejoin_plan(replica=3)) for _ in range(2)]
        (_, a), (_, b) = runs
        assert a.stats == b.stats
        assert a.wall_time_ns == b.wall_time_ns
        assert a.stats["dist_bytes_lifecycle"] > 0
        assert a.stats["dist_frames_lifecycle"] > 0

    def test_disabled_lifecycle_is_invisible(self):
        """lifecycle=None and enabled=False runs are bit-identical to
        each other: zero new frames, zero new stats, same wall time."""
        (_, off) = run_lifecycle(plan=None, lifecycle=None)
        (_, disabled) = run_lifecycle(
            plan=None, lifecycle=LifecycleConfig(enabled=False)
        )
        assert off.stats == disabled.stats
        assert off.wall_time_ns == disabled.wall_time_ns
        assert not any(key.startswith("lifecycle") for key in off.stats)
        assert "dist_bytes_lifecycle" not in off.stats

    def test_enabled_faultless_run_completes_at_epoch_zero(self):
        mvee, result = run_lifecycle(plan=None)
        assert not result.diverged, result.divergence
        assert mvee.epoch == 0
        assert result.stats["lifecycle_rejoins_scheduled"] == 0
        assert result.stats["lifecycle_beats_sent"] > 0


class TestNodeRejoinFault:
    def test_validates_at_ns(self):
        with pytest.raises(FaultConfigError):
            NodeRejoinFault(replica=1, at_ns=0)

    def test_counts_as_crash(self):
        mvee, result = run_lifecycle(_rejoin_plan(replica=3))
        assert result.stats["faults_injected"] == 1
