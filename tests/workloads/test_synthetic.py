"""Synthetic workload generator tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.native import run_native
from repro.workloads.synthetic import (
    CALLS_PER_OP,
    CATEGORIES,
    CategoryMix,
    SyntheticWorkload,
    build_program,
)


class TestScheduling:
    def test_schedule_respects_rates(self):
        workload = SyntheticWorkload(
            "t", native_ms=100, mix=CategoryMix({"base": 1000, "file_ro": 2000})
        )
        schedule = workload.schedule()
        assert schedule.count("base") == 100
        assert schedule.count("file_ro") == 200

    def test_mgmt_ops_counted_as_call_pairs(self):
        workload = SyntheticWorkload("t", native_ms=100, mix=CategoryMix({"mgmt": 1000}))
        assert workload.schedule().count("mgmt") == 50  # 2 calls per op

    def test_schedule_deterministic_per_seed(self):
        mix = CategoryMix({"base": 500, "futex": 500})
        a = SyntheticWorkload("t", 50, mix, seed=3).schedule()
        b = SyntheticWorkload("t", 50, mix, seed=3).schedule()
        c = SyntheticWorkload("t", 50, mix, seed=4).schedule()
        assert a == b
        assert a != c  # different shuffle

    def test_unknown_category_rejected(self):
        with pytest.raises(ValueError):
            CategoryMix({"bogus": 1.0})


class TestExecution:
    @settings(max_examples=8, deadline=None)
    @given(
        category=st.sampled_from([c for c in CATEGORIES]),
    )
    def test_every_category_runs_natively(self, category):
        workload = SyntheticWorkload(
            "cat-%s" % category,
            native_ms=2.0,
            mix=CategoryMix({category: 5000}),
        )
        native = run_native(build_program(workload))
        assert native.exit_code == 0
        expected_calls = int(
            5000 * 0.002 / CALLS_PER_OP[category] * CALLS_PER_OP[category]
        )
        assert native.syscalls >= expected_calls * 0.8

    def test_syscall_rate_close_to_requested(self):
        rate = 50_000
        workload = SyntheticWorkload(
            "rate", native_ms=20, mix=CategoryMix({"base": rate, "file_ro": rate})
        )
        native = run_native(build_program(workload))
        measured = native.syscall_rate_per_sec()
        # Setup calls and per-call kernel time distort slightly.
        assert 0.5 * 2 * rate <= measured <= 1.5 * 2 * rate

    def test_multithreaded_workload_completes(self):
        workload = SyntheticWorkload(
            "mt", native_ms=5, mix=CategoryMix({"futex": 20_000}), threads=4
        )
        native = run_native(build_program(workload))
        assert native.exit_code == 0

    def test_pure_compute_workload(self):
        workload = SyntheticWorkload("cpu", native_ms=10, mix=CategoryMix({}))
        native = run_native(build_program(workload))
        assert native.exit_code == 0
        assert native.wall_time_ns >= 10_000_000


class TestProfileDerivation:
    def test_derived_rates_nonnegative_and_finite(self):
        from repro.workloads.calibrate import calibrate
        from repro.workloads.profiles import (
            PARSEC_BENCHMARKS,
            PHORONIX_BENCHMARKS,
            SPLASH_BENCHMARKS,
            derive_workload,
        )

        cal = calibrate()
        for bench in PARSEC_BENCHMARKS + SPLASH_BENCHMARKS + PHORONIX_BENCHMARKS:
            workload = derive_workload(bench, cal)
            for category, rate in workload.mix.rates.items():
                assert rate >= 0, (bench.name, category)
                assert rate < 5e7
            assert 0 <= workload.cache_sensitivity <= 4

    def test_model_matches_paper_targets(self):
        """The analytic inversion reproduces each observed point within
        tolerance — before any simulation runs."""
        from repro.core.policies import Level
        from repro.workloads.calibrate import calibrate
        from repro.workloads.profiles import (
            PHORONIX_BENCHMARKS,
            _LEVEL_ORDER,
            derive_workload,
            predict_overhead,
        )

        cal = calibrate()
        for bench in PHORONIX_BENCHMARKS:
            workload = derive_workload(bench, cal)
            rates = workload.mix.rates
            bundles = [
                rates.get("base", 0),
                rates.get("file_ro", 0) + rates.get("futex", 0),
                rates.get("file_rw", 0),
                rates.get("sock_ro", 0),
                rates.get("sock_rw", 0),
            ]
            pressure = workload.cache_sensitivity * 0.035
            for level, target in bench.targets.items():
                predicted = predict_overhead(
                    level, bundles, rates.get("mgmt", 0), pressure, bench.threads, cal
                )
                assert predicted == pytest.approx(max(1.0, target), rel=0.15), (
                    bench.name,
                    level,
                    predicted,
                    target,
                )

    def test_calibration_magnitudes(self):
        from repro.workloads.calibrate import calibrate

        cal = calibrate()
        assert 1_000 < cal.t_mon_ns < 200_000  # microseconds-scale
        assert 100 < cal.t_ipmon_ns < 20_000  # sub-microsecond-ish
        assert cal.t_mon_ns > 5 * cal.t_ipmon_ns
