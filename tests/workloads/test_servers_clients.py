"""Server and client workload tests."""

import pytest

from repro.bench.harness import (
    native_server_runner,
    remon_server_runner,
    varan_server_runner,
)
from repro.core import Level
from repro.kernel import Kernel, KernelConfig
from repro.workloads.clients import ClientSpec, run_server_benchmark
from repro.workloads.servers import SERVERS

FAST = ClientSpec(tool="wrk", concurrency=4, total_requests=32)
FAST_AB = ClientSpec(tool="ab", concurrency=4, total_requests=32)


def run_one(server_name, runner, spec=None, latency_ns=200_000):
    server = SERVERS[server_name]
    spec = spec or (FAST if server.response_bytes <= 256 else FAST_AB)
    kernel = Kernel(config=KernelConfig(network_latency_ns=latency_ns))
    return run_server_benchmark(
        kernel, server.program(), spec, server.port, runner
    )


class TestNativeServers:
    @pytest.mark.parametrize("name", sorted(SERVERS))
    def test_every_server_serves_natively(self, name):
        result = run_one(name, native_server_runner)
        assert result.completed == 32
        assert result.errors == 0
        assert result.duration_ns > 0
        assert result.bytes_received > 0

    def test_keepalive_uses_fewer_connections_than_ab(self):
        kernel_wrk = Kernel(config=KernelConfig(network_latency_ns=200_000))
        server = SERVERS["redis"]
        wrk = run_server_benchmark(
            kernel_wrk, server.program(), FAST, server.port, native_server_runner
        )
        kernel_ab = Kernel(config=KernelConfig(network_latency_ns=200_000))
        ab = run_server_benchmark(
            kernel_ab, server.program(), FAST_AB, server.port, native_server_runner
        )
        assert wrk.completed == ab.completed == 32
        # ab pays a connection handshake per request.
        assert ab.duration_ns > wrk.duration_ns


class TestReplicatedServers:
    @pytest.mark.parametrize("name", ["redis", "nginx-wrk", "thttpd-ab", "apache-ab"])
    def test_servers_survive_remon(self, name):
        result = run_one(name, remon_server_runner(Level.SOCKET_RW, 2))
        assert result.completed == 32
        assert result.errors == 0

    @pytest.mark.parametrize("name", ["redis", "lighttpd-ab"])
    def test_servers_survive_ghumvee_only(self, name):
        result = run_one(name, remon_server_runner(Level.NO_IPMON, 2))
        assert result.completed == 32

    def test_server_survives_varan(self):
        result = run_one("memcached", varan_server_runner(2))
        assert result.completed == 32

    def test_latency_hides_monitoring_overhead(self):
        """The paper's central Figure 5 observation."""
        fast_native = run_one("beanstalkd", native_server_runner, latency_ns=100_000)
        fast_mvee = run_one(
            "beanstalkd", remon_server_runner(Level.SOCKET_RW, 2), latency_ns=100_000
        )
        slow_native = run_one("beanstalkd", native_server_runner, latency_ns=2_000_000)
        slow_mvee = run_one(
            "beanstalkd", remon_server_runner(Level.SOCKET_RW, 2), latency_ns=2_000_000
        )
        fast_overhead = fast_mvee.duration_ns / fast_native.duration_ns - 1
        slow_overhead = slow_mvee.duration_ns / slow_native.duration_ns - 1
        assert slow_overhead < fast_overhead + 0.02


class TestVaranDetails:
    def test_ring_capacity_bounds_runahead(self):
        from repro.baselines.varan import Varan, VaranConfig
        from repro.guest.program import Compute, Program

        def main(ctx):
            # The master issues a burst of calls; the slave lags behind a
            # long compute block, so the master slams into the ring cap.
            if ctx.process.replica_index != 0:
                yield Compute(3_000_000)
            for _ in range(40):
                _pid = yield ctx.sys.getpid()
            return 0

        kernel = Kernel()
        varan = Varan(kernel, Program("cap", main), VaranConfig(replicas=2, ring_entries=8))
        result = varan.run(max_steps=10_000_000)
        assert result.divergence is None
        assert varan.stats["max_runahead"] <= 8

    def test_check_args_disabled_tolerates_discrepancies(self):
        """VARAN 'can even allow small discrepancies' (§6)."""
        from repro.baselines.varan import Varan, VaranConfig
        from repro.guest.program import Program

        def main(ctx):
            # Same syscall, slightly different argument per replica.
            count = 8 if ctx.process.replica_index == 0 else 16
            buf = yield from ctx.libc.malloc(32)
            yield ctx.sys.getrandom(buf, count, 0)
            return 0

        kernel = Kernel()
        varan = Varan(
            kernel, Program("loose", main), VaranConfig(replicas=2, check_args=False)
        )
        result = varan.run(max_steps=10_000_000)
        assert result.divergence is None
        assert result.exit_codes == [0, 0]
