"""Tests for the native, GHUMVEE-standalone and VARAN baselines."""

from repro.baselines import Varan, VaranConfig, ghumvee_standalone_config, run_native
from repro.core import Level, ReMon
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.kernel import constants as C


def make_io_program(iterations=20):
    def main(ctx):
        libc = ctx.libc
        fd = yield from libc.open("/data/file.bin")
        assert fd >= 0
        for _ in range(iterations):
            yield Compute(10_000)
            ret, _data = yield from libc.pread(fd, 512, 0)
            assert ret == 512
        yield from libc.close(fd)
        return 0

    return Program("io-loop", main, files={"/data/file.bin": bytes(4096)})


def test_native_reports_time_and_syscalls():
    result = run_native(make_io_program())
    assert result.exit_code == 0
    assert result.wall_time_ns > 20 * 10_000
    assert result.syscalls >= 22  # open + 20 preads + close (+ mmaps)
    assert result.syscall_rate_per_sec() > 0


def test_ghumvee_standalone_monitors_everything():
    kernel = Kernel()
    mvee = ReMon(kernel, make_io_program(), ghumvee_standalone_config())
    result = mvee.run(max_steps=5_000_000)
    assert not result.diverged
    assert result.unmonitored_calls == 0
    assert result.monitored_calls > 20


def test_varan_runs_replicas_and_master_runs_ahead():
    kernel = Kernel()
    varan = Varan(kernel, make_io_program(), VaranConfig(replicas=2))
    result = varan.run(max_steps=5_000_000)
    assert result.divergence is None, result.divergence
    assert result.exit_codes == [0, 0]
    assert varan.stats["events"] > 20
    assert varan.stats["max_runahead"] >= 1


def test_varan_faster_than_ghumvee_standalone():
    program = make_io_program(iterations=50)

    kernel_v = Kernel()
    varan = Varan(kernel_v, program, VaranConfig(replicas=2))
    varan_result = varan.run(max_steps=10_000_000)

    kernel_g = Kernel()
    mvee = ReMon(kernel_g, program, ghumvee_standalone_config())
    ghumvee_result = mvee.run(max_steps=10_000_000)

    assert varan_result.divergence is None
    assert not ghumvee_result.diverged
    assert varan_result.wall_time_ns < ghumvee_result.wall_time_ns


def test_remon_between_native_and_cp_only():
    program = make_io_program(iterations=50)
    native = run_native(program)

    kernel_r = Kernel()
    remon = ReMon(kernel_r, program)
    remon_result = remon.run(max_steps=10_000_000)

    kernel_g = Kernel()
    cp = ReMon(kernel_g, program, ghumvee_standalone_config())
    cp_result = cp.run(max_steps=10_000_000)

    assert not remon_result.diverged and not cp_result.diverged
    assert native.wall_time_ns < remon_result.wall_time_ns < cp_result.wall_time_ns


def test_varan_detects_sequence_divergence_late():
    """A replica that issues a different syscall is caught only when the
    slave consumes the log entry — not at lockstep time."""

    def main(ctx):
        # Replicas disagree: replica 0 calls getpid, replica 1 getuid.
        if ctx.process.replica_index == 0:
            yield ctx.sys.getpid()
        else:
            yield ctx.sys.getuid()
        yield Compute(1000)
        return 0

    kernel = Kernel()
    varan = Varan(kernel, Program("seq-div", main), VaranConfig(replicas=2))
    result = varan.run(max_steps=5_000_000)
    assert result.divergence is not None
    assert result.divergence.detected_by == "varan"
