"""Reporting helpers used by the benchmark harness."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.bench.reporting import Table, geomean, ordering_preserved, shape_check


class TestGeomean:
    def test_known_value(self):
        assert geomean([1.0, 4.0]) == 2.0

    def test_empty_is_zero(self):
        assert geomean([]) == 0.0

    @given(st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        gm = geomean(values)
        assert min(values) - 1e-9 <= gm <= max(values) + 1e-9

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100), min_size=1, max_size=10),
        st.floats(min_value=0.5, max_value=2.0),
    )
    def test_scaling(self, values, factor):
        assert math.isclose(
            geomean([v * factor for v in values]), geomean(values) * factor,
            rel_tol=1e-9,
        )


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("Title", ["name", "value"])
        table.add("short", 1.0)
        table.add("a-much-longer-name", 123.456)
        text = table.render()
        lines = text.splitlines()
        assert lines[0] == "Title"
        data_lines = lines[4:]
        assert len({line.index("1.00") for line in data_lines[:1]}) == 1
        assert "a-much-longer-name" in text

    def test_floats_formatted(self):
        table = Table("T", ["x"])
        table.add(3.14159)
        assert "3.14" in table.render()


class TestShapeCheck:
    def test_within_tolerance_is_quiet(self):
        notes = shape_check({"a": 2.0}, {"a": 2.4})
        assert notes == []

    def test_large_deviation_flagged(self):
        notes = shape_check({"a": 3.0}, {"a": 1.1})
        assert len(notes) == 1

    def test_near_native_values_ignored(self):
        # 1.02 vs 1.04: both are noise-level overheads.
        assert shape_check({"a": 1.02}, {"a": 1.04}) == []

    def test_missing_measurement_flagged(self):
        assert shape_check({"a": 2.0}, {}) == ["a: missing measurement"]


class TestOrderingPreserved:
    def test_matching_order(self):
        paper = {"x": 1.1, "y": 2.0, "z": 3.0}
        measured = {"x": 1.2, "y": 2.5, "z": 2.9}
        assert ordering_preserved(paper, measured)

    def test_violated_order(self):
        paper = {"x": 1.1, "y": 3.0}
        measured = {"x": 3.0, "y": 1.1}
        assert not ordering_preserved(paper, measured)

    def test_paper_ties_allow_either_order(self):
        paper = {"x": 1.50, "y": 1.51}
        measured = {"x": 1.9, "y": 1.2}
        assert ordering_preserved(paper, measured)
