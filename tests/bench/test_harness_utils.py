"""Benchmark-harness utility behaviour."""

import os

import pytest

from repro.bench.harness import bench_scale, timed_exhibit_run
from repro.bench.figure5 import replica_counts


class TestBenchScale:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.25")
        assert bench_scale() == 0.25

    def test_garbage_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "lots")
        assert bench_scale() == 1.0

    def test_floor_prevents_zero(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.000001")
        assert bench_scale() >= 0.05


class TestReplicaCounts:
    def test_full_range_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_QUICK", raising=False)
        assert replica_counts() == [2, 3, 4, 5, 6, 7]

    def test_quick_mode_trims(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_QUICK", "1")
        assert replica_counts() == [2, 4, 7]


def test_timed_exhibit_run_is_self_contained():
    first = timed_exhibit_run()
    second = timed_exhibit_run()
    assert first == second  # deterministic virtual time
    assert first > 0
