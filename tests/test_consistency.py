"""Cross-cutting consistency checks between the syscall table, the ABI
specs, Table 1's policies and IP-MON's handler registry."""

from repro.core.handlers import ALLCALL_NAMES, build_handler_table
from repro.core.policies import CONDITIONAL, Level, RelaxationPolicy, UNCONDITIONAL
from repro.kernel.specs import SYSCALL_SPECS
from repro.kernel.syscalls import SYSCALL_TABLE


def test_every_policy_name_has_a_kernel_handler():
    """Table 1 must only name system calls the kernel implements."""
    for table in (UNCONDITIONAL, CONDITIONAL):
        for level, names in table.items():
            for name in names:
                assert name in SYSCALL_TABLE, (level, name)


def test_every_policy_name_has_an_abi_spec():
    """The monitors need comparison/replication specs for every call
    they may see unmonitored."""
    full = RelaxationPolicy(Level.SOCKET_RW).unmonitored_set()
    for name in full:
        assert name in SYSCALL_SPECS, name


def test_handler_table_covers_full_unmonitored_set():
    full = RelaxationPolicy(Level.SOCKET_RW).unmonitored_set()
    table = build_handler_table(full)
    assert set(table) == set(full)
    for name, handler in table.items():
        assert handler.name == name
        assert handler.disposition() in ("master", "all")


def test_allcall_names_are_policy_relaxable():
    full = RelaxationPolicy(Level.SOCKET_RW).unmonitored_set()
    for name in ALLCALL_NAMES:
        assert name in full, name


def test_ghumvee_classification_is_total():
    """Every implemented syscall has a deterministic GHUMVEE treatment:
    allexec, fd-create, shm-denied, or master-replicate (the default)."""
    from repro.core.ghumvee import ALLEXEC_NAMES, FD_CREATE_NAMES, SHM_NAMES

    overlap = ALLEXEC_NAMES & FD_CREATE_NAMES
    assert not overlap, overlap
    overlap = ALLEXEC_NAMES & SHM_NAMES
    assert not overlap, overlap


def test_specs_reference_valid_length_arguments():
    for name, spec in SYSCALL_SPECS.items():
        for index, arg in enumerate(spec.args):
            length = getattr(arg, "length", None)
            if length is not None:
                kind, value = length
                if kind == "arg":
                    assert 0 <= value < len(spec.args), (name, index)
            count_arg = getattr(arg, "count_arg", None)
            if count_arg is not None:
                assert 0 <= count_arg < len(spec.args), (name, index)


def test_blocking_specs_match_expectations():
    """Calls the file map predicts as blockable must be spec-blocking."""
    for name in ("read", "recvfrom", "epoll_wait", "accept", "poll", "select"):
        assert SYSCALL_SPECS[name].blocking, name
    for name in ("getpid", "stat", "mmap", "fcntl"):
        assert not SYSCALL_SPECS[name].blocking, name


def test_io_write_flags_cover_externally_visible_calls():
    for name in ("write", "sendto", "sendfile", "unlink", "shutdown"):
        assert SYSCALL_SPECS[name].io_write, name
    for name in ("read", "recvfrom", "stat", "getpid"):
        assert not SYSCALL_SPECS[name].io_write, name


def test_supported_syscall_count_matches_paper_scale():
    """The paper: ReMon supports well over 200 calls, IP-MON a fast path
    of 67. Our kernel implements the subset the evaluation exercises;
    the IP-MON set must stay in the paper's ballpark."""
    assert len(SYSCALL_TABLE) >= 95
    fast_path = RelaxationPolicy(Level.SOCKET_RW).unmonitored_set()
    assert 55 <= len(fast_path) <= 80


def test_kernel_syscall_names_have_specs_where_monitors_need_them():
    """Any call that can carry guest pointers and is reachable under
    monitoring should have a spec; purely administrative calls may be
    compared raw."""
    missing = {
        name for name in SYSCALL_TABLE if name not in SYSCALL_SPECS
    }
    # The remainder must be register-only calls (raw comparison safe).
    for name in missing:
        assert name in {
            "getrandom",  # buf is replicated via spec? (it has one)
        } or all(
            token not in name
            for token in ("read", "write", "recv", "send", "stat", "open")
        ), name
