"""Span tracing: the zero-cost-when-disabled contract, choke-point span
coverage, and the typed simulator trace sink (with its legacy shim)."""

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Program
from repro.kernel import Kernel
from repro.obs import ObsConfig
from repro.sim import Simulator, Sleep, TraceEvent


def run_mvee(program, obs=None, level=Level.NONSOCKET_RW, replicas=2):
    kernel = Kernel()
    mvee = ReMon(kernel, program, ReMonConfig(replicas=replicas, level=level,
                                              obs=obs))
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged, result.divergence
    return mvee, result


def busy_program(calls=40):
    def main(ctx):
        libc = ctx.libc
        for _ in range(calls):
            _pid = yield ctx.sys.getpid()
        fd = yield from libc.open("/data/f")
        _ret, _data = yield from libc.read(fd, 8)
        yield from libc.close(fd)
        return 0

    return Program("busy", main, files={"/data/f": b"payload!"})


class TestZeroCostWhenDisabled:
    def test_metrics_only_obs_is_free_in_virtual_time(self):
        """The headline determinism contract: an ObsConfig() with spans
        and recorder off must not move the virtual clock at all."""
        _, base = run_mvee(busy_program())
        _, metrics = run_mvee(busy_program(), obs=ObsConfig())
        assert metrics.wall_time_ns == base.wall_time_ns
        assert metrics.stats == base.stats

    def test_stats_keys_unchanged_by_obs(self):
        _, base = run_mvee(busy_program())
        _, traced = run_mvee(
            busy_program(), obs=ObsConfig(spans=True, flight_recorder=True)
        )
        assert set(traced.stats) == set(base.stats)

    def test_spans_charge_a_bounded_deterministic_cost(self):
        _, base = run_mvee(busy_program())
        _, spans_a = run_mvee(busy_program(), obs=ObsConfig(spans=True))
        _, spans_b = run_mvee(busy_program(), obs=ObsConfig(spans=True))
        assert base.wall_time_ns < spans_a.wall_time_ns
        assert spans_a.wall_time_ns <= 1.10 * base.wall_time_ns
        # Deterministic: same config, same clock.
        assert spans_a.wall_time_ns == spans_b.wall_time_ns


class TestSpanCoverage:
    def test_choke_points_emit_spans_with_sane_timestamps(self):
        mvee, result = run_mvee(busy_program(), obs=ObsConfig(spans=True))
        events = mvee.obs.tracer.events
        assert events and mvee.obs.tracer.dropped == 0
        components = {event.component for event in events}
        assert {"kernel", "ghumvee", "ipmon"} <= components
        for event in events:
            assert 0 <= event.time_ns <= result.wall_time_ns
            if event.kind == "span":
                assert event.dur_ns >= 0
        rendezvous = [e for e in events
                      if e.component == "ghumvee" and e.name == "rendezvous"]
        assert rendezvous and all(e.attrs["syscall"] for e in rendezvous)

    def test_event_buffer_is_bounded(self):
        mvee, _ = run_mvee(busy_program(),
                           obs=ObsConfig(spans=True, max_events=5))
        assert len(mvee.obs.tracer.events) == 5
        assert mvee.obs.tracer.dropped > 0

    def test_wait_histograms_populate_without_spans(self):
        mvee, _ = run_mvee(busy_program(), obs=ObsConfig())
        hist = mvee.obs.registry.histograms["rendezvous_wait_ns"]
        assert hist.count > 0
        assert hist.percentile(50) <= hist.percentile(99)


class TestSimulatorTraceSink:
    @staticmethod
    def _failing_task():
        yield Sleep(10)
        raise RuntimeError("boom")

    def test_typed_sink_receives_trace_events(self):
        received = []

        class Sink:
            def emit(self, event):
                received.append(event)

        sim = Simulator(trace=Sink())
        sim.spawn(self._failing_task(), "worker")
        sim.run()
        assert len(received) == 1
        event = received[0]
        assert isinstance(event, TraceEvent)
        assert (event.component, event.name) == ("sim", "task-failed")
        assert event.attrs["task"] == "worker"
        assert "boom" in event.attrs["failure"]

    def test_legacy_callable_shim_keeps_exact_message(self):
        lines = []
        sim = Simulator(trace=lambda t, msg: lines.append((t, msg)))
        sim.spawn(self._failing_task(), "worker")
        sim.run()
        assert lines == [(10, "task worker failed: RuntimeError('boom')")]

    def test_trace_event_formats_and_serializes(self):
        event = TraceEvent(42, "span", "kernel", "syscall", dur_ns=7,
                           attrs={"vtid": 0})
        assert event.message() == "kernel.syscall dur=7ns vtid=0"
        assert event.to_dict() == {
            "t": 42, "kind": "span", "component": "kernel",
            "name": "syscall", "dur_ns": 7, "attrs": {"vtid": 0},
        }

    def test_finalize_is_idempotent(self):
        mvee, result = run_mvee(busy_program(), obs=ObsConfig(spans=True))
        again = mvee.finalize()
        assert again.stats == result.stats
        assert again.wall_time_ns == result.wall_time_ns
