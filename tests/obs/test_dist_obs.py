"""Obs threading through the distributed MVEE: stats compatibility,
wait histograms, transport span events, and the dist postmortem."""

from repro.core import Level, ReMonConfig
from repro.dist import DistConfig, DistMvee
from repro.guest.program import Program
from repro.kernel import constants as C
from repro.obs import ObsConfig

MAX_STEPS = 80_000_000


def mixed_program(exit_code=5):
    def main(ctx):
        libc = ctx.libc
        for _ in range(10):
            _pid = yield ctx.sys.getpid()
            _now = yield from libc.clock_gettime()
        fd = yield from libc.open("/data/input.txt", C.O_RDONLY)
        _ret, _data = yield from libc.read(fd, 64)
        yield from libc.close(fd)
        return exit_code

    return Program("mixed", main, files={"/data/input.txt": b"same bytes"})


def run_dist(program, obs=None, dist_obs=None, replicas=3, **dist_kwargs):
    config = ReMonConfig(
        replicas=replicas,
        level=Level.NONSOCKET_RW,
        obs=obs,
        dist=DistConfig(obs=dist_obs, **dist_kwargs),
    )
    mvee = DistMvee(program, config)
    result = mvee.run(max_steps=MAX_STEPS)
    return mvee, result


class TestStatsCompatibility:
    def test_stats_and_wall_time_unchanged_by_metrics_only_obs(self):
        _, base = run_dist(mixed_program())
        _, metrics = run_dist(mixed_program(), dist_obs=ObsConfig())
        assert not base.diverged and not metrics.diverged
        assert metrics.stats == base.stats
        assert metrics.wall_time_ns == base.wall_time_ns

    def test_stats_keys_unchanged_by_full_obs(self):
        _, base = run_dist(mixed_program())
        _, traced = run_dist(
            mixed_program(),
            dist_obs=ObsConfig(spans=True, flight_recorder=True),
        )
        assert not traced.diverged, traced.divergence
        assert set(traced.stats) == set(base.stats)

    def test_remon_obs_config_is_the_fallback(self):
        mvee, result = run_dist(mixed_program(), obs=ObsConfig(spans=True))
        assert not result.diverged
        assert mvee.obs.tracer.enabled
        assert mvee.obs.tracer.events


class TestDistInstrumentation:
    def test_wait_histograms_populate_without_spans(self):
        mvee, result = run_dist(mixed_program(), dist_obs=ObsConfig())
        assert not result.diverged
        hists = mvee.obs.registry.histograms
        assert hists["dist_rendezvous_wait_ns"].count > 0
        assert hists["dist_monitor_wait_ns"].count > 0
        hist = hists["dist_rendezvous_wait_ns"]
        assert hist.percentile(50) <= hist.percentile(99)

    def test_spans_cover_dist_and_transport_choke_points(self):
        mvee, result = run_dist(
            mixed_program(), dist_obs=ObsConfig(spans=True), compress="rle"
        )
        assert not result.diverged
        events = mvee.obs.tracer.events
        components = {event.component for event in events}
        assert {"kernel", "dist", "transport"} <= components
        flushes = [e for e in events
                   if e.component == "transport" and e.name == "flush"]
        assert flushes and all(e.attrs["nbytes"] > 0 for e in flushes)
        rendezvous = [e for e in events
                      if e.component == "dist" and e.name == "rendezvous"]
        assert rendezvous
        assert all(e.attrs["verdict"] is not None for e in rendezvous)


class TestDistPostmortem:
    def test_divergent_node_yields_postmortem_with_tails(self):
        def main(ctx):
            path = ("/data/a" if ctx.process.replica_index == 0
                    else "/data/b")
            _fd = yield from ctx.libc.open(path)
            return 0

        program = Program(
            "dist-diverge", main,
            files={"/data/a": b"x", "/data/b": b"y"},
        )
        mvee, result = run_dist(
            program, replicas=2,
            dist_obs=ObsConfig(flight_recorder=True, ring_size=16),
        )
        assert result.diverged
        postmortem = result.postmortem
        assert postmortem is not None
        assert postmortem.reason == "divergence"
        assert postmortem.syscall == "open"
        assert postmortem.detected_by.startswith("dist-")
        assert postmortem.tails
        assert "shard_owners" in postmortem.attribution
        assert "rounds_by_owner" in postmortem.backoff
