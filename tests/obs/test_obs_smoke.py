"""Tier-1 obs smoke: a traced run auto-exports its trace and Prometheus
files at finalize, and both parse."""

import json

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Program
from repro.kernel import Kernel
from repro.obs import ObsConfig


def traced_program():
    def main(ctx):
        libc = ctx.libc
        for _ in range(20):
            _pid = yield ctx.sys.getpid()
        fd = yield from libc.open("/data/f")
        _ret, _data = yield from libc.read(fd, 4)
        yield from libc.close(fd)
        return 0

    return Program("smoke", main, files={"/data/f": b"data"})


def test_traced_run_exports_parse(tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    prom_path = tmp_path / "metrics.prom"
    obs = ObsConfig(
        spans=True,
        trace_path=str(trace_path),
        prometheus_path=str(prom_path),
    )
    kernel = Kernel()
    mvee = ReMon(kernel, traced_program(),
                 ReMonConfig(level=Level.NONSOCKET_RW, obs=obs))
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged, result.divergence

    events = [json.loads(line)
              for line in trace_path.read_text().splitlines()]
    assert events
    assert all(0 <= event["t"] <= result.wall_time_ns for event in events)
    assert {"kernel", "ghumvee"} <= {event["component"] for event in events}

    prom = prom_path.read_text()
    assert "# TYPE repro_rendezvous_wait_ns histogram" in prom
    assert "repro_stat_monitored_calls" in prom
    # Legacy stats still present and exported as gauges.
    assert result.stats["monitored_calls"] > 0


def test_obs_defaults_are_inert():
    kernel = Kernel()
    mvee = ReMon(kernel, traced_program(),
                 ReMonConfig(level=Level.NONSOCKET_RW))
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged
    assert not mvee.obs.active
    assert mvee.obs.tracer.events == []
    assert mvee.obs.recorder is None
    assert result.postmortem is None
