"""Cross-run metric diffing (``python -m repro.obs.diff``): the
Prometheus exposition written by :meth:`MetricsRegistry.to_prometheus`
round-trips through the parser, merges like :meth:`Histogram.merge`,
and the diff report names the choke-point histogram that moved."""

from __future__ import annotations

import pytest

from repro.obs.diff import (
    KNOWN_PREFIXES,
    MetricsDiffError,
    Snapshot,
    diff_report,
    main,
    restrict,
)
from repro.obs.metrics import MetricsRegistry


def _registry(wait_values, wall_ns, rounds, canonical_values=()):
    registry = MetricsRegistry()
    registry.counter("faults_injected_total").inc(2)
    registry.gauge("replicas_live").set(3)
    hist = registry.histogram("dist_monitor_wait_ns")
    for value in wait_values:
        hist.observe(value)
    canonical = registry.histogram("dist_canonical_wait_ns")
    for value in canonical_values:
        canonical.observe(value)
    registry.histogram("syscall_latency_ns").observe(700)
    registry.expose("wall_time_ns", wall_ns)
    registry.expose("dist_round_trips", rounds)
    return registry


class TestRoundTrip:
    def test_parse_recovers_every_sample(self):
        registry = _registry([500, 900, 3000], 123_456, 10)
        snap = Snapshot.parse(registry.to_prometheus())
        assert snap.scalars["repro_faults_injected_total"] == 2
        assert snap.scalars["repro_replicas_live"] == 3
        assert snap.scalars["repro_stat_wall_time_ns"] == 123_456
        hist = snap.histograms["repro_dist_monitor_wait_ns"]
        assert hist.count == 3
        assert hist.sum == 4400
        assert sum(hist.counts) == 3

    def test_reemitted_exposition_parses_identically(self):
        registry = _registry([500, 900, 3000], 123_456, 10)
        snap = Snapshot.parse(registry.to_prometheus())
        again = Snapshot.parse(snap.to_prometheus())
        assert again.scalars == snap.scalars
        for name, hist in snap.histograms.items():
            other = again.histograms[name]
            assert other.bounds == hist.bounds
            assert other.counts == hist.counts
            assert (other.sum, other.count) == (hist.sum, hist.count)

    def test_garbage_is_rejected_with_location(self):
        with pytest.raises(MetricsDiffError, match=":2"):
            Snapshot.parse("# a comment\nnot a sample at all\n", source="x")


class TestMergeAndDiff:
    def test_merge_adds_scalars_and_buckets(self):
        a = Snapshot.parse(_registry([500, 900], 100, 4).to_prometheus())
        b = Snapshot.parse(_registry([3000], 200, 6).to_prometheus())
        a.merge(b)
        assert a.scalars["repro_stat_wall_time_ns"] == 300
        assert a.scalars["repro_stat_dist_round_trips"] == 10
        hist = a.histograms["repro_dist_monitor_wait_ns"]
        assert hist.count == 3
        assert hist.sum == 4400

    def test_diff_names_the_histogram_that_moved(self):
        a = Snapshot.parse(_registry([500, 900], 100, 4).to_prometheus())
        b = Snapshot.parse(
            _registry([500, 900, 90_000, 220_000], 150, 4).to_prometheus()
        )
        lines, differences = diff_report(a, b)
        assert differences > 0
        # The report leads with the mover, and it is the wait histogram
        # (syscall_latency_ns did not move and must not be blamed).
        assert "largest histogram mover: repro_dist_monitor_wait_ns" in lines[0]
        assert not any("syscall_latency" in line for line in lines)

    def test_identical_snapshots_diff_clean(self):
        a = Snapshot.parse(_registry([500], 100, 4).to_prometheus())
        b = Snapshot.parse(_registry([500], 100, 4).to_prometheus())
        lines, differences = diff_report(a, b)
        assert differences == 0
        assert lines == ["exports are identical"]


class TestCli:
    def _write(self, tmp_path, name, registry):
        path = tmp_path / name
        path.write_text(registry.to_prometheus())
        return str(path)

    def test_diff_exit_codes_are_diff_like(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.prom", _registry([500], 100, 4))
        b = self._write(tmp_path, "b.prom", _registry([500, 9000], 180, 9))
        assert main([a, a]) == 0
        assert main([a, b]) == 1
        out = capsys.readouterr().out
        assert "largest histogram mover" in out
        assert "repro_stat_wall_time_ns" in out

    def test_merge_mode_prints_merged_exposition(self, tmp_path, capsys):
        a = self._write(tmp_path, "a.prom", _registry([500], 100, 4))
        b = self._write(tmp_path, "b.prom", _registry([900], 200, 6))
        assert main(["--merge", a, b]) == 0
        merged = Snapshot.parse(capsys.readouterr().out)
        assert merged.scalars["repro_stat_wall_time_ns"] == 300
        assert merged.histograms["repro_dist_monitor_wait_ns"].count == 2

    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.prom"), str(tmp_path / "x.prom")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_only_dist_canonical_isolates_the_pipeline(self, tmp_path, capsys):
        """``--only dist_canonical`` (a registered known prefix) diffs
        just the §13 canonicalization series: monitor-wait and
        wall-time drift in the same exports must not leak through."""
        assert "dist_canonical" in KNOWN_PREFIXES
        a = self._write(
            tmp_path, "a.prom",
            _registry([500], 100, 4, canonical_values=[200, 300]),
        )
        b = self._write(
            tmp_path, "b.prom",
            _registry([9000], 900, 9, canonical_values=[200, 300, 4000]),
        )
        assert main(["--only", "dist_canonical", a, b]) == 1
        out = capsys.readouterr().out
        assert "repro_dist_canonical_wait_ns" in out
        assert "dist_monitor_wait_ns" not in out
        assert "wall_time_ns" not in out
        # Identical canonicalization bills diff clean even when every
        # other series moved.
        assert main(["--only", "dist_canonical", a,
                     self._write(tmp_path, "c.prom",
                                 _registry([1], 999, 99,
                                           canonical_values=[200, 300]))]) == 0

    def test_restrict_keeps_only_matching_series(self):
        snap = Snapshot.parse(
            _registry([500], 100, 4, canonical_values=[250]).to_prometheus()
        )
        kept = restrict(snap, "dist_canonical")
        assert list(kept.histograms) == ["repro_dist_canonical_wait_ns"]
        assert kept.scalars == {}

    def test_module_is_runnable(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.diff", "--help"],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0
        assert "Prometheus" in proc.stdout
        assert "RuntimeWarning" not in proc.stderr
