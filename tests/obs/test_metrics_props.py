"""Property tests for the metrics primitives (hypothesis): histogram
merge algebra, percentile invariants, and the registry stats adapter."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import DEFAULT_BOUNDS, Histogram, MetricsRegistry

# Virtual-ns observations spanning below, inside, and above the bucket
# range (DEFAULT_BOUNDS covers 100 ns .. 10 s).
observations = st.lists(
    st.integers(min_value=0, max_value=50_000_000_000), max_size=200
)


def _hist(values, name="h"):
    hist = Histogram(name)
    for value in values:
        hist.observe(value)
    return hist


class TestHistogramMerge:
    @given(observations, observations)
    @settings(max_examples=100)
    def test_merge_is_commutative(self, a_values, b_values):
        a, b = _hist(a_values), _hist(b_values)
        assert a.merged(b) == b.merged(a)

    @given(observations, observations)
    @settings(max_examples=100)
    def test_merge_equals_concatenated_observation(self, a_values, b_values):
        merged = _hist(a_values).merged(_hist(b_values))
        assert merged == _hist(a_values + b_values)

    @given(observations, observations)
    @settings(max_examples=100)
    def test_bucket_count_conservation(self, a_values, b_values):
        a, b = _hist(a_values), _hist(b_values)
        merged = a.merged(b)
        assert sum(a.counts) == a.count == len(a_values)
        assert sum(merged.counts) == merged.count == len(a_values) + len(b_values)
        assert merged.sum == a.sum + b.sum

    def test_merge_rejects_mismatched_bounds(self):
        import pytest

        with pytest.raises(ValueError):
            Histogram("a", bounds=(10, 20)).merge(Histogram("b"))


class TestPercentiles:
    @given(observations.filter(bool))
    @settings(max_examples=100)
    def test_percentiles_are_monotone_and_clamped(self, values):
        hist = _hist(values)
        p50, p90, p99 = (hist.percentile(p) for p in (50, 90, 99))
        assert hist.min <= p50 <= p90 <= p99 <= hist.max
        assert hist.percentile(100) == hist.max

    def test_empty_histogram_has_no_percentiles(self):
        hist = Histogram("empty")
        assert hist.percentile(50) is None
        assert hist.mean == 0.0

    @given(st.integers(min_value=0, max_value=50_000_000_000))
    def test_single_observation_percentile_is_exact(self, value):
        hist = _hist([value])
        assert hist.percentile(50) == value
        assert hist.percentile(99) == value


class TestRegistryAdapter:
    def test_ingest_prefixes_and_stays_live(self):
        registry = MetricsRegistry()
        stats = {"calls": 1}
        registry.ingest("ghumvee_", stats, source="ghumvee")
        stats["calls"] = 7
        assert registry.stats_view() == {"ghumvee_calls": 7}

    def test_ingest_is_idempotent_per_source(self):
        registry = MetricsRegistry()
        registry.ingest("", {"a": 1}, source="x")
        registry.ingest("", {"a": 2}, source="x")
        registry.expose("derived", 3)
        registry.expose("derived", 4)
        assert registry.stats_view() == {"a": 2, "derived": 4}

    def test_exposed_scalars_override_ingested_keys(self):
        registry = MetricsRegistry()
        registry.ingest("", {"shared": 1}, source="x")
        registry.expose("shared", 9)
        assert registry.stats_view()["shared"] == 9

    def test_metric_instances_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")


class TestPrometheusExport:
    def test_export_renders_all_metric_kinds(self):
        registry = MetricsRegistry()
        registry.counter("calls_total").inc(3)
        registry.gauge("depth").set(2)
        hist = registry.histogram("wait_ns")
        hist.observe(150)
        hist.observe(10**12)  # overflow bucket
        registry.ingest("dist_", {"nodes": 3, "name": "notnumeric"}, source="m")
        text = registry.to_prometheus()
        assert "# TYPE repro_calls_total counter\nrepro_calls_total 3" in text
        assert "# TYPE repro_depth gauge\nrepro_depth 2" in text
        assert "# TYPE repro_wait_ns histogram" in text
        assert 'repro_wait_ns_bucket{le="+Inf"} 2' in text
        assert "repro_wait_ns_count 2" in text
        assert "repro_stat_dist_nodes 3" in text
        # Non-numeric stats entries are skipped, not mangled.
        assert "notnumeric" not in text

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", bounds=(10, 100))
        for value in (5, 50, 500):
            hist.observe(value)
        text = registry.to_prometheus()
        assert 'repro_h_bucket{le="10"} 1' in text
        assert 'repro_h_bucket{le="100"} 2' in text
        assert 'repro_h_bucket{le="+Inf"} 3' in text

    def test_default_bounds_are_log_spaced_and_sorted(self):
        assert list(DEFAULT_BOUNDS) == sorted(DEFAULT_BOUNDS)
        assert DEFAULT_BOUNDS[0] == 100
        assert DEFAULT_BOUNDS[-1] == 10_000_000_000
