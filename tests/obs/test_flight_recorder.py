"""The divergence flight recorder: bounded rings, and postmortems that
name the diverging replica, syscall, and mismatched argument."""

import json

from repro.bench.obs import run_seeded_divergence
from repro.core import DegradationPolicy, Level, ReMon, ReMonConfig
from repro.faults import CrashFault, FaultInjector, FaultPlan
from repro.guest.program import Program
from repro.kernel import Kernel
from repro.obs import FlightRecorder, ObsConfig


class TestRingBounds:
    def test_rings_are_bounded_per_replica(self):
        recorder = FlightRecorder(ring_size=4)
        for index in range(10):
            recorder.record(0, index, "syscall", "getpid", vtid=0)
        recorder.record(1, 99, "syscall", "open", vtid=0)
        tails = recorder.tails()
        assert [event["t"] for event in tails[0]] == [6, 7, 8, 9]
        assert len(tails[1]) == 1
        assert recorder.recorded == 11
        assert recorder.dropped == 6

    def test_tails_snapshot_is_detached(self):
        recorder = FlightRecorder(ring_size=4)
        recorder.record(0, 1, "syscall", "read")
        tails = recorder.tails()
        recorder.record(0, 2, "syscall", "write")
        assert len(tails[0]) == 1


class TestSeededDivergencePostmortem:
    def test_postmortem_names_replica_syscall_and_argument(self):
        """The acceptance scenario: replica 1 opens /data/b where the
        master opened /data/a; the postmortem must say exactly that."""
        result, _mvee = run_seeded_divergence()
        postmortem = result.postmortem
        assert postmortem is not None
        assert postmortem.reason == "divergence"
        assert postmortem.replica == 1
        assert postmortem.syscall == "open"
        assert postmortem.detected_by == "ghumvee"
        assert "arg 0 differs in replica 1" in postmortem.detail
        assert "/data/b" in postmortem.detail and "/data/a" in postmortem.detail
        assert len(postmortem.replica_args) == 2

    def test_postmortem_tails_cover_both_replicas(self):
        result, mvee = run_seeded_divergence()
        postmortem = result.postmortem
        assert set(postmortem.tails) == {0, 1}
        for tail in postmortem.tails.values():
            assert 0 < len(tail) <= mvee.obs.config.ring_size
            assert all(event["kind"] in ("syscall", "rendezvous", "fault")
                       for event in tail)
        # The diverging call itself is the last thing replica 1 saw.
        assert postmortem.tails[1][-1]["name"] == "open"

    def test_postmortem_carries_attribution_and_backoff(self):
        result, _mvee = run_seeded_divergence()
        postmortem = result.postmortem
        assert postmortem.attribution["replica"] == 1
        assert postmortem.attribution["master_index"] == 0
        assert "rendezvous_backoff_retries" in postmortem.backoff
        assert "rb_backoff_retries" in postmortem.backoff

    def test_postmortem_serializes_both_ways(self):
        result, _mvee = run_seeded_divergence()
        postmortem = result.postmortem
        encoded = json.dumps(postmortem.to_json())
        decoded = json.loads(encoded)
        assert decoded["replica"] == 1 and decoded["syscall"] == "open"
        text = postmortem.to_text()
        assert "diverging replica: 1" in text
        assert "replica 1 tail" in text

    def test_tiny_ring_still_keeps_the_fatal_call(self):
        result, _mvee = run_seeded_divergence(
            ObsConfig(flight_recorder=True, ring_size=2)
        )
        postmortem = result.postmortem
        assert all(len(tail) <= 2 for tail in postmortem.tails.values())
        assert postmortem.tails[1][-1]["name"] == "open"


class TestQuarantinePostmortem:
    def test_quarantine_produces_attributed_postmortem(self):
        def main(ctx):
            for _ in range(40):
                _pid = yield ctx.sys.getpid()
            return 0

        kernel = Kernel()
        plan = FaultPlan(faults=[CrashFault(replica=1, after_syscalls=10)])
        FaultInjector(plan).install(kernel)
        mvee = ReMon(
            kernel,
            Program("crashy", main),
            ReMonConfig(
                replicas=3,
                level=Level.NONSOCKET_RW,
                degradation=DegradationPolicy(min_quorum=2),
                obs=ObsConfig(flight_recorder=True),
            ),
        )
        result = mvee.run(max_steps=80_000_000)
        assert not result.diverged, result.divergence
        assert result.quarantined_replicas == [1]
        postmortem = result.postmortem
        assert postmortem is not None
        assert postmortem.reason == "quarantine"
        assert postmortem.replica == 1
        assert postmortem.attribution["quarantined"] == [1]
        # The injected crash itself is on the quarantined replica's tail.
        assert any(event["kind"] == "fault"
                   for event in postmortem.tails[1])
