"""Property sweep: ReMon must be transparent for *any* benign workload.

For randomly drawn syscall mixes, thread counts, levels and replica
counts, a run must (1) not diverge, (2) finish with identical exit
codes, (3) never be faster than native, and (4) route every call to
exactly one of the two monitors.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.native import run_native
from repro.core import Level, ReMon, ReMonConfig
from repro.kernel import Kernel
from repro.workloads.synthetic import CATEGORIES, CategoryMix, SyntheticWorkload, build_program

mix_strategy = st.fixed_dictionaries(
    {},
    optional={
        category: st.integers(min_value=500, max_value=20_000)
        for category in CATEGORIES
    },
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
@given(
    rates=mix_strategy,
    threads=st.integers(min_value=1, max_value=3),
    level=st.sampled_from(
        [Level.BASE, Level.NONSOCKET_RO, Level.NONSOCKET_RW, Level.SOCKET_RW]
    ),
    replicas=st.integers(min_value=2, max_value=3),
)
def test_remon_transparent_for_random_workloads(rates, threads, level, replicas):
    workload = SyntheticWorkload(
        name="prop",
        native_ms=1.5,
        mix=CategoryMix({k: float(v) for k, v in rates.items()}),
        threads=threads,
        seed=17,
    )
    native = run_native(build_program(workload))
    assert native.exit_code == 0

    kernel = Kernel()
    mvee = ReMon(
        kernel,
        build_program(workload),
        ReMonConfig(replicas=replicas, level=level),
    )
    result = mvee.run(max_steps=100_000_000)

    assert not result.diverged, result.divergence
    assert result.exit_codes == [0] * replicas
    # Monitoring can only slow things down.
    assert result.wall_time_ns >= native.wall_time_ns * 0.999
    # Conservation: every broker-routed call ends up somewhere sane.
    issued = result.stats["broker_forwarded_to_ipmon"]
    completed = result.stats["ipmon_unmonitored_calls"]
    forwarded = (
        result.stats["ipmon_forwarded_conditional"]
        + result.stats["ipmon_forwarded_signals"]
        + result.stats["ipmon_forwarded_size"]
    )
    assert completed + forwarded <= issued
    # Tokens are issued per forward and never multiplied.
    assert result.stats["broker_tokens_issued"] == issued
