"""GHUMVEE's authoritative fd metadata, observed through real runs."""

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Program
from repro.kernel import Kernel
from repro.kernel import constants as C


def run(program, level=Level.NONSOCKET_RW):
    kernel = Kernel()
    mvee = ReMon(kernel, program, ReMonConfig(replicas=2, level=level))
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged, result.divergence
    return mvee, result


def test_open_records_kind_in_file_map():
    probes = {}

    def main(ctx):
        libc = ctx.libc
        reg = yield from libc.open("/data/f")
        sock = yield from libc.socket()
        rfd, wfd = yield from libc.pipe()
        epfd = yield from libc.epoll_create()
        tfd = yield ctx.sys.timerfd_create(C.CLOCK_MONOTONIC, 0)
        probes.setdefault("fds", (reg, sock, rfd, wfd, epfd, tfd))
        return 0

    mvee, _ = run(Program("kinds", main, files={"/data/f": b"x"}))
    reg, sock, rfd, wfd, epfd, tfd = probes["fds"]
    meta = mvee.fd_metadata
    assert meta.kind_of(reg) == "reg"
    assert meta.kind_of(sock) == "sock"
    assert meta.kind_of(rfd) == "pipe"
    assert meta.kind_of(wfd) == "pipe"
    assert meta.kind_of(epfd) == "epoll"
    assert meta.kind_of(tfd) == "timerfd"


def test_listen_upgrades_socket_kind():
    probes = {}

    def main(ctx):
        libc = ctx.libc
        sock = yield from libc.socket()
        yield from libc.bind(sock, "0.0.0.0", 7500)
        yield from libc.listen(sock)
        # A follow-up monitored call re-records via FD_CREATE paths:
        client = yield from libc.socket()
        yield from libc.connect(client, ctx.process.host_ip, 7500)
        conn = yield from libc.accept(sock)
        probes["conn"] = conn
        return 0

    mvee, _ = run(Program("listen", main))
    assert mvee.fd_metadata.kind_of(probes["conn"]) == "sock"


def test_close_clears_metadata():
    probes = {}

    def main(ctx):
        fd = yield from ctx.libc.open("/data/f")
        probes["fd"] = fd
        yield from ctx.libc.close(fd)
        return 0

    mvee, _ = run(Program("close-meta", main, files={"/data/f": b"x"}))
    assert mvee.fd_metadata.kind_of(probes["fd"]) is None


def test_fcntl_setfl_updates_nonblocking_bit():
    probes = {}

    def main(ctx):
        libc = ctx.libc
        sock = yield from libc.socket()
        probes["fd"] = sock
        yield from libc.set_nonblocking(sock, True)
        return 0

    mvee, _ = run(Program("nb-meta", main))
    assert mvee.fd_metadata.is_nonblocking(probes["fd"])


def test_dup_propagates_metadata():
    probes = {}

    def main(ctx):
        libc = ctx.libc
        sock = yield from libc.socket()
        dup = yield ctx.sys.dup(sock)
        probes["dup"] = dup
        return 0

    mvee, _ = run(Program("dup-meta", main))
    assert mvee.fd_metadata.kind_of(probes["dup"]) == "sock"


def test_proc_maps_fd_marked_special():
    probes = {}

    def main(ctx):
        fd = yield from ctx.libc.open("/proc/self/maps")
        probes["fd"] = fd
        return 0

    mvee, _ = run(Program("special-meta", main))
    info = mvee.fd_metadata.info(probes["fd"])
    assert info is not None and info.special


def test_file_map_drives_ipmon_policy_decision():
    """End to end: the metadata GHUMVEE records is what IP-MON's
    MAYBE_CHECKED consults — reads on the regular file fly through
    IP-MON while reads on the socket are forwarded."""

    def main(ctx):
        libc = ctx.libc
        reg = yield from libc.open("/data/f")
        listener = yield from libc.socket()
        yield from libc.bind(listener, "0.0.0.0", 7501)
        yield from libc.listen(listener)
        client = yield from libc.socket()
        yield from libc.connect(client, ctx.process.host_ip, 7501)
        conn = yield from libc.accept(listener)
        yield from libc.send(client, b"z" * 64)
        for _ in range(5):
            ret, _ = yield from libc.read(reg, 32)
        ret, _ = yield from libc.read(conn, 64)
        return 0

    mvee, result = run(
        Program("policy-drive", main, files={"/data/f": bytes(256)}),
        level=Level.NONSOCKET_RW,
    )
    assert result.stats["ipmon_unmonitored_calls"] >= 5
    assert result.stats["ipmon_forwarded_conditional"] >= 1
