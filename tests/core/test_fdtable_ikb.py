"""Monitor fd metadata / file map, and IK-B broker unit tests."""

import pytest

from repro.core.fdtable import FileMapView, MonitorFdTable
from repro.core.ikb import InKernelBroker
from repro.kernel import Kernel
from repro.kernel.syscalls import SyscallRequest


class TestMonitorFdTable:
    def test_stdio_prepopulated(self):
        table = MonitorFdTable()
        assert table.kind_of(0) == "chr"
        assert table.kind_of(1) == "chr"

    def test_open_close_cycle(self):
        table = MonitorFdTable()
        table.record_open(5, "sock", nonblocking=True)
        assert table.kind_of(5) == "sock"
        assert table.is_nonblocking(5)
        table.record_close(5)
        assert table.kind_of(5) is None

    def test_dup_copies_metadata(self):
        table = MonitorFdTable()
        table.record_open(4, "pipe")
        table.record_dup(4, 9)
        assert table.kind_of(9) == "pipe"

    def test_filemap_page_bytes(self):
        table = MonitorFdTable()
        table.record_open(7, "sock", nonblocking=True)
        view = FileMapView(table.region)
        assert view.fd_kind(7) == "sock"
        assert view.is_nonblocking(7)
        table.record_nonblocking(7, False)
        assert not view.is_nonblocking(7)

    def test_special_files_marked(self):
        table = MonitorFdTable()
        table.record_open(3, "reg", special=True)
        view = FileMapView(table.region)
        assert view.fd_kind(3) == "special"

    def test_may_block_prediction(self):
        table = MonitorFdTable()
        table.record_open(3, "reg")
        table.record_open(4, "sock")
        table.record_open(5, "sock", nonblocking=True)
        view = FileMapView(table.region)
        assert not view.may_block("read", 3)  # regular files never block
        assert view.may_block("read", 4)
        assert not view.may_block("read", 5)  # O_NONBLOCK
        assert not view.may_block("read", 99)  # unknown fd

    def test_out_of_range_fd(self):
        view = FileMapView(MonitorFdTable().region)
        assert view.fd_kind(100_000) is None


class TestBrokerVerifier:
    def make(self):
        kernel = Kernel()
        broker = InKernelBroker(kernel)
        process = kernel.create_process("p")
        thread = kernel.create_thread(process)
        return kernel, broker, thread

    def drive(self, gen):
        try:
            while True:
                next(gen)
        except StopIteration as stop:
            return stop.value

    def test_restart_without_outstanding_token_fails(self):
        kernel, broker, thread = self.make()
        req = SyscallRequest("getpid", (), site="ipmon", token=999)
        ok, _ = self.drive(broker.restart_call(thread, req))
        assert ok is False
        assert broker.stats["verification_failures"] == 1

    def test_token_is_single_use(self):
        kernel, broker, thread = self.make()
        broker._outstanding[thread.tid] = (42, "getpid")
        req = SyscallRequest("getpid", (), site="ipmon", token=42)
        ok, result = self.drive(broker.restart_call(thread, req))
        assert ok is True and result == thread.process.pid
        # Replay: the token is gone.
        ok, _ = self.drive(broker.restart_call(thread, req))
        assert ok is False

    def test_wrong_token_value_rejected(self):
        kernel, broker, thread = self.make()
        broker._outstanding[thread.tid] = (42, "getpid")
        req = SyscallRequest("getpid", (), site="ipmon", token=43)
        ok, _ = self.drive(broker.restart_call(thread, req))
        assert ok is False

    def test_different_syscall_than_authorized_rejected(self):
        """§3: 'if IP-MON executes a different system call ... IK-B
        revokes the token'."""
        kernel, broker, thread = self.make()
        broker._outstanding[thread.tid] = (42, "getpid")
        req = SyscallRequest("getuid", (), site="ipmon", token=42)
        ok, _ = self.drive(broker.restart_call(thread, req))
        assert ok is False

    def test_wrong_site_rejected(self):
        """The restart must originate at IP-MON's entry point."""
        kernel, broker, thread = self.make()
        broker._outstanding[thread.tid] = (42, "getpid")
        req = SyscallRequest("getpid", (), site="app", token=42)
        ok, _ = self.drive(broker.restart_call(thread, req))
        assert ok is False

    def test_revoke_token(self):
        kernel, broker, thread = self.make()
        broker._outstanding[thread.tid] = (42, "getpid")
        broker.revoke_token(thread)
        assert thread.tid not in broker._outstanding
        assert broker.stats["tokens_revoked"] == 1

    def test_intercept_ignores_unregistered_processes(self):
        kernel, broker, thread = self.make()
        assert broker.intercept(thread, SyscallRequest("read", (0, 0, 0))) is None

    def test_registration_syscall_validates_rb_pointer(self):
        """§3.5: 'The RB pointer must be valid and must point to a
        writable region.'"""
        from repro.kernel.syscalls import SYSCALL_TABLE

        kernel, broker, thread = self.make()
        thread.process.ipmon_replica = object()
        handler = SYSCALL_TABLE["ipmon_register"]
        result = handler(
            kernel, thread, frozenset({"read"}), 0xDEAD0000, lambda *a: None
        )
        assert result == -14  # -EFAULT
