"""End-to-end MVEE runs: replicas execute real programs in lockstep."""

import pytest

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.kernel import constants as C


def run_mvee(program, replicas=2, level=Level.NONSOCKET_RW, kernel=None, **cfg):
    kernel = kernel or Kernel()
    config = ReMonConfig(replicas=replicas, level=level, **cfg)
    mvee = ReMon(kernel, program, config)
    result = mvee.run(max_steps=5_000_000)
    return kernel, mvee, result


def file_io_program():
    def main(ctx):
        libc = ctx.libc
        fd = yield from libc.open("/data/input.txt")
        assert fd >= 0, fd
        ret, data = yield from libc.read(fd, 64)
        assert data == b"payload", (ret, data)
        yield from libc.close(fd)
        out = yield from libc.open("/tmp/out.txt", C.O_WRONLY | C.O_CREAT)
        yield from libc.write(out, b"result:" + data)
        yield from libc.close(out)
        return 7

    return Program("fileio", main, files={"/data/input.txt": b"payload"})


def test_two_replicas_run_to_completion():
    _k, mvee, result = run_mvee(file_io_program())
    assert not result.diverged, result.divergence
    assert result.exit_codes == [7, 7]
    assert result.monitored_calls > 0


def test_replicas_have_diversified_layouts():
    _k, mvee, _result = run_mvee(file_io_program())
    bases = {p.space.mmap_base for p in mvee.group.processes}
    assert len(bases) == 2
    from repro.diversity.dcl import layouts_code_disjoint

    assert layouts_code_disjoint(mvee.layouts)


def test_only_master_performs_external_writes():
    kernel, mvee, result = run_mvee(file_io_program())
    assert not result.diverged
    node, err = kernel.fs.resolve("/tmp/out.txt")
    assert err == 0
    assert bytes(node.data) == b"result:payload"


def test_unmonitored_calls_happen_at_relaxed_level():
    _k, _m, relaxed = run_mvee(file_io_program(), level=Level.NONSOCKET_RW)
    assert relaxed.unmonitored_calls > 0

    _k2, _m2, strict = run_mvee(file_io_program(), level=Level.NO_IPMON)
    assert strict.unmonitored_calls == 0
    assert strict.monitored_calls > relaxed.monitored_calls


def test_no_ipmon_is_slower_than_relaxed():
    _k, _m, strict = run_mvee(file_io_program(), level=Level.NO_IPMON)
    _k2, _m2, relaxed = run_mvee(file_io_program(), level=Level.NONSOCKET_RW)
    assert not strict.diverged and not relaxed.diverged
    assert strict.wall_time_ns > relaxed.wall_time_ns


def test_single_replica_mvee_works():
    _k, _m, result = run_mvee(file_io_program(), replicas=1)
    assert not result.diverged
    assert result.exit_codes == [7]


def test_three_replicas():
    _k, _m, result = run_mvee(file_io_program(), replicas=3)
    assert not result.diverged, result.divergence
    assert result.exit_codes == [7, 7, 7]


def test_compute_heavy_program_low_overhead():
    def main(ctx):
        for _ in range(20):
            yield Compute(100_000)
            _pid = yield ctx.sys.getpid()
        return 0

    program = Program("cpu", main)
    kernel, _m, result = run_mvee(program)
    assert not result.diverged


def test_getpid_consistent_across_replicas():
    seen = []

    def main(ctx):
        pid = yield ctx.sys.getpid()
        seen.append((ctx.process.replica_index, pid))
        return 0

    _k, mvee, result = run_mvee(Program("pids", main))
    assert not result.diverged
    pids = {pid for _idx, pid in seen}
    # The monitor replicates the master's pid to keep results consistent.
    assert len(pids) == 1
    assert pids == {mvee.group.master().pid}


def test_gettimeofday_consistent_across_replicas():
    seen = {}

    def main(ctx):
        yield Compute(1000)
        ns = yield from ctx.libc.clock_gettime(C.CLOCK_REALTIME)
        seen[ctx.process.replica_index] = ns
        return 0

    _k, _m, result = run_mvee(Program("time", main))
    assert not result.diverged
    assert seen[0] == seen[1]


def test_threads_under_mvee():
    def main(ctx):
        libc = ctx.libc
        rfd, wfd = yield from libc.pipe()

        def child(cctx, arg):
            def body():
                yield Compute(5_000)
                ret = yield from cctx.libc.write(arg, b"hi")
                assert ret == 2, ret
            return body()

        yield ctx.spawn_thread(child, wfd)
        ret, data = yield from libc.read(rfd, 16)
        assert data == b"hi", data
        return 0

    _k, _m, result = run_mvee(Program("threads", main))
    assert not result.diverged, result.divergence


def test_sockets_under_mvee_against_external_client():
    from repro.guest import GuestRuntime

    kernel = Kernel()
    transcript = {}

    def server_main(ctx):
        libc = ctx.libc
        fd = yield from libc.socket()
        assert (yield from libc.bind(fd, "0.0.0.0", 9000)) == 0
        assert (yield from libc.listen(fd)) == 0
        conn = yield from libc.accept(fd)
        assert conn >= 0, conn
        ret, data = yield from libc.recv(conn, 64)
        yield from libc.send(conn, b"echo:" + data)
        yield from libc.close(conn)
        return 0

    def client_main(ctx):
        libc = ctx.libc
        yield from libc.nanosleep(3_000_000)
        fd = yield from libc.socket()
        ret = yield from libc.connect(fd, "10.0.0.1", 9000)
        assert ret == 0, ret
        yield from libc.send(fd, b"hello")
        ret, data = yield from libc.recv(fd, 64)
        transcript["reply"] = data
        return 0

    program = Program("echo-server", server_main)
    config = ReMonConfig(replicas=2, level=Level.SOCKET_RW)
    mvee = ReMon(kernel, program, config)
    client_process = kernel.create_process("client", host_ip="10.0.0.99")
    GuestRuntime(kernel, client_process, Program("client", client_main)).start()
    result = mvee.run(max_steps=5_000_000)
    assert not result.diverged, result.divergence
    assert transcript["reply"] == b"echo:hello"
    assert result.exit_codes == [0, 0]


@pytest.mark.parametrize("level", list(Level))
def test_all_levels_complete(level):
    _k, _m, result = run_mvee(file_io_program(), level=level)
    assert not result.diverged, (level, result.divergence)
    assert result.exit_codes == [7, 7]
