"""Record/replay agent tests (§2.3)."""

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Compute, Program
from repro.kernel import Kernel


def racy_program(rounds=6, logs=None):
    """Two threads contend on a mutex and append to a shared log; the
    acquisition order determines the log content."""
    logs = logs if logs is not None else {}

    def main(ctx):
        libc = ctx.libc
        mutex = yield from libc.mutex()
        log_addr = yield from libc.malloc(256)
        pos_addr = yield from libc.malloc(4)
        ctx.mem.write_u32(pos_addr, 0)
        done = yield from libc.malloc(4)
        ctx.mem.write_u32(done, 0)

        def record(cctx, tag):
            pos = cctx.mem.read_u32(pos_addr)
            cctx.mem.write(log_addr + pos, tag)
            cctx.mem.write_u32(pos_addr, pos + 1)

        def worker(cctx, payload):
            tag, m = payload

            def body():
                for _ in range(rounds):
                    yield from m.lock(cctx)
                    record(cctx, tag)
                    yield Compute(500)
                    yield from m.unlock(cctx)
                cctx.mem.write_u32(done, cctx.mem.read_u32(done) + 1)
                yield from cctx.libc.futex_wake(done, 1)

            return body()

        yield ctx.spawn_thread(worker, (b"A", mutex))
        yield ctx.spawn_thread(worker, (b"B", mutex))
        while ctx.mem.read_u32(done) < 2:
            current = ctx.mem.read_u32(done)
            yield from libc.futex_wait(done, current)
        length = ctx.mem.read_u32(pos_addr)
        index = getattr(ctx.process, "replica_index", 0)
        logs[index] = ctx.mem.read(log_addr, length)
        return 0

    program = Program("racy", main)
    program.logs = logs
    return program


def test_rr_agent_records_and_replays_sync_order():
    kernel = Kernel()
    logs = {}
    program = racy_program(logs=logs)
    mvee = ReMon(kernel, program, ReMonConfig(replicas=2, level=Level.NONSOCKET_RW))
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged, result.divergence
    assert result.stats["rr_recorded"] > 0
    assert result.stats["rr_replayed"] == result.stats["rr_recorded"]
    assert logs[0] == logs[1]
    assert set(logs[0]) <= {ord("A"), ord("B")}
    assert len(logs[0]) == 12


def test_rr_agent_handles_three_replicas():
    kernel = Kernel()
    logs = {}
    program = racy_program(rounds=4, logs=logs)
    mvee = ReMon(kernel, program, ReMonConfig(replicas=3))
    result = mvee.run(max_steps=40_000_000)
    assert not result.diverged, result.divergence
    assert logs[0] == logs[1] == logs[2]


def test_rr_agent_disabled_for_single_replica():
    kernel = Kernel()
    mvee = ReMon(kernel, racy_program(rounds=2), ReMonConfig(replicas=1))
    assert mvee.rr_agent is None
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged


def test_sync_point_is_free_natively():
    from tests.conftest import run_guest

    _k, _p, code = run_guest(racy_program(rounds=3))
    assert code == 0
