"""Replication buffer unit tests (paper §3.2, §3.7)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.rb import (
    FLAG_FORWARDED,
    FLAG_MAY_BLOCK,
    HEADER_SIZE,
    STATE_ALLOCATED,
    STATE_ARGS_READY,
    STATE_RESULTS_READY,
    ReplicationBuffer,
)
from repro.sim import Simulator


def make_rb(size=1 << 16, lanes=4):
    return ReplicationBuffer(size=size, lanes=lanes)


class TestRecordLifecycle:
    def test_record_state_machine(self):
        rb = make_rb()
        lane = rb.lane(0)
        record = lane.reserve(64)
        assert record.state() == STATE_ALLOCATED
        record.write_args(b"argblob", FLAG_MAY_BLOCK)
        assert record.state() == STATE_ARGS_READY
        assert record.read_args() == b"argblob"
        assert record.flags() == FLAG_MAY_BLOCK
        record.write_results(42, b"payload")
        assert record.state() == STATE_RESULTS_READY
        result, payload = record.read_results()
        assert (result, payload) == (42, b"payload")

    def test_negative_results_roundtrip(self):
        rb = make_rb()
        record = rb.lane(0).reserve(32)
        record.write_args(b"", 0)
        record.write_results(-11, b"")  # -EAGAIN
        result, payload = record.read_results()
        assert result == -11

    def test_record_bytes_live_in_region(self):
        """The payload really occupies the shared region: an attacker
        with the region can tamper (the §4 scenario)."""
        rb = make_rb()
        lane = rb.lane(0)
        record = lane.reserve(64)
        record.write_args(b"sensitive-args", 0)
        assert b"sensitive-args" in bytes(rb.region.data)
        # Tampering through the region is visible through the record.
        idx = bytes(rb.region.data).index(b"sensitive-args")
        rb.region.data[idx : idx + 4] = b"EVIL"
        assert record.read_args().startswith(b"EVIL")

    def test_waiter_counting(self):
        rb = make_rb()
        record = rb.lane(0).reserve(32)
        record.write_args(b"", 0)
        assert record.waiters() == 0
        record.add_waiter(+1)
        record.add_waiter(+1)
        assert record.waiters() == 2
        record.add_waiter(-1)
        assert record.waiters() == 1
        record.add_waiter(-5)
        assert record.waiters() == 0  # clamped

    def test_lanes_do_not_overlap_and_respect_header(self):
        rb = make_rb(size=1 << 16, lanes=4)
        lanes = [rb.lane(v) for v in range(4)]
        assert all(lane is not None for lane in lanes)
        ranges = sorted((l.base, l.base + l.size) for l in lanes)
        assert ranges[0][0] >= ReplicationBuffer.HEADER_RESERVED
        for (s1, e1), (s2, _e2) in zip(ranges, ranges[1:]):
            assert e1 <= s2
        assert ranges[-1][1] <= rb.size

    def test_lane_limit(self):
        rb = make_rb(lanes=2)
        assert rb.lane(0) is not None
        assert rb.lane(1) is not None
        assert rb.lane(2) is None


class TestConsumption:
    def test_slave_reads_in_order(self):
        sim = Simulator()
        rb = make_rb()
        lane = rb.lane(0)
        rb.attach_slave_to_lane(lane, 1)
        for i in range(5):
            record = lane.reserve(32)
            record.write_args(b"blob%d" % i, 0)
        seen = []
        while True:
            record = lane.next_record_for(1)
            if record is None:
                break
            seen.append(record.read_args())
            lane.consume(1, sim)
        assert seen == [b"blob%d" % i for i in range(5)]

    def test_slaves_caught_up(self):
        sim = Simulator()
        rb = make_rb()
        lane = rb.lane(0)
        rb.attach_slave_to_lane(lane, 1)
        rb.attach_slave_to_lane(lane, 2)
        lane.reserve(32).write_args(b"x", 0)
        assert not lane.slaves_caught_up()
        lane.consume(1, sim)
        assert not lane.slaves_caught_up()
        lane.consume(2, sim)
        assert lane.slaves_caught_up()

    def test_reset_clears_positions(self):
        sim = Simulator()
        rb = make_rb()
        lane = rb.lane(0)
        rb.attach_slave_to_lane(lane, 1)
        for _ in range(3):
            lane.reserve(128).write_args(b"y", 0)
            lane.consume(1, sim)
        used_before = lane.master_offset
        assert used_before > 0
        lane.reset(sim)
        assert lane.master_offset == 0
        assert lane.master_seq == 0
        assert lane.consumed[1] == 0
        assert lane.resets == 1

    def test_has_room_accounting(self):
        rb = make_rb(size=8192, lanes=2)
        lane = rb.lane(0)
        record_bytes = 256
        count = 0
        while lane.has_room(record_bytes):
            lane.reserve(record_bytes)
            count += 1
        assert count == lane.size // (HEADER_SIZE + record_bytes)
        assert not lane.has_room(record_bytes)

    def test_fits_rejects_oversized_records(self):
        rb = make_rb(size=8192, lanes=2)
        lane = rb.lane(0)
        assert lane.fits(100)
        assert not lane.fits(lane.size)


@settings(max_examples=30, deadline=None)
@given(
    blobs=st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=10),
    payloads=st.lists(st.binary(min_size=0, max_size=200), min_size=1, max_size=10),
)
def test_property_records_are_isolated(blobs, payloads):
    """Adjacent records never corrupt each other."""
    rb = make_rb(size=1 << 18, lanes=2)
    lane = rb.lane(0)
    records = []
    for blob, payload in zip(blobs, payloads):
        record = lane.reserve(len(blob) + len(payload) + 16)
        record.write_args(blob, 0)
        record.write_results(len(payload), payload)
        records.append((record, blob, payload))
    for record, blob, payload in records:
        assert record.read_args() == blob
        result, got = record.read_results()
        assert result == len(payload)
        assert got == payload


def test_signals_pending_flag_in_reserved_header():
    from repro.core.rb import ReplicationBuffer

    rb = ReplicationBuffer(size=1 << 16, lanes=2)
    lane = rb.lane(0)
    record = lane.reserve(64)
    record.write_args(b"A" * 40, FLAG_FORWARDED)
    # The flag byte (offset 0) is outside every lane.
    assert rb.region.data[0] == 0
    rb.region.data[0] = 1
    assert record.read_args() == b"A" * 40  # record untouched
