"""Temporal exemption policy unit tests (§3.4)."""

from repro.core.temporal import TemporalPolicy
from repro.kernel.syscalls import SyscallRequest


def req(fd=3):
    return SyscallRequest("read", (fd, 0x1000, 64))


class TestEligibility:
    def test_not_eligible_before_threshold(self):
        policy = TemporalPolicy(threshold=3)
        policy.record_approval(req(), 0)
        policy.record_approval(req(), 10)
        assert not policy.eligible(req(), 20)
        policy.record_approval(req(), 20)
        assert policy.eligible(req(), 30)

    def test_window_expiry_trims_history(self):
        policy = TemporalPolicy(threshold=2, window_ns=1000)
        policy.record_approval(req(), 0)
        policy.record_approval(req(), 100)
        assert policy.eligible(req(), 500)
        assert not policy.eligible(req(), 5_000)  # approvals aged out

    def test_signature_distinguishes_fd(self):
        policy = TemporalPolicy(threshold=1)
        policy.record_approval(req(fd=3), 0)
        assert policy.eligible(req(fd=3), 10)
        assert not policy.eligible(req(fd=4), 10)

    def test_signature_distinguishes_syscall(self):
        policy = TemporalPolicy(threshold=1)
        policy.record_approval(req(), 0)
        other = SyscallRequest("write", (3, 0x1000, 64))
        assert not policy.eligible(other, 10)

    def test_non_integer_first_arg_tolerated(self):
        policy = TemporalPolicy(threshold=1)
        weird = SyscallRequest("ipmon_register", (frozenset({"read"}), 0, None))
        policy.record_approval(weird, 0)
        assert policy.eligible(weird, 10)


class TestExemptionDecisions:
    def test_deterministic_policy_always_exempts_when_eligible(self):
        policy = TemporalPolicy(threshold=2, deterministic=True)
        for t in range(2):
            policy.record_approval(req(), t)
        assert all(policy.should_exempt(req(), 100) for _ in range(20))
        assert policy.stats["exemptions"] == 20

    def test_stochastic_policy_exempts_at_configured_rate(self):
        policy = TemporalPolicy(threshold=1, exempt_probability=0.5, seed=42)
        policy.record_approval(req(), 0)
        outcomes = [policy.should_exempt(req(), 10) for _ in range(400)]
        rate = sum(outcomes) / len(outcomes)
        assert 0.40 <= rate <= 0.60

    def test_zero_probability_never_exempts(self):
        policy = TemporalPolicy(threshold=1, exempt_probability=0.0)
        policy.record_approval(req(), 0)
        assert not any(policy.should_exempt(req(), 10) for _ in range(50))

    def test_ineligible_never_exempts_even_deterministic(self):
        policy = TemporalPolicy(threshold=5, deterministic=True)
        assert not policy.should_exempt(req(), 10)
        assert policy.stats["declines"] == 1

    def test_seeded_rng_deterministic(self):
        a = TemporalPolicy(threshold=1, exempt_probability=0.5, seed=7)
        b = TemporalPolicy(threshold=1, exempt_probability=0.5, seed=7)
        a.record_approval(req(), 0)
        b.record_approval(req(), 0)
        assert [a.should_exempt(req(), 1) for _ in range(50)] == [
            b.should_exempt(req(), 1) for _ in range(50)
        ]
