"""IP-MON mechanism tests: dispositions, waiting strategies, stats."""

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.kernel import constants as C


def run_mvee(program, level=Level.NONSOCKET_RW, replicas=2, **cfg):
    kernel = Kernel()
    mvee = ReMon(kernel, program, ReMonConfig(replicas=replicas, level=level, **cfg))
    result = mvee.run(max_steps=40_000_000)
    return kernel, mvee, result


class TestDispositions:
    def test_futex_executes_in_every_replica(self):
        """futex is ALLCALL: a master-only futex_wake could never wake a
        slave's threads."""
        wakes = {}

        def main(ctx):
            libc = ctx.libc
            word = yield from libc.malloc(4)
            ctx.mem.write_u32(word, 0)
            done = yield from libc.malloc(4)
            ctx.mem.write_u32(done, 0)

            def sleeper(cctx, arg):
                def body():
                    yield from cctx.libc.futex_wait(arg, 0)
                    cctx.mem.write_u32(done, 1)
                    yield from cctx.libc.futex_wake(done, 1)

                return body()

            yield ctx.spawn_thread(sleeper, word)
            yield Compute(200_000)
            ctx.mem.write_u32(word, 1)
            woken = yield from libc.futex_wake(word, 1)
            wakes.setdefault(ctx.process.replica_index, woken)
            while ctx.mem.read_u32(done) == 0:
                yield from libc.futex_wait(done, 0)
            return 0

        _k, _m, result = run_mvee(Program("allcall", main))
        assert not result.diverged, result.divergence
        # Each replica woke its *own* sleeper.
        assert wakes == {0: 1, 1: 1}

    def test_nanosleep_mastercall_keeps_replicas_aligned(self):
        def main(ctx):
            before = yield from ctx.libc.clock_gettime()
            yield from ctx.libc.nanosleep(2_000_000)
            after = yield from ctx.libc.clock_gettime()
            # Time comes from the master, so every replica observes the
            # same elapsed interval.
            assert after - before >= 2_000_000
            return 0

        _k, _m, result = run_mvee(Program("sleep-mc", main), level=Level.BASE)
        assert not result.diverged


class TestConditionalForwarding:
    def socket_reader(self):
        def main(ctx):
            libc = ctx.libc
            listener = yield from libc.socket()
            yield from libc.bind(listener, "0.0.0.0", 7300)
            yield from libc.listen(listener)
            client = yield from libc.socket()
            assert (yield from libc.connect(client, ctx.process.host_ip, 7300)) == 0
            conn = yield from libc.accept(listener)
            yield from libc.send(client, b"D" * 640)
            for _ in range(10):
                ret, _ = yield from libc.read(conn, 64)
                assert ret == 64
            return 0

        return Program("sock-read", main)

    def test_socket_reads_forwarded_below_socket_ro(self):
        _k, _m, result = run_mvee(self.socket_reader(), level=Level.NONSOCKET_RW)
        assert not result.diverged
        assert result.stats["ipmon_forwarded_conditional"] >= 10

    def test_socket_reads_unmonitored_at_socket_ro(self):
        _k, _m, result = run_mvee(self.socket_reader(), level=Level.SOCKET_RO)
        assert not result.diverged
        assert result.stats["ipmon_forwarded_conditional"] == 0

    def test_unsafe_fcntl_commands_forwarded(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/f")
            before = ctx.kernel.ikb.stats["forwarded_to_ipmon"]
            flags = yield ctx.sys.fcntl(fd, C.F_GETFL, 0)  # safe: query
            after_query = ctx.kernel.ikb.stats["forwarded_to_ipmon"]
            assert after_query > before
            monitored_before = ctx.process.kernel.ikb.stats["forwarded_to_monitor"]
            yield ctx.sys.fcntl(fd, C.F_SETFL, flags | C.O_NONBLOCK)  # mutating
            monitored_after = ctx.process.kernel.ikb.stats["forwarded_to_monitor"]
            assert monitored_after > monitored_before
            return 0

        _k, _m, result = run_mvee(Program("fcntl-split", main, files={"/data/f": b"x"}))
        assert not result.diverged


class TestWaitingStrategies:
    def blocking_reader(self, rounds=5):
        """Master blocks in reads on a slowly-fed pipe, so slaves use
        the futex condvar path."""

        def main(ctx):
            libc = ctx.libc
            rfd, wfd = yield from libc.pipe()

            def feeder(cctx, arg):
                def body():
                    for _ in range(rounds):
                        yield from cctx.libc.nanosleep(300_000)
                        yield from cctx.libc.write(arg, b"x" * 16)

                return body()

            yield ctx.spawn_thread(feeder, wfd)
            for _ in range(rounds):
                ret, _ = yield from libc.read(rfd, 16)
                assert ret == 16
            return 0

        return Program("blocking-read", main)

    def test_blocking_calls_use_futex_condvars(self):
        _k, _m, result = run_mvee(self.blocking_reader())
        assert not result.diverged
        assert result.stats["ipmon_futex_waits"] >= 1

    def test_force_spin_avoids_futexes(self):
        _k, _m, result = run_mvee(self.blocking_reader(), ipmon_force_spin=True)
        assert not result.diverged
        assert result.stats["ipmon_futex_waits"] == 0
        assert result.stats["ipmon_spin_iterations"] > 0

    def test_wake_skipped_when_no_waiter(self):
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/f")
            for _ in range(20):
                yield Compute(50_000)  # slaves keep pace; no one waits
                yield from libc.pread(fd, 64, 0)
            return 0

        _k, _m, result = run_mvee(Program("nowait", main, files={"/data/f": bytes(128)}))
        assert not result.diverged
        assert result.stats["ipmon_futex_wakes_skipped"] >= 10


class TestStatsPlumbing:
    def test_result_stats_include_all_components(self):
        def main(ctx):
            yield from ctx.libc.stat("/data/f")
            _pid = yield ctx.sys.getpid()
            return 0

        _k, _m, result = run_mvee(Program("stats", main, files={"/data/f": b"x"}))
        assert not result.diverged
        for key in (
            "monitored_calls",
            "broker_tokens_issued",
            "broker_forwarded_to_ipmon",
            "ipmon_unmonitored_calls",
        ):
            assert key in result.stats, key
        assert result.stats["broker_tokens_issued"] >= result.unmonitored_calls

    def test_single_replica_skips_slave_machinery(self):
        def main(ctx):
            for _ in range(5):
                _pid = yield ctx.sys.getpid()
            return 0

        _k, _m, result = run_mvee(Program("solo", main), replicas=1)
        assert not result.diverged
        assert result.unmonitored_calls >= 5
        assert result.stats["ipmon_futex_waits"] == 0
