"""§3.5: GHUMVEE arbitrates (and may veto) IP-MON registration."""

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Program
from repro.kernel import Kernel


def io_program():
    def main(ctx):
        libc = ctx.libc
        fd = yield from libc.open("/data/f")
        for _ in range(10):
            ret, _ = yield from libc.pread(fd, 64, 0)
            assert ret == 64
        return 0

    return Program("veto", main, files={"/data/f": bytes(128)})


def test_vetoed_registration_falls_back_to_cp_monitoring():
    kernel = Kernel()
    mvee = ReMon(
        kernel,
        io_program(),
        ReMonConfig(replicas=2, level=Level.NONSOCKET_RW,
                    allow_ipmon_registration=False),
    )
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged, result.divergence
    assert result.exit_codes == [0, 0]
    # No call ever reached IP-MON: the broker has no registration.
    assert result.unmonitored_calls == 0
    assert result.stats["broker_forwarded_to_ipmon"] == 0
    assert result.monitored_calls >= 10
    assert mvee.ghumvee.stats.get("ipmon_registrations_denied", 0) >= 1


def test_allowed_registration_enables_fast_path():
    kernel = Kernel()
    mvee = ReMon(kernel, io_program(), ReMonConfig(replicas=2))
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged
    assert result.unmonitored_calls >= 10
