"""Deep argument comparison tests (the cross-replica checks)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.comparator import (
    compare_blobs,
    compare_requests,
    serialize_args,
)
from repro.kernel.memory import AddressSpace
from repro.kernel.syscalls import SyscallRequest

RW = 3


def make_spaces():
    """Two address spaces with different layouts (ASLR stand-in)."""
    a = AddressSpace(0x7F00_0000_0000, 0x5555_0000_0000)
    b = AddressSpace(0x7E80_0000_0000, 0x5666_0000_0000)
    return a, b


def put(space, data: bytes) -> int:
    mapping = space.map(None, max(4096, len(data)), RW)
    space.write(mapping.start, data)
    return mapping.start


class TestEquivalence:
    def test_same_buffer_content_different_addresses_match(self):
        a, b = make_spaces()
        addr_a = put(a, b"payload\x00")
        addr_b = put(b, b"payload\x00")
        assert addr_a != addr_b
        req_a = SyscallRequest("write", (3, addr_a, 7))
        req_b = SyscallRequest("write", (3, addr_b, 7))
        mismatch, nbytes = compare_requests([(req_a, a), (req_b, b)])
        assert mismatch is None
        assert nbytes >= 14

    def test_different_buffer_content_detected(self):
        a, b = make_spaces()
        req_a = SyscallRequest("write", (3, put(a, b"AAAA"), 4))
        req_b = SyscallRequest("write", (3, put(b, b"BBBB"), 4))
        mismatch, _ = compare_requests([(req_a, a), (req_b, b)])
        assert mismatch is not None
        assert mismatch.index == 1

    def test_different_fd_detected(self):
        a, b = make_spaces()
        req_a = SyscallRequest("read", (3, put(a, b"x"), 1))
        req_b = SyscallRequest("read", (4, put(b, b"x"), 1))
        mismatch, _ = compare_requests([(req_a, a), (req_b, b)])
        assert mismatch is not None
        assert mismatch.index == 0

    def test_different_syscall_name_detected(self):
        a, b = make_spaces()
        mismatch, _ = compare_requests(
            [(SyscallRequest("getpid", ()), a), (SyscallRequest("getuid", ()), b)]
        )
        assert mismatch is not None

    def test_cstr_paths_compared_by_content(self):
        a, b = make_spaces()
        req_a = SyscallRequest("open", (put(a, b"/etc/passwd\x00"), 0, 0))
        req_b = SyscallRequest("open", (put(b, b"/etc/shadow\x00"), 0, 0))
        mismatch, _ = compare_requests([(req_a, a), (req_b, b)])
        assert mismatch is not None

    def test_output_buffers_compared_by_nullness_only(self):
        a, b = make_spaces()
        # read()'s buffer is an *output*: its contents may differ.
        addr_a = put(a, b"GARBAGE1")
        addr_b = put(b, b"other!!!")
        req_a = SyscallRequest("read", (3, addr_a, 8))
        req_b = SyscallRequest("read", (3, addr_b, 8))
        mismatch, _ = compare_requests([(req_a, a), (req_b, b)])
        assert mismatch is None
        # ... but NULL vs non-NULL differs.
        req_null = SyscallRequest("read", (3, 0, 8))
        mismatch, _ = compare_requests([(req_a, a), (req_null, b)])
        assert mismatch is not None

    def test_callable_shapes(self):
        a, b = make_spaces()
        import repro.kernel.constants as C

        handler = lambda ctx, s: None  # noqa: E731
        other = lambda ctx, s: None  # noqa: E731
        # Two different function objects = same shape (real handlers at
        # different DCL addresses).
        m, _ = compare_requests(
            [
                (SyscallRequest("rt_sigaction", (10, handler, 0)), a),
                (SyscallRequest("rt_sigaction", (10, other, 0)), b),
            ]
        )
        assert m is None
        # Handler vs SIG_IGN differs.
        m, _ = compare_requests(
            [
                (SyscallRequest("rt_sigaction", (10, handler, 0)), a),
                (SyscallRequest("rt_sigaction", (10, C.SIG_IGN, 0)), b),
            ]
        )
        assert m is not None

    def test_epoll_event_data_ignored_events_compared(self):
        from repro.kernel.structs import pack_epoll_event

        a, b = make_spaces()
        ev_a = put(a, pack_epoll_event(1, 0xAAAA0000))
        ev_b = put(b, pack_epoll_event(1, 0xBBBB0000))
        m, _ = compare_requests(
            [
                (SyscallRequest("epoll_ctl", (4, 1, 7, ev_a)), a),
                (SyscallRequest("epoll_ctl", (4, 1, 7, ev_b)), b),
            ]
        )
        assert m is None
        ev_c = put(b, pack_epoll_event(4, 0xBBBB0000))  # different mask
        m, _ = compare_requests(
            [
                (SyscallRequest("epoll_ctl", (4, 1, 7, ev_a)), a),
                (SyscallRequest("epoll_ctl", (4, 1, 7, ev_c)), b),
            ]
        )
        assert m is not None

    def test_iovec_gathered_content_compared(self):
        from repro.kernel.structs import pack_iovec

        a, b = make_spaces()
        pa1, pa2 = put(a, b"hel"), put(a, b"lo")
        pb1, pb2 = put(b, b"hel"), put(b, b"lo")
        iov_a = put(a, pack_iovec(pa1, 3) + pack_iovec(pa2, 2))
        iov_b = put(b, pack_iovec(pb1, 3) + pack_iovec(pb2, 2))
        m, _ = compare_requests(
            [
                (SyscallRequest("writev", (3, iov_a, 2)), a),
                (SyscallRequest("writev", (3, iov_b, 2)), b),
            ]
        )
        assert m is None

    def test_arg_count_mismatch_detected(self):
        a, b = make_spaces()
        m = compare_blobs(
            [
                serialize_args(SyscallRequest("ioctl", (3, 1, 2)), a),
                serialize_args(SyscallRequest("ioctl", (3, 1)), b),
            ]
        )
        assert m is not None

    def test_faulting_pointer_degrades_gracefully(self):
        a, b = make_spaces()
        req_a = SyscallRequest("open", (0xDEAD0000, 0, 0))  # bad pointer
        req_b = SyscallRequest("open", (0xDEAD0000, 0, 0))
        m, _ = compare_requests([(req_a, a), (req_b, b)])
        assert m is None  # both fault identically

    def test_unknown_syscall_compares_raw(self):
        a, b = make_spaces()
        m, _ = compare_requests(
            [
                (SyscallRequest("frobnicate", (1, 2)), a),
                (SyscallRequest("frobnicate", (1, 3)), b),
            ]
        )
        assert m is not None


class TestBlobEncoding:
    @settings(max_examples=50, deadline=None)
    @given(
        name=st.sampled_from(["getpid", "read", "write", "lseek"]),
        args=st.lists(st.integers(min_value=0, max_value=1 << 32), max_size=3),
    )
    def test_encode_is_deterministic(self, name, args):
        a, _ = make_spaces()
        req = SyscallRequest(name, tuple(args))
        blob1 = serialize_args(req, a)
        blob2 = serialize_args(req, a)
        assert blob1.encode() == blob2.encode()

    def test_encoded_blob_is_bytes_suitable_for_rb(self):
        a, _ = make_spaces()
        addr = put(a, b"content\x00")
        blob = serialize_args(SyscallRequest("open", (addr, 0, 0o644)), a)
        encoded = blob.encode()
        assert isinstance(encoded, bytes)
        assert encoded.startswith(b"open")
        assert b"content" in encoded
