"""Whole-system determinism: identical configurations produce identical
virtual timelines — the property that makes the evaluation reproducible."""

from repro.baselines import run_native
from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program


def workload_program():
    workload = SyntheticWorkload(
        "det",
        native_ms=3.0,
        mix=CategoryMix({"base": 5000, "file_ro": 8000, "futex": 4000}),
        threads=2,
    )
    return build_program(workload)


def run_once(level, seed=0):
    kernel = Kernel()
    mvee = ReMon(
        kernel, workload_program(), ReMonConfig(replicas=2, level=level, seed=seed)
    )
    result = mvee.run(max_steps=40_000_000)
    assert not result.diverged, result.divergence
    return result


def test_native_runs_are_identical():
    a = run_native(workload_program())
    b = run_native(workload_program())
    assert a.wall_time_ns == b.wall_time_ns
    assert a.syscalls == b.syscalls


def test_mvee_runs_are_identical():
    a = run_once(Level.NONSOCKET_RW)
    b = run_once(Level.NONSOCKET_RW)
    assert a.wall_time_ns == b.wall_time_ns
    assert a.monitored_calls == b.monitored_calls
    assert a.unmonitored_calls == b.unmonitored_calls
    assert a.stats == b.stats


def test_ghumvee_only_runs_are_identical():
    a = run_once(Level.NO_IPMON)
    b = run_once(Level.NO_IPMON)
    assert a.wall_time_ns == b.wall_time_ns


def test_different_diversity_seed_changes_layout_not_behaviour():
    a = run_once(Level.NONSOCKET_RW, seed=1)
    b = run_once(Level.NONSOCKET_RW, seed=2)
    # Same logical behaviour...
    assert a.monitored_calls == b.monitored_calls
    assert a.unmonitored_calls == b.unmonitored_calls
    assert a.exit_codes == b.exit_codes


def test_compute_only_program_timing_exact():
    def main(ctx):
        yield Compute(123_456)
        return 0

    times = set()
    for _ in range(3):
        kernel = Kernel()
        mvee = ReMon(kernel, Program("exact", main), ReMonConfig(replicas=3))
        result = mvee.run(max_steps=10_000_000)
        assert not result.diverged
        times.add(result.wall_time_ns)
    assert len(times) == 1
