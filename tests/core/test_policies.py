"""Table 1 policy tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policies import (
    CONDITIONAL,
    Level,
    RelaxationPolicy,
    UNCONDITIONAL,
    always_monitored,
)
from repro.errors import PolicyError


class TestTableOne:
    def test_base_level_contents(self):
        base = UNCONDITIONAL[Level.BASE]
        for name in ("gettimeofday", "getpid", "uname", "sched_yield", "nanosleep"):
            assert name in base

    def test_conditional_read_family(self):
        assert "read" in CONDITIONAL[Level.NONSOCKET_RO]
        assert "read" in CONDITIONAL[Level.SOCKET_RO]
        assert "write" in CONDITIONAL[Level.NONSOCKET_RW]
        assert "write" in CONDITIONAL[Level.SOCKET_RW]

    def test_resource_management_always_monitored(self):
        for name in (
            "open",
            "close",
            "socket",
            "accept",
            "mmap",
            "mprotect",
            "clone",
            "kill",
            "rt_sigaction",
            "exit_group",
            "dup2",
            "pipe",
        ):
            assert always_monitored(name), name

    def test_relaxable_calls_are_not_always_monitored(self):
        for name in ("read", "write", "gettimeofday", "epoll_wait", "sendto"):
            assert not always_monitored(name), name

    def test_unmonitored_sets_grow_monotonically(self):
        sizes = []
        for level in list(Level)[1:]:
            sizes.append(len(RelaxationPolicy(level).unmonitored_set()))
        assert sizes == sorted(sizes)
        lower = RelaxationPolicy(Level.BASE).unmonitored_set()
        for level in list(Level)[2:]:
            upper = RelaxationPolicy(level).unmonitored_set()
            assert lower <= upper
            lower = upper

    def test_paper_counts_ipmon_fast_path(self):
        """The paper says IP-MON supports a fast path of ~67 calls."""
        full = RelaxationPolicy(Level.SOCKET_RW).unmonitored_set()
        assert 55 <= len(full) <= 80


class TestConditionalDecisions:
    def test_socket_read_needs_socket_ro(self):
        for level, expected in (
            (Level.NONSOCKET_RO, False),
            (Level.NONSOCKET_RW, False),
            (Level.SOCKET_RO, True),
            (Level.SOCKET_RW, True),
        ):
            policy = RelaxationPolicy(level)
            assert policy.allows_fd_kind("read", "sock", False) is expected, level

    def test_file_read_allowed_from_nonsocket_ro(self):
        assert RelaxationPolicy(Level.NONSOCKET_RO).allows_fd_kind("read", "reg", False)
        assert not RelaxationPolicy(Level.BASE).allows_fd_kind("read", "reg", False)

    def test_socket_write_needs_socket_rw(self):
        assert not RelaxationPolicy(Level.SOCKET_RO).allows_fd_kind("write", "sock", False)
        assert RelaxationPolicy(Level.SOCKET_RW).allows_fd_kind("write", "sock", False)

    def test_pipe_write_allowed_from_nonsocket_rw(self):
        assert RelaxationPolicy(Level.NONSOCKET_RW).allows_fd_kind("write", "pipe", False)
        assert not RelaxationPolicy(Level.NONSOCKET_RO).allows_fd_kind("write", "pipe", False)

    def test_special_files_never_allowed(self):
        policy = RelaxationPolicy(Level.SOCKET_RW)
        assert not policy.allows_fd_kind("read", "special", False)
        assert not policy.allows_fd_kind("read", None, False)

    def test_minimum_level_for(self):
        assert RelaxationPolicy().minimum_level_for("getpid") == Level.BASE
        assert RelaxationPolicy().minimum_level_for("stat") == Level.NONSOCKET_RO
        assert RelaxationPolicy().minimum_level_for("fsync") == Level.NONSOCKET_RW
        assert (
            RelaxationPolicy().minimum_level_for("read", fd_kind="sock")
            == Level.SOCKET_RO
        )
        assert RelaxationPolicy().minimum_level_for("open") is None

    def test_invalid_level_rejected(self):
        with pytest.raises(PolicyError):
            RelaxationPolicy(42)

    @given(st.sampled_from(sorted(UNCONDITIONAL[Level.BASE])))
    def test_base_calls_unconditional_at_every_level(self, name):
        for level in list(Level)[1:]:
            assert RelaxationPolicy(level).allows_unconditionally(name)


class TestPaperExamples:
    def test_listing1_read_is_maybe_checked(self):
        """Listing 1: read's MAYBE_CHECKED consults can_read(fd)."""
        policy = RelaxationPolicy(Level.NONSOCKET_RO)
        assert policy.is_conditional("read")
        assert not policy.allows_unconditionally("read")

    def test_mprotect_and_mremap_always_monitored(self):
        """§3.1: calls that could adversely affect IP-MON are forced to
        GHUMVEE."""
        assert always_monitored("mprotect")
        assert always_monitored("mremap")
        assert always_monitored("munmap")
