"""Behavioural MVEE tests: the §2-§3 mechanisms observed end-to-end."""

import pytest

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.kernel import constants as C
from repro.kernel import errno_codes as E


def run_mvee(program, level=Level.NONSOCKET_RW, replicas=2, kernel=None, **cfg):
    kernel = kernel or Kernel()
    mvee = ReMon(kernel, program, ReMonConfig(replicas=replicas, level=level, **cfg))
    result = mvee.run(max_steps=20_000_000)
    return kernel, mvee, result


class TestInputConsistency:
    def test_slaves_receive_masters_read_data(self):
        """§2.1: all replicas receive consistent input."""
        captured = {}

        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/dev/urandom")
            ret, data = yield from libc.read(fd, 32)
            captured[ctx.process.replica_index] = data
            return 0

        _k, _m, result = run_mvee(Program("urandom", main))
        assert not result.diverged
        assert captured[0] == captured[1]
        assert len(captured[0]) == 32

    def test_getrandom_replicated(self):
        captured = {}

        def main(ctx):
            buf = yield from ctx.libc.malloc(16)
            ret = yield ctx.sys.getrandom(buf, 16, 0)
            assert ret == 16
            captured[ctx.process.replica_index] = ctx.mem.read(buf, 16)
            return 0

        _k, _m, result = run_mvee(Program("grnd", main))
        assert not result.diverged
        assert captured[0] == captured[1]

    def test_external_output_happens_once(self):
        """§2.1 transparency: observable I/O executes only once."""
        kernel = Kernel()

        def main(ctx):
            fd = yield from ctx.libc.open("/tmp/out", C.O_WRONLY | C.O_CREAT)
            yield from ctx.libc.write(fd, b"exactly-once")
            return 0

        _k, _m, result = run_mvee(Program("once", main), kernel=kernel, replicas=3)
        assert not result.diverged
        node, err = kernel.fs.resolve("/tmp/out")
        assert err == 0
        assert bytes(node.data) == b"exactly-once"


class TestShadowDescriptors:
    def test_slave_fd_numbers_match_master(self):
        numbers = {}

        def main(ctx):
            libc = ctx.libc
            a = yield from libc.open("/data/f")
            rfd, wfd = yield from libc.pipe()
            sock = yield from libc.socket()
            numbers.setdefault(ctx.process.replica_index, []).extend(
                [a, rfd, wfd, sock]
            )
            return 0

        _k, _m, result = run_mvee(Program("fds", main, files={"/data/f": b"x"}))
        assert not result.diverged
        assert numbers[0] == numbers[1]

    def test_slave_close_and_reopen_keeps_alignment(self):
        numbers = {}

        def main(ctx):
            libc = ctx.libc
            a = yield from libc.open("/data/f")
            yield from libc.close(a)
            b = yield from libc.open("/data/f")
            numbers.setdefault(ctx.process.replica_index, []).extend([a, b])
            return 0

        _k, _m, result = run_mvee(Program("fds2", main, files={"/data/f": b"x"}))
        assert not result.diverged
        assert numbers[0] == numbers[1]
        assert numbers[0][0] == numbers[0][1]  # number reused


class TestDivergenceDetection:
    def test_exit_code_mismatch_is_divergence(self):
        def main(ctx):
            yield Compute(1000)
            return 0 if ctx.process.replica_index == 0 else 1

        _k, _m, result = run_mvee(Program("exitdiv", main))
        assert result.diverged
        assert result.divergence.syscall == "exit_group"

    def test_mmap_failure_asymmetry_detected(self):
        """ALLEXEC calls must agree on success vs failure."""

        def main(ctx):
            # Replica 1 asks for an absurd length so its mmap fails.
            length = 4096 if ctx.process.replica_index == 0 else 0
            ret = yield ctx.sys.mmap(
                0, length, C.PROT_READ, C.MAP_PRIVATE | C.MAP_ANONYMOUS, -1, 0
            )
            yield Compute(1000)
            return 0

        _k, _m, result = run_mvee(Program("mmapdiv", main))
        assert result.diverged

    def test_detection_report_carries_context(self):
        def main(ctx):
            path = "/data/a" if ctx.process.replica_index == 0 else "/data/b"
            fd = yield from ctx.libc.open(path)
            return 0

        _k, _m, result = run_mvee(
            Program("ctx", main, files={"/data/a": b"x", "/data/b": b"y"})
        )
        assert result.diverged
        report = result.divergence
        assert report.syscall == "open"
        assert report.detected_by == "ghumvee"
        assert report.time_ns > 0
        assert "replica 1" in report.detail or "arg" in report.detail


class TestSignalsUnderMvee:
    @staticmethod
    def _inject_external_signal(kernel, mvee, signo, at_ns):
        """Deliver a signal to the master replica from 'outside' (as a
        kill(1) from another process would)."""

        def fire():
            master = mvee.group.master()
            if not master.exited:
                kernel.send_signal_to_process(master, signo)

        kernel.sim.call_at(at_ns, fire)

    def test_async_signal_delivered_to_all_replicas(self):
        """§2.2: deferred delivery at an equivalent state, every replica
        runs its handler."""
        hits = []

        def main(ctx):
            def handler(hctx, signo):
                hits.append(hctx.process.replica_index)

            yield ctx.sys.rt_sigaction(C.SIGUSR1, handler)
            for _ in range(8):
                yield Compute(50_000)
                _pid = yield ctx.sys.getpid()
                yield from ctx.libc.stat("/data/f")
            yield Compute(1000)
            return 0

        kernel = Kernel()
        mvee = ReMon(
            kernel,
            Program("sig-all", main, files={"/data/f": b"x"}),
            ReMonConfig(replicas=2, level=Level.NO_IPMON),
        )
        self._inject_external_signal(kernel, mvee, C.SIGUSR1, 100_000)
        result = mvee.run(max_steps=20_000_000)
        assert not result.diverged, result.divergence
        assert sorted(hits) == [0, 1]
        assert result.deferred_signals >= 1
        assert mvee.ghumvee.stats["signals_delivered"] >= 1

    def test_signals_pending_flag_forwards_unmonitored_calls(self):
        """§3.8: while signals are pending, IP-MON forwards calls so
        GHUMVEE can deliver at a rendezvous; the flag is then cleared."""
        hits = []

        def main(ctx):
            def handler(hctx, signo):
                hits.append(hctx.process.replica_index)

            yield ctx.sys.rt_sigaction(C.SIGUSR2, handler)
            for _ in range(10):
                _pid = yield ctx.sys.getpid()  # unmonitored at BASE
                yield Compute(50_000)
            return 0

        kernel = Kernel()
        mvee = ReMon(
            kernel, Program("sig-flag", main), ReMonConfig(replicas=2, level=Level.BASE)
        )
        self._inject_external_signal(kernel, mvee, C.SIGUSR2, 120_000)
        result = mvee.run(max_steps=20_000_000)
        assert not result.diverged, result.divergence
        assert sorted(hits) == [0, 1]
        assert result.stats.get("ipmon_forwarded_signals", 0) >= 1
        assert not mvee.ipmon.signals_pending()


class TestProcMapsFiltering:
    def test_replicas_cannot_see_ipmon_mappings(self):
        seen = {}

        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/proc/self/maps")
            content = bytearray()
            while True:
                ret, chunk = yield from libc.read(fd, 2048)
                if ret <= 0:
                    break
                content += chunk
            seen[ctx.process.replica_index] = bytes(content)
            return 0

        _k, mvee, result = run_mvee(Program("maps", main))
        assert not result.diverged
        for index, content in seen.items():
            assert b"ipmon-rb" not in content, index
            assert b"ipmon-filemap" not in content, index
            assert b"text:" in content
        # Both replicas read the same (master's, filtered) content.
        assert seen[0] == seen[1]
        # ... even though the mapping genuinely exists.
        master = mvee.group.master()
        assert any(m.name == "[ipmon-rb]" for m in master.space.mappings())


class TestSharedMemoryRestriction:
    def test_app_shmget_denied_consistently(self):
        """§2.1: requests to set up shared memory are rejected; programs
        fall back."""
        rets = {}

        def main(ctx):
            ret = yield ctx.sys.shmget(C.IPC_PRIVATE, 4096, C.IPC_CREAT)
            rets[ctx.process.replica_index] = ret
            # Fall back to private memory like real programs do.
            addr = yield ctx.sys.mmap(
                0, 4096, C.PROT_READ | C.PROT_WRITE,
                C.MAP_PRIVATE | C.MAP_ANONYMOUS, -1, 0,
            )
            assert addr > 0
            return 0

        _k, mvee, result = run_mvee(Program("shmdeny", main))
        assert not result.diverged
        assert rets[0] == rets[1] == -E.EACCES
        assert mvee.ghumvee.stats["shm_denied"] >= 1

    def test_shm_allowed_when_configured(self):
        def main(ctx):
            ret = yield ctx.sys.shmget(C.IPC_PRIVATE, 4096, C.IPC_CREAT)
            assert ret > 0, ret
            return 0

        _k, _m, result = run_mvee(
            Program("shmok", main), allow_shared_memory=True
        )
        assert not result.diverged


class TestEpollUnderMvee:
    def test_epoll_data_translated_per_replica(self):
        """§3.9: each replica gets *its own* pointer back, not the
        master's."""
        got = {}

        def main(ctx):
            libc = ctx.libc
            rfd, wfd = yield from libc.pipe()
            epfd = yield from libc.epoll_create()
            my_tag = ctx.process.space.brk_base + 0x42  # replica-specific
            yield from libc.epoll_ctl(epfd, C.EPOLL_CTL_ADD, rfd, C.EPOLLIN, data=my_tag)
            yield from libc.write(wfd, b"!")
            ret, events = yield from libc.epoll_wait(epfd, timeout_ms=100)
            assert ret == 1
            got[ctx.process.replica_index] = (events[0][1], my_tag)
            return 0

        for level in (Level.NO_IPMON, Level.SOCKET_RW):
            got.clear()
            _k, _m, result = run_mvee(Program("epoll-tags", main), level=level)
            assert not result.diverged, (level, result.divergence)
            for index, (returned, expected) in got.items():
                assert returned == expected, (level, index)
            # The tags genuinely differ between replicas (ASLR).
            assert got[0][1] != got[1][1]


class TestRbOverflow:
    def test_small_rb_triggers_ghumvee_resets(self):
        """§3.2: when the linear RB fills, GHUMVEE arbitrates a reset."""

        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/big")
            for _ in range(50):
                ret, _ = yield from libc.pread(fd, 2048, 0)
                assert ret == 2048
            return 0

        _k, _m, result = run_mvee(
            Program("overflow", main, files={"/data/big": bytes(4096)}),
            rb_size=1 << 16,
        )
        assert not result.diverged
        assert result.rb_resets >= 1

    def test_oversized_record_forwarded_to_monitor(self):
        """CALCSIZE: data bigger than the RB goes to GHUMVEE (§3.3)."""

        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/big")
            buf = yield from libc.malloc(1 << 16)
            ret = yield ctx.sys.pread64(fd, buf, 1 << 16, 0)
            assert ret == 4096
            return 0

        _k, _m, result = run_mvee(
            Program("toolarge", main, files={"/data/big": bytes(4096)}),
            rb_size=1 << 15,
        )
        assert not result.diverged
        assert result.stats.get("ipmon_forwarded_size", 0) >= 1


class TestRunAhead:
    def test_master_finishes_before_slaves_on_unmonitored_calls(self):
        finish = {}

        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/f")
            for _ in range(30):
                yield from libc.pread(fd, 256, 0)
            finish[ctx.process.replica_index] = ctx.kernel.sim.now
            return 0

        _k, _m, result = run_mvee(Program("ahead", main, files={"/data/f": bytes(512)}))
        assert not result.diverged
        assert finish[0] <= finish[1]
