"""Cross-process digest stability (PR-8 satellite).

``comparator._raw`` used to fall back to builtin ``hash()`` for
non-integer argument values. ``hash(str)`` is randomized per process by
PYTHONHASHSEED, so two replica *processes* (or a monitor restarted
between runs) would serialize different blobs for identical arguments —
a guaranteed false divergence the moment a non-coercible value reached
the comparator. The fallback is now crc32-of-repr, which is a pure
function of the value.

The regression test runs the serialization in subprocesses pinned to
different PYTHONHASHSEED values and asserts identical output.
"""

from __future__ import annotations

import os
import subprocess
import sys
import zlib

from repro.core.comparator import _raw

_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")

# Exercises the int() failure path with strings, bytes-ish reprs, and a
# non-hashable-unfriendly object repr; prints one line per value.
_PROBE = """
from repro.core.comparator import _raw, serialize_args

class Req:
    def __init__(self, name, args):
        self.name = name
        self.args = args

values = ["sock:/tmp/x.sock", "caf\\u00e9", ("tuple", "arg"), 4.5]
print([_raw(v) for v in values])
req = Req("frobnicate", values)  # unknown syscall -> raw-value path
blob = serialize_args(req, space=None, spec=None)
print(blob.items)
print(blob.digest())
"""


class TestRawHashStability:
    def test_raw_matches_crc32_of_repr(self):
        value = "not-an-int"
        assert _raw(value) == zlib.crc32(repr(value).encode("utf-8")) & 0xFFFFFFFF

    def test_raw_is_stable_across_hashseed_processes(self):
        outputs = []
        for seed in ("0", "1", "424242"):
            env = dict(os.environ, PYTHONHASHSEED=seed, PYTHONPATH=_SRC)
            proc = subprocess.run(
                [sys.executable, "-c", _PROBE],
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            outputs.append(proc.stdout)
        assert outputs[0] == outputs[1] == outputs[2], (
            "serialized blobs differ across PYTHONHASHSEED values:\n%s"
            % "\n---\n".join(outputs)
        )

    def test_raw_handles_unrepr_unicode(self):
        # backslashreplace keeps even hostile reprs encodable.
        class Weird:
            def __repr__(self):
                return "\udc80weird"

        assert isinstance(_raw(Weird()), int)

    def test_int_coercible_values_bypass_fallback(self):
        assert _raw(7) == 7
        assert _raw(True) == 1
        assert _raw(None) == 0
        assert _raw("12") == 12  # int("12") succeeds; no hashing involved
