"""The §4 extension: periodic RB remapping by IK-B."""

from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Compute, Program
from repro.kernel import Kernel


def busy_program(iterations=40):
    def main(ctx):
        libc = ctx.libc
        fd = yield from libc.open("/data/f")
        for _ in range(iterations):
            yield Compute(20_000)
            ret, _ = yield from libc.pread(fd, 256, 0)
            assert ret == 256, ret
        return 0

    return Program("remap-busy", main, files={"/data/f": bytes(512)})


def test_rb_moves_and_replication_survives():
    kernel = Kernel()
    mvee = ReMon(
        kernel,
        busy_program(),
        ReMonConfig(replicas=2, rb_remap_interval_ns=150_000),
    )
    bases = {0: set(), 1: set()}

    def sample():
        for replica in mvee.ipmon.replicas:
            bases[replica.replica_index].add(replica.rb_base_for_tests)
        if not mvee.group.all_exited():
            kernel.sim.call_at(kernel.sim.now + 100_000, sample)

    kernel.sim.call_at(0, sample)
    result = mvee.run(max_steps=40_000_000)
    assert not result.diverged, result.divergence
    assert result.exit_codes == [0, 0]
    # The buffer actually moved, in every replica, more than once.
    assert len(bases[0]) >= 3
    assert len(bases[1]) >= 3
    assert result.stats.get("ipmon_rb_remaps", 0) >= 2
    # ... and unmonitored replication kept working throughout.
    assert result.unmonitored_calls >= 30


def test_leaked_rb_pointer_goes_stale_after_remap():
    kernel = Kernel()
    mvee = ReMon(
        kernel,
        busy_program(iterations=20),
        ReMonConfig(replicas=2, rb_remap_interval_ns=100_000),
    )
    mvee.start()
    kernel.sim.run(until=50_000)
    master_replica = mvee.ipmon.replicas[0]
    leaked = master_replica.rb_base_for_tests
    kernel.sim.run(until=600_000)  # several remap intervals pass
    master = mvee.group.master()
    mapping = master.space.find_mapping(leaked)
    # The old address no longer maps the RB.
    assert mapping is None or mapping.name != "[ipmon-rb]"
    assert master_replica.rb_base_for_tests != leaked
    kernel.sim.run(max_steps=40_000_000)
    assert not mvee.result.diverged


def test_remap_disabled_by_default():
    kernel = Kernel()
    mvee = ReMon(kernel, busy_program(iterations=10), ReMonConfig(replicas=2))
    result = mvee.run(max_steps=20_000_000)
    assert not result.diverged
    assert result.stats.get("ipmon_rb_remaps", 0) == 0
