"""Homogeneous-profile bit-identity gate for the heterogeneous-diversity
refactor (ISSUE 10).

``golden_hetero_stats.json`` was captured by running three pinned-seed
fault-free DistMvee sweeps — a 3-node SOCKET_RW run exercising all
three execution lanes, a 4-node sharded NO_IPMON fast-path run, and a
4-node gossip-armed lifecycle run — on the **pre-refactor** code, before
``NodeProfile``/canonical serialization existed. With heterogeneity
disabled (the default) the same configurations must reproduce those
results *bit-for-bit*: identical virtual wall time, exit codes, every
stats counter, and every wire byte. The refactor must be invisible
unless ``DistConfig(heterogeneous=True)`` asks for it.
"""

from __future__ import annotations

import json
import os

from repro.core import DegradationPolicy, Level, ReMonConfig
from repro.dist import DistConfig, DistMvee
from repro.lifecycle import LifecycleConfig
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

_GOLDEN = os.path.join(os.path.dirname(__file__), "golden_hetero_stats.json")

MAX_STEPS = 400_000_000


def _golden():
    with open(_GOLDEN) as handle:
        return json.load(handle)


def _workload(name, threads=3):
    return SyntheticWorkload(
        name=name,
        native_ms=1.0,
        mix=CategoryMix(
            {
                "base": 140_000.0,
                "file_ro": 110_000.0,
                "sock_ro": 25_000.0,
                "sock_rw": 25_000.0,
                "mgmt": 30_000.0,
            }
        ),
        threads=threads,
    )


def _snapshot(mvee):
    result = mvee.run(max_steps=MAX_STEPS)
    assert not result.diverged, result.divergence
    return {
        "wall_time_ns": result.wall_time_ns,
        "exit_codes": list(result.exit_codes),
        "stats": {k: result.stats[k] for k in sorted(result.stats)},
        "network_bytes_sent": mvee.network.bytes_sent,
        "network_segments_sent": mvee.network.segments_sent,
    }


def _lanes_snapshot():
    """3 nodes, SOCKET_RW: rendezvous + replicated + local lanes all hot."""
    config = ReMonConfig(
        replicas=3,
        level=Level.SOCKET_RW,
        dist=DistConfig(link_latency_ns=200_000),
    )
    return _snapshot(DistMvee(build_program(_workload("hetero-golden-lanes")), config))


def _fastpath_snapshot():
    """4 nodes, NO_IPMON, sharded rendezvous: the lockstep fast path."""
    config = ReMonConfig(
        replicas=4,
        level=Level.NO_IPMON,
        degradation=DegradationPolicy(min_quorum=2),
        dist=DistConfig(
            link_latency_ns=50_000,
            shard_rendezvous=True,
            rendezvous_shards=2,
        ),
    )
    return _snapshot(DistMvee(build_program(_workload("hetero-golden-fast")), config))


def _lifecycle_snapshot():
    """4 nodes, gossip armed, fault-free: the recording/window path."""
    config = ReMonConfig(
        replicas=4,
        level=Level.SOCKET_RW,
        degradation=DegradationPolicy(min_quorum=2),
        dist=DistConfig(
            link_latency_ns=100_000,
            shard_rendezvous=True,
            rendezvous_shards=2,
            lifecycle=LifecycleConfig(seed=11),
        ),
    )
    return _snapshot(DistMvee(build_program(_workload("hetero-golden-life")), config))


class TestHomogeneousBitIdentity:
    def test_lanes_run_bit_identical(self):
        golden = _golden()["lanes"]
        snapshot = _lanes_snapshot()
        assert snapshot == golden, _diff(snapshot, golden)

    def test_fastpath_run_bit_identical(self):
        golden = _golden()["fastpath"]
        snapshot = _fastpath_snapshot()
        assert snapshot == golden, _diff(snapshot, golden)

    def test_lifecycle_run_bit_identical(self):
        golden = _golden()["lifecycle"]
        snapshot = _lifecycle_snapshot()
        assert snapshot == golden, _diff(snapshot, golden)


def _diff(snapshot, golden):
    lines = ["heterogeneity refactor changed homogeneous results:"]
    keys = sorted(set(snapshot) | set(golden))
    for key in keys:
        new, old = snapshot.get(key), golden.get(key)
        if new == old:
            continue
        if isinstance(new, dict) and isinstance(old, dict):
            for stat in sorted(set(new) | set(old)):
                if new.get(stat) != old.get(stat):
                    lines.append(
                        "  %s.%s: %r (golden %r)"
                        % (key, stat, new.get(stat), old.get(stat))
                    )
        else:
            lines.append("  %s: %r (golden %r)" % (key, new, old))
    return "\n".join(lines)
