"""ASLR and DCL property tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.diversity.aslr import identical_layouts, make_layouts
from repro.diversity.dcl import (
    address_valid_in,
    layouts_code_disjoint,
    spaces_code_disjoint,
)
from repro.kernel.constants import PAGE_SIZE


@settings(max_examples=50, deadline=None)
@given(
    count=st.integers(min_value=2, max_value=8),
    seed=st.integers(min_value=0, max_value=1 << 32),
)
def test_dcl_layouts_always_disjoint(count, seed):
    layouts = make_layouts(count, seed=seed)
    assert layouts_code_disjoint(layouts)


@settings(max_examples=50, deadline=None)
@given(
    count=st.integers(min_value=2, max_value=6),
    seed=st.integers(min_value=0, max_value=1 << 32),
    probe=st.integers(min_value=0, max_value=(1 << 24)),
)
def test_any_address_is_code_in_at_most_one_replica(count, seed, probe):
    layouts = make_layouts(count, seed=seed)
    addr = layouts[probe % count].code_base + (probe % layouts[0].code_size)
    assert len(address_valid_in(layouts, addr)) <= 1


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=1 << 32))
def test_aslr_randomizes_every_base(seed):
    a = make_layouts(2, seed=seed)
    b = make_layouts(2, seed=seed + 1)
    assert a[0].mmap_base != b[0].mmap_base or a[0].brk_base != b[0].brk_base


def test_layouts_are_page_aligned():
    for layout in make_layouts(7, seed=3):
        assert layout.code_base % PAGE_SIZE == 0
        assert layout.mmap_base % PAGE_SIZE == 0
        assert layout.brk_base % PAGE_SIZE == 0


def test_layouts_deterministic_for_seed():
    a = make_layouts(3, seed=77)
    b = make_layouts(3, seed=77)
    assert [(l.code_base, l.mmap_base, l.brk_base) for l in a] == [
        (l.code_base, l.mmap_base, l.brk_base) for l in b
    ]


def test_identical_layouts_are_not_disjoint():
    layouts = identical_layouts(2)
    assert not layouts_code_disjoint(layouts)
    assert len(address_valid_in(layouts, layouts[0].code_base + 10)) == 2


def test_no_aslr_layouts_still_dcl_disjoint():
    layouts = make_layouts(3, seed=0, aslr=False, dcl=True)
    assert layouts_code_disjoint(layouts)
    # Without ASLR the bases are deterministic anchors.
    assert layouts[0].mmap_base == make_layouts(3, seed=9, aslr=False)[0].mmap_base


def test_live_mvee_spaces_satisfy_dcl():
    from repro.core import ReMon, ReMonConfig
    from repro.guest.program import Compute, Program
    from repro.kernel import Kernel

    def main(ctx):
        yield Compute(1000)
        return 0

    kernel = Kernel()
    mvee = ReMon(kernel, Program("dcl", main), ReMonConfig(replicas=4))
    result = mvee.run(max_steps=4_000_000)
    assert not result.diverged
    assert spaces_code_disjoint([p.space for p in mvee.group.processes])
