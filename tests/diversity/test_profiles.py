"""Property tests for per-node diversity profiles (DESIGN.md §13)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.canonical import CANONICAL_ABI, canonical_bytes, encode_items
from repro.core.comparator import ArgBlob
from repro.diversity.aslr import CODE_ANCHOR
from repro.diversity.dcl import address_valid_in, layouts_code_disjoint
from repro.diversity.profile import (
    ARENA_STRIDE,
    make_node_profiles,
    node_seed,
)

seeds = st.integers(min_value=0, max_value=1 << 32)


# ---------------------------------------------------------------------------
# Cross-node DCL disjointness
# ---------------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    nodes=st.integers(min_value=2, max_value=6),
    replicas=st.integers(min_value=1, max_value=4),
    cluster_seed=seeds,
)
def test_families_pairwise_disjoint_across_all_nodes(
    nodes, replicas, cluster_seed
):
    """Every node's whole DCL family is code-disjoint from every other
    node's: the union of all layouts still maps any address to at most
    one replica cluster-wide."""
    profiles = make_node_profiles(
        nodes, cluster_seed=cluster_seed, heterogeneous=True
    )
    union = []
    for profile in profiles:
        union.extend(profile.make_family(replicas))
    assert layouts_code_disjoint(union)


@settings(max_examples=40, deadline=None)
@given(
    nodes=st.integers(min_value=2, max_value=6),
    cluster_seed=seeds,
    probe=st.integers(min_value=0, max_value=(1 << 24)),
)
def test_leaked_node_address_invalid_on_every_peer(nodes, cluster_seed, probe):
    profiles = make_node_profiles(
        nodes, cluster_seed=cluster_seed, heterogeneous=True
    )
    layouts = [p.make_layout() for p in profiles]
    leaked = layouts[probe % nodes]
    addr = leaked.code_base + (probe % leaked.code_size)
    peers = [l for l in layouts if l is not leaked]
    assert address_valid_in(peers, addr) == []


@settings(max_examples=40, deadline=None)
@given(nodes=st.integers(min_value=1, max_value=8), cluster_seed=seeds)
def test_arenas_are_disjoint_by_construction(nodes, cluster_seed):
    profiles = make_node_profiles(
        nodes, cluster_seed=cluster_seed, heterogeneous=True
    )
    for profile in profiles:
        assert profile.arena_base == CODE_ANCHOR + profile.node * ARENA_STRIDE
        family = profile.make_family(3)
        for layout in family:
            assert profile.arena_base <= layout.code_base
            assert (
                layout.code_base + layout.code_size
                <= profile.arena_base + ARENA_STRIDE
            )


# ---------------------------------------------------------------------------
# Canonicalization purity
# ---------------------------------------------------------------------------
arg_items = st.lists(
    st.tuples(
        st.sampled_from(["scalar", "ptr:heap", "ptr:stack", "buf", "str"]),
        st.one_of(
            st.integers(min_value=0, max_value=(1 << 62)),
            st.booleans(),
            st.binary(max_size=64),
        ),
    ),
    max_size=8,
)


@settings(max_examples=60, deadline=None)
@given(
    name=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
    ),
    items=arg_items,
    seed_a=seeds,
    seed_b=seeds,
)
def test_canonical_bytes_identical_across_any_two_profiles(
    name, items, seed_a, seed_b
):
    """The same logical arguments serialized under any two nodes' ABIs
    canonicalize to identical bytes — the whole §13 digest argument."""
    profile_a = make_node_profiles(4, cluster_seed=seed_a, heterogeneous=True)[1]
    profile_b = make_node_profiles(4, cluster_seed=seed_b, heterogeneous=True)[3]
    blob_a = ArgBlob(name, items, 0, abi=profile_a.abi)
    blob_b = ArgBlob(name, items, 0, abi=profile_b.abi)
    assert blob_a.canonical() == blob_b.canonical()
    assert blob_a.canonical() == canonical_bytes(name, items)
    assert blob_a.digest() == blob_b.digest()


@settings(max_examples=60, deadline=None)
@given(
    name=st.text(
        alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=1, max_size=12
    ),
    items=arg_items,
)
def test_canonical_abi_encoding_is_the_canonical_form(name, items):
    """Default (canonical-ABI) encodings are already canonical bytes:
    the homogeneous path never re-encodes."""
    blob = ArgBlob(name, items, 0)
    assert blob.abi is CANONICAL_ABI
    assert blob.encode() == blob.canonical()
    assert blob.encode() == encode_items(name, items)


# ---------------------------------------------------------------------------
# Deterministic assignment
# ---------------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    nodes=st.integers(min_value=1, max_value=8),
    cluster_seed=seeds,
    hetero=st.booleans(),
)
def test_profile_assignment_deterministic(nodes, cluster_seed, hetero):
    a = make_node_profiles(nodes, cluster_seed=cluster_seed, heterogeneous=hetero)
    b = make_node_profiles(nodes, cluster_seed=cluster_seed, heterogeneous=hetero)
    for pa, pb in zip(a, b):
        assert pa.aslr_seed == pb.aslr_seed
        assert pa.arena_base == pb.arena_base
        assert pa.abi == pb.abi
        assert [repr(l) for l in pa.make_family(2)] == [
            repr(l) for l in pb.make_family(2)
        ]


@settings(max_examples=50, deadline=None)
@given(
    cluster_seed=seeds,
    node=st.integers(min_value=0, max_value=7),
    count=st.integers(min_value=1, max_value=8),
)
def test_profile_depends_only_on_cluster_seed_and_node(
    cluster_seed, node, count
):
    """A node's profile is a pure function of (cluster_seed, node):
    growing the cluster never reshuffles existing nodes' diversity."""
    small = make_node_profiles(
        max(count, node + 1), cluster_seed=cluster_seed, heterogeneous=True
    )
    large = make_node_profiles(
        max(count, node + 1) + 4, cluster_seed=cluster_seed, heterogeneous=True
    )
    assert small[node].aslr_seed == large[node].aslr_seed
    assert small[node].aslr_seed == node_seed(cluster_seed, node)
    assert small[node].abi == large[node].abi
    assert small[node].arena_base == large[node].arena_base


@settings(max_examples=50, deadline=None)
@given(cluster_seed=seeds, nodes=st.integers(min_value=2, max_value=8))
def test_node_seeds_pairwise_distinct(cluster_seed, nodes):
    seen = {node_seed(cluster_seed, n) for n in range(nodes)}
    assert len(seen) == nodes
