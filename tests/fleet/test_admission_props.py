"""Property-based tests for the admission-control invariants
(repro.fleet.admission).

What the controller promises, over arbitrary SYN-arrival timelines:

* the token bucket never holds more than ``burst`` tokens and never
  admits a burst longer than ``burst`` instantaneously;
* every offered SYN is either admitted or shed — nothing is lost or
  double-counted;
* the modelled backlog never exceeds ``queue_capacity``;
* admission is FIFO — accept order equals SYN-arrival order, and the
  queue-wait stamps are consistent with it;
* all accounting is integer math, so identical timelines give
  bit-identical counters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.admission import (
    ADMIT,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)

#: (gap_ns, ...) arrival timelines: bursts (gap 0) through idle stretches.
timelines = st.lists(
    st.integers(min_value=0, max_value=2_000_000), min_size=1, max_size=300
)
rates = st.integers(min_value=1, max_value=200_000)
bursts = st.integers(min_value=1, max_value=64)


@given(timelines, rates, bursts)
@settings(max_examples=200)
def test_bucket_never_exceeds_burst_and_admits_at_most_burst_at_once(
    gaps, rate, burst
):
    bucket = TokenBucket(rate, burst)
    now = 0
    instantaneous = 0
    prev_now = None
    for gap in gaps:
        now += gap
        assert bucket.tokens(now) <= burst
        took = bucket.try_take(now)
        assert bucket.tokens(now) <= burst
        if took:
            instantaneous = instantaneous + 1 if now == prev_now else 1
            # With no time passing, at most ``burst`` admissions.
            assert instantaneous <= burst
            prev_now = now


@given(timelines, st.integers(min_value=1, max_value=32))
@settings(max_examples=200)
def test_every_syn_admitted_or_shed_and_queue_bounded(gaps, capacity):
    config = AdmissionConfig(queue_capacity=capacity, rate_per_s=50_000,
                             burst=4)
    ctl = AdmissionController(config)
    now = 0
    backlog = 0
    for index, gap in enumerate(gaps):
        now += gap
        action = ctl.on_syn(now, backlog)
        if action == ADMIT:
            ctl.on_enqueue(now)
            backlog += 1
        assert backlog <= capacity
        # Conservation after every single decision.
        assert ctl.admitted + ctl.shed == ctl.offered == index + 1
        # Drain one occasionally so admission can make progress.
        if backlog and index % 3 == 0:
            ctl.on_dequeue(now)
            backlog -= 1
    assert ctl.shed == ctl.shed_rate + ctl.shed_queue
    assert 0.0 <= ctl.shed_fraction() <= 1.0


@given(timelines)
@settings(max_examples=100)
def test_fifo_admission_waits_match_arrival_order(gaps):
    """Dequeue stamps pop in arrival order; each wait is exact."""
    config = AdmissionConfig(queue_capacity=len(gaps) + 1)
    ctl = AdmissionController(config)
    now = 0
    arrivals = []
    for gap in gaps:
        now += gap
        assert ctl.on_syn(now, len(arrivals)) == ADMIT
        ctl.on_enqueue(now)
        arrivals.append(now)
    drain = now
    for arrived in arrivals:  # FIFO: oldest stamp pops first
        drain += 1_000
        assert ctl.on_dequeue(drain) == drain - arrived
    assert ctl.accepted == len(arrivals)
    assert ctl.max_wait_ns == max(
        (d - a) for d, a in zip(
            range(now + 1_000, now + 1_000 * (len(arrivals) + 1), 1_000),
            arrivals,
        )
    )


@given(timelines, rates, bursts)
@settings(max_examples=100)
def test_identical_timelines_are_bit_identical(gaps, rate, burst):
    def run():
        config = AdmissionConfig(queue_capacity=8, rate_per_s=rate,
                                 burst=burst)
        ctl = AdmissionController(config)
        now = 0
        backlog = 0
        for gap in gaps:
            now += gap
            if ctl.on_syn(now, backlog) == ADMIT:
                ctl.on_enqueue(now)
                backlog += 1
            if backlog > 4:
                ctl.on_dequeue(now)
                backlog -= 1
        return ctl.stats()

    assert run() == run()


def test_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(policy="teleport")
    with pytest.raises(ValueError):
        AdmissionConfig(queue_capacity=0)
    with pytest.raises(ValueError):
        TokenBucket(0, 4)
    with pytest.raises(ValueError):
        TokenBucket(100, 0)


def test_disarm_bypasses_shedding():
    ctl = AdmissionController(AdmissionConfig(queue_capacity=1, rate_per_s=1,
                                              burst=1))
    assert ctl.on_syn(0, 0) == ADMIT
    assert ctl.on_syn(0, 1) != ADMIT  # queue full and bucket empty
    ctl.disarm()
    assert ctl.on_syn(0, 1_000) == ADMIT  # pass-through after disarm
    assert ctl.admitted + ctl.shed == ctl.offered == 3
