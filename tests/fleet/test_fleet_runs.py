"""End-to-end fleet tests (repro.fleet.runner + the external-service
dist lane): small clusters, real guest servers, multiplexed clients.
"""

from __future__ import annotations

import pytest

from repro.core.policies import Level
from repro.core.remon import ReMonConfig
from repro.dist.cluster import DistConfig, DistMvee
from repro.dist.selective import fleet_replication
from repro.errors import MonitorError
from repro.fleet import AdmissionConfig, FleetConfig, run_fleet
from repro.workloads.servers import SERVERS


def _small(server="redis", **overrides):
    base = dict(server=server, nodes=2, connections=12,
                connect_pace_ns=100_000)
    base.update(overrides)
    return FleetConfig(**base)


def test_fleet_serves_all_connections_cleanly():
    result = run_fleet(_small())
    row = result.row()
    assert row["exit_codes"] == [0, 0]
    assert not row["diverged"]
    assert row["completed"] == 12
    assert row["errors"] == 0
    assert row["p99_ns"] > 0
    # The always-on instruments were populated.
    registry = result.stats
    assert registry["fleet_offered"] >= 12
    assert registry["fleet_client_completed"] == 12


def test_fleet_runs_are_bit_identical():
    """Two identical fleet runs produce identical rows and identical
    cluster stats — the determinism the flight recorder depends on."""
    first = run_fleet(_small(connections=10))
    second = run_fleet(_small(connections=10))
    assert first.row() == second.row()
    assert first.stats == second.stats


def test_reject_policy_surfaces_econnrefused():
    admission = AdmissionConfig(queue_capacity=2, rate_per_s=2_000, burst=2)
    result = run_fleet(_small(connections=24, connect_pace_ns=5_000,
                              admission=admission))
    row = result.row()
    assert row["exit_codes"] == [0, 0] and not row["diverged"]
    assert row["shed"] > 0
    assert row["refused"] == row["shed"]
    assert row["dropped"] == 0
    assert row["completed"] + row["refused"] == 24
    assert row["admitted"] + row["shed"] == row["offered"]


def test_drop_policy_burns_client_timeout():
    admission = AdmissionConfig(queue_capacity=2, rate_per_s=2_000, burst=2,
                                policy="drop", drop_timeout_ns=3_000_000)
    result = run_fleet(_small(connections=24, connect_pace_ns=5_000,
                              admission=admission))
    row = result.row()
    assert row["exit_codes"] == [0, 0] and not row["diverged"]
    assert row["dropped"] == row["shed"] > 0
    assert row["refused"] == 0
    # Dropped SYNs cost the client its connect timeout: the run's
    # wall time covers at least one full timeout window.
    assert result.client.duration_ns > 3_000_000


@pytest.mark.parametrize("server", sorted(SERVERS))
def test_every_profile_runs_distributed(server):
    """All nine §5.2 profiles complete as a 2-node fleet — including
    the multi-worker accept/epoll servers whose shutdown must stay
    syscall-deterministic under lockstep replication."""
    result = run_fleet(_small(server=server, connections=6))
    row = result.row()
    assert row["exit_codes"] == [0, 0], row
    assert not row["diverged"], row
    assert row["completed"] == 6, row


def test_three_node_full_replication_ships_more_bytes():
    selective = run_fleet(_small(nodes=3, replication="selective"))
    full = run_fleet(_small(nodes=3, replication="full"))
    assert selective.row()["completed"] == full.row()["completed"] == 12
    assert full.row()["wire_bytes"] > selective.row()["wire_bytes"]


def test_external_service_requires_socket_rw():
    spec = SERVERS["redis"]
    dconfig = DistConfig(
        external_service=True, replication=fleet_replication()
    )
    with pytest.raises(MonitorError):
        DistMvee(
            spec.program(),
            ReMonConfig(replicas=2, level=Level.NONSOCKET_RW, dist=dconfig),
        )


def test_keepalive_multiplexing_reuses_connections():
    result = run_fleet(_small(connections=8, requests_per_conn=3))
    row = result.row()
    assert row["exit_codes"] == [0, 0] and not row["diverged"]
    assert row["completed"] == 24  # 8 conns x 3 pipelined requests
    # Only 8 connections were ever offered to the listener (plus QUIT).
    assert row["offered"] <= 9
