"""Guest runtime edge cases."""

import pytest

from repro.errors import GuestFault
from repro.guest import GuestRuntime
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.kernel import constants as C
from tests.conftest import run_guest


class TestThreadLifecycle:
    def test_worker_exit_does_not_kill_process(self):
        def main(ctx):
            def worker(cctx, arg):
                def body():
                    yield Compute(1000)

                return body()

            yield ctx.spawn_thread(worker, None)
            yield from ctx.libc.nanosleep(1_000_000)
            return 0

        _k, process, code = run_guest(Program("worker-exit", main))
        assert code == 0

    def test_explicit_exit_syscall_code(self):
        def main(ctx):
            yield Compute(100)
            yield ctx.sys.exit_group(42)
            return 0  # unreachable

        _k, _p, code = run_guest(Program("exit42", main))
        assert code == 42

    def test_main_return_value_becomes_exit_code(self):
        def main(ctx):
            yield Compute(100)
            return 5

        _k, _p, code = run_guest(Program("ret5", main))
        assert code == 5

    def test_exit_group_interrupts_sibling_threads(self):
        def main(ctx):
            def stuck(cctx, arg):
                def body():
                    yield from cctx.libc.nanosleep(60_000_000_000)  # a minute

                return body()

            yield ctx.spawn_thread(stuck, None)
            yield Compute(10_000)
            yield ctx.sys.exit_group(3)
            return 0

        kernel = Kernel()
        exit_time = {}
        program = Program("killall", main)
        program.install_files(kernel)
        process = kernel.create_process("killall")
        process.exit_event.add_listener(
            lambda _v: exit_time.setdefault("t", kernel.sim.now)
        )
        GuestRuntime(kernel, process, program).start()
        kernel.sim.run()
        assert process.exit_code == 3
        # The process died long before the sleeping thread's minute.
        assert exit_time["t"] < 1_000_000_000

    def test_process_exit_closes_descriptors(self):
        kernel = Kernel()

        def main(ctx):
            fd = yield from ctx.libc.open("/data/f")
            assert fd >= 0
            return 0

        _k, process, code = run_guest(
            Program("fd-close", main, files={"/data/f": b"x"}), kernel=kernel
        )
        assert code == 0
        assert len(process.fdtable) == 0

    def test_clone_without_thread_flag_enosys(self):
        def main(ctx):
            from repro.kernel.syscalls import SyscallRequest

            ret = yield SyscallRequest("clone", (0, None, None))  # fork-like
            assert ret == -38  # ENOSYS: fork is out of scope
            return 0

        _k, _p, code = run_guest(Program("fork", main))
        assert code == 0


class TestFaultHandling:
    def test_unknown_yield_item_is_guest_fault(self):
        def main(ctx):
            yield object()

        kernel = Kernel()
        process = kernel.create_process("bad")
        _t, task = GuestRuntime(kernel, process, Program("bad", main)).start()
        kernel.sim.run()
        assert isinstance(task.failure, GuestFault)

    def test_handled_sigsegv_rethrows_fault_into_guest(self):
        recovered = {}

        def main(ctx):
            def handler(hctx, signo):
                recovered["signal"] = signo

            yield ctx.sys.rt_sigaction(C.SIGSEGV, handler)
            try:
                ctx.mem.read(0xBAD0000, 4)
            except Exception:
                recovered["caught"] = True
            yield Compute(100)
            return 0

        _k, _p, code = run_guest(Program("recover", main))
        assert code == 0
        assert recovered.get("caught")

    def test_fault_inside_syscall_returns_efault(self):
        def main(ctx):
            fd = yield from ctx.libc.open("/data/f")
            ret = yield ctx.sys.read(fd, 0xDEAD0000, 4)
            assert ret == -14, ret  # EFAULT, no signal
            yield Compute(100)
            return 0

        _k, _p, code = run_guest(Program("efault", main, files={"/data/f": b"abcd"}))
        assert code == 0


class TestComputeAccounting:
    def test_compute_factor_scales_time(self):
        kernel = Kernel()

        def main(ctx):
            yield Compute(1_000_000)
            return 0

        program = Program("pressured", main)
        process = kernel.create_process("p")
        process.compute_factor = 2.0
        _t, task = GuestRuntime(kernel, process, program).start()
        kernel.sim.run()
        assert kernel.sim.now >= 2_000_000

    def test_utime_accumulates(self):
        def main(ctx):
            yield Compute(7_000_000)
            return 0

        _k, process, code = run_guest(Program("utime", main))
        assert process.utime_ns >= 7_000_000

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1)
