"""Guest libc layer tests."""

from repro.guest.program import Compute, Program
from repro.kernel import constants as C
from tests.conftest import run_guest


class TestMalloc:
    def test_returns_aligned_distinct_chunks(self):
        def main(ctx):
            libc = ctx.libc
            addrs = []
            for size in (1, 16, 100, 4096):
                addr = yield from libc.malloc(size)
                assert addr % 16 == 0
                addrs.append((addr, size))
            ranges = sorted((a, a + ((s + 15) & ~15)) for a, s in addrs)
            for (s1, e1), (s2, _e2) in zip(ranges, ranges[1:]):
                assert e1 <= s2
            return 0

        _k, _p, code = run_guest(Program("malloc", main))
        assert code == 0

    def test_arena_grows_beyond_chunk(self):
        def main(ctx):
            libc = ctx.libc
            big = yield from libc.malloc(3 << 20)  # > 1 MiB arena chunk
            ctx.mem.write(big, b"fits")
            ctx.mem.write(big + (3 << 20) - 4, b"end!")
            return 0

        _k, _p, code = run_guest(Program("bigalloc", main))
        assert code == 0

    def test_push_cstr_nul_terminates(self):
        def main(ctx):
            addr = yield from ctx.libc.push_cstr("hello")
            assert ctx.mem.read(addr, 6) == b"hello\x00"
            addr2 = yield from ctx.libc.push_cstr(b"bytes")
            assert ctx.mem.read_cstr(addr2) == b"bytes"
            return 0

        _k, _p, code = run_guest(Program("cstr", main))
        assert code == 0

    def test_scratch_reused_for_small_sizes(self):
        def main(ctx):
            libc = ctx.libc
            a = yield from libc.scratch(1024)
            b = yield from libc.scratch(2048)
            assert a == b
            c = yield from libc.scratch(1 << 20)
            assert c != a
            return 0

        _k, _p, code = run_guest(Program("scratch", main))
        assert code == 0


class TestSocketHelpers:
    def test_recv_exactly_loops(self):
        def main(ctx):
            libc = ctx.libc
            listener = yield from libc.socket()
            yield from libc.bind(listener, "0.0.0.0", 7100)
            yield from libc.listen(listener)
            client = yield from libc.socket()
            yield from libc.connect(client, ctx.process.host_ip, 7100)
            conn = yield from libc.accept(listener)
            # Three small sends, one exact receive.
            for chunk in (b"aa", b"bb", b"cc"):
                yield from libc.send(client, chunk)
            ret, data = yield from libc.recv_exactly(conn, 6)
            assert (ret, data) == (6, b"aabbcc")
            return 0

        _k, _p, code = run_guest(Program("exactly", main))
        assert code == 0

    def test_recv_until_marker(self):
        def main(ctx):
            libc = ctx.libc
            listener = yield from libc.socket()
            yield from libc.bind(listener, "0.0.0.0", 7101)
            yield from libc.listen(listener)
            client = yield from libc.socket()
            yield from libc.connect(client, ctx.process.host_ip, 7101)
            conn = yield from libc.accept(listener)
            yield from libc.send(client, b"GET / HTTP/1.0\r\n\r\nbody")
            ret, data = yield from libc.recv_until(conn, b"\r\n\r\n")
            assert b"\r\n\r\n" in data
            return 0

        _k, _p, code = run_guest(Program("until", main))
        assert code == 0


class TestMutex:
    def test_uncontended_lock_makes_no_syscalls(self):
        def main(ctx):
            libc = ctx.libc
            mutex = yield from libc.mutex()
            before = ctx.thread.syscall_count
            yield from mutex.lock(ctx)
            locked_count = ctx.thread.syscall_count
            yield from mutex.unlock(ctx)
            # The fast-path lock performs zero syscalls (the futex-free
            # path VARAN cannot observe, §6); unlock issues one wake.
            assert locked_count == before
            return 0

        _k, _p, code = run_guest(Program("fastpath", main))
        assert code == 0

    def test_contended_lock_blocks_until_unlock(self):
        order = []

        def main(ctx):
            libc = ctx.libc
            mutex = yield from libc.mutex()
            yield from mutex.lock(ctx)

            def contender(cctx, m):
                def body():
                    order.append("child-wants")
                    yield from m.lock(cctx)
                    order.append("child-got")
                    yield from m.unlock(cctx)

                return body()

            yield ctx.spawn_thread(contender, mutex)
            yield Compute(100_000)
            order.append("main-unlocks")
            yield from mutex.unlock(ctx)
            yield from libc.nanosleep(1_000_000)
            return 0

        _k, _p, code = run_guest(Program("contend", main))
        assert code == 0
        assert order == ["child-wants", "main-unlocks", "child-got"]


class TestStatHelpers:
    def test_stat_decodes_struct(self):
        def main(ctx):
            ret, st = yield from ctx.libc.stat("/data/f")
            assert ret == 0
            assert st["st_size"] == 6
            assert st["st_mode"] & C.S_IFREG
            ret, st = yield from ctx.libc.stat("/nope")
            assert ret < 0 and st is None
            return 0

        _k, _p, code = run_guest(Program("stat", main, files={"/data/f": b"sized."}))
        assert code == 0

    def test_clock_gettime_monotonic(self):
        def main(ctx):
            t1 = yield from ctx.libc.clock_gettime()
            yield Compute(5000)
            t2 = yield from ctx.libc.clock_gettime()
            assert t2 >= t1 + 5000
            return 0

        _k, _p, code = run_guest(Program("clock", main))
        assert code == 0
