"""Cross-node layout-leak attacks against distributed clusters.

The DMON gap the heterogeneous profiles close (DESIGN.md §13): with one
layout family per run, leaking the cluster seed (equivalently, one
monitor's view of the family) lets the attacker tailor a payload for
every node and compromise the fleet in lockstep — no divergence, no
detection. Per-node profiles make a single-node leak worth exactly one
node: the harvested address maps nowhere else, every other node takes a
wild jump, and the cluster kills the attack in one round.
"""

from __future__ import annotations

from repro.attacks import scenarios
from repro.attacks.analysis import run_attack_dist
from repro.core import Level, ReMonConfig
from repro.dist import DistConfig, run_distributed
from repro.guest.program import Program

MAX_STEPS = 400_000_000


class TestSingleNodeLeak:
    def test_leaked_node0_layout_maps_nowhere_else(self):
        """The acceptance property: a node-0 leak yields zero valid
        code addresses on every other node of a heterogeneous run."""
        outcome, result = run_attack_dist(
            scenarios.layout_leak_program, nodes=3,
            heterogeneous=True, leak_node=0, max_steps=MAX_STEPS,
        )
        layouts = outcome.notes["node_layouts"]
        addr = outcome.notes["payload_addr"]
        assert scenarios.dcl_analysis([layouts[0]], addr) == [0]
        for layout in layouts[1:]:
            assert scenarios.dcl_analysis([layout], addr) == []
        # Sweep the leaked node's whole code region: disjoint arenas
        # mean *no* address harvested from node 0 maps on a peer.
        leaked = layouts[0]
        for offset in range(0, leaked.code_size, leaked.code_size // 16):
            probe = leaked.code_base + offset
            assert scenarios.dcl_analysis(layouts[1:], probe) == []

    def test_leak_compromises_at_most_the_leaked_node(self):
        outcome, result = run_attack_dist(
            scenarios.layout_leak_program, nodes=3,
            heterogeneous=True, leak_node=0, max_steps=MAX_STEPS,
        )
        assert outcome.notes.get("compromised", []) in ([], [0])
        # The wild jumps on the uncompromised nodes surface as crashes
        # and the cluster shuts the attack down: no secret leaves.
        assert outcome.blocked
        assert outcome.detected
        assert result.exit_codes[0] != 0  # the compromised node is killed

    def test_homogeneous_family_leak_defeats_the_cluster(self):
        """The gap being closed: a shared seed reconstructs every
        node's layout, the attacker tailors per-node payloads, and the
        fleet is compromised in lockstep — undetected."""
        outcome, result = run_attack_dist(
            scenarios.layout_leak_program, nodes=3,
            heterogeneous=False, leak_family=True, max_steps=MAX_STEPS,
        )
        assert sorted(outcome.notes.get("compromised", [])) == [0, 1, 2]
        assert outcome.effect_occurred
        assert not outcome.detected


def _benign_program():
    def main(ctx):
        libc = ctx.libc
        for _ in range(8):
            _pid = yield ctx.sys.getpid()
        fd = yield from libc.open("/data/input.txt")
        assert fd >= 0
        yield from libc.read(fd, 64)
        yield from libc.close(fd)
        return 0

    return Program("benign", main, files={"/data/input.txt": b"bytes"})


def _run_benign(heterogeneous):
    config = ReMonConfig(
        replicas=3,
        level=Level.NONSOCKET_RW,
        dist=DistConfig(nodes=3, heterogeneous=heterogeneous),
    )
    return run_distributed(_benign_program(), config, max_steps=MAX_STEPS)


class TestFaultFreeParity:
    def test_heterogeneous_run_is_clean_and_matches_homogeneous(self):
        """Fault-free heterogeneous runs finish with every exit code 0
        and digest-match behaviour identical to homogeneous: the
        canonical form hides the per-node encodings completely."""
        homo = _run_benign(heterogeneous=False)
        hetero = _run_benign(heterogeneous=True)
        assert not homo.diverged and not hetero.diverged
        assert homo.exit_codes == [0, 0, 0]
        assert hetero.exit_codes == [0, 0, 0]
        for key in (
            "dist_rendezvous_calls",
            "dist_rendezvous_completed",
            "dist_local_calls",
            "dist_replicated_calls",
        ):
            assert homo.stats[key] == hetero.stats[key], key
        assert hetero.stats.get("dist_async_mismatches", 0) == 0
        # Heterogeneity is visible only where it should be: the
        # diversity accounting and the canonicalization bill.
        assert "dist_heterogeneous" not in homo.stats
        assert hetero.stats["dist_heterogeneous"] == 1
        assert hetero.stats["dist_abi_variants"] >= 2
        assert hetero.stats["dist_arena_variants"] == 3
        assert hetero.stats["dist_canonical_calls"] > 0
