"""RB remapping (§4 extension) as a defense against leaked pointers."""

from repro.attacks.analysis import run_attack
from repro.guest.program import Compute, Program


def stale_pointer_program(outcome):
    """The attacker leaked the RB address early; by the time the payload
    fires, IK-B has moved the buffer and the pointer is stale."""

    def main(ctx):
        rb = None
        if ctx.process.replica_index == 0:
            rb = next(
                (m for m in ctx.mem.mappings() if m.name == "[ipmon-rb]"), None
            )
            if rb is not None:
                outcome.notes["leaked_at"] = rb.start
        # Time passes; the broker remaps the RB under our feet.
        for iteration in range(20):
            yield Compute(50_000)
            _pid = yield ctx.sys.getpid()
            if rb is not None and iteration >= 14:
                # Fire the payload: scribble over the record the slave
                # has not validated yet, via the leaked address.
                mapping = ctx.mem.find_mapping(outcome.notes["leaked_at"])
                if mapping is not None and mapping.name == "[ipmon-rb]":
                    # Blanket the active lane area (the in-flight records
                    # live a few KiB into lane 0).
                    ctx.mem.write(
                        outcome.notes["leaked_at"] + 64, b"\xff" * 8192,
                        check_prot=False,
                    )
                    outcome.effect_occurred = True
                    outcome.effect = "tampered via leaked pointer"
                else:
                    outcome.notes["pointer_stale"] = True
        yield Compute(10_000)
        _pid = yield ctx.sys.getpid()
        return 0

    return Program("stale-leak", main)


def test_remap_invalidates_leaked_pointer():
    outcome, result = run_attack(
        stale_pointer_program, rb_remap_interval_ns=120_000
    )
    assert not result.diverged, result.divergence
    assert outcome.blocked
    assert outcome.notes.get("pointer_stale") is True


def test_without_remap_the_leak_stays_usable():
    outcome, result = run_attack(stale_pointer_program)
    assert outcome.effect_occurred  # tampering went through...
    assert result.diverged  # ... and was detected as divergence
