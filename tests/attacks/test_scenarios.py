"""Security analysis tests (paper §4 and the §6 VARAN comparison)."""

import pytest

from repro.attacks import scenarios
from repro.attacks.analysis import run_attack, run_attack_varan
from repro.core import Level
from repro.core.temporal import TemporalPolicy


class TestCodeInjection:
    def test_dcl_blocks_payload_and_detects(self):
        outcome, result = run_attack(scenarios.code_injection_program)
        assert outcome.blocked, outcome.effect
        assert outcome.detected
        assert result.diverged

    def test_payload_compromises_at_most_one_replica(self):
        outcome, result = run_attack(scenarios.code_injection_program, replicas=3)
        assert len(outcome.notes.get("compromised", [])) <= 1
        assert outcome.blocked

    def test_without_diversity_payload_works_everywhere(self):
        """The counterfactual: identical layouts mean consistent
        compromise, which no MVEE can observe."""
        outcome, result = run_attack(
            scenarios.code_injection_program, aslr=False, dcl=False
        )
        assert outcome.effect_occurred
        assert not result.diverged
        assert len(outcome.notes.get("compromised", [])) == 2

    def test_exfiltration_over_unmonitored_socket_is_policy_risk(self):
        """At SOCKET_RW a compromised master can fire one unmonitored
        write before the dead slave would have validated it — exactly
        the residual window §4 accepts by policy. Detection still
        happens (the slave's crash)."""
        outcome, result = run_attack(
            scenarios.socket_exfil_program, level=Level.SOCKET_RW
        )
        assert outcome.effect_occurred
        assert outcome.detected

    def test_exfiltration_blocked_when_sockets_monitored(self):
        outcome, result = run_attack(
            scenarios.socket_exfil_program, level=Level.NONSOCKET_RW
        )
        assert outcome.blocked, outcome.effect
        assert outcome.detected


class TestArgumentCorruption:
    def test_ghumvee_blocks_divergent_open(self):
        outcome, result = run_attack(scenarios.corrupted_argument_program)
        assert outcome.blocked
        assert result.diverged
        assert result.divergence.detected_by == "ghumvee"
        assert result.divergence.syscall == "open"

    def test_ipmon_slave_check_blocks_divergent_unmonitored_args(self):
        """Divergent *unmonitored* call arguments are caught by the
        slave's PRECALL comparison (§3.3)."""
        from repro.guest.program import Compute, Program

        def factory(outcome):
            def main(ctx):
                libc = ctx.libc
                fd = yield from libc.open("/data/f.bin")
                yield Compute(1000)
                # Corrupted length argument in the master only.
                count = 64 if ctx.process.replica_index else 4096
                ret, _ = yield from libc.pread(fd, count, 0)
                if ret == 4096 and ctx.process.replica_index == 0:
                    outcome.effect_occurred = True
                return 0

            return Program("ipmon-div", main, files={"/data/f.bin": bytes(8192)})

        outcome, result = run_attack(factory, level=Level.NONSOCKET_RW)
        assert result.diverged
        assert result.divergence.detected_by == "ipmon"
        # Note the window: the master's call already ran (run-ahead is
        # the documented IP-MON trade-off); detection is guaranteed.
        assert outcome.detected


class TestRbProtection:
    def test_maps_are_scrubbed_and_guessing_fails(self):
        outcome, result = run_attack(scenarios.rb_discovery_program)
        assert outcome.blocked, outcome.effect
        assert outcome.notes.get("maps_scrubbed") is True
        assert outcome.notes.get("probes", 0) > 0
        assert "rb_addr" not in outcome.notes

    def test_rb_pointer_not_in_guest_memory(self):
        """The RB pointer lives only in 'kernel memory' (the broker's
        registration): no guest-readable location stores it."""
        from repro.core import ReMon, ReMonConfig
        from repro.guest.program import Compute, Program
        from repro.kernel import Kernel

        def main(ctx):
            yield Compute(1000)
            return 0

        kernel = Kernel()
        mvee = ReMon(kernel, Program("quiet", main), ReMonConfig())
        result = mvee.run(max_steps=2_000_000)
        assert not result.diverged
        for process, replica in zip(
            mvee.group.processes, mvee.ipmon.replicas
        ):
            rb_base = replica.rb_base_for_tests
            needle = rb_base.to_bytes(8, "little")
            for mapping in process.space.mappings():
                if mapping.name.startswith("[ipmon"):
                    continue
                data = bytes(
                    mapping.region.data[
                        mapping.region_offset : mapping.region_offset + mapping.length
                    ]
                )
                assert needle not in data, (
                    "RB pointer leaked into %s of %s" % (mapping.name, process.name)
                )

    def test_tampering_with_leaked_rb_is_detected(self):
        outcome, result = run_attack(scenarios.rb_tamper_program)
        assert outcome.effect_occurred  # the hypothetical leak happened
        assert result.diverged
        # Detection happens either at the slave's RB sanity check or at
        # the next lockstep comparison, depending on which corrupted
        # field the slave consumes first.
        assert result.divergence.detected_by in ("ipmon", "ghumvee")


class TestTokenForgery:
    def test_forged_token_forces_monitoring_and_divergence(self):
        outcome, result = run_attack(scenarios.token_forgery_program)
        assert result.diverged
        assert result.stats["broker_verification_failures"] >= 1

    def test_direct_restart_without_token_rejected(self):
        from repro.core import ReMon, ReMonConfig
        from repro.guest.program import Program
        from repro.kernel import Kernel
        from repro.kernel.syscalls import SyscallRequest

        probe = {}

        def main(ctx):
            broker = ctx.kernel.ikb
            req = SyscallRequest("getpid", (), site="ipmon", token=12345)
            ok, result = yield from broker.restart_call(ctx.thread, req)
            probe["ok"] = ok
            yield ctx.sys.getpid()
            return 0

        kernel = Kernel()
        mvee = ReMon(kernel, Program("restart-probe", main), ReMonConfig())
        mvee.run(max_steps=2_000_000)
        assert probe["ok"] is False


class TestVaranComparison:
    def test_varan_window_lets_sensitive_call_execute(self):
        outcome, result = run_attack_varan(scenarios.varan_window_program)
        assert outcome.effect_occurred  # executed before any check
        assert outcome.detected  # ... but detected (too) late

    def test_remon_blocks_the_same_attack(self):
        outcome, result = run_attack(scenarios.varan_window_program)
        assert outcome.blocked, outcome.effect
        assert outcome.detected

    def test_unaligned_gadget_bypasses_varan_entirely(self):
        outcome, result = run_attack_varan(scenarios.unaligned_gadget_program)
        assert outcome.effect_occurred
        assert not outcome.detected  # VARAN never sees the call

    def test_ikb_intercepts_unaligned_gadget(self):
        outcome, result = run_attack(scenarios.unaligned_gadget_program)
        assert outcome.blocked, outcome.effect
        assert outcome.detected


class TestTemporalPolicies:
    def test_deterministic_temporal_policy_is_exploitable(self):
        policy = TemporalPolicy(threshold=4, deterministic=True)
        outcome, result = run_attack(
            scenarios.temporal_abuse_program,
            level=Level.NONSOCKET_RW,
            temporal=policy,
        )
        assert not result.diverged, result.divergence
        assert outcome.effect_occurred  # guaranteed exemption

    def test_stochastic_temporal_policy_is_not_reliable(self):
        policy = TemporalPolicy(
            threshold=4, exempt_probability=0.02, seed=99
        )
        outcome, result = run_attack(
            scenarios.temporal_abuse_program,
            level=Level.NONSOCKET_RW,
            temporal=policy,
        )
        assert not result.diverged, result.divergence
        assert not outcome.effect_occurred

    def test_no_temporal_policy_always_monitors(self):
        outcome, result = run_attack(
            scenarios.temporal_abuse_program, level=Level.NONSOCKET_RW
        )
        assert not result.diverged, result.divergence
        assert not outcome.effect_occurred
