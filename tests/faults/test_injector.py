"""The fault injector itself: plans, triggers, determinism."""

import pytest

from repro.core import DegradationPolicy, Level, ReMon, ReMonConfig
from repro.errors import FaultConfigError
from repro.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    StallFault,
    SyscallErrorFault,
    TokenLossFault,
)
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.kernel import constants as C
from repro.kernel import errno_codes as E


def run_mvee(program, plan=None, replicas=2, level=Level.NONSOCKET_RW,
             max_steps=40_000_000, **cfg):
    kernel = Kernel()
    injector = FaultInjector(plan).install(kernel) if plan is not None else None
    mvee = ReMon(kernel, program, ReMonConfig(replicas=replicas, level=level, **cfg))
    result = mvee.run(max_steps=max_steps)
    return kernel, mvee, result, injector


def chatty_program(calls=60, compute_ns=0, exit_code=7):
    """Unmonitored-call chatter, then one externally visible write."""

    def main(ctx):
        libc = ctx.libc
        for _ in range(calls):
            _pid = yield ctx.sys.getpid()
            if compute_ns:
                yield Compute(compute_ns)
        out = yield from libc.open("/tmp/out.txt", C.O_WRONLY | C.O_CREAT)
        yield from libc.write(out, b"survived")
        yield from libc.close(out)
        return exit_code

    return Program("chatty", main)


class TestFaultPlanValidation:
    def test_crash_fault_needs_exactly_one_trigger(self):
        with pytest.raises(FaultConfigError):
            CrashFault(replica=1)
        with pytest.raises(FaultConfigError):
            CrashFault(replica=1, at_ns=10, after_syscalls=5)

    def test_stall_fault_needs_exactly_one_trigger(self):
        with pytest.raises(FaultConfigError):
            StallFault(replica=1, duration_ns=100)

    def test_unknown_fault_type_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultInjector(FaultPlan(faults=["not-a-fault"]))

    def test_random_crashes_needs_two_replicas(self):
        with pytest.raises(FaultConfigError):
            FaultPlan.random_crashes(1, replicas=1, duration_ns=10**6, crash_rate_hz=100)


class TestRandomPlans:
    def test_same_seed_same_plan(self):
        a = FaultPlan.random_crashes(42, replicas=4, duration_ns=10**7, crash_rate_hz=500)
        b = FaultPlan.random_crashes(42, replicas=4, duration_ns=10**7, crash_rate_hz=500)
        assert [(f.replica, f.at_ns) for f in a] == [(f.replica, f.at_ns) for f in b]
        assert len(a) == 5  # 500 Hz over 10 ms

    def test_different_seed_different_plan(self):
        a = FaultPlan.random_crashes(1, replicas=4, duration_ns=10**7, crash_rate_hz=500)
        b = FaultPlan.random_crashes(2, replicas=4, duration_ns=10**7, crash_rate_hz=500)
        assert [(f.replica, f.at_ns) for f in a] != [(f.replica, f.at_ns) for f in b]

    def test_include_master_false_spares_replica_zero(self):
        plan = FaultPlan.random_crashes(
            7, replicas=3, duration_ns=10**8, crash_rate_hz=200, include_master=False
        )
        assert len(plan) == 20
        assert all(f.replica >= 1 for f in plan)


class TestDeterminism:
    def _one_run(self):
        plan = FaultPlan.random_crashes(
            99, replicas=4, duration_ns=3_000_000, crash_rate_hz=667
        )
        return run_mvee(
            chatty_program(calls=80, compute_ns=50_000),
            plan=plan,
            replicas=4,
            degradation=DegradationPolicy(min_quorum=2),
        )

    def test_same_seed_twice_is_bit_identical(self):
        _k1, m1, r1, i1 = self._one_run()
        _k2, m2, r2, i2 = self._one_run()
        assert r1.wall_time_ns == r2.wall_time_ns
        assert r1.exit_codes == r2.exit_codes
        assert r1.quarantined_replicas == r2.quarantined_replicas
        assert r1.stats == r2.stats
        assert i1.stats == i2.stats
        assert (r1.divergence is None) == (r2.divergence is None)


class TestSyscallErrors:
    def test_transient_eio_on_master_is_replicated_consistently(self):
        """A forced -EIO from the master's write reaches every replica
        through the RB, so the group agrees and nothing diverges."""

        def main(ctx):
            libc = ctx.libc
            out = yield from libc.open("/tmp/eio.txt", C.O_WRONLY | C.O_CREAT)
            first = yield from libc.write(out, b"first")
            second = yield from libc.write(out, b"second")
            yield from libc.close(out)
            return 3 if (first == -E.EIO and second == 6) else 9

        plan = FaultPlan(faults=[SyscallErrorFault(replica=0, syscall="write", errno=E.EIO)])
        _k, _m, result, injector = run_mvee(Program("eio", main), plan=plan)
        assert not result.diverged, result.divergence
        assert result.exit_codes == [3, 3]
        assert injector.stats["errors"] == 1
        assert result.stats["faults_injected"] == 1

    def test_skip_first_lets_early_calls_through(self):
        def main(ctx):
            libc = ctx.libc
            out = yield from libc.open("/tmp/skip.txt", C.O_WRONLY | C.O_CREAT)
            rets = []
            for _ in range(3):
                ret = yield from libc.write(out, b"x")
                rets.append(ret)
            yield from libc.close(out)
            return 1 if rets == [1, -E.ENOMEM, 1] else 8

        plan = FaultPlan(
            faults=[
                SyscallErrorFault(
                    replica=0, syscall="write", errno=E.ENOMEM, skip_first=1
                )
            ]
        )
        _k, _m, result, _inj = run_mvee(Program("skip", main), plan=plan)
        assert not result.diverged, result.divergence
        assert result.exit_codes == [1, 1]


class TestTokenLoss:
    def test_lost_token_without_policy_fail_stops(self):
        """Classic ReMon: the master's restart fails verification and
        falls back to the monitor, where it waits for a lockstep quorum
        the slaves (who already consumed the record) never join — the
        stall watchdog fail-stops the group. Conservative, never wrong."""
        plan = FaultPlan(faults=[TokenLossFault(replica=0, count=1, skip_first=2)])
        _k, _m, result, injector = run_mvee(chatty_program(), plan=plan)
        assert result.diverged
        assert "lockstep stall" in result.divergence.detail
        assert injector.stats["tokens_lost"] == 1
        assert result.stats["broker_verification_failures"] >= 1
        assert result.stats["broker_tokens_reissued"] == 0

    def test_lost_token_with_policy_is_reissued(self):
        plan = FaultPlan(faults=[TokenLossFault(replica=0, count=1, skip_first=2)])
        _k, _m, result, injector = run_mvee(
            chatty_program(), plan=plan, degradation=DegradationPolicy()
        )
        assert not result.diverged, result.divergence
        assert result.exit_codes == [7, 7]
        assert injector.stats["tokens_lost"] == 1
        assert result.stats["broker_tokens_reissued"] >= 1
        assert result.stats["ipmon_token_reissues"] >= 1

    def test_reissue_disabled_by_policy_knob(self):
        """With reissue off, a lost token is unrecoverable for the
        in-flight call even in degraded mode: no new token is minted."""
        plan = FaultPlan(faults=[TokenLossFault(replica=0, count=1, skip_first=2)])
        _k, _m, result, _inj = run_mvee(
            chatty_program(),
            plan=plan,
            degradation=DegradationPolicy(reissue_lost_tokens=False),
        )
        assert result.diverged
        assert result.stats["broker_tokens_reissued"] == 0
        assert result.stats["broker_verification_failures"] >= 1


class TestStatsPlumbing:
    def test_degradation_stats_present_in_every_run(self):
        _k, _m, result, _inj = run_mvee(chatty_program())
        assert result.stats["faults_injected"] == 0
        assert result.stats["replicas_quarantined"] == 0
        assert result.stats["master_promotions"] == 0
        assert result.stats["rb_backoff_retries"] == 0

    def test_empty_plan_counts_nothing(self):
        _k, _m, result, injector = run_mvee(chatty_program(), plan=FaultPlan())
        assert injector.total_injected == 0
        assert result.stats["faults_injected"] == 0
        assert not result.diverged
