"""Graceful degradation: quarantine, master promotion, N−1 continuation.

The paper's ReMon fail-stops on *any* replica anomaly. A
:class:`DegradationPolicy` relaxes exactly the benign half of that
contract — crashes and stalls are absorbed while quorum holds — and
keeps every behavioural mismatch a security divergence.
"""

import pytest

from repro.core import DegradationPolicy, Level, ReMon, ReMonConfig
from repro.core.events import DivergenceReport
from repro.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    RBCorruptionFault,
    StallFault,
)
from repro.guest.program import Compute, Program
from repro.kernel import Kernel, KernelConfig
from repro.kernel import constants as C


def run_mvee(program, plan=None, replicas=3, level=Level.NONSOCKET_RW,
             max_steps=80_000_000, degradation=None, **cfg):
    kernel = Kernel()
    injector = FaultInjector(plan).install(kernel) if plan is not None else None
    config = ReMonConfig(
        replicas=replicas, level=level, degradation=degradation, **cfg
    )
    mvee = ReMon(kernel, program, config)
    result = mvee.run(max_steps=max_steps)
    return kernel, mvee, result, injector


def worker_program(calls=60, exit_code=7):
    def main(ctx):
        libc = ctx.libc
        for _ in range(calls):
            _pid = yield ctx.sys.getpid()
        out = yield from libc.open("/tmp/degrade-out.txt", C.O_WRONLY | C.O_CREAT)
        yield from libc.write(out, b"survived")
        yield from libc.close(out)
        return exit_code

    return Program("worker", main)


class TestSlaveCrash:
    def test_non_master_crash_is_quarantined_and_run_completes(self):
        """The headline acceptance scenario: 3 replicas, one slave dies,
        the group finishes on N−1 with correct external output."""
        plan = FaultPlan(faults=[CrashFault(replica=1, after_syscalls=20)])
        kernel, mvee, result, _inj = run_mvee(
            worker_program(), plan=plan, degradation=DegradationPolicy(min_quorum=2)
        )
        assert not result.diverged, result.divergence
        assert result.stats["replicas_quarantined"] == 1
        assert result.stats["master_promotions"] == 0
        assert result.quarantined_replicas == [1]
        assert result.exit_codes[0] == 7 and result.exit_codes[2] == 7
        assert result.exit_codes[1] == 128 + C.SIGKILL
        node, err = kernel.fs.resolve("/tmp/degrade-out.txt")
        assert err == 0 and bytes(node.data) == b"survived"
        assert len(result.fault_events) == 1
        assert result.fault_events[0].kind == "crash"

    def test_crash_without_policy_still_fail_stops(self):
        plan = FaultPlan(faults=[CrashFault(replica=1, after_syscalls=20)])
        _k, _m, result, _inj = run_mvee(worker_program(), plan=plan)
        assert result.diverged
        assert "terminated unexpectedly" in result.divergence.detail
        assert result.stats["replicas_quarantined"] == 0

    def test_quorum_loss_fail_stops(self):
        """min_quorum=3 with 3 replicas: any crash drops below quorum."""
        plan = FaultPlan(faults=[CrashFault(replica=2, after_syscalls=20)])
        _k, _m, result, _inj = run_mvee(
            worker_program(), plan=plan, degradation=DegradationPolicy(min_quorum=3)
        )
        assert result.diverged
        assert "quorum lost" in result.divergence.detail
        assert result.stats["replicas_quarantined"] == 0
        assert result.quarantined_replicas == []

    def test_successive_crashes_down_to_quorum(self):
        plan = FaultPlan(
            faults=[
                CrashFault(replica=1, after_syscalls=15),
                CrashFault(replica=3, after_syscalls=25),
            ]
        )
        _k, _m, result, _inj = run_mvee(
            worker_program(calls=80),
            plan=plan,
            replicas=4,
            degradation=DegradationPolicy(min_quorum=2),
        )
        assert not result.diverged, result.divergence
        assert result.stats["replicas_quarantined"] == 2
        assert sorted(result.quarantined_replicas) == [1, 3]
        assert result.exit_codes[0] == 7 and result.exit_codes[2] == 7


class TestMasterCrash:
    def test_master_crash_promotes_lowest_survivor(self):
        plan = FaultPlan(faults=[CrashFault(replica=0, after_syscalls=20)])
        kernel, mvee, result, _inj = run_mvee(
            worker_program(), plan=plan, degradation=DegradationPolicy(min_quorum=2)
        )
        assert not result.diverged, result.divergence
        assert result.stats["replicas_quarantined"] == 1
        assert result.stats["master_promotions"] == 1
        assert mvee.group.master_index == 1
        assert result.exit_codes[1] == 7 and result.exit_codes[2] == 7
        # The promoted master performed the external write.
        node, err = kernel.fs.resolve("/tmp/degrade-out.txt")
        assert err == 0 and bytes(node.data) == b"survived"

    def test_master_crash_at_virtual_time(self):
        plan = FaultPlan(faults=[CrashFault(replica=0, at_ns=200_000, signo=C.SIGSEGV)])
        _k, mvee, result, _inj = run_mvee(
            worker_program(calls=200),
            plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
        )
        assert not result.diverged, result.divergence
        assert result.stats["master_promotions"] == 1
        assert result.exit_codes[0] == 128 + C.SIGSEGV

    def test_master_crash_without_promotion_fail_stops(self):
        plan = FaultPlan(faults=[CrashFault(replica=0, after_syscalls=20)])
        _k, _m, result, _inj = run_mvee(
            worker_program(),
            plan=plan,
            degradation=DegradationPolicy(min_quorum=2, promote_master=False),
        )
        assert result.diverged
        assert result.stats["master_promotions"] == 0

    def test_wall_clock_follows_promoted_master(self):
        """A quarantined master must not freeze wall_time_ns at its own
        death; the successor's exit defines the run's end."""
        plan = FaultPlan(faults=[CrashFault(replica=0, after_syscalls=10)])
        kernel, _m, result, _inj = run_mvee(
            worker_program(calls=120),
            plan=plan,
            degradation=DegradationPolicy(min_quorum=2),
        )
        assert not result.diverged, result.divergence
        # The run ended when the promoted master exited, long after the
        # original master was killed early in the call loop.
        assert result.wall_time_ns > result.fault_events[0].time_ns


class TestStalls:
    def test_rendezvous_stall_without_policy_diverges(self):
        """Satellite: the GHUMVEE stall watchdog alone (no degradation,
        no IP-MON) turns a silent non-participating replica into a
        divergence once the lockstep timeout expires."""

        def main(ctx):
            libc = ctx.libc
            for _ in range(6):
                fd = yield from libc.open("/data/in.txt")
                yield from libc.close(fd)
            return 0

        plan = FaultPlan(
            faults=[StallFault(replica=1, duration_ns=20_000_000_000, after_syscalls=4)]
        )
        _k, _m, result, _inj = run_mvee(
            Program("staller", main, files={"/data/in.txt": b"x"}),
            plan=plan,
            replicas=2,
            level=Level.NO_IPMON,
            max_steps=200_000_000,
        )
        assert result.diverged
        assert "lockstep stall" in result.divergence.detail
        assert result.divergence.detected_by == "ghumvee"
        assert result.divergence.kind == "stall"
        assert result.stats["replicas_quarantined"] == 0

    def test_rendezvous_stall_with_policy_quarantines_after_backoff(self):
        def main(ctx):
            libc = ctx.libc
            for _ in range(6):
                fd = yield from libc.open("/data/in.txt")
                yield from libc.close(fd)
            return 0

        plan = FaultPlan(
            faults=[StallFault(replica=2, duration_ns=60_000_000_000, after_syscalls=4)]
        )
        _k, _m, result, _inj = run_mvee(
            Program("staller", main, files={"/data/in.txt": b"x"}),
            plan=plan,
            replicas=3,
            level=Level.NO_IPMON,
            degradation=DegradationPolicy(min_quorum=2),
            max_steps=400_000_000,
        )
        assert not result.diverged, result.divergence
        assert result.stats["replicas_quarantined"] == 1
        assert result.quarantined_replicas == [2]
        assert result.fault_events[0].kind == "stall"
        # The watchdog re-armed (doubling) before giving up on the
        # laggard: cheaper than declaring a fault at the first timeout.
        assert result.stats["rendezvous_backoff_retries"] >= 1
        assert result.exit_codes[0] == 0 and result.exit_codes[1] == 0

    def test_stall_as_security_when_policy_says_so(self):
        def main(ctx):
            libc = ctx.libc
            for _ in range(6):
                fd = yield from libc.open("/data/in.txt")
                yield from libc.close(fd)
            return 0

        plan = FaultPlan(
            faults=[StallFault(replica=1, duration_ns=60_000_000_000, after_syscalls=4)]
        )
        _k, _m, result, _inj = run_mvee(
            Program("staller", main, files={"/data/in.txt": b"x"}),
            plan=plan,
            replicas=3,
            level=Level.NO_IPMON,
            degradation=DegradationPolicy(min_quorum=2, stall_is_benign=False),
            max_steps=400_000_000,
        )
        assert result.diverged
        assert result.stats["replicas_quarantined"] == 0

    def test_rb_lane_stall_quarantines_lagging_consumer(self):
        """A slave that stops draining its RB lane blocks the master
        once the (small) lane fills; the bounded backoff detects the
        lack of progress and quarantines the laggard."""

        def main(ctx):
            for _ in range(400):
                _pid = yield ctx.sys.getpid()
            return 0

        plan = FaultPlan(
            faults=[StallFault(replica=2, duration_ns=30_000_000_000, after_syscalls=30)]
        )
        _k, _m, result, _inj = run_mvee(
            Program("lane-filler", main),
            plan=plan,
            replicas=3,
            rb_size=4096,
            degradation=DegradationPolicy(min_quorum=2),
            max_steps=400_000_000,
        )
        assert not result.diverged, result.divergence
        assert result.stats["replicas_quarantined"] == 1
        assert result.quarantined_replicas == [2]
        assert result.stats["rb_backoff_retries"] >= 1
        assert result.fault_events[0].detected_by == "ipmon"
        assert result.exit_codes[0] == 0 and result.exit_codes[1] == 0


class TestSecurityInvariantsPreserved:
    def test_rb_corruption_fail_stops_even_with_policy(self):
        """Flipping a byte of a pending RB record is a *mismatch*, not a
        benign fault: degraded mode must still fail-stop (§4)."""

        def main(ctx):
            if ctx.process.replica_index != 0:
                yield Compute(3_000_000)
            for _ in range(40):
                _pid = yield ctx.sys.getpid()
            return 0

        plan = FaultPlan(faults=[RBCorruptionFault(at_ns=100_000)])
        _k, _m, result, injector = run_mvee(
            Program("corrupt", main),
            plan=plan,
            replicas=2,
            degradation=DegradationPolicy(min_quorum=1),
        )
        assert injector.stats["rb_corruptions"] == 1
        assert result.diverged
        assert result.divergence.detected_by == "ipmon"
        assert result.stats["replicas_quarantined"] == 0

    def test_argument_mismatch_attack_fail_stops_with_policy(self):
        """The corrupted-argument attack from the §4 analysis must keep
        fail-stopping when a DegradationPolicy is active."""
        from repro.attacks import scenarios
        from repro.attacks.analysis import run_attack

        outcome, result = run_attack(
            scenarios.corrupted_argument_program,
            degradation=DegradationPolicy(min_quorum=1),
        )
        assert outcome.blocked
        assert result.diverged
        assert result.divergence.detected_by == "ghumvee"
        assert result.stats["replicas_quarantined"] == 0


class TestServerAvailability:
    def test_three_replica_server_survives_slave_crash(self):
        """Acceptance: a replicated server keeps answering after one
        non-master replica is killed mid-benchmark."""
        from repro.workloads.clients import ClientSpec, run_server_benchmark
        from repro.workloads.servers import SERVERS

        server = SERVERS["redis"]
        holder = {}

        def runner(kernel, program):
            mvee = ReMon(
                kernel,
                program,
                ReMonConfig(
                    replicas=3,
                    level=Level.SOCKET_RW,
                    degradation=DegradationPolicy(min_quorum=2),
                ),
            )
            holder["mvee"] = mvee
            mvee.start()
            return mvee

        kernel = Kernel(config=KernelConfig(network_latency_ns=200_000))
        FaultInjector(
            FaultPlan(faults=[CrashFault(replica=1, after_syscalls=60)])
        ).install(kernel)
        spec = ClientSpec(tool="wrk", concurrency=4, total_requests=32)
        result = run_server_benchmark(
            kernel, server.program(), spec, server.port, runner
        )
        mvee = holder["mvee"]
        assert result.completed == 32
        assert result.errors == 0
        assert not mvee.result.diverged, mvee.result.divergence
        assert mvee.degradation_stats["replicas_quarantined"] == 1
        assert mvee.result.quarantined_replicas == [1]

    def test_three_replica_server_survives_master_crash(self):
        from repro.workloads.clients import ClientSpec, run_server_benchmark
        from repro.workloads.servers import SERVERS

        server = SERVERS["redis"]
        holder = {}

        def runner(kernel, program):
            mvee = ReMon(
                kernel,
                program,
                ReMonConfig(
                    replicas=3,
                    level=Level.SOCKET_RW,
                    degradation=DegradationPolicy(min_quorum=2),
                ),
            )
            holder["mvee"] = mvee
            mvee.start()
            return mvee

        kernel = Kernel(config=KernelConfig(network_latency_ns=200_000))
        FaultInjector(
            FaultPlan(faults=[CrashFault(replica=0, after_syscalls=60)])
        ).install(kernel)
        spec = ClientSpec(tool="wrk", concurrency=4, total_requests=32)
        result = run_server_benchmark(
            kernel, server.program(), spec, server.port, runner
        )
        mvee = holder["mvee"]
        assert result.completed == 32
        assert result.errors == 0
        assert not mvee.result.diverged, mvee.result.divergence
        assert mvee.degradation_stats["master_promotions"] == 1
        assert mvee.group.master_index == 1
