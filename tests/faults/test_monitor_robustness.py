"""Monitor-side robustness: late divergence reports and monitor-failure
aggregation (the two hardening fixes that ride along with the fault
framework)."""

import pytest

from repro.core import Level, ReMon, ReMonConfig
from repro.core.remon import DivergenceReport
from repro.guest.program import Program
from repro.kernel import Kernel
from repro.kernel import constants as C


def finished_mvee(replicas=2):
    def main(ctx):
        libc = ctx.libc
        out = yield from libc.open("/tmp/robust.txt", C.O_WRONLY | C.O_CREAT)
        yield from libc.write(out, b"done")
        yield from libc.close(out)
        return 5

    kernel = Kernel()
    mvee = ReMon(
        kernel,
        Program("robust", main),
        ReMonConfig(replicas=replicas, level=Level.NONSOCKET_RW),
    )
    mvee.start()
    kernel.sim.run(max_steps=10_000_000)
    assert mvee.group.all_exited()
    return kernel, mvee


class TestLateDivergenceReport:
    def test_divergence_after_all_exited_schedules_nothing(self):
        """A divergence reported after every replica already exited (e.g.
        a stale watchdog firing during teardown) must not try to schedule
        a shutdown on a stopped clock — call_at into the past raises."""
        kernel, mvee = finished_mvee()
        depth_before = kernel.sim.pending
        report = DivergenceReport(
            kernel.sim.now, 0, "write", "stale watchdog", detected_by="ghumvee"
        )
        mvee.divergence(report)  # must not raise
        assert mvee.result.divergence is report
        assert kernel.sim.pending == depth_before
        # The original shutdown reason is not rewritten by the late report.
        assert mvee.result.shutdown_reason == "all replicas exited"

    def test_divergence_before_exit_still_schedules_shutdown(self):
        def main(ctx):
            while True:
                yield ctx.sys.getpid()

        kernel = Kernel()
        mvee = ReMon(
            kernel,
            Program("spin", main),
            ReMonConfig(replicas=2, level=Level.NONSOCKET_RW),
        )
        mvee.start()
        kernel.sim.run(until=1_000_000)
        report = DivergenceReport(
            kernel.sim.now, 0, "getpid", "forced", detected_by="ghumvee"
        )
        depth_before = kernel.sim.pending
        mvee.divergence(report)
        assert kernel.sim.pending == depth_before + 1
        kernel.sim.run(until=kernel.sim.now + 10_000_000)
        assert mvee.result.shutdown_reason == "divergence: forced"


class TestMonitorFailureAggregation:
    def test_secondary_failures_attached_as_notes(self):
        """A cascade of monitor failures raises the first one, with every
        later failure surfaced as a note instead of silently dropped."""
        _kernel, mvee = finished_mvee()
        primary = ValueError("first monitor task died")
        mvee.monitor_failures.append(primary)
        mvee.monitor_failures.append(RuntimeError("second monitor task died"))
        mvee.monitor_failures.append(KeyError("third"))
        with pytest.raises(ValueError) as excinfo:
            mvee.finalize()
        assert excinfo.value is primary
        notes = getattr(excinfo.value, "__notes__", [])
        assert len(notes) == 2
        assert "RuntimeError" in notes[0]
        assert "third" in notes[1]

    def test_single_failure_raises_without_notes(self):
        _kernel, mvee = finished_mvee()
        mvee.monitor_failures.append(RuntimeError("lone failure"))
        with pytest.raises(RuntimeError) as excinfo:
            mvee.finalize()
        assert not getattr(excinfo.value, "__notes__", [])
