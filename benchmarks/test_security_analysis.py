"""Regenerates the §4 security analysis as a scenario-outcome table."""

from repro.bench import security


def test_security_analysis(benchmark, report):
    rows = security.generate()
    report(security.render(rows))

    by_key = {(r["scenario"], r["monitor"]): r for r in rows}

    # ReMon blocks the classic attacks outright.
    assert not by_key[("code-reuse payload (DCL on)", "ReMon")]["effect"]
    assert not by_key[("corrupted syscall argument", "ReMon")]["effect"]
    assert not by_key[("RB discovery (maps + guessing)", "ReMon")]["effect"]
    assert not by_key[("sensitive call by compromised master", "ReMon")]["effect"]
    assert not by_key[("unaligned syscall gadget", "ReMon")]["effect"]

    # Without diversity the same payload compromises every replica.
    assert by_key[("code-reuse payload (no diversity)", "ReMon")]["effect"]

    # VARAN's windows: sensitive calls execute; gadgets are invisible.
    varan_window = by_key[("sensitive call by compromised master", "VARAN")]
    assert varan_window["effect"] and varan_window["detected"]
    varan_gadget = by_key[("unaligned syscall gadget", "VARAN")]
    assert varan_gadget["effect"] and not varan_gadget["detected"]

    # Temporal policies: deterministic exploitable, stochastic not.
    assert by_key[("temporal abuse (deterministic policy)", "ReMon")]["effect"]
    assert not by_key[("temporal abuse (stochastic policy)", "ReMon")]["effect"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
