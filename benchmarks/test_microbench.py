"""Microbenchmarks of the substrate itself (host-time measurements).

These complement the figure/table benches: they time how fast the
simulator executes its own building blocks, which is useful when tuning
the reproduction and when reviewing performance regressions.
"""

from repro.baselines.native import run_native
from repro.guest.program import Compute, Program
from repro.kernel import Kernel
from repro.sim import Simulator, Sleep
from repro.workloads.calibrate import calibrate


def test_simulator_event_throughput(benchmark):
    def run():
        sim = Simulator()

        def ticker():
            for _ in range(2000):
                yield Sleep(10)

        sim.spawn(ticker(), "t")
        sim.run()
        return sim.steps

    steps = benchmark(run)
    assert steps >= 2000


def test_native_syscall_dispatch(benchmark):
    def run():
        def main(ctx):
            for _ in range(500):
                yield ctx.sys.getpid()
            return 0

        return run_native(Program("micro", main)).syscalls

    syscalls = benchmark(run)
    assert syscalls >= 500


def test_guest_file_io_roundtrip(benchmark):
    def run():
        def main(ctx):
            libc = ctx.libc
            fd = yield from libc.open("/data/x.bin")
            for _ in range(100):
                ret, _ = yield from libc.pread(fd, 4096, 0)
                assert ret == 4096
            return 0

        program = Program("micro-io", main, files={"/data/x.bin": bytes(8192)})
        return run_native(program).wall_time_ns

    benchmark(run)


def test_calibration_costs_are_sane(benchmark, report):
    cal = benchmark(lambda: (calibrate.cache_clear(), calibrate())[1])
    report(
        "Calibration: native=%.0f ns/call, monitored=+%.0f ns, "
        "unmonitored=+%.0f ns (CP/IP ratio %.1fx)"
        % (cal.t_native_ns, cal.t_mon_ns, cal.t_ipmon_ns,
           cal.t_mon_ns / cal.t_ipmon_ns)
    )
    # The regime the paper's design lives in: CP monitoring costs one to
    # two orders of magnitude more than in-process replication.
    assert 5 <= cal.t_mon_ns / cal.t_ipmon_ns <= 200
