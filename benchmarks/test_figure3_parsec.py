"""Regenerates Figure 3 (left): PARSEC 2.1 under GHUMVEE vs ReMon."""

from repro.bench import figure3
from repro.core.policies import Level


def test_figure3_parsec(benchmark, report):
    data = figure3.generate("parsec")
    report(figure3.render(data))

    # Shape assertions: IP-MON improves the geomean, in the right zone.
    assert data["geomean_measured_ipmon"] < data["geomean_measured_no_ipmon"]
    assert 1.0 <= data["geomean_measured_ipmon"] < 1.35
    assert 1.05 <= data["geomean_measured_no_ipmon"] < 1.6

    # Timing exhibit: one representative benchmark run end-to-end.
    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
