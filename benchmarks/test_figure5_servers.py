"""Regenerates Figure 5: the nine server benchmarks in both network
scenarios with 2-7 replicas (plus 2 replicas without IP-MON)."""

from repro.bench import figure5


def test_figure5_realistic_2ms(benchmark, report):
    data = figure5.generate("realistic-2ms")
    report(figure5.render(data))
    # At realistic latency ReMon's server overheads are tiny; IP-MON is
    # always at least as good as GHUMVEE-alone (allowing 2% noise).
    for row in data["rows"]:
        assert row["overheads"]["remon-2"] <= row["overheads"]["no-ipmon-2"] + 0.02, row
        assert row["overheads"]["remon-2"] < 0.25, row

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_figure5_worstcase_gigabit(benchmark, report):
    data = figure5.generate("gigabit-0.1ms")
    report(figure5.render(data))
    for row in data["rows"]:
        overheads = row["overheads"]
        # The worst-case link hides nothing: GHUMVEE-alone is clearly
        # worse than ReMon, and overhead grows with replica count.
        assert overheads["no-ipmon-2"] > overheads["remon-2"], row
        assert overheads["remon-7"] >= overheads["remon-2"] - 0.05, row

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
