"""Event-engine throughput benches (repro.sim; PR-8 refactor).

Two rows land in ``BENCH_engine.json`` at the repo root:

* the storm microbench — identical rendezvous-storm program run on the
  pre-refactor legacy-heap engine (kept in ``repro.bench.engine``) and
  on the calendar-queue engine, scored in task resumptions per host
  second. The refactor's acceptance bar, asserted here: >= 2x.
* the 64-node x 32-thread DistMvee sweep, reported in host seconds —
  the credibility-scale configuration that motivated the refactor; it
  must finish inside the CI smoke budget.
"""

import json
import os

from repro.bench import engine
from repro.bench.reporting import Table

_BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_engine.json")


def _record(section, payload):
    """Merge one section into BENCH_engine.json (partial runs keep
    earlier sections)."""
    data = {}
    try:
        with open(_BENCH_JSON) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        pass
    data[section] = payload
    data["smoke"] = engine.smoke()
    with open(_BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_storm_microbench_2x(report):
    rows = engine.storm_rows()
    _record("storm", rows)
    table = Table(
        "rendezvous storm (%d waiters x %d rounds): engine throughput"
        % (engine.STORM_WAITERS, engine.STORM_ROUNDS),
        ["engine", "resumptions", "host s", "events/sec", "speedup"],
    )
    for row in rows:
        table.add(
            row["engine"], row["resumptions"], "%.4f" % row["host_seconds"],
            "%.0f" % row["events_per_sec"],
            "%.2fx" % row.get("speedup_vs_legacy", 1.0),
        )
    report(table.render())

    legacy, current = rows
    # Both engines executed the identical virtual program.
    assert current["final_now"] == legacy["final_now"]
    assert current["resumptions"] == legacy["resumptions"]
    # The refactor's acceptance bar.
    assert current["speedup_vs_legacy"] >= 2.0, rows


def test_sweep_64_nodes_32_threads(report):
    row = engine.sweep_64x32()
    _record("sweep_64x32", row)
    table = Table(
        "DistMvee 64 nodes x 32 threads",
        ["nodes", "threads", "host s", "virtual ms", "sim steps"],
    )
    table.add(row["nodes"], row["threads"], "%.2f" % row["host_seconds"],
              "%.2f" % row["virtual_ms"], row["sim_steps"])
    report(table.render())

    # "Completes in the CI smoke budget": generous ceiling so a loaded
    # runner passes, but an engine regression to pre-refactor speed (or
    # worse) on this 2048-lane configuration still fails loudly.
    budget_s = 120 if engine.smoke() else 600
    assert row["host_seconds"] < budget_s, row
