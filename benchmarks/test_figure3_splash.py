"""Regenerates Figure 3 (right): SPLASH-2x under GHUMVEE vs ReMon."""

from repro.bench import figure3
from repro.core.policies import Level


def test_figure3_splash(benchmark, report):
    data = figure3.generate("splash")
    report(figure3.render(data))

    assert data["geomean_measured_ipmon"] < data["geomean_measured_no_ipmon"]
    # water_spatial is the suite's stress case: 4.20x -> 1.21x in the
    # paper; the reproduction must keep the drop dramatic.
    row = next(r for r in data["rows"] if r["name"] == "water_spatial")
    assert row["measured_no_ipmon"] > 3.0
    assert row["measured_ipmon"] < 1.6

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
