"""Benchmark-suite configuration.

Each bench prints its reproduced table/figure straight to the terminal
(bypassing capture) so that ``pytest benchmarks/ --benchmark-only | tee``
records the paper-vs-measured data alongside the timing stats.
"""

import pytest


@pytest.fixture
def report(capsys):
    """Print a rendered table without pytest capturing it."""

    def _print(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _print
