"""Regenerates Table 2: ReMon vs other MVEEs on the server suite."""

from repro.bench import table2


def test_table2_comparison(benchmark, report):
    data = table2.generate()
    report(table2.render(data))

    for row in data["rows"]:
        # ReMon at 5 ms: near-native (paper: 0-3.5%).
        assert row["measured_remon"] < 0.10, row
        # The security-oriented CP baseline is never better than ReMon.
        assert row["measured_ghumvee"] >= row["measured_remon"] - 0.02, row
    # Aggregate claim: ReMon approaches the reliability-oriented IP
    # design's efficiency while keeping lockstep for sensitive calls.
    avg_remon = sum(r["measured_remon"] for r in data["rows"]) / len(data["rows"])
    avg_varan = sum(r["measured_varan"] for r in data["rows"]) / len(data["rows"])
    assert avg_remon < 0.05
    assert abs(avg_remon - avg_varan) < 0.50

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
