"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.bench import ablations


def test_rb_size_ablation(benchmark, report):
    rows = ablations.rb_size_sweep()
    from repro.bench.reporting import Table

    table = Table("Ablation: RB size", ["rb size (KiB)", "overhead", "resets"])
    for row in rows:
        table.add(row["rb_size"] // 1024, row["overhead"], row["rb_resets"])
    report(table.render())
    # Tiny buffers stall the master more often.
    assert rows[0]["rb_resets"] >= rows[-1]["rb_resets"]
    assert rows[0]["overhead"] >= rows[-1]["overhead"] - 0.02

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_machine_ablation(benchmark, report):
    rows = ablations.machine_sweep()
    from repro.bench.reporting import Table

    table = Table(
        "Ablation: context-switch costs", ["machine", "CP", "ReMon", "gap"]
    )
    for row in rows:
        table.add(row["machine"], row["cp_overhead"], row["remon_overhead"],
                  "%.1fx" % row["gap"])
    report(table.render())
    by_name = {r["machine"]: r for r in rows}
    # Slower context switches widen the CP/IP gap; tagged TLBs narrow it
    # but never close it (the paper's core motivation).
    assert by_name["slow-switch"]["gap"] > by_name["tagged-tlb"]["gap"]
    assert by_name["tagged-tlb"]["cp_overhead"] > by_name["tagged-tlb"]["remon_overhead"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_replica_count_ablation(benchmark, report):
    rows = ablations.replica_sweep()
    from repro.bench.reporting import Table

    table = Table("Ablation: replica count", ["replicas", "overhead"])
    for row in rows:
        table.add(row["replicas"], row["overhead"])
    report(table.render())
    assert rows[-1]["overhead"] >= rows[0]["overhead"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_condvar_strategy_ablation(benchmark, report):
    rows = ablations.condvar_strategy_sweep()
    from repro.bench.reporting import Table

    table = Table(
        "Ablation: slave waiting strategies (§3.7)",
        ["strategy", "wall ms", "futex waits", "wakes skipped", "spin CPU us"],
    )
    for row in rows:
        table.add(
            row["strategy"],
            "%.2f" % (row["wall_time_ns"] / 1e6),
            row["futex_waits"],
            row["wakes_skipped"],
            "%.0f" % (row["slave_spin_cpu_ns"] / 1e3),
        )
    report(table.render())
    by_name = {r["strategy"]: r for r in rows}
    # Futex condvars put the slaves to sleep; forced spinning burns CPU
    # instead. The no-waiter wake elision fires in both configurations.
    assert by_name["futex-condvars"]["futex_waits"] > 0
    assert by_name["always-spin"]["futex_waits"] == 0
    assert (
        by_name["always-spin"]["slave_spin_cpu_ns"]
        > 5 * by_name["futex-condvars"]["slave_spin_cpu_ns"]
    )
    assert any(row["wakes_skipped"] > 0 for row in rows)

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
