"""Availability benches: what graceful degradation buys under injected
replica crashes (DESIGN.md: fault model & degraded mode)."""

from repro.bench import availability


def test_crash_count_sweep(benchmark, report):
    rows = availability.crash_count_sweep()
    from repro.bench.reporting import Table

    table = Table(
        "Availability: successive crashes vs quorum (min_quorum=2)",
        ["replicas", "crashes", "outcome", "quarantined", "promotions"],
    )
    for row in rows:
        table.add(row["replicas"], row["crashes"], row["outcome"],
                  row["quarantined"], row["promotions"])
    report(table.render())
    by_key = {(r["replicas"], r["crashes"]): r for r in rows}
    # N replicas absorb up to N - min_quorum crashes, then fail-stop.
    assert by_key[(3, 0)]["outcome"] == "completed"
    assert by_key[(3, 1)]["outcome"] == "completed"
    assert by_key[(3, 2)]["outcome"] == "fail-stop"
    assert by_key[(4, 2)]["outcome"] == "completed"
    assert by_key[(4, 3)]["outcome"] == "fail-stop"
    assert by_key[(4, 2)]["quarantined"] == 2

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_random_crash_survival(benchmark, report):
    rows = availability.random_crash_survival()
    from repro.bench.reporting import Table

    table = Table(
        "Availability: survival vs crash rate (4 replicas, seeded plans)",
        ["policy", "crashes/s", "runs", "survival", "mean quarantined",
         "mean faults"],
    )
    for row in rows:
        table.add(row["policy"], "%.0f" % row["rate_hz"], row["runs"],
                  "%.0f%%" % (100 * row["survival"]),
                  "%.1f" % row["mean_quarantined"], "%.1f" % row["mean_faults"])
    report(table.render())
    by_key = {(r["policy"], r["rate_hz"]): r for r in rows}
    rates = sorted({r["rate_hz"] for r in rows})
    for rate in rates:
        policy_row = by_key[("degradation policy", rate)]
        failstop_row = by_key[("classic fail-stop", rate)]
        # The policy absorbs crashes classic fail-stop cannot; fail-stop
        # runs die on their first crash, so nothing is ever quarantined.
        assert policy_row["survival"] >= failstop_row["survival"]
        assert failstop_row["mean_quarantined"] == 0
    # At the lowest rate every plan is absorbable (≤ N − min_quorum
    # crashes), while a single crash already kills classic fail-stop.
    assert by_key[("degradation policy", rates[0])]["survival"] == 1.0
    assert by_key[("classic fail-stop", rates[0])]["survival"] == 0.0
    assert by_key[("degradation policy", rates[0])]["mean_quarantined"] > 0

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_degraded_tail_overhead(benchmark, report):
    rows = availability.degraded_tail_overhead()
    from repro.bench.reporting import Table

    table = Table(
        "Availability: degraded-tail overhead (3 replicas)",
        ["scenario", "overhead", "quarantined", "promotions"],
    )
    for row in rows:
        table.add(row["scenario"], row["overhead"], row["quarantined"],
                  row["promotions"])
    report(table.render())
    by_name = {r["scenario"]: r for r in rows}
    assert by_name["slave crash"]["quarantined"] == 1
    assert by_name["master crash"]["promotions"] == 1
    # Losing a replica mid-run must not be slower than running all three
    # to completion by more than the promotion/poison transient.
    assert by_name["slave crash"]["overhead"] < by_name["fault-free"]["overhead"] * 1.5
    assert by_name["master crash"]["overhead"] < by_name["fault-free"]["overhead"] * 1.5

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
