"""Distributed-MVEE benches: the dMVX selective-replication claim, batch
coalescing, cross-node relaxation, node-crash failover, the fast path —
sharded rendezvous + compressed RB mirrors — and what an epoch handoff
costs when a shard owner dies (repro.dist, DESIGN.md §8).

Every sweep's rows are also written to ``BENCH_dist.json`` at the repo
root (merged section by section, so partial runs keep earlier data):
machine-readable per-config wire bytes, simulated wall time, and
rendezvous round counts.
"""

import json
import os

from repro.bench import dist
from repro.bench.reporting import Table

_BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_dist.json")


def _record(section, rows):
    """Merge one sweep's rows into BENCH_dist.json."""
    data = {}
    try:
        with open(_BENCH_JSON) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        pass
    data[section] = rows
    data["smoke"] = dist.smoke()
    with open(_BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_selective_vs_full_replication(benchmark, report):
    rows = dist.selective_vs_full()
    _record("selective_vs_full", rows)
    table = Table(
        "dMVX selective vs full replication (3 nodes, SOCKET_RW)",
        ["latency", "policy", "overhead", "wire KiB", "messages",
         "replicated", "local"],
    )
    for row in rows:
        table.add("%d us" % (row["latency_ns"] // 1000), row["policy"],
                  "%.2fx" % row["overhead"],
                  "%.1f" % (row["wire_bytes"] / 1024), row["messages"],
                  row["replicated"], row["local"])
    report(table.render())

    by_key = {(r["latency_ns"], r["policy"]): r for r in rows}
    latencies = sorted({r["latency_ns"] for r in rows})
    for latency in latencies:
        sel = by_key[(latency, "selective")]
        full = by_key[(latency, "full")]
        # The dMVX claim, at every tested link latency: selective
        # replication moves fewer bytes AND costs less wall time.
        assert sel["wire_bytes"] < full["wire_bytes"], latency
        assert sel["overhead"] < full["overhead"], latency
        # It does so by keeping reproducible calls local.
        assert sel["local"] > full["local"]
        assert sel["replicated"] < full["replicated"]
    # The byte saving is substantial, not marginal.
    mid = latencies[len(latencies) // 2]
    assert by_key[(mid, "full")]["wire_bytes"] > (
        2 * by_key[(mid, "selective")]["wire_bytes"]
    )

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_batching_collapses_message_count(benchmark, report):
    rows = dist.batching_sweep()
    _record("batching", rows)
    table = Table(
        "Transfer-unit size sweep (200 us links)",
        ["batch", "messages", "frames", "frames/msg", "overhead"],
    )
    for row in rows:
        table.add(row["batch_bytes"], row["messages"], row["frames"],
                  "%.1f" % row["frames_per_msg"], "%.2fx" % row["overhead"])
    report(table.render())

    by_size = {r["batch_bytes"]: r for r in rows}
    sizes = sorted(by_size)
    # Same frame traffic at every size; fewer, fuller messages as the
    # transfer unit grows.
    assert by_size[sizes[0]]["messages"] >= by_size[sizes[-1]]["messages"]
    assert (by_size[sizes[-1]]["frames_per_msg"]
            >= by_size[sizes[0]]["frames_per_msg"])

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_relaxation_matters_more_across_nodes(benchmark, report):
    rows = dist.relaxation_sweep()
    _record("relaxation", rows)
    table = Table(
        "Relaxation across nodes (200 us links)",
        ["level", "rendezvous", "local", "replicated", "round trips",
         "overhead"],
    )
    for row in rows:
        table.add(row["level"], row["rendezvous"], row["local"],
                  row["replicated"], row["round_trips"],
                  "%.2fx" % row["overhead"])
    report(table.render())

    by_level = {r["level"]: r for r in rows}
    # Each relaxation step drains the lockstep lane...
    assert (by_level["NO_IPMON"]["rendezvous"]
            > by_level["NONSOCKET_RW"]["rendezvous"]
            > by_level["SOCKET_RW"]["rendezvous"])
    # ...and full lockstep is dramatically slower than relaxed modes
    # once every monitored call pays two link round trips.
    assert by_level["NO_IPMON"]["overhead"] > 2 * by_level["SOCKET_RW"]["overhead"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_node_crash_failover(benchmark, report):
    rows = dist.failover_rows()
    _record("failover", rows)
    table = Table(
        "Node-crash failover (3 nodes, min_quorum=2)",
        ["scenario", "outcome", "quarantined", "promotions", "overhead"],
    )
    for row in rows:
        table.add(row["scenario"], row["outcome"], row["quarantined"],
                  row["promotions"], "%.2fx" % row["overhead"])
    report(table.render())

    by_name = {r["scenario"]: r for r in rows}
    assert by_name["fault-free"]["outcome"] == "completed"
    assert by_name["fault-free"]["quarantined"] == 0
    # Both crash flavours are absorbed across nodes without deadlock.
    assert by_name["follower crash"]["outcome"] == "completed"
    assert by_name["follower crash"]["quarantined"] == 1
    assert by_name["follower crash"]["promotions"] == 0
    assert by_name["leader crash"]["outcome"] == "completed"
    assert by_name["leader crash"]["quarantined"] == 1
    assert by_name["leader crash"]["promotions"] == 1

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_sharded_rendezvous_cuts_serialization(benchmark, report):
    rows = dist.shard_sweep()
    _record("shard", rows)
    table = Table(
        "Sharded rendezvous (4 nodes, 8 threads, NO_IPMON, 50 us links)",
        ["shards", "wait/round", "owner max", "rounds", "round trips",
         "wall ms", "overhead"],
    )
    for row in rows:
        table.add(row["shards"], "%.0f ns" % row["wait_per_round_ns"],
                  row["rounds_owner_max"], row["rounds"],
                  row["round_trips"],
                  "%.3f" % (row["wall_time_ns"] / 1e6),
                  "%.2fx" % row["overhead"])
    report(table.render())

    by_shards = {r["shards"]: r for r in rows}
    counts = sorted(by_shards)
    base = by_shards[counts[0]]
    # Same lockstep work at every shard count (the run's final round may
    # land just before or just after shutdown, hence the ±1)...
    assert all(abs(by_shards[k]["rounds"] - base["rounds"]) <= 1
               for k in counts)
    # ...but queue-wait behind the serialized monitor strictly shrinks
    # as rounds spread over more owners,
    for lo, hi in zip(counts, counts[1:]):
        assert (by_shards[hi]["monitor_wait_ns"]
                < by_shards[lo]["monitor_wait_ns"]), (lo, hi)
    # ...no single owner serializes more than half the rounds at 4 shards,
    assert by_shards[counts[-1]]["rounds_owner_max"] * 2 < base["rounds_owner_max"]
    # ...and the routing hop does not blow up wall time.
    assert by_shards[counts[-1]]["wall_time_ns"] <= 1.03 * base["wall_time_ns"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_shard_owner_recovery_cost(benchmark, report):
    rows = dist.recovery_sweep()
    _record("recovery", rows)
    table = Table(
        "Shard-owner recovery (4 nodes, 2 shards, min_quorum=2)",
        ["latency", "scenario", "epoch", "lost", "resubmits", "transfers",
         "handoff us", "overhead"],
    )
    for row in rows:
        table.add("%d us" % (row["latency_ns"] // 1000), row["scenario"],
                  row["epoch"], row["lost_rounds"], row["resubmits"],
                  row["handoff_rounds"],
                  "%.1f" % (row["handoff_cost_ns"] / 1000),
                  "%.2fx" % row["overhead"])
    report(table.render())

    by_key = {(r["latency_ns"], r["scenario"]): r for r in rows}
    latencies = sorted({r["latency_ns"] for r in rows})
    for latency in latencies:
        free = by_key[(latency, "fault-free")]
        owner = by_key[(latency, "owner crash")]
        follower = by_key[(latency, "follower crash")]
        leader = by_key[(latency, "leader crash")]
        # No membership change: the epoch never moves and no handoff
        # machinery is billed (the stats keys do not even exist).
        assert free["epoch"] == 0 and free["handoff_cost_ns"] == 0, latency
        assert free["quarantined"] == 0, latency
        # Killing a shard owner costs real recovery work: open rounds
        # are lost and re-collected, each billed dist_handoff_ns.
        assert owner["epoch"] == 1 and owner["handoff_cost_ns"] > 0, latency
        assert owner["lost_rounds"] > 0, latency
        assert owner["resubmits"] >= owner["lost_rounds"], latency
        # Killing a non-owner follower bumps the epoch but moves no
        # shard state: recovery is free.
        assert follower["epoch"] == 1 and follower["handoff_cost_ns"] == 0, latency
        assert follower["lost_rounds"] == 0 == follower["resubmits"], latency
        # The leader is an owner too: promotion plus nonzero handoff.
        assert leader["promotions"] == 1, latency
        assert leader["handoff_cost_ns"] > 0, latency
        assert leader["handoff_rounds"] + leader["lost_rounds"] > 0, latency

    # The whole sweep is deterministic: a second pass at the first
    # latency reproduces every recovery figure bit for bit.
    again = {(r["latency_ns"], r["scenario"]): r
             for r in dist.recovery_sweep(latencies_ns=(latencies[0],))}
    for scenario in ("fault-free", "owner crash", "follower crash",
                     "leader crash"):
        assert again[(latencies[0], scenario)] == by_key[(latencies[0], scenario)]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_lifecycle_readmission_cost(benchmark, report):
    from repro.bench import availability

    rows = availability.lifecycle_sweep()
    _record("lifecycle", rows)
    table = Table(
        "Lifecycle: replay-based re-admission cost (4 nodes, 2 shards)",
        ["scenario", "rejoins", "rejoin ms", "replayed", "epoch",
         "wall ms", "exits ok"],
    )
    for row in rows:
        table.add(row["scenario"], row["rejoins"],
                  "%.2f" % row["rejoin_ms"], row["replayed"], row["epoch"],
                  "%.2f" % row["wall_ms"], row["exit_codes_ok"])
    report(table.render())

    by_name = {r["scenario"]: r for r in rows}
    free = by_name["fault-free"]
    # The fault-free run never touches the rejoin machinery: epoch 0,
    # zero rejoins, zero priced recovery time.
    assert free["rejoins"] == 0 and free["epoch"] == 0
    assert free["rejoin_ms"] == 0
    for scenario in ("follower crash", "shard-owner crash", "leader crash"):
        row = by_name[scenario]
        # Each crash position is absorbed the same way: one replayed
        # re-admission under a bumped epoch (quarantine + rejoin), the
        # recovery latency priced, and the full program still completes.
        assert row["rejoins"] == 1, scenario
        assert row["epoch"] == 2, scenario
        assert row["rejoin_ms"] > 0, scenario
        assert row["replayed"] > 0, scenario
        assert row["exit_codes_ok"], scenario
        # Recovery is cheap relative to the run, not free.
        assert row["wall_ms"] > free["wall_ms"], scenario
        assert row["rejoin_ms"] < row["wall_ms"], scenario

    # The sweep is deterministic end to end: a second pass reproduces
    # every recovery figure bit for bit.
    assert availability.lifecycle_sweep() == rows

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_compression_cuts_wire_bytes(benchmark, report):
    rows = dist.compression_sweep()
    _record("compression", rows)
    table = Table(
        "RB mirror compression (3 nodes, replicated-read-heavy)",
        ["latency", "codec", "wire KiB", "payload raw", "payload coded",
         "rle/dict frames", "errors", "overhead"],
    )
    for row in rows:
        table.add("%d us" % (row["latency_ns"] // 1000), row["codec"],
                  "%.1f" % (row["wire_bytes"] / 1024),
                  row["payload_raw_bytes"], row["payload_coded_bytes"],
                  "%d/%d" % (row["frames_rle"], row["frames_dict"]),
                  row["wire_errors"], "%.2fx" % row["overhead"])
    report(table.render())

    by_key = {(r["latency_ns"], r["codec"]): r for r in rows}
    latencies = sorted({r["latency_ns"] for r in rows})
    for latency in latencies:
        raw = by_key[(latency, "raw")]
        rle = by_key[(latency, "rle")]
        dct = by_key[(latency, "dict")]
        # Every codec decodes every frame it coded.
        assert raw["wire_errors"] == rle["wire_errors"] == dct["wire_errors"] == 0
        # Same lockstep rounds regardless of codec.
        assert raw["rounds"] == rle["rounds"] == dct["rounds"]
        # At EVERY tested link latency both codecs cut total wire bytes
        # substantially, and the dictionary beats plain RLE on this
        # repeat-heavy mirror stream.
        assert rle["wire_bytes"] * 2 < raw["wire_bytes"], latency
        assert dct["wire_bytes"] < rle["wire_bytes"], latency
        # The payload transform itself shrinks what it touches...
        assert rle["payload_coded_bytes"] * 5 < rle["payload_raw_bytes"]
        assert dct["payload_coded_bytes"] < rle["payload_coded_bytes"]
        # ...and the codec CPU charge never costs more wall time than
        # the bytes it saves at these latencies.
        assert rle["wall_time_ns"] <= 1.02 * raw["wall_time_ns"], latency
        assert dct["wall_time_ns"] <= 1.02 * raw["wall_time_ns"], latency

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_fast_path_dominates_baseline(benchmark, report):
    rows = dist.fast_path_rows()
    _record("fast_path", rows)
    table = Table(
        "Fast path vs baseline (3 nodes, 6 threads)",
        ["latency", "config", "wire KiB", "monitor wait", "owner max",
         "rounds", "exits", "overhead"],
    )
    for row in rows:
        table.add("%d us" % (row["latency_ns"] // 1000), row["config"],
                  "%.1f" % (row["wire_bytes"] / 1024),
                  "%d ns" % row["monitor_wait_ns"],
                  row["rounds_owner_max"], row["rounds"],
                  ",".join(str(c) for c in row["exit_codes"]),
                  "%.2fx" % row["overhead"])
    report(table.render())

    by_key = {(r["latency_ns"], r["config"]): r for r in rows}
    latencies = sorted({r["latency_ns"] for r in rows})
    for latency in latencies:
        base = by_key[(latency, "baseline")]
        fast = by_key[(latency, "fast-path")]
        # Equal correctness: same exit codes, same lockstep rounds, no
        # wire faults.
        assert fast["exit_codes"] == base["exit_codes"], latency
        assert all(code == 0 for code in fast["exit_codes"]), latency
        assert fast["rounds"] == base["rounds"], latency
        assert fast["wire_errors"] == 0, latency
        # The fast path dominates the PR-2 baseline on wire bytes at
        # every tested link latency...
        assert fast["wire_bytes"] * 2 < base["wire_bytes"], latency
        # ...while sharding holds monitor serialization down.
        assert fast["monitor_wait_ns"] < base["monitor_wait_ns"], latency
        assert fast["rounds_owner_max"] < base["rounds_owner_max"], latency

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_heterogeneous_diversity_costs_under_ten_pct(benchmark, report):
    rows = dist.hetero_sweep()
    _record("hetero", rows)
    table = Table(
        "Heterogeneous diversity profiles (3 nodes, SOCKET_RW)",
        ["latency", "profile", "rounds", "canonical calls", "canonical us",
         "canonical %", "overhead"],
    )
    for row in rows:
        table.add("%d us" % (row["latency_ns"] // 1000), row["profile"],
                  row["rounds"], row["canonical_calls"],
                  "%.1f" % (row["canonical_cost_ns"] / 1000),
                  "%.2f%%" % row["canonical_pct"],
                  "%.2fx" % row["overhead"])
    report(table.render())

    by_key = {(r["latency_ns"], r["profile"]): r for r in rows}
    for latency in sorted({r["latency_ns"] for r in rows}):
        homo = by_key[(latency, "homogeneous")]
        hetero = by_key[(latency, "heterogeneous")]
        # Digest behaviour is layout-independent: same exit codes, same
        # rendezvous traffic, same round counts (DESIGN.md §13).
        assert hetero["exit_codes"] == homo["exit_codes"], latency
        assert all(code == 0 for code in hetero["exit_codes"]), latency
        assert hetero["rounds"] == homo["rounds"], latency
        assert hetero["rendezvous"] == homo["rendezvous"], latency
        # The diversity actually engaged: >= 2 ABI variants, and the
        # non-canonical nodes re-encoded their compared calls.
        assert hetero["abi_variants"] >= 2, latency
        assert hetero["canonical_calls"] > 0, latency
        assert homo["canonical_calls"] == 0, latency
        # The §13 price cap: canonicalization stays under 10% of the
        # rendezvous path — both as billed canonicalization time and
        # as end-to-end wall-time inflation over homogeneous.
        assert hetero["canonical_pct"] < 10.0, latency
        assert hetero["wall_time_ns"] < 1.10 * homo["wall_time_ns"], latency

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_wan_overhead_vs_loss(benchmark, report):
    rows = dist.wan_sweep()
    _record("wan", rows)
    table = Table(
        "WAN loss sweep (3 nodes, SOCKET_RW, 200 us links)",
        ["loss", "policy", "retransmits", "retx KiB", "acks", "wire KiB",
         "exits", "overhead"],
    )
    for row in rows:
        table.add("%.0f%%" % (row["loss_prob"] * 100), row["policy"],
                  row["retransmits"],
                  "%.1f" % (row["retransmit_bytes"] / 1024),
                  row["acks_sent"], "%.1f" % (row["wire_bytes"] / 1024),
                  ",".join(str(c) for c in row["exit_codes"]),
                  "%.2fx" % row["overhead"])
    report(table.render())

    by_key = {(r["loss_prob"], r["policy"]): r for r in rows}
    losses = sorted({r["loss_prob"] for r in rows})
    for policy in ("selective", "full"):
        # Exactly-once delivery hides every loss rate from the guests:
        # each run completes cleanly with every exit code 0.
        for loss in losses:
            assert by_key[(loss, policy)]["exit_codes"] == [0, 0, 0], (
                loss, policy)
        zero = by_key[(0.0, policy)]
        # The loss-free run keeps the legacy unsequenced path: no
        # retransmit, ack, or breaker traffic whatsoever.
        assert zero["retransmits"] == 0 == zero["acks_sent"], policy
        assert zero["segments_lost"] == 0, policy
        for loss in losses[1:]:
            lossy = by_key[(loss, policy)]
            # Lossy links actually drop segments, the retransmit layer
            # pays them back, and the recovery shows up in wall time.
            assert lossy["segments_lost"] > 0, (loss, policy)
            assert lossy["retransmits"] > 0, (loss, policy)
            assert lossy["retransmit_bytes"] > 0, (loss, policy)
            assert lossy["acks_sent"] > 0, (loss, policy)
            assert lossy["overhead"] > zero["overhead"], (loss, policy)
        # More loss, more repair traffic (monotone in the loss rate).
        retx = [by_key[(loss, policy)]["retransmits"] for loss in losses]
        assert retx == sorted(retx), policy
    # The dMVX claim survives the WAN: even at the worst tested loss
    # rate, selective replication still moves fewer bytes and costs
    # less wall time than full replication.
    worst = losses[-1]
    assert (by_key[(worst, "selective")]["wire_bytes"]
            < by_key[(worst, "full")]["wire_bytes"])
    assert (by_key[(worst, "selective")]["overhead"]
            < by_key[(worst, "full")]["overhead"])

    breaker_rows = dist.wan_breaker_rows()
    _record("wan_breaker", breaker_rows)
    table = Table(
        "Link-breaker recovery (leader link blackholed 20 ms)",
        ["scenario", "opens", "closes", "probes", "degrades", "restores",
         "quarantined", "overhead"],
    )
    for row in breaker_rows:
        table.add(row["scenario"], row["breaker_opens"],
                  row["breaker_closes"], row["probes"], row["degrades"],
                  row["restores"], row["quarantined"],
                  "%.2fx" % row["overhead"])
    report(table.render())

    by_name = {r["scenario"]: r for r in breaker_rows}
    free = by_name["fault-free"]
    hole = by_name["leader link blackhole"]
    assert free["breaker_opens"] == 0 == free["degrades"]
    # The blackhole trips the breaker, soft-degrades the far follower,
    # and the half-open probe rejoins it — nobody is quarantined and
    # every guest still exits 0.
    assert hole["outcome"] == "completed"
    assert hole["exit_codes"] == [0, 0, 0]
    assert hole["breaker_opens"] >= 1
    assert hole["breaker_closes"] >= 1
    assert hole["probes"] >= 1
    assert hole["degrades"] >= 1 and hole["restores"] >= 1
    assert hole["quarantined"] == 0
    assert hole["retransmits"] > free["retransmits"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
