"""Distributed-MVEE benches: the dMVX selective-replication claim, batch
coalescing, cross-node relaxation, and node-crash failover (repro.dist,
DESIGN.md §8)."""

from repro.bench import dist
from repro.bench.reporting import Table


def test_selective_vs_full_replication(benchmark, report):
    rows = dist.selective_vs_full()
    table = Table(
        "dMVX selective vs full replication (3 nodes, SOCKET_RW)",
        ["latency", "policy", "overhead", "wire KiB", "messages",
         "replicated", "local"],
    )
    for row in rows:
        table.add("%d us" % (row["latency_ns"] // 1000), row["policy"],
                  "%.2fx" % row["overhead"],
                  "%.1f" % (row["wire_bytes"] / 1024), row["messages"],
                  row["replicated"], row["local"])
    report(table.render())

    by_key = {(r["latency_ns"], r["policy"]): r for r in rows}
    latencies = sorted({r["latency_ns"] for r in rows})
    for latency in latencies:
        sel = by_key[(latency, "selective")]
        full = by_key[(latency, "full")]
        # The dMVX claim, at every tested link latency: selective
        # replication moves fewer bytes AND costs less wall time.
        assert sel["wire_bytes"] < full["wire_bytes"], latency
        assert sel["overhead"] < full["overhead"], latency
        # It does so by keeping reproducible calls local.
        assert sel["local"] > full["local"]
        assert sel["replicated"] < full["replicated"]
    # The byte saving is substantial, not marginal.
    mid = latencies[len(latencies) // 2]
    assert by_key[(mid, "full")]["wire_bytes"] > (
        2 * by_key[(mid, "selective")]["wire_bytes"]
    )

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_batching_collapses_message_count(benchmark, report):
    rows = dist.batching_sweep()
    table = Table(
        "Transfer-unit size sweep (200 us links)",
        ["batch", "messages", "frames", "frames/msg", "overhead"],
    )
    for row in rows:
        table.add(row["batch_bytes"], row["messages"], row["frames"],
                  "%.1f" % row["frames_per_msg"], "%.2fx" % row["overhead"])
    report(table.render())

    by_size = {r["batch_bytes"]: r for r in rows}
    sizes = sorted(by_size)
    # Same frame traffic at every size; fewer, fuller messages as the
    # transfer unit grows.
    assert by_size[sizes[0]]["messages"] >= by_size[sizes[-1]]["messages"]
    assert (by_size[sizes[-1]]["frames_per_msg"]
            >= by_size[sizes[0]]["frames_per_msg"])

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_relaxation_matters_more_across_nodes(benchmark, report):
    rows = dist.relaxation_sweep()
    table = Table(
        "Relaxation across nodes (200 us links)",
        ["level", "rendezvous", "local", "replicated", "round trips",
         "overhead"],
    )
    for row in rows:
        table.add(row["level"], row["rendezvous"], row["local"],
                  row["replicated"], row["round_trips"],
                  "%.2fx" % row["overhead"])
    report(table.render())

    by_level = {r["level"]: r for r in rows}
    # Each relaxation step drains the lockstep lane...
    assert (by_level["NO_IPMON"]["rendezvous"]
            > by_level["NONSOCKET_RW"]["rendezvous"]
            > by_level["SOCKET_RW"]["rendezvous"])
    # ...and full lockstep is dramatically slower than relaxed modes
    # once every monitored call pays two link round trips.
    assert by_level["NO_IPMON"]["overhead"] > 2 * by_level["SOCKET_RW"]["overhead"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_node_crash_failover(benchmark, report):
    rows = dist.failover_rows()
    table = Table(
        "Node-crash failover (3 nodes, min_quorum=2)",
        ["scenario", "outcome", "quarantined", "promotions", "overhead"],
    )
    for row in rows:
        table.add(row["scenario"], row["outcome"], row["quarantined"],
                  row["promotions"], "%.2fx" % row["overhead"])
    report(table.render())

    by_name = {r["scenario"]: r for r in rows}
    assert by_name["fault-free"]["outcome"] == "completed"
    assert by_name["fault-free"]["quarantined"] == 0
    # Both crash flavours are absorbed across nodes without deadlock.
    assert by_name["follower crash"]["outcome"] == "completed"
    assert by_name["follower crash"]["quarantined"] == 1
    assert by_name["follower crash"]["promotions"] == 0
    assert by_name["leader crash"]["outcome"] == "completed"
    assert by_name["leader crash"]["quarantined"] == 1
    assert by_name["leader crash"]["promotions"] == 1

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
