"""Regenerates Figure 4: Phoronix across all relaxation levels."""

from repro.bench import figure4
from repro.bench.reporting import ordering_preserved
from repro.core.policies import Level


def test_figure4_phoronix(benchmark, report):
    data = figure4.generate()
    report(figure4.render(data))

    # The headline: geomean falls monotonically-ish from NO_IPMON to
    # SOCKET_RW, reproducing 2.46 -> 1.41.
    gm = data["geomean_measured"]
    assert gm[Level.SOCKET_RW] < gm[Level.NONSOCKET_RW] < gm[Level.NO_IPMON]

    # Per-benchmark shape: the measured level ordering matches the paper
    # wherever the paper's bars differ by more than noise.
    for row in data["rows"]:
        paper = {lvl.name: v for lvl, v in row["paper"].items()}
        measured = {lvl.name: v for lvl, v in row["measured"].items()}
        assert ordering_preserved(paper, measured), (row["name"], measured)

    # network-loopback: the two socket levels are where the cliff is.
    loopback = next(r for r in data["rows"] if r["name"] == "network-loopback")
    assert loopback["measured"][Level.NO_IPMON] > 12
    assert loopback["measured"][Level.SOCKET_RW] < 6

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
