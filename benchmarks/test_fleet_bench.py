"""Fleet latency-vs-offered-load benches (repro.fleet, DESIGN.md §10).

The queue-based-load-leveling claim, measured: past the saturation knee
an unthrottled fleet's p99 is accept-backlog wait and keeps growing with
offered load, while the admission controller (token bucket + bounded
backlog) holds p99 pinned near the knee at the same goodput, paying in
shed connections instead of latency. Plus: reject vs drop shed
policies, selective vs full replication wire volume for an
externally-driven fleet, and a >= 10,000-connection run through one
multiplexed client process.

Every sweep's rows are written to ``BENCH_fleet.json`` at the repo root
(merged section by section, so partial runs keep earlier data).
"""

import json
import os

from repro.bench import fleet
from repro.bench.reporting import Table

_BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_fleet.json")


def _record(section, rows):
    """Merge one sweep's rows into BENCH_fleet.json."""
    data = {}
    try:
        with open(_BENCH_JSON) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        pass
    data[section] = rows
    data["smoke"] = fleet.smoke()
    with open(_BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_admission_bounds_tail_latency(benchmark, report):
    rows = fleet.offered_load_sweep()
    _record("offered_load", rows)
    table = Table(
        "redis fleet (2 nodes): p99 vs offered load, baseline vs admission",
        ["offered rps", "mode", "admitted", "shed", "p50 ms", "p99 ms",
         "goodput rps", "max queue wait ms"],
    )
    for row in rows:
        table.add(
            "%.0f" % row["offered_rps"], row["mode"], row["admitted"],
            row["shed"], "%.2f" % (row["p50_ns"] / 1e6),
            "%.2f" % (row["p99_ns"] / 1e6), "%.0f" % row["goodput_rps"],
            "%.2f" % (row["max_accept_wait_ns"] / 1e6),
        )
    report(table.render())

    for row in rows:
        # Conservation: every offered SYN was either admitted or shed.
        assert row["admitted"] + row["shed"] == row["offered"], row
        assert row["errors"] == 0, row
    baseline = [r for r in rows if r["mode"] == "baseline"]
    admission = [r for r in rows if r["mode"] == "admission"]
    # Below the knee the controller is transparent: nothing shed, same
    # tail as the baseline.
    assert admission[0]["shed"] == 0
    assert admission[0]["p99_ns"] == baseline[0]["p99_ns"]
    # Past the knee the baseline tail is queue wait and keeps growing
    # with offered load...
    knee_p99 = baseline[0]["p99_ns"]
    overloaded = baseline[1:]
    assert all(r["p99_ns"] > 5 * knee_p99 for r in overloaded)
    assert overloaded[-1]["p99_ns"] > overloaded[0]["p99_ns"]
    # ...while admission holds p99 bounded (well under the baseline's)
    # at equal-or-better goodput, by shedding the excess.
    for base_row, adm_row in zip(baseline[1:], admission[1:]):
        assert adm_row["shed"] > 0
        assert adm_row["p99_ns"] * 3 < base_row["p99_ns"], (adm_row, base_row)
        assert adm_row["goodput_rps"] > 0.85 * base_row["goodput_rps"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_shed_policy_semantics(benchmark, report):
    rows = fleet.shed_policy_rows()
    _record("shed_policy", rows)
    table = Table(
        "Shed policy at ~30x overload (redis fleet)",
        ["policy", "shed", "client refused", "client timed out",
         "completed", "p99 ms"],
    )
    for row in rows:
        table.add(row["policy"], row["shed"], row["refused"], row["dropped"],
                  row["completed"], "%.2f" % (row["p99_ns"] / 1e6))
    report(table.render())

    reject, drop = rows
    # reject surfaces backpressure immediately (ECONNREFUSED); drop
    # burns the client's connect timeout instead (ETIMEDOUT).
    assert reject["policy"] == "reject"
    assert reject["refused"] > 0 and reject["dropped"] == 0
    assert drop["policy"] == "drop"
    assert drop["dropped"] > 0 and drop["refused"] == 0
    # Both shed comparably and keep the admitted tail bounded.
    assert abs(reject["shed"] - drop["shed"]) <= 3
    for row in rows:
        assert row["admitted"] + row["shed"] == row["offered"], row

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_selective_replication_saves_wire(benchmark, report):
    rows = fleet.replication_rows()
    _record("replication", rows)
    table = Table(
        "Selective vs full replication (lighttpd-wrk fleet, keepalive x4)",
        ["policy", "completed", "wire KiB", "p99 ms"],
    )
    for row in rows:
        table.add(row["replication"], row["completed"],
                  "%.1f" % (row["wire_bytes"] / 1024),
                  "%.2f" % (row["p99_ns"] / 1e6))
    report(table.render())

    selective, full = rows
    assert selective["completed"] == full["completed"]
    # The dMVX claim holds for the external fleet too: full replication
    # ships reproducible results and pays for it on the wire.
    assert full["wire_bytes"] > 2 * selective["wire_bytes"], rows

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_ten_thousand_clients_one_process(benchmark, report):
    row = fleet.scale_row()
    _record("scale", [row])
    report(
        "fleet scale row: %d connections via one mux client -> "
        "admitted=%d shed=%d completed=%d refused=%d p99=%.2f ms"
        % (row["connections"], row["admitted"], row["shed"],
           row["completed"], row["refused"], row["p99_ns"] / 1e6)
    )

    assert row["connections"] >= 10_000
    assert row["offered"] >= row["connections"]
    assert row["admitted"] + row["shed"] == row["offered"]
    # Client-side conservation: every connection resolved one way.
    resolved = (row["completed"] + row["refused"] + row["dropped"]
                + row["errors"])
    assert resolved >= row["connections"], row
    # The admitted tail stays bounded even under a 10k-SYN stampede.
    assert row["p99_ns"] < 50_000_000, row

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
