"""Obs tracing-overhead benches (repro.obs, DESIGN.md §9): the Figure-3
sweep at four obs settings, plus the traced-run artifact emission CI
uploads (JSON-lines trace, Prometheus export, divergence postmortem).

Rows land in ``BENCH_dist.json`` next to the dist sweeps.
"""

import json
import os

from repro.bench import dist
from repro.bench import obs as obs_bench
from repro.bench.reporting import Table

_BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_dist.json")
_ARTIFACT_DIR = os.path.join(os.path.dirname(__file__), "..")


def _record(section, rows):
    """Merge one sweep's rows into BENCH_dist.json."""
    data = {}
    try:
        with open(_BENCH_JSON) as handle:
            data = json.load(handle)
    except (OSError, ValueError):
        pass
    data[section] = rows
    data["smoke"] = dist.smoke()
    with open(_BENCH_JSON, "w") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def test_tracing_overhead(benchmark, report):
    rows = obs_bench.overhead_rows()
    _record("obs_overhead", rows)
    table = Table(
        "Obs overhead over the Figure-3 sweep (2 replicas)",
        ["bench", "level", "base ms", "metrics", "spans", "full",
         "rdv waits", "p50", "p99", "span events"],
    )
    for row in rows:
        table.add(row["bench"], row["level"],
                  "%.2f" % (row["wall_base_ns"] / 1e6),
                  "%+.3f%%" % (100.0 * (row["wall_metrics_ns"]
                                        / row["wall_base_ns"] - 1)),
                  "%+.3f%%" % (100.0 * (row["spans_ratio"] - 1)),
                  "%+.3f%%" % (100.0 * (row["full_ratio"] - 1)),
                  row["rendezvous_wait_count"],
                  "%d ns" % row["rendezvous_wait_p50_ns"],
                  "%d ns" % row["rendezvous_wait_p99_ns"],
                  row["span_events"])
    report(table.render())

    for row in rows:
        key = (row["bench"], row["level"])
        # Obs disabled (the default metrics-only registry) is free in
        # virtual time: byte-identical wall time, far inside the < 1%
        # acceptance budget.
        assert row["wall_metrics_ns"] == row["wall_base_ns"], key
        # Spans (and spans + flight recorder) charge deterministic
        # per-choke-point costs, bounded well under the 10% budget.
        assert row["wall_base_ns"] <= row["wall_spans_ns"], key
        assert row["wall_spans_ns"] <= 1.10 * row["wall_base_ns"], key
        assert row["wall_full_ns"] <= 1.10 * row["wall_base_ns"], key
        # Histograms populate even with spans off, and percentiles are
        # ordered.
        assert row["rendezvous_wait_count"] > 0, key
        assert (row["rendezvous_wait_p50_ns"]
                <= row["rendezvous_wait_p99_ns"]), key
        assert row["span_events"] > 0, key

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)


def test_traced_sweep_artifacts(benchmark, report):
    trace_path = os.path.join(_ARTIFACT_DIR, "obs_trace.jsonl")
    postmortem_path = os.path.join(_ARTIFACT_DIR, "obs_postmortem.json")
    prom_path = os.path.join(_ARTIFACT_DIR, "obs_metrics.prom")
    summary = obs_bench.write_artifacts(trace_path, postmortem_path, prom_path)
    _record("obs_artifacts", summary)
    report("obs artifacts: %d trace events, postmortem replica=%r syscall=%r"
           % (summary["trace_events"], summary["postmortem_replica"],
              summary["postmortem_syscall"]))

    # The trace is valid JSON lines with virtual timestamps.
    with open(trace_path) as handle:
        lines = [json.loads(line) for line in handle]
    assert len(lines) == summary["trace_events"] > 0
    assert all("t" in event and "component" in event for event in lines)
    # The Prometheus export exposes the rendezvous-wait histogram.
    with open(prom_path) as handle:
        prom = handle.read()
    assert "# TYPE repro_rendezvous_wait_ns histogram" in prom
    assert 'repro_rendezvous_wait_ns_bucket{le="+Inf"}' in prom
    # The postmortem names the diverging replica and syscall.
    with open(postmortem_path) as handle:
        postmortem = json.load(handle)
    assert postmortem["replica"] == 1
    assert postmortem["syscall"] == "open"
    assert "arg 0 differs in replica 1" in postmortem["detail"]
    assert postmortem["tails"]["0"] and postmortem["tails"]["1"]

    from repro.bench.harness import timed_exhibit_run

    benchmark.pedantic(timed_exhibit_run, rounds=3, iterations=1)
