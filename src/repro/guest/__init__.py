"""Guest programs: the code that runs *inside* simulated processes.

A guest program is a Python generator that yields
:class:`~repro.guest.program.Compute` work items and
:class:`~repro.kernel.syscalls.SyscallRequest` objects, and receives the
syscall results back. Programs address memory through their process's
:class:`~repro.kernel.memory.AddressSpace` — real virtual addresses that
differ across diversified replicas.
"""

from repro.guest.libc import Libc
from repro.guest.program import Compute, GuestContext, Program
from repro.guest.runtime import GuestRuntime

__all__ = ["Compute", "GuestContext", "GuestRuntime", "Libc", "Program"]
