"""The guest runtime: drives guest generators as simulator tasks.

This is the moral equivalent of the C runtime and kernel thread-exit
paths: it creates threads, pumps their bodies, delivers signals at safe
points (between work items, and when blocking calls return -EINTR), and
tears processes down on exit.
"""

from __future__ import annotations

import types
from typing import Callable, Optional

from repro.errors import GuestFault
from repro.guest.program import Compute, GuestContext, Program
from repro.kernel import constants as C
from repro.kernel.exits import ProcessExitRequest, ThreadExitRequest
from repro.kernel.memory import MemoryFault
from repro.kernel.syscalls import SyscallRequest
from repro.sim import Sleep

# Initial stack size for each guest thread.
STACK_SIZE = 1 << 20


class GuestRuntime:
    """Loads a :class:`Program` into a process and runs its threads."""

    def __init__(self, kernel, process, program: Program, layout=None):
        self.kernel = kernel
        self.process = process
        self.program = program
        self.layout = layout
        process.runtime = self
        if kernel.thread_spawner is None:
            kernel.thread_spawner = _kernel_thread_spawner
        self._setup_address_space()

    def _setup_address_space(self) -> None:
        space = self.process.space
        layout = self.layout
        code_base = layout.code_base if layout else 0x400000
        code_size = layout.code_size if layout else 0x200000
        space.map(code_base, code_size, C.PROT_READ | C.PROT_EXEC,
                  name="text:%s" % self.program.name, fixed=True)
        data_base = code_base + code_size
        space.map(data_base, 0x100000, C.PROT_READ | C.PROT_WRITE,
                  name="data:%s" % self.program.name, fixed=True)

    # ------------------------------------------------------------------
    # Thread creation
    # ------------------------------------------------------------------
    def start(self):
        """Create and start the main thread. Returns (thread, task)."""
        thread = self.kernel.create_thread(self.process, name="%s.main" % self.process.name)
        ctx = self._make_ctx(thread)
        body = self.program.main(ctx)
        return thread, self._launch(thread, body, is_main=True)

    def spawn_guest_thread(self, entry: Callable, arg=None):
        """Used by sys_clone: start a new thread running entry(ctx, arg)."""
        thread = self.kernel.create_thread(self.process)
        ctx = self._make_ctx(thread)
        body = entry(ctx, arg)
        self._launch(thread, body, is_main=False)
        return thread

    def _make_ctx(self, thread) -> GuestContext:
        ctx = GuestContext(self.kernel, self.process, thread, self.program, self.layout)
        thread.guest_ctx = ctx
        hook = getattr(self.process, "ctx_hook", None)
        if hook is not None:
            hook(ctx)
        return ctx

    def _launch(self, thread, body, is_main: bool):
        task = self.kernel.sim.spawn(
            self._thread_main(thread, body, is_main), name=thread.name
        )
        thread.task = task
        return task

    # ------------------------------------------------------------------
    # The runner
    # ------------------------------------------------------------------
    def _thread_main(self, thread, body, is_main: bool):
        exit_code = 0
        try:
            result = yield from self._drive(thread, body)
            exit_code = result if isinstance(result, int) else 0
            # Falling off the end of main == exit_group(status); other
            # threads just exit. Route through the syscall layer so the
            # MVEE observes the exit.
            name = "exit_group" if is_main else "exit"
            yield from self.kernel.syscall_path(
                thread, SyscallRequest(name, (exit_code,))
            )
        except ThreadExitRequest as request:
            exit_code = request.code
        except ProcessExitRequest as request:
            exit_code = request.code
            self.kernel.terminate_process(self.process, request.code, request.signal)
        except MemoryFault:
            # An unhandled fault outside a syscall: fatal SIGSEGV.
            self._fatal_signal(thread, C.SIGSEGV)
            exit_code = 128 + C.SIGSEGV
        finally:
            self._thread_teardown(thread, exit_code)
        return exit_code

    def _thread_teardown(self, thread, code: int) -> None:
        thread.exited = True
        self.kernel.sim.fire(thread.exit_event, code)
        process = self.process
        if not process.live_threads() and not process.exited:
            self.kernel.terminate_process(process, code)
        if process.exited and not process.live_threads():
            process.fdtable.close_all()

    def _fatal_signal(self, thread, signo: int) -> None:
        tracer = thread.tracer
        if tracer is not None:
            tracer.report_fatal_signal(thread, signo)
        self.kernel.terminate_process(self.process, 128 + signo, signo)

    def _drive(self, thread, gen):
        """Pump one guest generator; returns its StopIteration value."""
        to_send = None
        throw: Optional[BaseException] = None
        while True:
            if self.process.exited:
                raise ProcessExitRequest(self.process.exit_code or 0)
            pending = thread.deliverable_signal()
            if pending is not None:
                yield from self._deliver_signal(thread, pending)
            try:
                if throw is not None:
                    exc, throw = throw, None
                    item = gen.throw(exc)
                else:
                    item = gen.send(to_send)
            except StopIteration as stop:
                return stop.value
            try:
                to_send = yield from self._do_item(thread, item)
            except MemoryFault as fault:
                # A fault in guest code (not in a syscall): SIGSEGV. If
                # handled, the handler runs, then the faulting operation
                # is *not* restarted — the fault is re-raised into the
                # guest, which may catch it for recovery tests.
                yield from self._synchronous_signal(thread, C.SIGSEGV)
                throw = fault
                to_send = None

    def _do_item(self, thread, item):
        if isinstance(item, Compute):
            factor = getattr(self.process, "compute_factor", 1.0)
            ns = int(item.ns * factor)
            yield Sleep(ns, cpu=True)
            thread.utime_ns += ns
            self.process.utime_ns += ns
            return None
        if isinstance(item, SyscallRequest):
            result = yield from self.kernel.syscall_path(thread, item)
            return result
        if isinstance(item, types.GeneratorType):
            # Allow guests to delegate to sub-coroutines they built with
            # helper functions (e.g. ctx.sync_point wrapped by libc).
            result = yield from self._drive(thread, item)
            return result
        from repro.sim import Effect

        if isinstance(item, Effect):
            # Raw simulator effects bubble up from runtime-provided
            # coroutines running in guest context (the record/replay
            # agent's waits, for instance).
            result = yield item
            return result
        raise GuestFault("guest %s yielded unknown item %r" % (thread.name, item))

    # ------------------------------------------------------------------
    # Signal delivery
    # ------------------------------------------------------------------
    def _deliver_signal(self, thread, pending) -> None:
        thread.take_signal(pending)
        signo = pending.signo
        action = self.process.action_for(signo)
        handler = action.handler
        if handler == C.SIG_IGN:
            return
        if handler == C.SIG_DFL:
            if signo in C.FATAL_BY_DEFAULT:
                self._fatal_signal(thread, signo)
                raise ProcessExitRequest(128 + signo, signo)
            return  # default-ignore (SIGCHLD, SIGCONT, ...)
        ctx = thread.guest_ctx
        result = handler(ctx, signo)
        if isinstance(result, types.GeneratorType):
            yield from self._drive_handler(thread, result)
        return

    def _synchronous_signal(self, thread, signo: int):
        """Deliver a synchronous signal right now (SIGSEGV et al.)."""
        action = self.process.action_for(signo)
        if action.handler in (C.SIG_DFL, C.SIG_IGN):
            self._fatal_signal(thread, signo)
            raise ProcessExitRequest(128 + signo, signo)
        ctx = thread.guest_ctx
        result = action.handler(ctx, signo)
        if isinstance(result, types.GeneratorType):
            yield from self._drive_handler(thread, result)

    def _drive_handler(self, thread, gen) -> None:
        """Pump a signal handler body (no nested async delivery)."""
        to_send = None
        while True:
            try:
                item = gen.send(to_send)
            except StopIteration:
                return
            to_send = yield from self._do_item(thread, item)


def _kernel_thread_spawner(process, entry, arg):
    """Kernel callback: sys_clone lands here."""
    runtime = getattr(process, "runtime", None)
    if runtime is None:
        raise GuestFault("clone() in a process without a runtime")
    return runtime.spawn_guest_thread(entry, arg)
