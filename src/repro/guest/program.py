"""Program model and guest execution context."""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.kernel.syscalls import SyscallRequest


class Compute:
    """``ns`` nanoseconds of CPU-bound work between system calls."""

    __slots__ = ("ns",)

    def __init__(self, ns: int):
        if ns < 0:
            raise ValueError("negative compute time")
        self.ns = int(ns)

    def __repr__(self):
        return "Compute(%d ns)" % self.ns


class SyscallProxy:
    """Builds :class:`SyscallRequest` objects via attribute access.

    ``ctx.sys.read(fd, buf, n)`` returns a request the guest then yields.
    """

    __slots__ = ()

    def __getattr__(self, name: str) -> Callable:
        def build(*args) -> SyscallRequest:
            return SyscallRequest(name, args)

        build.__name__ = name
        return build


class GuestContext:
    """Everything a guest thread can touch: its memory, a libc, an RNG.

    The RNG is seeded identically in every replica of the same program,
    so replicas make identical decisions; only their memory layout
    differs (and, under attack scenarios, their corrupted state).
    """

    def __init__(self, kernel, process, thread, program: "Program", layout=None):
        from repro.guest.libc import Libc

        self.kernel = kernel
        self.process = process
        self.thread = thread
        self.program = program
        self.layout = layout
        self.sys = SyscallProxy()
        self.mem = process.space
        self.rng = random.Random(program.seed)
        self.libc = Libc(self)
        #: Hook installed by the MVEE's record/replay agent; guests call
        #: ``yield from ctx.sync_point(op)`` around user-space sync ops.
        self.rr_agent = None
        #: Scratch for attack scenarios: set by exploit payloads.
        self.attacker_state = {}

    def sync_point(self, op_key):
        """Coroutine: a user-space synchronization operation boundary.

        Under an MVEE the record/replay agent (paper §2.3) serializes
        these identically in all replicas; natively it is free.
        """
        if self.rr_agent is not None:
            yield from self.rr_agent.sync_point(self, op_key)
        return None

    def spawn_thread(self, entry: Callable, arg=None) -> SyscallRequest:
        """Build the clone() request used to start a new guest thread.

        ``entry(ctx, arg)`` must return the new thread's body generator.
        """
        from repro.kernel import constants as C

        return SyscallRequest("clone", (C.CLONE_THREAD_FLAGS, entry, arg))


class Program:
    """A runnable guest program.

    Args:
        name: label used for processes and traces.
        main: callable ``main(ctx)`` returning the main thread's body
            generator.
        seed: deterministic seed shared by all replicas of this program.
        files: optional mapping path -> bytes installed into the
            filesystem before the program starts.
    """

    def __init__(
        self,
        name: str,
        main: Callable,
        seed: int = 1,
        files: Optional[dict] = None,
    ):
        self.name = name
        self.main = main
        self.seed = seed
        self.files = dict(files or {})

    def install_files(self, kernel) -> None:
        for path, data in self.files.items():
            kernel.fs.write_file(path, data)

    def __repr__(self):
        return "Program(%s)" % self.name
