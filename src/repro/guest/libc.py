"""A small libc for guest programs.

Wraps raw system calls in coroutine helpers that manage guest-memory
buffers: paths are written into the guest address space, read results
are pulled back out, structures are decoded. Everything here runs *as
guest code* — each helper is a generator the program ``yield from``s, so
all the underlying syscalls flow through the kernel (and the MVEE).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.kernel import constants as C
from repro.kernel.structs import (
    EPOLL_EVENT_SIZE,
    SOCKADDR_SIZE,
    STAT_SIZE,
    TIMESPEC_SIZE,
    pack_epoll_event,
    pack_sockaddr,
    pack_timespec,
    unpack_epoll_event,
    unpack_stat,
)

ARENA_CHUNK = 1 << 20
SCRATCH_SIZE = 1 << 16


class Libc:
    """Per-thread convenience layer over the syscall interface."""

    def __init__(self, ctx):
        self.ctx = ctx
        self._arena_base = 0
        self._arena_off = 0
        self._arena_size = 0
        self._scratch = 0

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def malloc(self, size: int):
        """Coroutine: allocate ``size`` bytes of guest memory."""
        size = (size + 15) & ~15
        if self._arena_off + size > self._arena_size:
            chunk = max(size, ARENA_CHUNK)
            base = yield self.ctx.sys.mmap(
                0,
                chunk,
                C.PROT_READ | C.PROT_WRITE,
                C.MAP_PRIVATE | C.MAP_ANONYMOUS,
                -1,
                0,
            )
            if base < 0:
                raise MemoryError("guest mmap failed: %d" % base)
            self._arena_base = base
            self._arena_off = 0
            self._arena_size = chunk
        addr = self._arena_base + self._arena_off
        self._arena_off += size
        return addr

    def scratch(self, size: int = SCRATCH_SIZE):
        """Coroutine: a reusable per-thread buffer (min 64 KiB)."""
        if size > SCRATCH_SIZE:
            addr = yield from self.malloc(size)
            return addr
        if not self._scratch:
            self._scratch = yield from self.malloc(SCRATCH_SIZE)
        return self._scratch

    def push_bytes(self, data: bytes):
        """Coroutine: copy ``data`` into fresh guest memory."""
        addr = yield from self.malloc(max(1, len(data)))
        self.ctx.mem.write(addr, data)
        return addr

    def push_cstr(self, text):
        if isinstance(text, str):
            text = text.encode()
        addr = yield from self.push_bytes(text + b"\x00")
        return addr

    # ------------------------------------------------------------------
    # Files
    # ------------------------------------------------------------------
    def open(self, path, flags: int = C.O_RDONLY, mode: int = 0o644):
        addr = yield from self.push_cstr(path)
        fd = yield self.ctx.sys.open(addr, flags, mode)
        return fd

    def close(self, fd: int):
        result = yield self.ctx.sys.close(fd)
        return result

    def read(self, fd: int, count: int) -> Tuple[int, bytes]:
        buf = yield from self.scratch(count)
        ret = yield self.ctx.sys.read(fd, buf, count)
        data = self.ctx.mem.read(buf, ret) if ret > 0 else b""
        return ret, data

    def pread(self, fd: int, count: int, offset: int) -> Tuple[int, bytes]:
        buf = yield from self.scratch(count)
        ret = yield self.ctx.sys.pread64(fd, buf, count, offset)
        data = self.ctx.mem.read(buf, ret) if ret > 0 else b""
        return ret, data

    def write(self, fd: int, data: bytes) -> int:
        buf = yield from self.scratch(len(data))
        self.ctx.mem.write(buf, data)
        ret = yield self.ctx.sys.write(fd, buf, len(data))
        return ret

    def pwrite(self, fd: int, data: bytes, offset: int) -> int:
        buf = yield from self.scratch(len(data))
        self.ctx.mem.write(buf, data)
        ret = yield self.ctx.sys.pwrite64(fd, buf, len(data), offset)
        return ret

    def stat(self, path) -> Tuple[int, Optional[dict]]:
        path_addr = yield from self.push_cstr(path)
        buf = yield from self.scratch(STAT_SIZE)
        ret = yield self.ctx.sys.stat(path_addr, buf)
        if ret < 0:
            return ret, None
        return ret, unpack_stat(self.ctx.mem.read(buf, STAT_SIZE))

    def fstat(self, fd: int) -> Tuple[int, Optional[dict]]:
        buf = yield from self.scratch(STAT_SIZE)
        ret = yield self.ctx.sys.fstat(fd, buf)
        if ret < 0:
            return ret, None
        return ret, unpack_stat(self.ctx.mem.read(buf, STAT_SIZE))

    def access(self, path, mode: int = C.F_OK) -> int:
        addr = yield from self.push_cstr(path)
        ret = yield self.ctx.sys.access(addr, mode)
        return ret

    def pipe(self) -> Tuple[int, int]:
        buf = yield from self.scratch(8)
        ret = yield self.ctx.sys.pipe(buf)
        if ret < 0:
            return ret, ret
        rfd, wfd = struct.unpack("<ii", self.ctx.mem.read(buf, 8))
        return rfd, wfd

    def getdents(self, fd: int, count: int = 4096) -> Tuple[int, bytes]:
        buf = yield from self.scratch(count)
        ret = yield self.ctx.sys.getdents(fd, buf, count)
        data = self.ctx.mem.read(buf, ret) if ret > 0 else b""
        return ret, data

    def readlink(self, path, bufsize: int = 256) -> Tuple[int, bytes]:
        path_addr = yield from self.push_cstr(path)
        buf = yield from self.scratch(bufsize)
        ret = yield self.ctx.sys.readlink(path_addr, buf, bufsize)
        data = self.ctx.mem.read(buf, ret) if ret > 0 else b""
        return ret, data

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    def clock_gettime(self, clockid: int = C.CLOCK_MONOTONIC) -> int:
        buf = yield from self.scratch(TIMESPEC_SIZE)
        ret = yield self.ctx.sys.clock_gettime(clockid, buf)
        if ret < 0:
            return ret
        sec, nsec = struct.unpack("<qq", self.ctx.mem.read(buf, TIMESPEC_SIZE))
        return sec * 1_000_000_000 + nsec

    def nanosleep(self, ns: int) -> int:
        buf = yield from self.scratch(TIMESPEC_SIZE)
        self.ctx.mem.write(buf, pack_timespec(ns))
        ret = yield self.ctx.sys.nanosleep(buf, 0)
        return ret

    # ------------------------------------------------------------------
    # Sockets
    # ------------------------------------------------------------------
    def socket(self, nonblocking: bool = False) -> int:
        type_ = C.SOCK_STREAM | (C.SOCK_NONBLOCK if nonblocking else 0)
        fd = yield self.ctx.sys.socket(C.AF_INET, type_, 0)
        return fd

    def bind(self, fd: int, ip: str, port: int) -> int:
        addr = yield from self.push_bytes(pack_sockaddr(C.AF_INET, ip, port))
        ret = yield self.ctx.sys.bind(fd, addr, SOCKADDR_SIZE)
        return ret

    def listen(self, fd: int, backlog: int = 128) -> int:
        ret = yield self.ctx.sys.listen(fd, backlog)
        return ret

    def accept(self, fd: int) -> int:
        ret = yield self.ctx.sys.accept(fd, 0, 0)
        return ret

    def connect(self, fd: int, ip: str, port: int) -> int:
        addr = yield from self.push_bytes(pack_sockaddr(C.AF_INET, ip, port))
        ret = yield self.ctx.sys.connect(fd, addr, SOCKADDR_SIZE)
        return ret

    def send(self, fd: int, data: bytes) -> int:
        buf = yield from self.scratch(len(data))
        self.ctx.mem.write(buf, data)
        ret = yield self.ctx.sys.sendto(fd, buf, len(data), 0, 0, 0)
        return ret

    def recv(self, fd: int, count: int) -> Tuple[int, bytes]:
        buf = yield from self.scratch(count)
        ret = yield self.ctx.sys.recvfrom(fd, buf, count, 0, 0, 0)
        data = self.ctx.mem.read(buf, ret) if ret > 0 else b""
        return ret, data

    def recv_exactly(self, fd: int, count: int) -> Tuple[int, bytes]:
        """Loop recv() until ``count`` bytes arrive or the peer closes."""
        out = bytearray()
        while len(out) < count:
            ret, data = yield from self.recv(fd, count - len(out))
            if ret <= 0:
                return ret, bytes(out)
            out += data
        return len(out), bytes(out)

    def recv_until(self, fd: int, marker: bytes, limit: int = 1 << 20):
        """Loop recv() until ``marker`` appears (HTTP-style framing)."""
        out = bytearray()
        while marker not in out and len(out) < limit:
            ret, data = yield from self.recv(fd, 4096)
            if ret <= 0:
                return ret, bytes(out)
            out += data
        return len(out), bytes(out)

    def shutdown(self, fd: int, how: int = C.SHUT_RDWR) -> int:
        ret = yield self.ctx.sys.shutdown(fd, how)
        return ret

    def getsockopt(self, fd: int, level: int = C.SOL_SOCKET,
                   optname: int = C.SO_ERROR) -> int:
        """Read one int-valued socket option (default: consume SO_ERROR,
        the nonblocking-connect idiom)."""
        buf = yield from self.scratch(4)
        ret = yield self.ctx.sys.getsockopt(fd, level, optname, buf, 0)
        if ret < 0:
            return ret
        return self.ctx.mem.read_u32(buf)

    def set_nonblocking(self, fd: int, enable: bool = True) -> int:
        flags = yield self.ctx.sys.fcntl(fd, C.F_GETFL, 0)
        if flags < 0:
            return flags
        if enable:
            flags |= C.O_NONBLOCK
        else:
            flags &= ~C.O_NONBLOCK
        ret = yield self.ctx.sys.fcntl(fd, C.F_SETFL, flags)
        return ret

    # ------------------------------------------------------------------
    # epoll
    # ------------------------------------------------------------------
    def epoll_create(self) -> int:
        fd = yield self.ctx.sys.epoll_create1(0)
        return fd

    def epoll_ctl(self, epfd: int, op: int, fd: int, events: int = 0, data: int = 0):
        if op == C.EPOLL_CTL_DEL:
            ret = yield self.ctx.sys.epoll_ctl(epfd, op, fd, 0)
            return ret
        buf = yield from self.scratch(EPOLL_EVENT_SIZE)
        self.ctx.mem.write(buf, pack_epoll_event(events, data))
        ret = yield self.ctx.sys.epoll_ctl(epfd, op, fd, buf)
        return ret

    def epoll_wait(self, epfd: int, maxevents: int = 32, timeout_ms: int = -1):
        buf = yield from self.scratch(maxevents * EPOLL_EVENT_SIZE)
        ret = yield self.ctx.sys.epoll_wait(epfd, buf, maxevents, timeout_ms)
        if ret < 0:
            return ret, []
        events = []
        raw = self.ctx.mem.read(buf, ret * EPOLL_EVENT_SIZE)
        for i in range(ret):
            events.append(
                unpack_epoll_event(raw[i * EPOLL_EVENT_SIZE : (i + 1) * EPOLL_EVENT_SIZE])
            )
        return ret, events

    # ------------------------------------------------------------------
    # Futexes & user-space synchronization
    # ------------------------------------------------------------------
    def futex_wait(self, addr: int, expected: int, timeout_ns=0) -> int:
        ret = yield self.ctx.sys.futex(addr, C.FUTEX_WAIT, expected, 0, 0, 0)
        return ret

    def futex_wake(self, addr: int, count: int = 1) -> int:
        ret = yield self.ctx.sys.futex(addr, C.FUTEX_WAKE, count, 0, 0, 0)
        return ret

    def mutex(self) -> "GuestMutex":
        """Coroutine: allocate a process-shared mutex word."""
        addr = yield from self.malloc(4)
        self.ctx.mem.write_u32(addr, 0)
        return GuestMutex(addr)


class GuestMutex:
    """A futex-based mutex living in guest memory.

    The fast (uncontended) path performs no system call at all — these
    are exactly the user-space synchronization operations the paper's
    record/replay agent must order (§2.3), and that VARAN cannot see.
    """

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr

    def lock(self, ctx):
        yield from ctx.sync_point(("mutex", self.addr, "lock"))
        while True:
            value = ctx.mem.read_u32(self.addr)
            if value == 0:
                ctx.mem.write_u32(self.addr, 1)
                return
            ret = yield ctx.sys.futex(self.addr, C.FUTEX_WAIT, 1, 0, 0, 0)
            del ret  # EAGAIN / 0 both mean "try again"

    def unlock(self, ctx):
        ctx.mem.write_u32(self.addr, 0)
        yield ctx.sys.futex(self.addr, C.FUTEX_WAKE, 1, 0, 0, 0)
