"""Effects yielded by simulation tasks and the events they wait on."""

from __future__ import annotations

from typing import Any, Optional


class Effect:
    """Base class for everything a task may yield to the simulator.

    Each concrete effect carries a class-level ``_effect_kind`` int tag;
    the simulator dispatches on the tag (one attribute load) instead of
    walking an ``isinstance`` chain per yield.
    """

    __slots__ = ()

    _effect_kind = 0


class Sleep(Effect):
    """Advance this task's clock by ``ns`` virtual nanoseconds.

    When ``cpu`` is true the sleep represents CPU-burning work and is
    subject to core contention: if more CPU-burning tasks are active than
    the simulated machine has cores, the duration is stretched
    proportionally.
    """

    __slots__ = ("ns", "cpu")

    _effect_kind = 1

    def __init__(self, ns: int, cpu: bool = False):
        if ns < 0:
            raise ValueError("cannot sleep for a negative duration: %r" % ns)
        self.ns = int(ns)
        self.cpu = cpu

    def __repr__(self):
        return "Sleep(ns=%d, cpu=%r)" % (self.ns, self.cpu)


class Event:
    """A one-shot broadcast event tasks can wait on.

    Firing wakes every waiter at the current virtual time and delivers
    ``value`` to each of them. Waiting on an already-fired event returns
    immediately.
    """

    __slots__ = ("name", "fired", "value", "_waiters", "_listeners")

    def __init__(self, name: str = "event"):
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list = []
        self._listeners: list = []

    def add_listener(self, fn) -> None:
        """Register ``fn(value)`` to run synchronously when this event
        fires; called immediately if the event already fired."""
        if self.fired:
            fn(self.value)
        else:
            self._listeners.append(fn)

    def __repr__(self):
        state = "fired" if self.fired else "%d waiter(s)" % len(self._waiters)
        return "Event(%s, %s)" % (self.name, state)


class WaitEvent(Effect):
    """Block until ``event`` fires or ``timeout_ns`` elapses.

    The task is resumed with a ``(fired, value)`` tuple; ``fired`` is
    False when the timeout won the race, in which case ``value`` is None.
    """

    __slots__ = ("event", "timeout_ns")

    _effect_kind = 2

    def __init__(self, event: Event, timeout_ns: Optional[int] = None):
        if timeout_ns is not None and timeout_ns < 0:
            raise ValueError("negative timeout: %r" % timeout_ns)
        self.event = event
        self.timeout_ns = timeout_ns

    def __repr__(self):
        return "WaitEvent(%s, timeout=%r)" % (self.event.name, self.timeout_ns)


class Spawn(Effect):
    """Start a new task running ``gen`` and resume with its Task handle."""

    __slots__ = ("gen", "name")

    _effect_kind = 3

    def __init__(self, gen, name: str = "task"):
        self.gen = gen
        self.name = name

    def __repr__(self):
        return "Spawn(%s)" % self.name
