"""The discrete-event simulator driving every component of the system.

The simulator owns a calendar queue of timestamped callbacks and a set
of coroutine tasks. A task is a Python generator; each value it yields
is an :class:`~repro.sim.effects.Effect` describing what it wants to
wait for, and the simulator resumes the generator with the effect's
result once the wait is over. Nested coroutines compose with
``yield from``, which lets the kernel, the monitors and guest programs
call into each other without ever blocking the host.

Engine structure (the host-throughput hot path)
-----------------------------------------------

Discrete-event workloads here are storm-shaped: a rendezvous release or
a barrier wake schedules dozens-to-thousands of callbacks *at the same
virtual instant*. A single binary heap pays ``O(log n)`` per callback
and allocates a closure per sleep; profiling a ReMon sweep puts
``_wake``/``_wake_cpu`` closures plus heap churn at the top of the
cumulative profile. Three structural choices remove that:

* **Calendar queue** — callbacks live in per-timestamp FIFO buckets
  (the calendar pages); only *distinct* timestamps go through the
  overflow heap. A same-instant storm of N callbacks costs one heap
  push + N list appends instead of N heap pushes, and global
  ``(when, seq)`` order is preserved because the global sequence
  counter increases monotonically — insertion order within a bucket
  *is* seq order, even for entries appended while the bucket drains.
* **Closure-free wakeups** — sleeps and wait-timeouts schedule a
  pooled ``__slots__`` :class:`_Wakeup` record instead of defining a
  fresh closure; records are recycled through a free list after they
  run, so steady-state wakeups allocate nothing.
* **Batch event drain** — :meth:`Simulator.fire` with N waiters
  schedules one :class:`_EventDrain` record that steps every waiter in
  seq order, instead of N separate queue entries. Execution order is
  identical (all waiter steps were already seq-contiguous; anything
  scheduled afterwards had a higher seq), only the queue traffic
  shrinks.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Iterator, Optional

from repro.errors import SimulationError
from repro.sim.effects import Effect, Event, Sleep, Spawn, WaitEvent

# Sentinel distinguishing "timeout expired" from a fired event.
_TIMED_OUT = object()


class TraceEvent:
    """One structured trace record on the virtual clock.

    Events come in two kinds: ``"instant"`` (a point in time) and
    ``"span"`` (a completed interval, ``dur_ns`` set by the emitter).
    ``component``/``name`` identify the choke point (for example
    ``("ghumvee", "rendezvous")``); free-form context rides in ``attrs``.
    """

    __slots__ = ("time_ns", "kind", "component", "name", "dur_ns", "attrs",
                 "_message")

    def __init__(self, time_ns, kind, component, name, dur_ns=0, attrs=None,
                 message=None):
        self.time_ns = time_ns
        self.kind = kind
        self.component = component
        self.name = name
        self.dur_ns = dur_ns
        self.attrs = attrs or {}
        self._message = message

    def message(self) -> str:
        """Human-readable rendering (what legacy callables receive)."""
        if self._message is not None:
            return self._message
        parts = ["%s.%s" % (self.component, self.name)]
        if self.kind == "span":
            parts.append("dur=%dns" % self.dur_ns)
        parts.extend("%s=%r" % kv for kv in sorted(self.attrs.items()))
        return " ".join(parts)

    def to_dict(self) -> dict:
        out = {
            "t": self.time_ns,
            "kind": self.kind,
            "component": self.component,
            "name": self.name,
        }
        if self.kind == "span":
            out["dur_ns"] = self.dur_ns
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    def __repr__(self):
        return "TraceEvent(%d, %s, %s)" % (self.time_ns, self.kind,
                                           self.message())


class _LegacyTraceAdapter:
    """Wraps an old-style ``(time_ns, message)`` callable as an event sink."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def emit(self, event: TraceEvent) -> None:
        self.fn(event.time_ns, event.message())


class Task:
    """A running coroutine plus its bookkeeping.

    Attributes:
        name: human-readable label used in traces and error messages.
        done: whether the generator has finished.
        result: the generator's return value once ``done`` is true.
        done_event: an :class:`Event` fired (with ``result``) on completion.
        failure: the exception that killed the task, if any.
    """

    __slots__ = (
        "name",
        "gen",
        "done",
        "result",
        "done_event",
        "failure",
        "_wait_epoch",
        "cancelled",
    )

    def __init__(self, gen: Iterator, name: str):
        self.name = name
        self.gen = gen
        self.done = False
        self.result: Any = None
        self.done_event = Event("done:%s" % name)
        self.failure: Optional[BaseException] = None
        self.cancelled = False
        # Incremented whenever the task is resumed; stale wakeups (e.g. a
        # timeout firing after the event already resumed the task) check
        # the epoch and become no-ops.
        self._wait_epoch = 0

    def __repr__(self):
        state = "done" if self.done else "running"
        return "Task(%s, %s)" % (self.name, state)


#: _Wakeup kinds.
_WAKE_SLEEP = 0
_WAKE_CPU = 1
_WAKE_TIMEOUT = 2


class _Wakeup:
    """A pooled, closure-free wakeup record for sleeps and timeouts.

    Replaces the per-sleep ``_wake``/``_wake_cpu``/``_timeout`` closures:
    one preallocated record per in-flight wakeup, recycled through the
    simulator's free list once it has run.
    """

    __slots__ = ("task", "epoch", "kind")

    def __init__(self, task, epoch: int, kind: int):
        self.task = task
        self.epoch = epoch
        self.kind = kind


class _EventDrain:
    """One queue entry releasing every waiter of a fired event in order."""

    __slots__ = ("waiters", "value")

    def __init__(self, waiters, value):
        self.waiters = waiters
        self.value = value


class Simulator:
    """Deterministic discrete-event loop with virtual-nanosecond time.

    Args:
        cores: number of CPU cores on the simulated machine. CPU-burning
            sleeps (``Sleep(ns, cpu=True)``) are stretched when more of
            them are active than there are cores, which is how the model
            accounts for replicas competing for the machine.
        trace: optional event sink for debug tracing. Either an object
            with an ``emit(event: TraceEvent)`` method (the typed form,
            e.g. ``repro.obs.Tracer``) or a legacy
            ``(time_ns, message)`` callable, which is wrapped in an
            adapter that renders each event to a string.
    """

    def __init__(self, cores: int = 16, trace: Optional[Callable] = None):
        if cores < 1:
            raise ValueError("a machine needs at least one core")
        self.cores = cores
        self.now = 0
        self.trace = trace
        if trace is None:
            self.trace_sink = None
        elif hasattr(trace, "emit"):
            self.trace_sink = trace
        else:
            self.trace_sink = _LegacyTraceAdapter(trace)
        # Calendar queue: per-timestamp FIFO buckets plus a heap over the
        # *distinct* timestamps. Within a bucket, append order is global
        # seq order (the counter is monotone), so FIFO-per-timestamp
        # reproduces exact (when, seq) dequeue order.
        self._buckets: dict = {}
        self._times: list = []
        self._pending = 0
        self._seq = 0
        self._wakeup_pool: list = []
        self._cpu_active = 0
        self._live_tasks = 0
        self._steps = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def _schedule(self, when: int, entry) -> None:
        """Insert ``entry`` into the calendar bucket for ``when``."""
        self._seq += 1
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = [entry]
            heappush(self._times, when)
        else:
            bucket.append(entry)
        self._pending += 1

    def call_at(self, when: int, fn: Callable, *args) -> None:
        """Schedule ``fn(*args)`` to run at virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                "cannot schedule in the past: %d < %d" % (when, self.now)
            )
        self._schedule(when, (fn, args))

    def call_soon(self, fn: Callable, *args) -> None:
        """Schedule ``fn(*args)`` at the current virtual time."""
        self._schedule(self.now, (fn, args))

    def spawn(self, gen: Iterator, name: str = "task") -> Task:
        """Create a task from generator ``gen`` and start it immediately."""
        task = Task(gen, name)
        self._live_tasks += 1
        self._schedule(self.now, (self._step, (task, None, None)))
        return task

    # ------------------------------------------------------------------
    # Event operations
    # ------------------------------------------------------------------
    def fire(self, event: Event, value: Any = None) -> None:
        """Fire ``event`` now, waking every waiter with ``value``."""
        if event.fired:
            return
        event.fired = True
        event.value = value
        waiters = event._waiters
        if waiters:
            event._waiters = []
            if len(waiters) == 1:
                task, epoch = waiters[0]
                if task._wait_epoch == epoch and not task.done:
                    self._schedule(
                        self.now, (self._step, (task, (True, value), None))
                    )
            else:
                # Rendezvous storm: one drain entry releases all N
                # waiters in their original seq order instead of N
                # separate queue entries.
                self._schedule(self.now, _EventDrain(waiters, value))
        listeners, event._listeners = event._listeners, []
        for listener in listeners:
            listener(value)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_steps: Optional[int] = None):
        """Run until the queue drains, ``until`` is reached, or the step
        budget is exhausted. Returns the final virtual time.

        ``max_steps`` budgets *this call only*; the lifetime callback
        count remains readable via :attr:`steps`.
        """
        budget = None if max_steps is None else self._steps + max_steps
        buckets = self._buckets
        times = self._times
        step = self._step
        while self._pending:
            when = times[0]
            if until is not None and when > until:
                self.now = until
                break
            heappop(times)
            if when > self.now:
                self.now = when
            bucket = buckets[when]
            index = 0
            try:
                # Drain in place: entries appended at this timestamp
                # while draining carry higher seqs and simply extend the
                # iteration.
                while index < len(bucket):
                    entry = bucket[index]
                    bucket[index] = None
                    index += 1
                    cls = entry.__class__
                    if cls is _Wakeup:
                        task = entry.task
                        kind = entry.kind
                        if kind == _WAKE_CPU:
                            self._cpu_active -= 1
                        if task._wait_epoch == entry.epoch and not task.done:
                            if kind == _WAKE_TIMEOUT:
                                step(task, (False, None), None)
                            else:
                                step(task, None, None)
                        entry.task = None
                        self._wakeup_pool.append(entry)
                    elif cls is _EventDrain:
                        value = entry.value
                        for task, epoch in entry.waiters:
                            if task._wait_epoch == epoch and not task.done:
                                step(task, (True, value), None)
                    else:
                        fn, args = entry
                        fn(*args)
                    self._steps += 1
                    if budget is not None and self._steps >= budget:
                        raise SimulationError(
                            "simulation exceeded %d steps at t=%d"
                            % (max_steps, self.now)
                        )
            finally:
                self._pending -= index
                if index >= len(bucket):
                    del buckets[when]
                else:
                    # Interrupted mid-bucket (step budget / callback
                    # failure): keep the unexecuted tail runnable.
                    del bucket[:index]
                    heappush(times, when)
        return self.now

    def run_task(self, gen: Iterator, name: str = "main", **kwargs) -> Any:
        """Spawn ``gen``, run the simulation, and return its result."""
        task = self.spawn(gen, name)
        self.run(**kwargs)
        if task.failure is not None:
            raise task.failure
        if not task.done:
            raise SimulationError(
                "task %s deadlocked: simulation drained at t=%d with the "
                "task still waiting" % (task.name, self.now)
            )
        return task.result

    # ------------------------------------------------------------------
    # Task stepping
    # ------------------------------------------------------------------
    def _step(self, task: Task, send_value: Any, throw_exc) -> None:
        if task.done:
            return
        task._wait_epoch += 1
        try:
            if throw_exc is not None:
                item = task.gen.throw(throw_exc)
            else:
                item = task.gen.send(send_value)
        except StopIteration as stop:
            self._finish(task, stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - task crash is terminal
            self._finish(task, None, exc)
            return
        # Effect dispatch: a class-level int tag instead of an
        # isinstance chain (one attribute load resolves the kind). The
        # sleep and wait arms are _do_sleep/_do_wait inlined — together
        # they are the busiest call sites in the whole system, and the
        # call overhead alone is measurable on storm workloads.
        try:
            kind = item._effect_kind
        except AttributeError:
            kind = -1
        if kind == 1:
            ns = item.ns
            if item.cpu:
                self._cpu_active += 1
                factor = max(1.0, self._cpu_active / float(self.cores))
                ns = int(ns * factor)
                wake_kind = _WAKE_CPU
            else:
                wake_kind = _WAKE_SLEEP
            pool = self._wakeup_pool
            if pool:
                record = pool.pop()
                record.task = task
                record.epoch = task._wait_epoch
                record.kind = wake_kind
            else:
                record = _Wakeup(task, task._wait_epoch, wake_kind)
            when = self.now + ns
            self._seq += 1
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = [record]
                heappush(self._times, when)
            else:
                bucket.append(record)
            self._pending += 1
        elif kind == 2:
            event = item.event
            if event.fired:
                self._schedule(
                    self.now, (self._step, (task, (True, event.value), None))
                )
            else:
                event._waiters.append((task, task._wait_epoch))
                if item.timeout_ns is not None:
                    self._schedule(
                        self.now + item.timeout_ns,
                        self._wakeup(task, _WAKE_TIMEOUT),
                    )
        elif kind == 3:
            child = self.spawn(item.gen, item.name)
            self._schedule(self.now, (self._step, (task, child, None)))
        else:
            exc = SimulationError(
                "task %s yielded a non-effect: %r" % (task.name, item)
            )
            self._schedule(self.now, (self._step, (task, None, exc)))

    def _finish(self, task: Task, result: Any, failure) -> None:
        task.done = True
        task.result = result
        task.failure = failure
        self._live_tasks -= 1
        self.fire(task.done_event, result)
        if failure is not None and self.trace_sink is not None:
            self.trace_sink.emit(TraceEvent(
                self.now, "instant", "sim", "task-failed",
                attrs={"task": task.name, "failure": repr(failure)},
                message="task %s failed: %r" % (task.name, failure),
            ))

    def _dispatch(self, task: Task, item: Effect) -> None:
        """Compatibility shim over the inlined effect dispatch."""
        try:
            kind = item._effect_kind
        except AttributeError:
            kind = -1
        if kind == 1:
            self._do_sleep(task, item)
        elif kind == 2:
            self._do_wait(task, item)
        elif kind == 3:
            child = self.spawn(item.gen, item.name)
            self._schedule(self.now, (self._step, (task, child, None)))
        else:
            exc = SimulationError(
                "task %s yielded a non-effect: %r" % (task.name, item)
            )
            self._schedule(self.now, (self._step, (task, None, exc)))

    def _wakeup(self, task: Task, kind: int) -> _Wakeup:
        pool = self._wakeup_pool
        if pool:
            record = pool.pop()
            record.task = task
            record.epoch = task._wait_epoch
            record.kind = kind
            return record
        return _Wakeup(task, task._wait_epoch, kind)

    def _do_sleep(self, task: Task, item: Sleep) -> None:
        ns = item.ns
        if item.cpu:
            self._cpu_active += 1
            factor = max(1.0, self._cpu_active / float(self.cores))
            ns = int(ns * factor)
            self._schedule(self.now + ns, self._wakeup(task, _WAKE_CPU))
        else:
            self._schedule(self.now + ns, self._wakeup(task, _WAKE_SLEEP))

    def _do_wait(self, task: Task, item: WaitEvent) -> None:
        event = item.event
        if event.fired:
            self._schedule(
                self.now, (self._step, (task, (True, event.value), None))
            )
            return
        event._waiters.append((task, task._wait_epoch))
        if item.timeout_ns is not None:
            self._schedule(
                self.now + item.timeout_ns, self._wakeup(task, _WAKE_TIMEOUT)
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Number of scheduled queue entries not yet executed."""
        return self._pending

    @property
    def live_tasks(self) -> int:
        """Number of tasks that have been spawned and not yet finished."""
        return self._live_tasks

    @property
    def steps(self) -> int:
        """Total number of queue callbacks executed so far."""
        return self._steps
