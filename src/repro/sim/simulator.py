"""The discrete-event simulator driving every component of the system.

The simulator owns a priority queue of timestamped callbacks and a set of
coroutine tasks. A task is a Python generator; each value it yields is an
:class:`~repro.sim.effects.Effect` describing what it wants to wait for,
and the simulator resumes the generator with the effect's result once the
wait is over. Nested coroutines compose with ``yield from``, which lets
the kernel, the monitors and guest programs call into each other without
ever blocking the host.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterator, Optional

from repro.errors import SimulationError
from repro.sim.effects import Effect, Event, Sleep, Spawn, WaitEvent

# Sentinel distinguishing "timeout expired" from a fired event.
_TIMED_OUT = object()


class TraceEvent:
    """One structured trace record on the virtual clock.

    Events come in two kinds: ``"instant"`` (a point in time) and
    ``"span"`` (a completed interval, ``dur_ns`` set by the emitter).
    ``component``/``name`` identify the choke point (for example
    ``("ghumvee", "rendezvous")``); free-form context rides in ``attrs``.
    """

    __slots__ = ("time_ns", "kind", "component", "name", "dur_ns", "attrs",
                 "_message")

    def __init__(self, time_ns, kind, component, name, dur_ns=0, attrs=None,
                 message=None):
        self.time_ns = time_ns
        self.kind = kind
        self.component = component
        self.name = name
        self.dur_ns = dur_ns
        self.attrs = attrs or {}
        self._message = message

    def message(self) -> str:
        """Human-readable rendering (what legacy callables receive)."""
        if self._message is not None:
            return self._message
        parts = ["%s.%s" % (self.component, self.name)]
        if self.kind == "span":
            parts.append("dur=%dns" % self.dur_ns)
        parts.extend("%s=%r" % kv for kv in sorted(self.attrs.items()))
        return " ".join(parts)

    def to_dict(self) -> dict:
        out = {
            "t": self.time_ns,
            "kind": self.kind,
            "component": self.component,
            "name": self.name,
        }
        if self.kind == "span":
            out["dur_ns"] = self.dur_ns
        if self.attrs:
            out["attrs"] = self.attrs
        return out

    def __repr__(self):
        return "TraceEvent(%d, %s, %s)" % (self.time_ns, self.kind,
                                           self.message())


class _LegacyTraceAdapter:
    """Wraps an old-style ``(time_ns, message)`` callable as an event sink."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable):
        self.fn = fn

    def emit(self, event: TraceEvent) -> None:
        self.fn(event.time_ns, event.message())


class Task:
    """A running coroutine plus its bookkeeping.

    Attributes:
        name: human-readable label used in traces and error messages.
        done: whether the generator has finished.
        result: the generator's return value once ``done`` is true.
        done_event: an :class:`Event` fired (with ``result``) on completion.
        failure: the exception that killed the task, if any.
    """

    __slots__ = (
        "name",
        "gen",
        "done",
        "result",
        "done_event",
        "failure",
        "_wait_epoch",
        "cancelled",
    )

    def __init__(self, gen: Iterator, name: str):
        self.name = name
        self.gen = gen
        self.done = False
        self.result: Any = None
        self.done_event = Event("done:%s" % name)
        self.failure: Optional[BaseException] = None
        self.cancelled = False
        # Incremented whenever the task is resumed; stale wakeups (e.g. a
        # timeout firing after the event already resumed the task) check
        # the epoch and become no-ops.
        self._wait_epoch = 0

    def __repr__(self):
        state = "done" if self.done else "running"
        return "Task(%s, %s)" % (self.name, state)


class Simulator:
    """Deterministic discrete-event loop with virtual-nanosecond time.

    Args:
        cores: number of CPU cores on the simulated machine. CPU-burning
            sleeps (``Sleep(ns, cpu=True)``) are stretched when more of
            them are active than there are cores, which is how the model
            accounts for replicas competing for the machine.
        trace: optional event sink for debug tracing. Either an object
            with an ``emit(event: TraceEvent)`` method (the typed form,
            e.g. ``repro.obs.Tracer``) or a legacy
            ``(time_ns, message)`` callable, which is wrapped in an
            adapter that renders each event to a string.
    """

    def __init__(self, cores: int = 16, trace: Optional[Callable] = None):
        if cores < 1:
            raise ValueError("a machine needs at least one core")
        self.cores = cores
        self.now = 0
        self.trace = trace
        if trace is None:
            self.trace_sink = None
        elif hasattr(trace, "emit"):
            self.trace_sink = trace
        else:
            self.trace_sink = _LegacyTraceAdapter(trace)
        self._queue: list = []
        self._seq = 0
        self._cpu_active = 0
        self._live_tasks = 0
        self._steps = 0

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def call_at(self, when: int, fn: Callable, *args) -> None:
        """Schedule ``fn(*args)`` to run at virtual time ``when``."""
        if when < self.now:
            raise SimulationError(
                "cannot schedule in the past: %d < %d" % (when, self.now)
            )
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, fn, args))

    def call_soon(self, fn: Callable, *args) -> None:
        """Schedule ``fn(*args)`` at the current virtual time."""
        self.call_at(self.now, fn, *args)

    def spawn(self, gen: Iterator, name: str = "task") -> Task:
        """Create a task from generator ``gen`` and start it immediately."""
        task = Task(gen, name)
        self._live_tasks += 1
        self.call_soon(self._step, task, None, None)
        return task

    # ------------------------------------------------------------------
    # Event operations
    # ------------------------------------------------------------------
    def fire(self, event: Event, value: Any = None) -> None:
        """Fire ``event`` now, waking every waiter with ``value``."""
        if event.fired:
            return
        event.fired = True
        event.value = value
        waiters, event._waiters = event._waiters, []
        for task, epoch in waiters:
            if task._wait_epoch == epoch and not task.done:
                self.call_soon(self._step, task, (True, value), None)
        listeners, event._listeners = event._listeners, []
        for listener in listeners:
            listener(value)

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, until: Optional[int] = None, max_steps: Optional[int] = None):
        """Run until the queue drains, ``until`` is reached, or the step
        budget is exhausted. Returns the final virtual time."""
        while self._queue:
            when, _seq, fn, args = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            if when > self.now:
                self.now = when
            fn(*args)
            self._steps += 1
            if max_steps is not None and self._steps >= max_steps:
                raise SimulationError(
                    "simulation exceeded %d steps at t=%d" % (max_steps, self.now)
                )
        return self.now

    def run_task(self, gen: Iterator, name: str = "main", **kwargs) -> Any:
        """Spawn ``gen``, run the simulation, and return its result."""
        task = self.spawn(gen, name)
        self.run(**kwargs)
        if task.failure is not None:
            raise task.failure
        if not task.done:
            raise SimulationError(
                "task %s deadlocked: simulation drained at t=%d with the "
                "task still waiting" % (task.name, self.now)
            )
        return task.result

    # ------------------------------------------------------------------
    # Task stepping
    # ------------------------------------------------------------------
    def _step(self, task: Task, send_value: Any, throw_exc) -> None:
        if task.done:
            return
        task._wait_epoch += 1
        try:
            if throw_exc is not None:
                item = task.gen.throw(throw_exc)
            else:
                item = task.gen.send(send_value)
        except StopIteration as stop:
            self._finish(task, stop.value, None)
            return
        except BaseException as exc:  # noqa: BLE001 - task crash is terminal
            self._finish(task, None, exc)
            return
        self._dispatch(task, item)

    def _finish(self, task: Task, result: Any, failure) -> None:
        task.done = True
        task.result = result
        task.failure = failure
        self._live_tasks -= 1
        self.fire(task.done_event, result)
        if failure is not None and self.trace_sink is not None:
            self.trace_sink.emit(TraceEvent(
                self.now, "instant", "sim", "task-failed",
                attrs={"task": task.name, "failure": repr(failure)},
                message="task %s failed: %r" % (task.name, failure),
            ))

    def _dispatch(self, task: Task, item: Effect) -> None:
        if isinstance(item, Sleep):
            self._do_sleep(task, item)
        elif isinstance(item, WaitEvent):
            self._do_wait(task, item)
        elif isinstance(item, Spawn):
            child = self.spawn(item.gen, item.name)
            self.call_soon(self._step, task, child, None)
        else:
            exc = SimulationError(
                "task %s yielded a non-effect: %r" % (task.name, item)
            )
            self.call_soon(self._step, task, None, exc)

    def _do_sleep(self, task: Task, item: Sleep) -> None:
        ns = item.ns
        if item.cpu:
            self._cpu_active += 1
            factor = max(1.0, self._cpu_active / float(self.cores))
            ns = int(ns * factor)
            epoch = task._wait_epoch

            def _wake_cpu():
                self._cpu_active -= 1
                if task._wait_epoch == epoch and not task.done:
                    self._step(task, None, None)

            self.call_at(self.now + ns, _wake_cpu)
        else:
            epoch = task._wait_epoch

            def _wake():
                if task._wait_epoch == epoch and not task.done:
                    self._step(task, None, None)

            self.call_at(self.now + ns, _wake)

    def _do_wait(self, task: Task, item: WaitEvent) -> None:
        event = item.event
        if event.fired:
            self.call_soon(self._step, task, (True, event.value), None)
            return
        epoch = task._wait_epoch
        event._waiters.append((task, epoch))
        if item.timeout_ns is not None:

            def _timeout():
                if task._wait_epoch == epoch and not task.done:
                    self._step(task, (False, None), None)

            self.call_at(self.now + item.timeout_ns, _timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_tasks(self) -> int:
        """Number of tasks that have been spawned and not yet finished."""
        return self._live_tasks

    @property
    def steps(self) -> int:
        """Total number of queue callbacks executed so far."""
        return self._steps
