"""Discrete-event simulation core.

Everything in this reproduction — the simulated kernel, the guest
programs, the MVEE monitors, the benchmark clients — runs as coroutine
tasks on the :class:`~repro.sim.simulator.Simulator`. Tasks are plain
Python generators that yield *effects* (:class:`~repro.sim.effects.Sleep`,
:class:`~repro.sim.effects.WaitEvent`, :class:`~repro.sim.effects.Spawn`)
and are resumed by the event loop with the effect's result.

Time is virtual and counted in integer nanoseconds; nothing in the
simulation ever consults the host clock, so runs are fully deterministic
given their seeds.
"""

from repro.sim.effects import Effect, Event, Sleep, Spawn, WaitEvent
from repro.sim.simulator import Simulator, Task, TraceEvent

__all__ = [
    "Effect",
    "Event",
    "Simulator",
    "Sleep",
    "Spawn",
    "Task",
    "TraceEvent",
    "WaitEvent",
]
