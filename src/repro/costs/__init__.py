"""Calibrated cost model for the simulated machine."""

from repro.costs.model import CostModel, MACHINES

__all__ = ["CostModel", "MACHINES"]
