"""The virtual machine's timing model.

All durations are virtual nanoseconds. The defaults model the paper's
testbed — a dual eight-core Xeon E5-2660 (Sandy Bridge EP) running Linux
3.13 — at the granularity the evaluation is sensitive to:

* a *ptrace stop* (tracee traps, monitor wakes, monitor resumes tracee)
  costs a few microseconds: two context switches with their TLB/cache
  fallout plus the waitpid/ptrace syscalls themselves;
* a native syscall costs a fraction of a microsecond;
* IP-MON's unmonitored path costs some hundreds of nanoseconds: no
  context switch, just RB bookkeeping and (for slaves) argument
  comparison and result copying.

These magnitudes — not their precise values — are what produce the
paper's headline shape: monitoring cost is proportional to system-call
density, and the CP/IP cost ratio of roughly 10–40× is what the five
relaxation levels trade away.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass
class CostModel:
    """Tunable timing parameters for the simulated machine."""

    # -- plain kernel costs (paid by everything, including native runs) --
    syscall_base_ns: int = 400
    copy_ns_per_byte: float = 0.05

    # -- context switching / ptrace (the CP monitor's currency) ---------
    context_switch_ns: int = 1200
    tlb_flush_penalty_ns: int = 900
    ptrace_stop_ns: int = 3600  # one stop: trap + waitpid wakeup + resume
    ptrace_peek_ns: int = 700  # PTRACE_PEEKDATA / process_vm_readv setup
    ptrace_poke_ns: int = 750

    # -- monitor work ------------------------------------------------------
    monitor_dispatch_ns: int = 500  # per monitored call bookkeeping
    compare_base_ns: int = 150  # per argument compared
    compare_ns_per_byte: float = 0.12
    replicate_ns_per_byte: float = 0.10

    # -- IP-MON (the in-process monitor's currency) -------------------------
    ikb_forward_ns: int = 120  # broker reroute, register save/restore
    ipmon_entry_ns: int = 180  # entry point, policy check, token check
    rb_write_base_ns: int = 160  # master: allocate + fill RB record
    rb_read_base_ns: int = 140  # slave: locate + validate RB record
    rb_ns_per_byte: float = 0.06  # RB memcpy (cache-hot shared memory)
    spin_read_ns: int = 250  # slave spin-wait iteration
    futex_wait_ns: int = 2600  # sleep + wakeup through the kernel
    futex_wake_ns: int = 1100
    rb_overflow_sync_ns: int = 25000  # GHUMVEE arbitration on RB reset

    # -- distributed replication (repro.dist's currency) --------------------
    # Cross-node replication swaps RB shared-memory costs for messaging
    # costs: per-message kernel/NIC work on top of the simulated link
    # latency, a per-byte encode/copy tax for building transfer units
    # (dMVX's "copy to the transfer unit" term), and a fixed service cost
    # on every lockstep rendezvous round. Crash detection across nodes is
    # a timeout, not a waitpid: it costs real time.
    dist_msg_syscall_ns: int = 1800  # sendmsg/recvmsg pair + NIC doorbell
    dist_encode_ns_per_byte: float = 0.25  # serialise into a transfer unit
    dist_frame_send_ns: int = 350  # per-frame queueing into a batch
    dist_rendezvous_service_ns: int = 900  # monitor-side rendezvous work
    dist_crash_detect_ns: int = 250_000  # heartbeat/timeout detection lag

    # -- distributed fast path (sharding + RB mirror compression) -----------
    # The rendezvous monitor is a serial resource: the node hosting a
    # round's state processes rounds one at a time, so a single-owner
    # monitor queues under many-threaded lockstep load — the term
    # sharding exists to shrink. Shard routing itself costs a hash and
    # a hop decision per submission. Compression trades leader/follower
    # CPU per payload byte for wire bytes.
    dist_monitor_round_ns: int = 1400  # serialized per-round monitor work
    dist_shard_route_ns: int = 150  # owner hash + shard-hop routing tax
    #: Per-round shard recovery work after a membership change: adopting
    #: a transferred round (or rebuilding a lost one from resubmitted
    #: digests) on the new owner's serial timeline. State-transfer bytes
    #: are billed separately by the transport.
    dist_handoff_ns: int = 2_500
    dist_compress_frame_ns: int = 140  # per-frame codec dispatch + dict probe
    dist_compress_ns_per_byte: float = 0.12  # RLE scan/emit over raw bytes
    dist_decompress_ns_per_byte: float = 0.05  # expand on adoption
    #: Reliable-link overheads (only billed when a transport runs in
    #: reliable mode): CPU to re-push a stored batch from the unacked
    #: window, and to emit a pure-ack batch. Both also pay the normal
    #: per-byte message cost for the bytes they put on the wire.
    dist_retransmit_ns: int = 900
    dist_ack_ns: int = 400
    #: Canonical re-serialization on heterogeneous clusters (DESIGN.md
    #: §13): a node whose guest ABI diverges from the canonical form
    #: re-encodes the argument record (fixed widths, zero padding)
    #: before digesting, so cross-node digests stay layout-independent.
    #: Canonical-ABI nodes — every node of a homogeneous cluster — skip
    #: this entirely and the fields are never billed.
    canonical_ns: int = 200  # per-record re-encode dispatch
    canonical_ns_per_byte: float = 0.08  # width/padding rewrite per byte

    # -- fleet admission control (repro.fleet) ------------------------------
    #: Leader-side accept-path bookkeeping per admitted connection:
    #: token-bucket refill/consume plus queue-wait stamping. Billed on
    #: the accepting thread only when a controller is attached.
    fleet_admission_ns: int = 180

    # -- elastic lifecycle (repro.lifecycle) --------------------------------
    # Charged only when a LifecycleConfig is attached to the DistConfig;
    # lifecycle-free runs never touch these fields.
    #: Monitor-side CPU per SWIM heartbeat emitted (view serialization +
    #: fanout pick). Accounted, not slept — heartbeats run off the
    #: guest's critical path on the monitor's housekeeping core.
    lifecycle_heartbeat_ns: int = 300
    #: Per-artifact adoption cost while a replacement replica fast-
    #: replays the recorded RB/verdict window (rr-style replay: no
    #: digest, no round trip — just a mirror lookup and an apply).
    lifecycle_replay_ns: int = 250
    #: Spin-up delay for a replacement replica: image fetch + boot of a
    #: fresh kernel before replay starts. Deliberately much larger than
    #: a link latency so in-flight frames from the dead process drain
    #: before its slot is re-imaged.
    lifecycle_provision_ns: int = 3_000_000

    # -- observability (repro.obs) ------------------------------------------
    # Charged only while the corresponding instrument is enabled; with
    # obs at defaults both are folded in as zero, so metrics-only runs
    # keep wall times byte-identical to obs-free ones.
    obs_span_ns: int = 60  # span begin/finish pair: clock reads + buffer append
    obs_event_ns: int = 40  # flight-recorder ring append

    # -- memory-system interference (replicas share caches/DRAM) -----------
    # Per extra replica beyond the first, compute segments are slowed by
    # this fraction (cache and memory-bandwidth pressure; the paper's
    # GHUMVEE-only PARSEC overheads are mostly this term).
    memory_pressure_per_replica: float = 0.035

    def ptrace_roundtrip_ns(self) -> int:
        """A stop plus the context-switch fallout on both sides."""
        return (
            self.ptrace_stop_ns
            + 2 * self.context_switch_ns
            + 2 * self.tlb_flush_penalty_ns
        )

    def compare_cost_ns(self, nbytes: int, nargs: int = 1) -> int:
        return int(self.compare_base_ns * nargs + self.compare_ns_per_byte * nbytes)

    def replicate_cost_ns(self, nbytes: int) -> int:
        return int(self.replicate_ns_per_byte * nbytes)

    def rb_copy_ns(self, nbytes: int) -> int:
        return int(self.rb_ns_per_byte * nbytes)

    def dist_message_cost_ns(self, nbytes: int) -> int:
        """CPU cost of sending one cross-node message (link delay excluded)."""
        return int(self.dist_msg_syscall_ns + self.dist_encode_ns_per_byte * nbytes)

    def dist_frame_cost_ns(self, nbytes: int) -> int:
        """CPU cost of queueing one frame into an outgoing transfer unit."""
        return int(self.dist_frame_send_ns + self.dist_encode_ns_per_byte * nbytes)

    def dist_compress_cost_ns(self, nbytes: int) -> int:
        """CPU cost of codec-wrapping one payload of ``nbytes`` raw bytes."""
        return int(self.dist_compress_frame_ns
                   + self.dist_compress_ns_per_byte * nbytes)

    def dist_decompress_cost_ns(self, nbytes: int) -> int:
        """CPU cost of expanding one coded payload back to ``nbytes``."""
        return int(self.dist_decompress_ns_per_byte * nbytes)

    def canonical_cost_ns(self, nbytes: int) -> int:
        """CPU cost of canonicalizing one ``nbytes`` argument record."""
        return int(self.canonical_ns + self.canonical_ns_per_byte * nbytes)

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)


#: Named machine configurations used across the evaluation.
MACHINES = {
    # The paper's testbed: 2x 8-core E5-2660, 20 MB LLC per socket.
    "xeon-e5-2660": CostModel(),
    # A machine with slower context switches (older kernels / no PCID):
    # used in ablations to show the CP/IP gap widening.
    "slow-switch": CostModel(
        context_switch_ns=2500, tlb_flush_penalty_ns=2000, ptrace_stop_ns=6000
    ),
    # An optimistic machine with tagged TLBs: the gap narrows but stays.
    "tagged-tlb": CostModel(
        context_switch_ns=800, tlb_flush_penalty_ns=150, ptrace_stop_ns=2500
    ),
}
