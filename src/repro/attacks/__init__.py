"""Attack scenarios for the security analysis (paper §4).

Each scenario models a concrete attacker capability against a running
MVEE and reports whether the attack's externally visible effect happened
and whether/how the monitor detected it. The scenarios back the paper's
claims:

* diversified replicas cannot be compromised consistently (DCL);
* input replication forecloses asymmetric attacks;
* the RB pointer is hidden (never in guest memory, scrubbed from
  /proc/*/maps) and guessing it is a 2^-24 proposition per replica;
* forged or replayed IK-B tokens cannot authorize unmonitored calls;
* per-node diversity profiles contain a single-node layout leak: the
  harvested address maps nowhere else in the cluster (DESIGN.md §13);
* VARAN-style designs execute sensitive calls before any check
  (run-ahead window) and miss unaligned syscall gadgets entirely;
* deterministic temporal exemption policies are insecure, stochastic
  ones are not reliably exploitable.
"""

from repro.attacks.analysis import AttackOutcome, run_attack, run_attack_dist
from repro.attacks.scenarios import layout_leak_program
from repro.attacks import scenarios

__all__ = [
    "AttackOutcome",
    "layout_leak_program",
    "run_attack",
    "run_attack_dist",
    "scenarios",
]
