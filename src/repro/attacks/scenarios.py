"""Concrete attack scenarios (paper §4).

Every scenario is a ``program_factory(outcome)`` usable with
:func:`repro.attacks.analysis.run_attack`, plus a few helpers that run
against the VARAN baseline for the §6 comparison.
"""

from __future__ import annotations

from repro.diversity.dcl import address_valid_in
from repro.guest.program import Compute, Program
from repro.kernel import constants as C
from repro.kernel.syscalls import SyscallRequest

SECRET_PATH = "/etc/shadow"
SECRET_DATA = b"root:$6$supersecret$hash:19000::::::"


# ---------------------------------------------------------------------------
# 1. Code-reuse payload vs. diversified replicas
# ---------------------------------------------------------------------------
def code_injection_program(outcome, payload_addr=None, exfil_call="open"):
    """A server-ish program with a memory-corruption bug.

    The attacker's input carries an absolute code address (a ROP/return
    target harvested from one replica). Each replica "jumps" to that
    address: replicas in which the address falls inside executable
    memory are compromised and run the attacker's payload; the others
    crash with SIGSEGV — observable divergence.

    ``payload_addr=None`` means the attacker targets replica 0's code
    layout (the common case: the leak came from the master).
    """

    def main(ctx):
        libc = ctx.libc
        yield Compute(10_000)
        # Benign phase: the program does some normal work.
        fd = yield from libc.open("/data/config.txt")
        assert fd >= 0
        yield from libc.read(fd, 64)
        yield from libc.close(fd)

        # The malicious input arrives; the overflowed return address.
        # The harvest needs a real layout: every monitor in this repo
        # (ReMon, Varan, DistMvee) hands each replica one, so a missing
        # layout is a harness bug, not a case to paper over with a
        # fixed address that no diversified replica could ever map.
        target = payload_addr
        if target is None:
            target = ctx.layout.code_base + 0x1234
            target = outcome.notes.setdefault("payload_addr", target)
        # "Jump": valid only if target is executable *in this replica*.
        mapping = ctx.mem.find_mapping(target)
        executable = mapping is not None and mapping.prot & C.PROT_EXEC
        if not executable:
            # The replica crashes on the wild jump.
            ctx.mem.write(target, b"\x90")  # faults -> SIGSEGV
            return 1  # unreachable
        # Compromised replica: run the attacker's payload.
        outcome.notes.setdefault("compromised", []).append(
            ctx.process.replica_index
        )
        if exfil_call == "open":
            sfd = yield from libc.open(SECRET_PATH)
            if sfd >= 0:
                _ret, data = yield from libc.read(sfd, 128)
                outcome.effect_occurred = True
                outcome.effect = "read %d bytes of %s" % (len(data), SECRET_PATH)
        elif exfil_call == "socket_write":
            # Exfiltrate over an unmonitored socket write (the policy-
            # accepted residual risk at SOCKET_RW, §4).
            sock = outcome.notes.get("sock_fd")
            if sock is not None:
                sent = yield from libc.send(sock, b"EXFIL:" + SECRET_DATA)
                if sent > 0:
                    outcome.effect_occurred = True
                    outcome.effect = "exfiltrated %d bytes unmonitored" % sent
        yield Compute(50_000)
        return 0

    return Program(
        "victim", main, files={"/data/config.txt": b"cfg", SECRET_PATH: SECRET_DATA}
    )


def socket_exfil_program(outcome):
    """Like code_injection_program but the payload exfiltrates over a
    pre-established socket using only SOCKET_RW-unmonitored calls."""

    def main(ctx):
        libc = ctx.libc
        # Establish a loopback connection during the benign phase.
        listener = yield from libc.socket()
        yield from libc.bind(listener, "0.0.0.0", 7777)
        yield from libc.listen(listener)
        client = yield from libc.socket()
        ret = yield from libc.connect(client, ctx.process.host_ip, 7777)
        assert ret == 0, ret
        conn = yield from libc.accept(listener)
        assert conn >= 0
        outcome.notes["sock_fd"] = client
        outcome.notes["drain_fd"] = conn

        target = outcome.notes.setdefault(
            "payload_addr2", ctx.layout.code_base + 0x2000
        )
        mapping = ctx.mem.find_mapping(target)
        executable = mapping is not None and mapping.prot & C.PROT_EXEC
        if not executable:
            ctx.mem.write(target, b"\x90")
            return 1
        outcome.notes.setdefault("compromised", []).append(ctx.process.replica_index)
        sent = yield from libc.send(client, b"EXFIL:" + SECRET_DATA)
        if sent > 0:
            outcome.effect_occurred = True
            outcome.effect = "exfiltrated %d bytes over unmonitored socket" % sent
        yield Compute(50_000)
        return 0

    return Program("victim-sock", main, files={SECRET_PATH: SECRET_DATA})


# ---------------------------------------------------------------------------
# 2. Argument corruption (classic memory error)
# ---------------------------------------------------------------------------
def corrupted_argument_program(outcome):
    """A memory error corrupts a syscall argument differently per
    replica (a heap pointer overwritten with a layout-dependent value):
    the replicas pass different paths to open(2)."""

    def main(ctx):
        libc = ctx.libc
        yield Compute(5_000)
        # The "corruption": the filename pointer is overwritten with a
        # value derived from the replica's own heap base.
        if ctx.process.replica_index == 0:
            path = SECRET_PATH
        else:
            path = "/data/benign.txt"
        fd = yield from libc.open(path)
        if fd >= 0 and path == SECRET_PATH:
            outcome.effect_occurred = True
            outcome.effect = "opened " + SECRET_PATH
        return 0

    return Program(
        "corrupt", main, files={SECRET_PATH: SECRET_DATA, "/data/benign.txt": b"ok"}
    )


# ---------------------------------------------------------------------------
# 3. Replication-buffer discovery
# ---------------------------------------------------------------------------
def rb_discovery_program(outcome, guesses=64):
    """A compromised replica hunts for the RB: first via
    /proc/self/maps (scrubbed by GHUMVEE, §3.1), then by guessing
    addresses (24 bits of entropy per replica, §4)."""

    def segv_handler(ctx, signo):
        ctx.attacker_state["faults"] = ctx.attacker_state.get("faults", 0) + 1

    def main(ctx):
        libc = ctx.libc
        yield ctx.sys.rt_sigaction(C.SIGSEGV, segv_handler)
        # Step 1: read /proc/self/maps and look for the RB.
        fd = yield from libc.open("/proc/self/maps")
        assert fd >= 0
        content = bytearray()
        while True:
            ret, data = yield from libc.read(fd, 4096)
            if ret <= 0:
                break
            content += data
        yield from libc.close(fd)
        if b"ipmon-rb" in content:
            outcome.effect_occurred = True
            outcome.effect = "RB located via /proc/self/maps"
            return 1
        outcome.notes["maps_scrubbed"] = True
        # Step 2: guess. The RB is a 16 MiB region somewhere in a
        # ~2^24-page area; probe a few candidates (a real attack needs
        # ~2^23 probes *per replica*, each risking a crash).
        base = 0x7E00_0000_0000
        probed = 0
        for i in range(guesses):
            addr = base + (ctx.rng.getrandbits(24) * C.PAGE_SIZE)
            probed += 1
            try:
                ctx.mem.read(addr, 4)
            except Exception:  # MemoryFault - the probe faulted
                continue
            mapping = ctx.mem.find_mapping(addr)
            if mapping is not None and mapping.name == "[ipmon-rb]":
                outcome.effect_occurred = True
                outcome.effect = "RB found after %d probes" % probed
                outcome.notes["rb_addr"] = addr
                return 1
        outcome.notes["probes"] = probed
        yield Compute(1_000)
        return 0

    return Program("rb-hunter", main)


def rb_tamper_program(outcome):
    """What an attacker could do *with* the RB pointer (hypothetically
    leaked): corrupt the master's recorded arguments so the slave's
    sanity check sees inconsistent data. The design point: tampering is
    detected as divergence; hiding the pointer prevents even that."""

    def main(ctx):
        libc = ctx.libc
        rb = None
        if ctx.process.replica_index == 0:
            # The "leak": find the RB mapping directly (simulating a
            # hypothetical infoleak the hidden-pointer design prevents).
            rb = next(
                (m for m in ctx.mem.mappings() if m.name == "[ipmon-rb]"), None
            )
            if rb is not None:
                outcome.notes["leaked_rb"] = rb.start
        del libc
        yield Compute(2_000)
        # The compromised master races the slaves: right after each of
        # its own unmonitored calls returns, it scribbles over the lane
        # the slaves have not yet validated.
        for _ in range(6):
            _pid = yield ctx.sys.getpid()
            if rb is not None:
                ctx.mem.write(rb.start + 64, b"\xff" * 2048, check_prot=False)
                outcome.effect_occurred = True
                outcome.effect = "tampered with RB contents"
            yield Compute(3_000)
        return 0

    return Program("rb-tamper", main)


# ---------------------------------------------------------------------------
# 4. IK-B token forgery
# ---------------------------------------------------------------------------
def token_forgery_program(outcome):
    """A compromised master tries to execute an unmonitored call
    directly, claiming to be IP-MON with a guessed token (§3.1/§4)."""

    def main(ctx):
        yield Compute(2_000)
        if ctx.process.replica_index == 0:
            forged = SyscallRequest(
                "read",
                (0, 0, 0),
                site="ipmon",
                token=0xDEADBEEFDEADBEEF,
            )
            result = yield forged
            outcome.notes["forged_result"] = result
            # If this executed unmonitored, the broker's stats would not
            # show a verification failure; the harness checks them.
        else:
            # The healthy replica continues its normal behaviour.
            _pid = yield ctx.sys.getpid()
        yield Compute(2_000)
        return 0

    return Program("forger", main)


# ---------------------------------------------------------------------------
# 5-6. VARAN weaknesses (§6): run-ahead window + unaligned gadgets
# ---------------------------------------------------------------------------
def varan_window_program(outcome):
    """Compromised master executes a sensitive call; under VARAN it
    completes before any slave check (the ring buffer is the window),
    under ReMon the lockstep rendezvous blocks it."""

    def main(ctx):
        libc = ctx.libc
        yield Compute(2_000)
        if ctx.process.replica_index == 0:
            fd = yield from libc.open(SECRET_PATH)
            if fd >= 0:
                ret, _ = yield from libc.read(fd, 128)
                if ret > 0:
                    outcome.effect_occurred = True
                    outcome.effect = "sensitive open+read executed"
        else:
            yield Compute(500_000)  # the slave lags far behind
            _pid = yield ctx.sys.getpid()
        yield Compute(2_000)
        return 0

    return Program("window", main, files={SECRET_PATH: SECRET_DATA})


def unaligned_gadget_program(outcome):
    """A syscall issued through an unaligned gadget: VARAN's binary
    rewriting never instrumented this instruction, so the call bypasses
    its agents entirely; ReMon's IK-B intercepts every syscall (§6)."""

    def main(ctx):
        libc = ctx.libc
        yield Compute(2_000)
        # Both replicas stage the buffer identically (the benign part of
        # the program); only the compromised master fires the gadget.
        addr = yield from libc.push_cstr(SECRET_PATH)
        if ctx.process.replica_index == 0:
            raw = SyscallRequest("open", (addr, C.O_RDONLY, 0))
            raw.bypass_agents = True
            fd = yield raw
            if fd >= 0:
                outcome.effect_occurred = True
                outcome.effect = "gadget syscall executed (fd=%d)" % fd
        yield Compute(2_000)
        _pid = yield ctx.sys.getpid()
        return 0

    return Program("gadget", main, files={SECRET_PATH: SECRET_DATA})


# ---------------------------------------------------------------------------
# 7. Temporal-exemption abuse (§3.4)
# ---------------------------------------------------------------------------
def temporal_abuse_program(outcome, warm_calls=16):
    """The attacker warms the temporal window with benign socket reads,
    then issues a malicious read hoping it gets exempted. Deterministic
    policies guarantee success; stochastic ones do not."""

    def main(ctx):
        libc = ctx.libc
        # Loopback socket whose reads are *conditionally monitored* at
        # NONSOCKET_* levels (socket reads need SOCKET_RO).
        listener = yield from libc.socket()
        yield from libc.bind(listener, "0.0.0.0", 7878)
        yield from libc.listen(listener)
        client = yield from libc.socket()
        ret = yield from libc.connect(client, ctx.process.host_ip, 7878)
        assert ret == 0
        conn = yield from libc.accept(listener)
        assert conn >= 0
        # Prefill.
        yield from libc.send(client, b"A" * 4096)
        # Warm the window: benign reads on the socket. read(2) on a
        # socket is a *conditional* call, monitored below SOCKET_RO.
        for _ in range(warm_calls):
            ret, _ = yield from libc.read(conn, 64)
            assert ret == 64, ret
        # The malicious read: did the master's IP-MON exempt it?
        replica = getattr(ctx.process, "ipmon_replica", None)
        stats = replica.group.stats if replica is not None else {}
        before = stats.get("temporal_exemptions", 0)
        ret, _data = yield from libc.read(conn, 64)
        after = stats.get("temporal_exemptions", 0)
        if ctx.process.replica_index == 0 and after > before and ret > 0:
            outcome.effect_occurred = True
            outcome.effect = "malicious socket read executed unmonitored"
        yield Compute(2_000)
        return 0

    return Program("temporal-abuse", main)


# ---------------------------------------------------------------------------
# 8. Cross-node layout leak (heterogeneous clusters, DESIGN.md §13)
# ---------------------------------------------------------------------------
def layout_leak_program(outcome, leaked_key="payload_addr"):
    """The distributed analogue of :func:`code_injection_program`: the
    attacker has exfiltrated one node's complete code layout (the
    worst-case single-node leak) and fires the harvested address at
    every node of the cluster. ``outcome.notes[leaked_key]`` must hold
    the leaked absolute address before the run starts — the harness
    (:func:`repro.attacks.analysis.run_attack_dist`) seeds it from the
    victim node's real layout, the way a live infoleak would.

    The leaked value is either one absolute address (a single-node
    leak, fired blindly at the whole fleet) or a per-node list (the
    attacker reconstructed *every* node's layout — what a homogeneous
    cluster's shared seed hands over — and tailors the payload each
    node receives, the dMVX/DMON threat model). Under per-node
    profiles (disjoint DCL arenas + one-way per-node ASLR streams) a
    single node's leak maps on that node only; every other node takes
    a wild jump and the divergence surfaces in one rendezvous round.
    """

    def main(ctx):
        libc = ctx.libc
        yield Compute(10_000)
        fd = yield from libc.open("/data/config.txt")
        assert fd >= 0
        yield from libc.read(fd, 64)
        yield from libc.close(fd)

        target = outcome.notes[leaked_key]
        if isinstance(target, (list, tuple)):
            target = target[ctx.process.replica_index]
        mapping = ctx.mem.find_mapping(target)
        executable = mapping is not None and mapping.prot & C.PROT_EXEC
        if not executable:
            ctx.mem.write(target, b"\x90")  # faults -> SIGSEGV
            return 1  # unreachable
        outcome.notes.setdefault("compromised", []).append(
            ctx.process.replica_index
        )
        sfd = yield from libc.open(SECRET_PATH)
        if sfd >= 0:
            _ret, data = yield from libc.read(sfd, 128)
            outcome.effect_occurred = True
            outcome.effect = "read %d bytes of %s" % (len(data), SECRET_PATH)
        yield Compute(50_000)
        return 0

    return Program(
        "victim-dist", main,
        files={"/data/config.txt": b"cfg", SECRET_PATH: SECRET_DATA},
    )


def _flatten_layouts(layouts):
    """Accept a flat replica family or a per-node collection of
    families (heterogeneous clusters hand one family per node)."""
    flat = []
    for item in layouts:
        if isinstance(item, (list, tuple)):
            flat.extend(item)
        else:
            flat.append(item)
    return flat


def dcl_analysis(layouts, payload_addr: int):
    """How many replicas consider the payload address executable code?

    ``layouts`` is either one replica family or a per-node set of
    families. Under DCL the answer is <= 1 by construction within a
    family; with per-node disjoint arenas it stays <= 1 across the
    *union* of every node's family (DESIGN.md §13)."""
    return address_valid_in(_flatten_layouts(layouts), payload_addr)
