"""Harness for running attack scenarios and classifying outcomes."""

from __future__ import annotations

from typing import Callable, Optional

from repro.core import Level, ReMon, ReMonConfig
from repro.kernel import Kernel


class AttackOutcome:
    """What happened when a scenario ran against a monitor."""

    def __init__(self):
        #: Did the attacker's externally visible action (exfiltration,
        #: file write, unmonitored sensitive call) actually execute?
        self.effect_occurred = False
        #: Description of the effect, when it occurred.
        self.effect: str = ""
        #: Did the monitor detect anything? ("ghumvee", "ipmon", "exit",
        #: "varan", or "" for undetected)
        self.detected_by: str = ""
        self.detection_time_ns: Optional[int] = None
        self.notes: dict = {}

    @property
    def blocked(self) -> bool:
        return not self.effect_occurred

    @property
    def detected(self) -> bool:
        return bool(self.detected_by)

    def __repr__(self):
        return "AttackOutcome(effect=%r, detected_by=%r)" % (
            self.effect_occurred,
            self.detected_by or None,
        )


def run_attack(
    program_factory: Callable,
    level: Level = Level.NONSOCKET_RW,
    replicas: int = 2,
    aslr: bool = True,
    dcl: bool = True,
    temporal=None,
    kernel: Optional[Kernel] = None,
    max_steps: int = 20_000_000,
    **config_kwargs,
):
    """Run an attack program under ReMon.

    ``program_factory(outcome)`` builds the guest program; the program
    records attack effects into the shared :class:`AttackOutcome`.
    Extra keyword arguments flow into :class:`ReMonConfig`. Returns
    ``(outcome, mvee_result)``.
    """
    outcome = AttackOutcome()
    kernel = kernel or Kernel()
    program = program_factory(outcome)
    config = ReMonConfig(
        replicas=replicas,
        level=level,
        aslr=aslr,
        dcl=dcl,
        temporal=temporal,
        **config_kwargs,
    )
    mvee = ReMon(kernel, program, config)
    result = mvee.run(max_steps=max_steps)
    if result.diverged:
        outcome.detected_by = result.divergence.detected_by
        outcome.detection_time_ns = result.divergence.time_ns
    return outcome, result


def run_attack_dist(
    program_factory: Callable,
    nodes: int = 3,
    level: Level = Level.SOCKET_RW,
    heterogeneous: bool = True,
    leak_node: Optional[int] = None,
    leak_family: bool = False,
    leak_offset: int = 0x1234,
    max_steps: int = 400_000_000,
    dist_kwargs: Optional[dict] = None,
    **config_kwargs,
):
    """Run an attack program against a distributed cluster.

    ``leak_node`` simulates a complete single-node layout leak: before
    the run starts, ``outcome.notes["payload_addr"]`` is seeded with a
    code address harvested from that node's *real* layout (code base +
    ``leak_offset``), exactly what an infoleak on that one machine
    would hand the attacker. ``leak_family`` is the catastrophic case
    a shared cluster seed permits — the attacker reconstructed every
    node's layout and tailors a payload per node (the list form of the
    leaked address). ``outcome.notes["node_layouts"]`` always carries
    every node's layout so callers can run
    :func:`repro.attacks.scenarios.dcl_analysis` over the cluster.
    Returns ``(outcome, mvee_result)``.
    """
    from repro.dist import DistConfig, DistMvee

    outcome = AttackOutcome()
    program = program_factory(outcome)
    config = ReMonConfig(
        replicas=nodes,
        level=level,
        dist=DistConfig(
            nodes=nodes,
            heterogeneous=heterogeneous,
            **(dist_kwargs or {}),
        ),
        **config_kwargs,
    )
    mvee = DistMvee(program, config)
    outcome.notes["node_layouts"] = [node.layout for node in mvee.nodes]
    if leak_family:
        outcome.notes["payload_addr"] = [
            node.layout.code_base + leak_offset for node in mvee.nodes
        ]
    elif leak_node is not None:
        leaked = mvee.nodes[leak_node].layout
        outcome.notes["leak_node"] = leak_node
        outcome.notes["payload_addr"] = leaked.code_base + leak_offset
    result = mvee.run(max_steps=max_steps)
    if result.diverged:
        outcome.detected_by = result.divergence.detected_by
        outcome.detection_time_ns = result.divergence.time_ns
    return outcome, result


def run_attack_varan(
    program_factory: Callable,
    replicas: int = 2,
    ring_entries: int = 256,
    kernel: Optional[Kernel] = None,
    max_steps: int = 20_000_000,
):
    """Run an attack program under the VARAN-style baseline."""
    from repro.baselines.varan import Varan, VaranConfig

    outcome = AttackOutcome()
    kernel = kernel or Kernel()
    program = program_factory(outcome)
    varan = Varan(kernel, program, VaranConfig(replicas=replicas, ring_entries=ring_entries))
    result = varan.run(max_steps=max_steps)
    if result.divergence is not None:
        outcome.detected_by = result.divergence.detected_by
        outcome.detection_time_ns = result.divergence.time_ns
    return outcome, result
