"""Security analysis summary (paper §4): one row per attack scenario."""

from __future__ import annotations

from typing import Dict, List

from repro.attacks import scenarios
from repro.attacks.analysis import run_attack, run_attack_varan
from repro.bench.reporting import Table
from repro.core import Level
from repro.core.temporal import TemporalPolicy


def generate() -> List[Dict]:
    rows = []

    def record(name, outcome, result, monitor):
        rows.append(
            {
                "scenario": name,
                "monitor": monitor,
                "effect": outcome.effect_occurred,
                "detected": outcome.detected,
                "detected_by": outcome.detected_by,
            }
        )

    outcome, result = run_attack(scenarios.code_injection_program)
    record("code-reuse payload (DCL on)", outcome, result, "ReMon")

    outcome, result = run_attack(
        scenarios.code_injection_program, aslr=False, dcl=False
    )
    record("code-reuse payload (no diversity)", outcome, result, "ReMon")

    outcome, result = run_attack(scenarios.corrupted_argument_program)
    record("corrupted syscall argument", outcome, result, "ReMon")

    outcome, result = run_attack(scenarios.rb_discovery_program)
    record("RB discovery (maps + guessing)", outcome, result, "ReMon")

    outcome, result = run_attack(scenarios.rb_tamper_program)
    record("RB tampering (pointer leaked)", outcome, result, "ReMon")

    outcome, result = run_attack(scenarios.token_forgery_program)
    record("IK-B token forgery", outcome, result, "ReMon")

    outcome, result = run_attack(scenarios.varan_window_program)
    record("sensitive call by compromised master", outcome, result, "ReMon")

    outcome, result = run_attack_varan(scenarios.varan_window_program)
    record("sensitive call by compromised master", outcome, result, "VARAN")

    outcome, result = run_attack(scenarios.unaligned_gadget_program)
    record("unaligned syscall gadget", outcome, result, "ReMon")

    outcome, result = run_attack_varan(scenarios.unaligned_gadget_program)
    record("unaligned syscall gadget", outcome, result, "VARAN")

    outcome, result = run_attack(
        scenarios.temporal_abuse_program,
        level=Level.NONSOCKET_RW,
        temporal=TemporalPolicy(threshold=4, deterministic=True),
    )
    record("temporal abuse (deterministic policy)", outcome, result, "ReMon")

    outcome, result = run_attack(
        scenarios.temporal_abuse_program,
        level=Level.NONSOCKET_RW,
        temporal=TemporalPolicy(threshold=4, exempt_probability=0.02, seed=99),
    )
    record("temporal abuse (stochastic policy)", outcome, result, "ReMon")

    return rows


def render(rows: List[Dict]) -> str:
    table = Table(
        "Security analysis (§4): attack outcomes",
        ["scenario", "monitor", "attack effect", "detected", "via"],
    )
    for row in rows:
        table.add(
            row["scenario"],
            row["monitor"],
            "EXECUTED" if row["effect"] else "blocked",
            "yes" if row["detected"] else "NO",
            row["detected_by"] or "-",
        )
    return table.render()
