"""Distributed-MVEE overhead sweeps (repro.dist; DESIGN.md §8).

The dMVX argument, reproduced: naive ("full") replication ships every
syscall result from the leader to the followers and pays a per-frame
tax plus wire volume proportional to total syscall traffic; *selective*
replication ships only what followers cannot reproduce locally
(external socket I/O and the leader's clock), collapsing both. These
sweeps quantify that across link latency, batch size, and relaxation
level, plus what a node crash costs end-to-end.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.native import run_native
from repro.bench.reporting import Table
from repro.core import DegradationPolicy, Level, ReMonConfig
from repro.dist import (
    DistConfig,
    DistMvee,
    SelectiveReplication,
    full_replication,
    selective_replication,
)
from repro.faults import CrashFault, FaultInjector, FaultPlan
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

MAX_STEPS = 400_000_000

#: Link latencies swept by the headline comparison: same-rack, same-DC,
#: and cross-site-ish.
LATENCIES_NS: Tuple[int, ...] = (50_000, 200_000, 1_000_000)


def _workload(name: str = "dist", rate: float = 260_000.0,
              native_ms: float = 4.0) -> SyntheticWorkload:
    """A server-ish mix: mostly reproducible file/base traffic with a
    socket component only the leader may touch."""
    return SyntheticWorkload(
        name=name,
        native_ms=native_ms,
        mix=CategoryMix(
            {
                "base": rate * 0.25,
                "file_ro": rate * 0.45,
                "sock_ro": rate * 0.1,
                "sock_rw": rate * 0.1,
                "mgmt": rate * 0.1,
            }
        ),
        threads=2,
    )


def _native_ns(workload: SyntheticWorkload) -> int:
    return run_native(build_program(workload)).wall_time_ns


def _run(workload: SyntheticWorkload, *, nodes: int = 3,
         level: Level = Level.SOCKET_RW,
         replication: Optional[SelectiveReplication] = None,
         latency_ns: int = 200_000, batch_bytes: int = 4096,
         plan: Optional[FaultPlan] = None,
         degradation: Optional[DegradationPolicy] = None):
    dist = DistConfig(
        link_latency_ns=latency_ns,
        batch_bytes=batch_bytes,
        replication=replication or selective_replication(),
    )
    config = ReMonConfig(replicas=nodes, level=level, degradation=degradation,
                         dist=dist)
    mvee = DistMvee(build_program(workload), config)
    if plan is not None:
        mvee.attach_faults(FaultInjector(plan))
    return mvee.run(max_steps=MAX_STEPS)


# ---------------------------------------------------------------------------
# 1. Selective vs full replication across link latency
# ---------------------------------------------------------------------------
def selective_vs_full(latencies_ns: Tuple[int, ...] = LATENCIES_NS,
                      nodes: int = 3) -> List[Dict]:
    """The dMVX headline: at every link latency, selective replication
    moves fewer bytes AND finishes faster than full replication."""
    workload = _workload("sel-vs-full")
    native_ns = _native_ns(workload)
    rows = []
    for latency_ns in latencies_ns:
        for policy in (selective_replication(), full_replication()):
            result = _run(workload, nodes=nodes, replication=policy,
                          latency_ns=latency_ns)
            assert not result.diverged, result.divergence
            rows.append(
                {
                    "latency_ns": latency_ns,
                    "policy": policy.name,
                    "overhead": result.wall_time_ns / max(1, native_ns),
                    "wire_bytes": result.stats["dist_wire_bytes"],
                    "messages": result.stats["dist_messages"],
                    "replicated": result.stats["dist_replicated_calls"],
                    "local": result.stats["dist_local_calls"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# 2. Transfer-unit (batch) size sweep
# ---------------------------------------------------------------------------
def batching_sweep(batch_sizes=(512, 4096, 16384),
                   latency_ns: int = 200_000) -> List[Dict]:
    """Bigger transfer units coalesce more frames per message, cutting
    the per-message cost the leader pays for replication."""
    workload = _workload("batching")
    native_ns = _native_ns(workload)
    rows = []
    for batch_bytes in batch_sizes:
        result = _run(workload, batch_bytes=batch_bytes, latency_ns=latency_ns)
        assert not result.diverged, result.divergence
        rows.append(
            {
                "batch_bytes": batch_bytes,
                "messages": result.stats["dist_messages"],
                "frames": result.stats["dist_frames"],
                "frames_per_msg": result.stats["dist_frames"]
                / max(1, result.stats["dist_messages"]),
                "overhead": result.wall_time_ns / max(1, native_ns),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# 3. Relaxation level sweep
# ---------------------------------------------------------------------------
def relaxation_sweep(levels=(Level.NO_IPMON, Level.BASE, Level.NONSOCKET_RW,
                             Level.SOCKET_RW),
                     latency_ns: int = 200_000) -> List[Dict]:
    """Cross-node lockstep is brutally expensive (two link round trips
    per monitored call), so relaxation pays off far more than it does on
    one machine: each level shifts calls from rendezvous to the local or
    replicated lanes."""
    workload = _workload("relax")
    native_ns = _native_ns(workload)
    rows = []
    for level in levels:
        result = _run(workload, level=level, latency_ns=latency_ns)
        assert not result.diverged, result.divergence
        rows.append(
            {
                "level": level.name,
                "rendezvous": result.stats["dist_rendezvous_calls"],
                "local": result.stats["dist_local_calls"],
                "replicated": result.stats["dist_replicated_calls"],
                "round_trips": result.stats["dist_round_trips"],
                "overhead": result.wall_time_ns / max(1, native_ns),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# 4. Node-crash failover
# ---------------------------------------------------------------------------
def failover_rows(latency_ns: int = 200_000) -> List[Dict]:
    """A 3-node cluster under PR-1 fault injection: follower and leader
    crashes are absorbed (quarantine, promotion) and the run completes
    on the surviving nodes."""
    workload = SyntheticWorkload(
        name="dist-failover",
        native_ms=4.0,
        mix=CategoryMix({"base": 120_000, "file_ro": 120_000, "mgmt": 20_000}),
        threads=2,
    )
    native_ns = _native_ns(workload)
    policy = DegradationPolicy(min_quorum=2)
    scenarios = [
        ("fault-free", None),
        ("follower crash", FaultPlan([CrashFault(replica=2, at_ns=1_000_000)])),
        ("leader crash", FaultPlan([CrashFault(replica=0, at_ns=1_000_000)])),
    ]
    rows = []
    for name, plan in scenarios:
        result = _run(workload, level=Level.NONSOCKET_RW, plan=plan,
                      degradation=policy, latency_ns=latency_ns)
        rows.append(
            {
                "scenario": name,
                "outcome": "diverged" if result.diverged else "completed",
                "quarantined": len(result.quarantined_replicas),
                "promotions": result.stats["master_promotions"],
                "overhead": result.wall_time_ns / max(1, native_ns),
            }
        )
    return rows


# ---------------------------------------------------------------------------
def render_all() -> str:
    out = []

    table = Table(
        "dMVX selective vs full replication (3 nodes, SOCKET_RW)",
        ["latency", "policy", "overhead", "wire KiB", "messages",
         "replicated", "local"],
    )
    for row in selective_vs_full():
        table.add(
            "%d us" % (row["latency_ns"] // 1000),
            row["policy"],
            "%.2fx" % row["overhead"],
            "%.1f" % (row["wire_bytes"] / 1024),
            row["messages"],
            row["replicated"],
            row["local"],
        )
    out.append(table.render())

    table = Table(
        "Transfer-unit size sweep (200 us links)",
        ["batch", "messages", "frames", "frames/msg", "overhead"],
    )
    for row in batching_sweep():
        table.add(row["batch_bytes"], row["messages"], row["frames"],
                  "%.1f" % row["frames_per_msg"], "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Relaxation across nodes (200 us links)",
        ["level", "rendezvous", "local", "replicated", "round trips",
         "overhead"],
    )
    for row in relaxation_sweep():
        table.add(row["level"], row["rendezvous"], row["local"],
                  row["replicated"], row["round_trips"],
                  "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Node-crash failover (3 nodes, min_quorum=2)",
        ["scenario", "outcome", "quarantined", "promotions", "overhead"],
    )
    for row in failover_rows():
        table.add(row["scenario"], row["outcome"], row["quarantined"],
                  row["promotions"], "%.2fx" % row["overhead"])
    out.append(table.render())

    return "\n\n".join(out)
