"""Distributed-MVEE overhead sweeps (repro.dist; DESIGN.md §8).

The dMVX argument, reproduced: naive ("full") replication ships every
syscall result from the leader to the followers and pays a per-frame
tax plus wire volume proportional to total syscall traffic; *selective*
replication ships only what followers cannot reproduce locally
(external socket I/O and the leader's clock), collapsing both. These
sweeps quantify that across link latency, batch size, and relaxation
level, plus what a node crash costs end-to-end.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from repro.baselines.native import run_native
from repro.bench.reporting import Table
from repro.core import DegradationPolicy, Level, ReMonConfig
from repro.dist import (
    DistConfig,
    DistMvee,
    SelectiveReplication,
    full_replication,
    selective_replication,
)
from repro.faults import (
    CrashFault,
    FaultInjector,
    FaultPlan,
    LinkDegradeFault,
    ShardOwnerCrashFault,
)
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

MAX_STEPS = 400_000_000

#: Link latencies swept by the headline comparison: same-rack, same-DC,
#: and cross-site-ish.
LATENCIES_NS: Tuple[int, ...] = (50_000, 200_000, 1_000_000)


def smoke() -> bool:
    """CI smoke mode (REPRO_BENCH_SMOKE=1): shorter workloads, fewer
    sweep points — same assertions, minutes less wall time."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def sweep_latencies() -> Tuple[int, ...]:
    return LATENCIES_NS[:2] if smoke() else LATENCIES_NS


def _ms(native_ms: float) -> float:
    return native_ms * (0.5 if smoke() else 1.0)


def _workload(name: str = "dist", rate: float = 260_000.0,
              native_ms: float = 4.0) -> SyntheticWorkload:
    """A server-ish mix: mostly reproducible file/base traffic with a
    socket component only the leader may touch."""
    return SyntheticWorkload(
        name=name,
        native_ms=_ms(native_ms),
        mix=CategoryMix(
            {
                "base": rate * 0.25,
                "file_ro": rate * 0.45,
                "sock_ro": rate * 0.1,
                "sock_rw": rate * 0.1,
                "mgmt": rate * 0.1,
            }
        ),
        threads=2,
    )


def _native_ns(workload: SyntheticWorkload) -> int:
    return run_native(build_program(workload)).wall_time_ns


def _run(workload: SyntheticWorkload, *, nodes: int = 3,
         level: Level = Level.SOCKET_RW,
         replication: Optional[SelectiveReplication] = None,
         latency_ns: int = 200_000, batch_bytes: int = 4096,
         plan: Optional[FaultPlan] = None,
         degradation: Optional[DegradationPolicy] = None,
         shard: bool = False, rendezvous_shards: Optional[int] = None,
         compress: Optional[str] = None, heterogeneous: bool = False):
    dist = DistConfig(
        link_latency_ns=latency_ns,
        batch_bytes=batch_bytes,
        replication=replication or selective_replication(),
        shard_rendezvous=shard,
        rendezvous_shards=rendezvous_shards,
        compress=compress,
        heterogeneous=heterogeneous,
    )
    config = ReMonConfig(replicas=nodes, level=level, degradation=degradation,
                         dist=dist)
    mvee = DistMvee(build_program(workload), config)
    if plan is not None:
        mvee.attach_faults(FaultInjector(plan))
    return mvee.run(max_steps=MAX_STEPS)


# ---------------------------------------------------------------------------
# 1. Selective vs full replication across link latency
# ---------------------------------------------------------------------------
def selective_vs_full(latencies_ns: Optional[Tuple[int, ...]] = None,
                      nodes: int = 3) -> List[Dict]:
    """The dMVX headline: at every link latency, selective replication
    moves fewer bytes AND finishes faster than full replication."""
    workload = _workload("sel-vs-full")
    native_ns = _native_ns(workload)
    rows = []
    for latency_ns in latencies_ns or sweep_latencies():
        for policy in (selective_replication(), full_replication()):
            result = _run(workload, nodes=nodes, replication=policy,
                          latency_ns=latency_ns)
            assert not result.diverged, result.divergence
            rows.append(
                {
                    "latency_ns": latency_ns,
                    "policy": policy.name,
                    "overhead": result.wall_time_ns / max(1, native_ns),
                    "wall_time_ns": result.wall_time_ns,
                    "rounds": result.stats["dist_rendezvous_completed"],
                    "wire_bytes": result.stats["dist_wire_bytes"],
                    "messages": result.stats["dist_messages"],
                    "replicated": result.stats["dist_replicated_calls"],
                    "local": result.stats["dist_local_calls"],
                }
            )
    return rows


# ---------------------------------------------------------------------------
# 2. Transfer-unit (batch) size sweep
# ---------------------------------------------------------------------------
def batching_sweep(batch_sizes=(512, 4096, 16384),
                   latency_ns: int = 200_000) -> List[Dict]:
    """Bigger transfer units coalesce more frames per message, cutting
    the per-message cost the leader pays for replication."""
    workload = _workload("batching")
    native_ns = _native_ns(workload)
    rows = []
    for batch_bytes in batch_sizes:
        result = _run(workload, batch_bytes=batch_bytes, latency_ns=latency_ns)
        assert not result.diverged, result.divergence
        rows.append(
            {
                "batch_bytes": batch_bytes,
                "messages": result.stats["dist_messages"],
                "frames": result.stats["dist_frames"],
                "frames_per_msg": result.stats["dist_frames"]
                / max(1, result.stats["dist_messages"]),
                "wall_time_ns": result.wall_time_ns,
                "rounds": result.stats["dist_rendezvous_completed"],
                "wire_bytes": result.stats["dist_wire_bytes"],
                "overhead": result.wall_time_ns / max(1, native_ns),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# 3. Relaxation level sweep
# ---------------------------------------------------------------------------
def relaxation_sweep(levels=(Level.NO_IPMON, Level.BASE, Level.NONSOCKET_RW,
                             Level.SOCKET_RW),
                     latency_ns: int = 200_000) -> List[Dict]:
    """Cross-node lockstep is brutally expensive (two link round trips
    per monitored call), so relaxation pays off far more than it does on
    one machine: each level shifts calls from rendezvous to the local or
    replicated lanes."""
    workload = _workload("relax")
    native_ns = _native_ns(workload)
    rows = []
    for level in levels:
        result = _run(workload, level=level, latency_ns=latency_ns)
        assert not result.diverged, result.divergence
        rows.append(
            {
                "level": level.name,
                "rendezvous": result.stats["dist_rendezvous_calls"],
                "local": result.stats["dist_local_calls"],
                "replicated": result.stats["dist_replicated_calls"],
                "round_trips": result.stats["dist_round_trips"],
                "wall_time_ns": result.wall_time_ns,
                "rounds": result.stats["dist_rendezvous_completed"],
                "wire_bytes": result.stats["dist_wire_bytes"],
                "overhead": result.wall_time_ns / max(1, native_ns),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# 4. Node-crash failover
# ---------------------------------------------------------------------------
def failover_rows(latency_ns: int = 200_000) -> List[Dict]:
    """A 3-node cluster under PR-1 fault injection: follower and leader
    crashes are absorbed (quarantine, promotion) and the run completes
    on the surviving nodes."""
    workload = SyntheticWorkload(
        name="dist-failover",
        native_ms=4.0,
        mix=CategoryMix({"base": 120_000, "file_ro": 120_000, "mgmt": 20_000}),
        threads=2,
    )
    native_ns = _native_ns(workload)
    policy = DegradationPolicy(min_quorum=2)
    scenarios = [
        ("fault-free", None),
        ("follower crash", FaultPlan([CrashFault(replica=2, at_ns=1_000_000)])),
        ("leader crash", FaultPlan([CrashFault(replica=0, at_ns=1_000_000)])),
    ]
    rows = []
    for name, plan in scenarios:
        result = _run(workload, level=Level.NONSOCKET_RW, plan=plan,
                      degradation=policy, latency_ns=latency_ns)
        rows.append(
            {
                "scenario": name,
                "outcome": "diverged" if result.diverged else "completed",
                "quarantined": len(result.quarantined_replicas),
                "promotions": result.stats["master_promotions"],
                "wall_time_ns": result.wall_time_ns,
                "rounds": result.stats["dist_rendezvous_completed"],
                "wire_bytes": result.stats["dist_wire_bytes"],
                "overhead": result.wall_time_ns / max(1, native_ns),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# 5. Sharded rendezvous: per-round serialization vs shard count
# ---------------------------------------------------------------------------
def shard_sweep(shard_counts: Tuple[int, ...] = (1, 2, 4), nodes: int = 4,
                threads: int = 8, latency_ns: int = 50_000) -> List[Dict]:
    """Many-threaded full lockstep against the single-owner monitor vs
    hashed shard ownership: the owner's monitor is a serial resource
    (``dist_monitor_round_ns`` per round), so concentrating every round
    on one node queues them — ``monitor_wait_ns`` is exactly that queue
    time, and ``rounds_owner_max`` the hottest node's share."""
    rate = 900_000.0
    workload = SyntheticWorkload(
        name="shards",
        native_ms=_ms(2.0),
        mix=CategoryMix(
            {"base": rate * 0.55, "file_ro": rate * 0.25, "mgmt": rate * 0.2}
        ),
        threads=threads,
    )
    native_ns = _native_ns(workload)
    rows = []
    for count in shard_counts:
        result = _run(
            workload, nodes=nodes, level=Level.NO_IPMON, latency_ns=latency_ns,
            shard=count > 1, rendezvous_shards=count if count > 1 else None,
        )
        assert not result.diverged, result.divergence
        stats = result.stats
        rounds = stats["dist_rendezvous_completed"]
        rows.append(
            {
                "shards": stats["dist_shards"],
                "monitor_wait_ns": stats["dist_monitor_wait_ns"],
                "wait_per_round_ns": stats["dist_monitor_wait_ns"]
                / max(1, rounds),
                "rounds": rounds,
                "rounds_owner_max": stats["dist_rounds_owner_max"],
                "round_trips": stats["dist_round_trips"],
                "wall_time_ns": result.wall_time_ns,
                "wire_bytes": stats["dist_wire_bytes"],
                "overhead": result.wall_time_ns / max(1, native_ns),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# 6. RB mirror compression: wire bytes vs codec CPU across link latency
# ---------------------------------------------------------------------------
def compression_sweep(latencies_ns: Optional[Tuple[int, ...]] = None,
                      codecs: Tuple[Optional[str], ...] = (None, "rle", "dict"),
                      nodes: int = 3) -> List[Dict]:
    """A replicated-read-heavy server: most traffic is leader->follower
    result mirrors full of repeated socket reads. Each codec trades
    leader/follower CPU (``dist_compress_*`` costs) for wire volume;
    the sweep records both sides of that trade at every link latency."""
    rate = 260_000.0
    workload = SyntheticWorkload(
        name="mirror-codec",
        native_ms=_ms(4.0),
        mix=CategoryMix(
            {
                "base": rate * 0.2,
                "sock_ro": rate * 0.5,
                "sock_rw": rate * 0.2,
                "mgmt": rate * 0.1,
            }
        ),
        threads=2,
    )
    native_ns = _native_ns(workload)
    rows = []
    for latency_ns in latencies_ns or sweep_latencies():
        for codec in codecs:
            result = _run(workload, nodes=nodes, latency_ns=latency_ns,
                          compress=codec)
            assert not result.diverged, result.divergence
            stats = result.stats
            rows.append(
                {
                    "latency_ns": latency_ns,
                    "codec": codec or "raw",
                    "wire_bytes": stats["dist_wire_bytes"],
                    "payload_raw_bytes": stats["dist_payload_raw_bytes"],
                    "payload_coded_bytes": stats["dist_payload_coded_bytes"],
                    "frames_raw": stats["dist_codec_raw"],
                    "frames_rle": stats["dist_codec_rle"],
                    "frames_dict": stats["dist_codec_dict"],
                    "wire_errors": stats["dist_wire_errors"],
                    "wall_time_ns": result.wall_time_ns,
                    "rounds": stats["dist_rendezvous_completed"],
                    "overhead": result.wall_time_ns / max(1, native_ns),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# 7. The whole fast path vs the PR-2 baseline
# ---------------------------------------------------------------------------
def fast_path_rows(latencies_ns: Optional[Tuple[int, ...]] = None,
                   nodes: int = 3) -> List[Dict]:
    """Sharded rendezvous + dict-coded mirrors against the stock
    configuration, same workload, same correctness: the fast path must
    win on wire bytes everywhere and hold serialization down, while
    exit codes and round counts stay identical."""
    rate = 300_000.0
    workload = SyntheticWorkload(
        name="fast-path",
        native_ms=_ms(3.0),
        mix=CategoryMix(
            {
                "base": rate * 0.2,
                "file_ro": rate * 0.2,
                "sock_ro": rate * 0.3,
                "sock_rw": rate * 0.1,
                "mgmt": rate * 0.2,
            }
        ),
        threads=6,
    )
    native_ns = _native_ns(workload)
    rows = []
    for latency_ns in latencies_ns or sweep_latencies():
        for label, kwargs in (
            ("baseline", {}),
            ("fast-path", {"shard": True, "compress": "dict"}),
        ):
            result = _run(workload, nodes=nodes, latency_ns=latency_ns,
                          **kwargs)
            assert not result.diverged, result.divergence
            stats = result.stats
            rows.append(
                {
                    "latency_ns": latency_ns,
                    "config": label,
                    "wire_bytes": stats["dist_wire_bytes"],
                    "monitor_wait_ns": stats["dist_monitor_wait_ns"],
                    "rounds": stats["dist_rendezvous_completed"],
                    "rounds_owner_max": stats["dist_rounds_owner_max"],
                    "wire_errors": stats["dist_wire_errors"],
                    "exit_codes": list(result.exit_codes),
                    "wall_time_ns": result.wall_time_ns,
                    "overhead": result.wall_time_ns / max(1, native_ns),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# 8. Shard-owner recovery: what an epoch handoff costs
# ---------------------------------------------------------------------------
def recovery_sweep(latencies_ns: Optional[Tuple[int, ...]] = None,
                   nodes: int = 4, threads: int = 8) -> List[Dict]:
    """Crash cost under sharded rendezvous, by who dies.

    A shard *owner* crash loses that shard's open rounds (waiting
    threads re-collect them with ``T_ROUND_RESUBMIT``) and remaps its
    key range; surviving remapped rounds ship as ``T_SHARD_HANDOFF``
    state frames — every adopted/rebuilt round is billed
    ``dist_handoff_ns`` on the new owner's serial timeline and the
    transfer bytes land on the wire. Crashing a non-owner follower
    bumps the epoch but moves no state (zero handoff cost); a leader
    crash additionally pays promotion. The fault-free row keeps the
    epoch at zero and must expose no handoff stats at all.
    """
    rate = 900_000.0
    workload = SyntheticWorkload(
        name="recovery",
        native_ms=_ms(2.0),
        mix=CategoryMix(
            {"base": rate * 0.55, "file_ro": rate * 0.25, "mgmt": rate * 0.2}
        ),
        threads=threads,
    )
    native_ns = _native_ns(workload)
    policy = DegradationPolicy(min_quorum=2)
    scenarios = [
        ("fault-free", None),
        ("owner crash", FaultPlan([ShardOwnerCrashFault(at_ns=2_000_000)])),
        ("follower crash",
         FaultPlan([CrashFault(replica=nodes - 1, at_ns=2_000_000)])),
        ("leader crash", FaultPlan([CrashFault(replica=0, at_ns=2_000_000)])),
    ]
    rows = []
    for latency_ns in latencies_ns or sweep_latencies():
        for name, plan in scenarios:
            result = _run(
                workload, nodes=nodes, level=Level.NO_IPMON,
                latency_ns=latency_ns, shard=True, rendezvous_shards=2,
                plan=plan, degradation=policy,
            )
            assert not result.diverged, result.divergence
            stats = result.stats
            rows.append(
                {
                    "latency_ns": latency_ns,
                    "scenario": name,
                    "epoch": stats.get("dist_epoch", 0),
                    "handoff_rounds": stats.get("dist_handoff_rounds", 0),
                    "lost_rounds": stats.get("dist_handoff_lost_rounds", 0),
                    "resubmits": stats.get("dist_round_resubmits", 0),
                    "handoff_cost_ns": stats.get("dist_handoff_cost_ns", 0),
                    "bytes_handoff": stats.get("dist_bytes_handoff", 0),
                    "stale_drops": stats.get("dist_stale_drops", 0),
                    "quarantined": len(result.quarantined_replicas),
                    "promotions": result.stats["master_promotions"],
                    "wall_time_ns": result.wall_time_ns,
                    "overhead": result.wall_time_ns / max(1, native_ns),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# 9. Heterogeneous per-node diversity: what canonicalization costs
# ---------------------------------------------------------------------------
def hetero_sweep(latencies_ns: Optional[Tuple[int, ...]] = None,
                 nodes: int = 3) -> List[Dict]:
    """Per-node diversity profiles against the homogeneous baseline,
    same workload, same seed (DESIGN.md §13). Heterogeneous nodes with
    a non-canonical guest ABI re-encode every compared call to the
    canonical form before hashing; the sweep prices that rewrite
    (``dist_canonical_cost_ns`` against total wall time, reported as
    ``canonical_pct`` of the rendezvous path) and proves the digest
    behaviour is unchanged: rendezvous round counts and exit codes
    must match the homogeneous rows exactly."""
    workload = _workload("hetero")
    native_ns = _native_ns(workload)
    rows = []
    for latency_ns in latencies_ns or sweep_latencies():
        for label, hetero in (("homogeneous", False), ("heterogeneous", True)):
            result = _run(workload, nodes=nodes, latency_ns=latency_ns,
                          heterogeneous=hetero)
            assert not result.diverged, result.divergence
            stats = result.stats
            canonical_ns = stats.get("dist_canonical_cost_ns", 0)
            rows.append(
                {
                    "latency_ns": latency_ns,
                    "profile": label,
                    "overhead": result.wall_time_ns / max(1, native_ns),
                    "wall_time_ns": result.wall_time_ns,
                    "exit_codes": list(result.exit_codes),
                    "rounds": stats["dist_rendezvous_completed"],
                    "rendezvous": stats["dist_rendezvous_calls"],
                    "wire_bytes": stats["dist_wire_bytes"],
                    "canonical_calls": stats.get("dist_canonical_calls", 0),
                    "canonical_cost_ns": canonical_ns,
                    "canonical_pct": 100.0 * canonical_ns
                    / max(1, result.wall_time_ns),
                    "abi_variants": stats.get("dist_abi_variants", 1),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# 10. WAN links: what packet loss costs, and what a breaker trip costs
# ---------------------------------------------------------------------------
WAN_LOSS_RATES: Tuple[float, ...] = (0.0, 0.01, 0.02, 0.05)


def wan_loss_rates() -> Tuple[float, ...]:
    return (0.0, 0.02) if smoke() else WAN_LOSS_RATES


def _wan_workload(name: str = "wan") -> SyntheticWorkload:
    rate = 260_000.0
    return SyntheticWorkload(
        name=name,
        native_ms=_ms(4.0),
        mix=CategoryMix(
            {
                "base": rate * 0.25,
                "file_ro": rate * 0.45,
                "sock_ro": rate * 0.1,
                "sock_rw": rate * 0.1,
                "mgmt": rate * 0.1,
            }
        ),
        threads=2,
    )


def _run_wan(workload: SyntheticWorkload, *, loss_prob: float = 0.0,
             replication: Optional[SelectiveReplication] = None,
             latency_ns: int = 200_000,
             plan: Optional[FaultPlan] = None,
             degradation: Optional[DegradationPolicy] = None):
    dist = DistConfig(
        link_latency_ns=latency_ns,
        replication=replication or selective_replication(),
        link_loss_prob=loss_prob,
    )
    config = ReMonConfig(replicas=3, level=Level.SOCKET_RW,
                         degradation=degradation or DegradationPolicy(min_quorum=2),
                         dist=dist)
    mvee = DistMvee(build_program(workload), config)
    if plan is not None:
        mvee.attach_faults(FaultInjector(plan))
    return mvee.run(max_steps=MAX_STEPS)


def wan_sweep(loss_rates: Optional[Tuple[float, ...]] = None) -> List[Dict]:
    """Reliable-transport overhead across link loss rates, for both
    replication policies. A lossy link forces every batch through the
    seq/ack window: the run completes with exit codes intact (the
    retransmit layer hides the loss from the protocol), and pays for it
    in retransmitted bytes, ack traffic, and stretched wall time. The
    zero-loss rows keep the legacy unsequenced path — no retransmit or
    ack stat may appear there at all."""
    workload = _wan_workload()
    native_ns = _native_ns(workload)
    rows = []
    for loss in loss_rates or wan_loss_rates():
        for policy in (selective_replication(), full_replication()):
            result = _run_wan(workload, loss_prob=loss, replication=policy)
            assert not result.diverged, result.divergence
            stats = result.stats
            rows.append(
                {
                    "loss_prob": loss,
                    "policy": policy.name,
                    "overhead": result.wall_time_ns / max(1, native_ns),
                    "wall_time_ns": result.wall_time_ns,
                    "exit_codes": list(result.exit_codes),
                    "wire_bytes": stats["dist_wire_bytes"],
                    "retransmits": stats.get("dist_retransmits", 0),
                    "retransmit_bytes": stats.get("dist_retransmit_bytes", 0),
                    "acks_sent": stats.get("dist_acks_sent", 0),
                    "segments_lost": stats.get("net_segments_lost", 0),
                    "breaker_opens": stats.get("dist_breaker_opens", 0),
                    "rounds": stats["dist_rendezvous_completed"],
                }
            )
    return rows


def wan_breaker_rows(latency_ns: int = 200_000) -> List[Dict]:
    """Recovery latency for a blackholed leader link: the circuit
    breaker trips, the far follower drops to leader-replicated-only
    membership, and the half-open probe rejoins it once the fault
    window ends — against a fault-free run of the same workload."""
    workload = _wan_workload("wan-breaker")
    native_ns = _native_ns(workload)
    scenarios = [
        ("fault-free", None),
        ("leader link blackhole",
         FaultPlan([LinkDegradeFault(at_ns=2_000_000, src=0, dst=2,
                                     duration_ns=20_000_000, loss_prob=1.0)])),
    ]
    rows = []
    for name, plan in scenarios:
        result = _run_wan(workload, latency_ns=latency_ns, plan=plan)
        assert not result.diverged, result.divergence
        stats = result.stats
        rows.append(
            {
                "scenario": name,
                "outcome": "diverged" if result.diverged else "completed",
                "exit_codes": list(result.exit_codes),
                "breaker_opens": stats.get("dist_breaker_opens", 0),
                "breaker_closes": stats.get("dist_breaker_closes", 0),
                "probes": stats.get("dist_probes_sent", 0),
                "degrades": stats.get("dist_link_degrades", 0),
                "restores": stats.get("dist_link_restores", 0),
                "retransmits": stats.get("dist_retransmits", 0),
                "quarantined": len(result.quarantined_replicas),
                "wall_time_ns": result.wall_time_ns,
                "overhead": result.wall_time_ns / max(1, native_ns),
            }
        )
    return rows


# ---------------------------------------------------------------------------
def render_all() -> str:
    out = []

    table = Table(
        "dMVX selective vs full replication (3 nodes, SOCKET_RW)",
        ["latency", "policy", "overhead", "wire KiB", "messages",
         "replicated", "local"],
    )
    for row in selective_vs_full():
        table.add(
            "%d us" % (row["latency_ns"] // 1000),
            row["policy"],
            "%.2fx" % row["overhead"],
            "%.1f" % (row["wire_bytes"] / 1024),
            row["messages"],
            row["replicated"],
            row["local"],
        )
    out.append(table.render())

    table = Table(
        "Transfer-unit size sweep (200 us links)",
        ["batch", "messages", "frames", "frames/msg", "overhead"],
    )
    for row in batching_sweep():
        table.add(row["batch_bytes"], row["messages"], row["frames"],
                  "%.1f" % row["frames_per_msg"], "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Relaxation across nodes (200 us links)",
        ["level", "rendezvous", "local", "replicated", "round trips",
         "overhead"],
    )
    for row in relaxation_sweep():
        table.add(row["level"], row["rendezvous"], row["local"],
                  row["replicated"], row["round_trips"],
                  "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Node-crash failover (3 nodes, min_quorum=2)",
        ["scenario", "outcome", "quarantined", "promotions", "overhead"],
    )
    for row in failover_rows():
        table.add(row["scenario"], row["outcome"], row["quarantined"],
                  row["promotions"], "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Sharded rendezvous (4 nodes, 8 threads, NO_IPMON, 50 us links)",
        ["shards", "wait us", "wait/round", "owner max", "rounds",
         "overhead"],
    )
    for row in shard_sweep():
        table.add(row["shards"],
                  "%.1f" % (row["monitor_wait_ns"] / 1000),
                  "%d ns" % row["wait_per_round_ns"],
                  row["rounds_owner_max"], row["rounds"],
                  "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "RB mirror compression (3 nodes, replicated-read-heavy)",
        ["latency", "codec", "wire KiB", "payload KiB", "coded KiB",
         "overhead"],
    )
    for row in compression_sweep():
        table.add("%d us" % (row["latency_ns"] // 1000), row["codec"],
                  "%.1f" % (row["wire_bytes"] / 1024),
                  "%.1f" % (row["payload_raw_bytes"] / 1024),
                  "%.1f" % (row["payload_coded_bytes"] / 1024),
                  "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Fast path vs baseline (3 nodes, 6 threads)",
        ["latency", "config", "wire KiB", "wait us", "owner max",
         "overhead"],
    )
    for row in fast_path_rows():
        table.add("%d us" % (row["latency_ns"] // 1000), row["config"],
                  "%.1f" % (row["wire_bytes"] / 1024),
                  "%.1f" % (row["monitor_wait_ns"] / 1000),
                  row["rounds_owner_max"], "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Shard-owner recovery (4 nodes, 2 shards, min_quorum=2)",
        ["latency", "scenario", "lost", "resubmits", "transfers",
         "handoff us", "overhead"],
    )
    for row in recovery_sweep():
        table.add("%d us" % (row["latency_ns"] // 1000), row["scenario"],
                  row["lost_rounds"], row["resubmits"], row["handoff_rounds"],
                  "%.1f" % (row["handoff_cost_ns"] / 1000),
                  "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Heterogeneous diversity profiles (3 nodes, SOCKET_RW)",
        ["latency", "profile", "rounds", "canonical calls", "canonical us",
         "canonical %", "overhead"],
    )
    for row in hetero_sweep():
        table.add("%d us" % (row["latency_ns"] // 1000), row["profile"],
                  row["rounds"], row["canonical_calls"],
                  "%.1f" % (row["canonical_cost_ns"] / 1000),
                  "%.2f%%" % row["canonical_pct"],
                  "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "WAN loss sweep (3 nodes, SOCKET_RW, 200 us links)",
        ["loss", "policy", "retransmits", "retx KiB", "acks", "overhead"],
    )
    for row in wan_sweep():
        table.add("%.0f%%" % (row["loss_prob"] * 100), row["policy"],
                  row["retransmits"],
                  "%.1f" % (row["retransmit_bytes"] / 1024),
                  row["acks_sent"], "%.2fx" % row["overhead"])
    out.append(table.render())

    table = Table(
        "Link-breaker recovery (leader link blackholed 20 ms)",
        ["scenario", "opens", "closes", "degrades", "restores",
         "quarantined", "overhead"],
    )
    for row in wan_breaker_rows():
        table.add(row["scenario"], row["breaker_opens"],
                  row["breaker_closes"], row["degrades"], row["restores"],
                  row["quarantined"], "%.2fx" % row["overhead"])
    out.append(table.render())

    return "\n\n".join(out)
