"""Shared benchmark machinery."""

from __future__ import annotations

import os
from dataclasses import replace
from functools import lru_cache
from typing import Dict, Optional

from repro.baselines.native import run_native
from repro.core import Level, ReMon, ReMonConfig
from repro.guest import GuestRuntime
from repro.kernel import Kernel, KernelConfig
from repro.workloads.calibrate import calibrate
from repro.workloads.profiles import PaperBenchmark, derive_workload
from repro.workloads.synthetic import build_program

MAX_STEPS = 400_000_000


def bench_scale() -> float:
    """Workload scale factor from REPRO_BENCH_SCALE (default 1.0)."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def _scaled(workload):
    scale = bench_scale()
    if scale == 1.0:
        return workload
    return replace(workload, native_ms=max(2.0, workload.native_ms * scale))


@lru_cache(maxsize=512)
def measure_mvee_overhead(
    bench_name: str,
    level: Level,
    replicas: int = 2,
    _suite_key: str = "",
    obs=None,
) -> float:
    """Normalized execution time of one suite benchmark at one level.

    Cached per (benchmark, level, replicas, obs); the PaperBenchmark is
    resolved by name from the registered suites. ``obs`` is an optional
    (frozen, hashable) :class:`repro.obs.ObsConfig`.
    """
    bench = _find_bench(bench_name)
    workload = _scaled(derive_workload(bench, calibrate()))
    program = build_program(workload)
    native = run_native(program)
    kernel = Kernel()
    mvee = ReMon(
        kernel,
        build_program(workload),
        ReMonConfig(replicas=replicas, level=level, obs=obs),
    )
    result = mvee.run(max_steps=MAX_STEPS)
    if result.diverged:
        raise AssertionError(
            "benchmark %s diverged under %s: %r"
            % (bench_name, level.name, result.divergence)
        )
    return result.wall_time_ns / max(1, native.wall_time_ns)


def timed_exhibit_run(level: Level = Level.NONSOCKET_RW, replicas: int = 2) -> float:
    """A small, fresh, uncached MVEE run for pytest-benchmark timing:
    measures how fast this simulator executes a representative
    monitored+unmonitored workload (host seconds, not virtual)."""
    from repro.workloads.synthetic import CategoryMix, SyntheticWorkload

    workload = SyntheticWorkload(
        name="exhibit",
        native_ms=4.0,
        mix=CategoryMix({"base": 20_000, "file_ro": 30_000, "mgmt": 2_000}),
        threads=2,
    )
    program = build_program(workload)
    kernel = Kernel()
    mvee = ReMon(kernel, program, ReMonConfig(replicas=replicas, level=level))
    result = mvee.run(max_steps=MAX_STEPS)
    assert not result.diverged
    return result.wall_time_ns


def _find_bench(name: str) -> PaperBenchmark:
    from repro.workloads.profiles import (
        PARSEC_BENCHMARKS,
        PHORONIX_BENCHMARKS,
        SPLASH_BENCHMARKS,
    )

    for bench in PARSEC_BENCHMARKS + SPLASH_BENCHMARKS + PHORONIX_BENCHMARKS:
        if bench.name == name:
            return bench
    raise KeyError(name)


# ---------------------------------------------------------------------------
# Server benchmarks
# ---------------------------------------------------------------------------
def native_server_runner(kernel, program):
    program.install_files(kernel)
    process = kernel.create_process(program.name)
    GuestRuntime(kernel, process, program).start()
    return process


def remon_server_runner(level: Level, replicas: int):
    def run(kernel, program):
        mvee = ReMon(kernel, program, ReMonConfig(replicas=replicas, level=level))
        mvee.start()
        return mvee

    return run


def varan_server_runner(replicas: int = 2):
    from repro.baselines.varan import Varan, VaranConfig

    def run(kernel, program):
        varan = Varan(kernel, program, VaranConfig(replicas=replicas))
        for runtime in varan._runtimes:
            runtime.start()
        return varan

    return run


class _DistHandle:
    """Topology handle a distributed runner returns to
    :func:`repro.workloads.clients.run_server_benchmark`."""

    def __init__(self, mvee):
        self.mvee = mvee
        self.client_kernel = Kernel(
            sim=mvee.sim,
            network=mvee.network,
            config=KernelConfig(cores=8),
        )
        self.server_ip = mvee.nodes[mvee.leader_index].host_ip
        self.finalize = mvee.finalize


def dist_server_runner(
    replicas: int = 2,
    link_latency_ns: int = 20_000,
    replication: str = "selective",
):
    """Server runner backed by a :class:`repro.dist.cluster.DistMvee`
    cluster in external-service mode: the server replicates across
    ``replicas`` nodes, the client process lives on its own host on the
    cluster switch, and only the leader accepts its connections. Works
    for every §5.2 profile with no per-profile glue.
    """
    from repro.dist.cluster import DistConfig, DistMvee
    from repro.dist.selective import fleet_replication

    def run(kernel, program):
        dconfig = DistConfig(
            external_service=True,
            link_latency_ns=link_latency_ns,
            replication=fleet_replication(full=replication == "full"),
        )
        mvee = DistMvee(
            program,
            ReMonConfig(replicas=replicas, level=Level.SOCKET_RW, dist=dconfig),
        )
        mvee.start()
        return _DistHandle(mvee)

    return run


@lru_cache(maxsize=512)
def measure_server_overhead(
    server_name: str,
    latency_ns: int,
    mode: str,  # "native" | "remon" | "ghumvee" | "varan" | "dist" | "dist-full"
    replicas: int = 2,
    requests: Optional[int] = None,
    concurrency: int = 8,
) -> Dict[str, float]:
    """Run one server benchmark configuration; returns duration and
    request accounting."""
    from repro.workloads.clients import ClientSpec, run_server_benchmark
    from repro.workloads.servers import SERVERS

    spec = SERVERS[server_name]
    tool = "wrk" if ("wrk" in server_name or spec.response_bytes <= 256) else "ab"
    if "http_load" in server_name:
        tool = "http_load"
    total = requests if requests is not None else int(120 * bench_scale())
    total = max(24, total)
    client_spec = ClientSpec(tool=tool, concurrency=concurrency, total_requests=total)
    kernel = Kernel(config=KernelConfig(network_latency_ns=latency_ns))
    if mode == "native":
        runner = native_server_runner
    elif mode == "remon":
        runner = remon_server_runner(Level.SOCKET_RW, replicas)
    elif mode == "ghumvee":
        runner = remon_server_runner(Level.NO_IPMON, replicas)
    elif mode == "varan":
        runner = varan_server_runner(replicas)
    elif mode in ("dist", "dist-full"):
        runner = dist_server_runner(
            replicas=replicas,
            link_latency_ns=latency_ns,
            replication="full" if mode == "dist-full" else "selective",
        )
    else:
        raise ValueError(mode)
    result = run_server_benchmark(kernel, spec.program(), client_spec, spec.port, runner)
    if result.completed < total:
        raise AssertionError(
            "%s/%s completed only %d/%d requests (errors=%d)"
            % (server_name, mode, result.completed, total, result.errors)
        )
    return {
        "duration_ns": float(result.duration_ns),
        "completed": float(result.completed),
        "errors": float(result.errors),
        "rps": result.throughput_rps(),
        "p50_ns": float(result.latency_percentile(50)),
        "p99_ns": float(result.latency_percentile(99)),
    }
