"""Figure 4: Phoronix across all five spatial relaxation levels."""

from __future__ import annotations

from typing import Dict, List

from repro.bench.harness import measure_mvee_overhead
from repro.bench.reporting import Table, geomean
from repro.core.policies import Level
from repro.workloads.profiles import PHORONIX_BENCHMARKS, PHORONIX_GEOMEAN_TARGETS

LEVELS: List[Level] = [
    Level.NO_IPMON,
    Level.BASE,
    Level.NONSOCKET_RO,
    Level.NONSOCKET_RW,
    Level.SOCKET_RO,
    Level.SOCKET_RW,
]


def generate() -> Dict:
    rows = []
    for bench in PHORONIX_BENCHMARKS:
        measured = {
            level: measure_mvee_overhead(bench.name, level) for level in LEVELS
        }
        rows.append({"name": bench.name, "paper": dict(bench.targets), "measured": measured})
    data = {"rows": rows}
    data["geomean_paper"] = {
        Level.NO_IPMON: PHORONIX_GEOMEAN_TARGETS["no_ipmon"],
        Level.SOCKET_RW: PHORONIX_GEOMEAN_TARGETS["socket_rw"],
    }
    data["geomean_measured"] = {
        level: geomean([r["measured"][level] for r in rows]) for level in LEVELS
    }
    return data


def render(data: Dict) -> str:
    table = Table(
        "Figure 4 (Phoronix): normalized execution time per relaxation level "
        "(2 replicas; 'paper' in parentheses)",
        ["benchmark"] + [level.name for level in LEVELS],
    )
    for row in data["rows"]:
        cells = [row["name"]]
        for level in LEVELS:
            cell = "%.2f (%.2f)" % (row["measured"][level], row["paper"][level])
            cells.append(cell)
        table.add(*cells)
    gm = ["GEOMEAN"]
    for level in LEVELS:
        measured = data["geomean_measured"][level]
        paper = data["geomean_paper"].get(level)
        gm.append("%.2f (%s)" % (measured, "%.2f" % paper if paper else "-"))
    table.add(*gm)
    return table.render()
