"""Ablation studies of ReMon's design choices (DESIGN.md §6).

1. **RB size sweep** — the linear RB bounds the master's run-ahead;
   smaller buffers mean more GHUMVEE-arbitrated resets (§3.2).
2. **Machine sweep** — the CP/IP cost gap as context-switch/TLB costs
   vary (the motivation of the whole design: Figure 1).
3. **Replica-count sweep** — compute-bound scaling (memory pressure)
   versus syscall-bound scaling.
4. **Slave waiting strategy** — spin versus futex condition variables
   for slave result waits (§3.7).
"""

from __future__ import annotations

from typing import Dict, List

from repro.baselines.native import run_native
from repro.bench.reporting import Table
from repro.core import Level, ReMon, ReMonConfig
from repro.costs.model import MACHINES
from repro.kernel import Kernel, KernelConfig
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program


def _hot_workload(name: str = "ablate", rate: float = 60_000.0) -> SyntheticWorkload:
    return SyntheticWorkload(
        name=name,
        native_ms=30.0,
        mix=CategoryMix({"base": rate * 0.3, "file_ro": rate * 0.5, "futex": rate * 0.2}),
        threads=2,
    )


def rb_size_sweep(sizes=None) -> List[Dict]:
    sizes = sizes or [1 << 16, 1 << 18, 1 << 20, 16 << 20]
    workload = _hot_workload("rb-sweep")
    native = run_native(build_program(workload))
    rows = []
    for size in sizes:
        kernel = Kernel()
        mvee = ReMon(
            kernel,
            build_program(workload),
            ReMonConfig(replicas=2, level=Level.NONSOCKET_RW, rb_size=size),
        )
        result = mvee.run(max_steps=200_000_000)
        assert not result.diverged, result.divergence
        rows.append(
            {
                "rb_size": size,
                "overhead": result.wall_time_ns / native.wall_time_ns,
                "rb_resets": result.rb_resets,
            }
        )
    return rows


def machine_sweep() -> List[Dict]:
    workload = _hot_workload("machine-sweep")
    rows = []
    for machine, costs in MACHINES.items():
        config = KernelConfig(costs=costs)
        native = run_native(build_program(workload), kernel=Kernel(config=KernelConfig(costs=costs)))
        measured = {}
        for label, level in (("cp", Level.NO_IPMON), ("remon", Level.NONSOCKET_RW)):
            kernel = Kernel(config=KernelConfig(costs=costs))
            mvee = ReMon(
                kernel, build_program(workload), ReMonConfig(replicas=2, level=level)
            )
            result = mvee.run(max_steps=200_000_000)
            assert not result.diverged
            measured[label] = result.wall_time_ns / native.wall_time_ns
        rows.append(
            {
                "machine": machine,
                "cp_overhead": measured["cp"],
                "remon_overhead": measured["remon"],
                "gap": (measured["cp"] - 1) / max(1e-6, measured["remon"] - 1),
            }
        )
        del config
    return rows


def replica_sweep(counts=(2, 3, 4, 5, 6, 7)) -> List[Dict]:
    workload = _hot_workload("replica-sweep", rate=20_000.0)
    native = run_native(build_program(workload))
    rows = []
    for count in counts:
        kernel = Kernel()
        mvee = ReMon(
            kernel,
            build_program(workload),
            ReMonConfig(replicas=count, level=Level.NONSOCKET_RW),
        )
        result = mvee.run(max_steps=400_000_000)
        assert not result.diverged, result.divergence
        rows.append(
            {
                "replicas": count,
                "overhead": result.wall_time_ns / native.wall_time_ns,
            }
        )
    return rows


def _sleepy_program():
    """A workload whose master blocks often (nanosleep), so slaves must
    actually wait for results — the case §3.7's condvars exist for."""
    from repro.guest.program import Program

    def main(ctx):
        libc = ctx.libc
        for _ in range(60):
            yield from libc.nanosleep(150_000)
            for _ in range(5):
                _pid = yield ctx.sys.getpid()
        return 0

    return Program("sleepy", main)


def condvar_strategy_sweep() -> List[Dict]:
    """Compare slave waiting strategies (§3.7): per-invocation futex
    condition variables versus pure spinning. The master's wall time is
    identical; the difference is the slaves' burned CPU (spin
    iterations) versus kernel sleeps (futex waits)."""
    rows = []
    for label, force_spin in (("futex-condvars", False), ("always-spin", True)):
        kernel = Kernel()
        mvee = ReMon(
            kernel,
            _sleepy_program(),
            ReMonConfig(
                replicas=2, level=Level.NONSOCKET_RW, ipmon_force_spin=force_spin
            ),
        )
        result = mvee.run(max_steps=200_000_000)
        assert not result.diverged, result.divergence
        costs = kernel.config.costs
        spin_cpu_ns = result.stats.get("ipmon_spin_iterations", 0) * costs.spin_read_ns
        rows.append(
            {
                "strategy": label,
                "wall_time_ns": result.wall_time_ns,
                "futex_waits": result.stats.get("ipmon_futex_waits", 0),
                "wakes_skipped": result.stats.get("ipmon_futex_wakes_skipped", 0),
                "slave_spin_cpu_ns": spin_cpu_ns,
            }
        )
    return rows


def rb_remap_sweep(intervals=(None, 1_000_000, 200_000, 50_000)) -> List[Dict]:
    """§4 extension: how much does periodically moving the RB cost?"""
    workload = _hot_workload("remap-sweep", rate=30_000.0)
    native = run_native(build_program(workload))
    rows = []
    for interval in intervals:
        kernel = Kernel()
        mvee = ReMon(
            kernel,
            build_program(workload),
            ReMonConfig(
                replicas=2, level=Level.NONSOCKET_RW, rb_remap_interval_ns=interval
            ),
        )
        result = mvee.run(max_steps=200_000_000)
        assert not result.diverged, result.divergence
        rows.append(
            {
                "interval_ns": interval,
                "overhead": result.wall_time_ns / native.wall_time_ns,
                "remaps": result.stats.get("ipmon_rb_remaps", 0),
            }
        )
    return rows


def render_all() -> str:
    out = []
    table = Table("Ablation: RB size vs run-ahead stalls", ["rb size", "overhead", "resets"])
    for row in rb_size_sweep():
        table.add("%d KiB" % (row["rb_size"] // 1024), row["overhead"], row["rb_resets"])
    out.append(table.render())

    table = Table(
        "Ablation: machine context-switch costs",
        ["machine", "GHUMVEE-only", "ReMon", "CP/IP overhead gap"],
    )
    for row in machine_sweep():
        table.add(row["machine"], row["cp_overhead"], row["remon_overhead"],
                  "%.1fx" % row["gap"])
    out.append(table.render())

    table = Table("Ablation: replica count", ["replicas", "overhead"])
    for row in replica_sweep():
        table.add(row["replicas"], row["overhead"])
    out.append(table.render())

    table = Table(
        "Ablation: slave waiting strategy (§3.7)",
        ["strategy", "wall time (ms)", "futex waits", "wakes skipped",
         "slave spin CPU (us)"],
    )
    for row in condvar_strategy_sweep():
        table.add(
            row["strategy"],
            "%.2f" % (row["wall_time_ns"] / 1e6),
            row["futex_waits"],
            row["wakes_skipped"],
            "%.0f" % (row["slave_spin_cpu_ns"] / 1e3),
        )
    out.append(table.render())

    table = Table(
        "Ablation: periodic RB remapping (§4 extension)",
        ["interval", "overhead", "remaps"],
    )
    for row in rb_remap_sweep():
        label = "off" if row["interval_ns"] is None else "%.1f ms" % (
            row["interval_ns"] / 1e6
        )
        table.add(label, row["overhead"], row["remaps"])
    out.append(table.render())
    return "\n".join(out)
