"""Figure 3: PARSEC 2.1 and SPLASH-2x under GHUMVEE alone vs. ReMon
with IP-MON at NONSOCKET_RW_LEVEL (2 replicas)."""

from __future__ import annotations

from typing import Dict

from repro.bench.harness import measure_mvee_overhead
from repro.bench.reporting import Table, geomean
from repro.core.policies import Level
from repro.workloads.profiles import (
    PARSEC_BENCHMARKS,
    PARSEC_GEOMEAN_TARGETS,
    SPLASH_BENCHMARKS,
    SPLASH_GEOMEAN_TARGETS,
)

SUITES = {
    "parsec": (PARSEC_BENCHMARKS, PARSEC_GEOMEAN_TARGETS),
    "splash": (SPLASH_BENCHMARKS, SPLASH_GEOMEAN_TARGETS),
}


def generate(suite: str = "parsec") -> Dict:
    """Run the whole suite; returns per-benchmark and aggregate data."""
    benchmarks, geomean_targets = SUITES[suite]
    rows = []
    for bench in benchmarks:
        no_ipmon = measure_mvee_overhead(bench.name, Level.NO_IPMON)
        ipmon = measure_mvee_overhead(bench.name, Level.NONSOCKET_RW)
        rows.append(
            {
                "name": bench.name,
                "paper_no_ipmon": bench.targets[Level.NO_IPMON],
                "measured_no_ipmon": no_ipmon,
                "paper_ipmon": bench.targets[Level.NONSOCKET_RW],
                "measured_ipmon": ipmon,
            }
        )
    summary = {
        "suite": suite,
        "rows": rows,
        "geomean_paper_no_ipmon": geomean_targets["no_ipmon"],
        "geomean_measured_no_ipmon": geomean(
            [r["measured_no_ipmon"] for r in rows]
        ),
        "geomean_paper_ipmon": geomean_targets["ipmon"],
        "geomean_measured_ipmon": geomean([r["measured_ipmon"] for r in rows]),
    }
    return summary


def render(data: Dict) -> str:
    table = Table(
        "Figure 3 (%s): normalized execution time, 2 replicas" % data["suite"].upper(),
        ["benchmark", "no IP-MON (paper)", "no IP-MON (ours)",
         "IP-MON/NONSOCKET_RW (paper)", "IP-MON/NONSOCKET_RW (ours)"],
    )
    for row in data["rows"]:
        table.add(
            row["name"],
            row["paper_no_ipmon"],
            row["measured_no_ipmon"],
            row["paper_ipmon"],
            row["measured_ipmon"],
        )
    table.add(
        "GEOMEAN",
        data["geomean_paper_no_ipmon"],
        data["geomean_measured_no_ipmon"],
        data["geomean_paper_ipmon"],
        data["geomean_measured_ipmon"],
    )
    return table.render()
