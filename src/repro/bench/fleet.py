"""Fleet offered-load sweeps (repro.fleet; DESIGN.md §10).

The experiment the admission controller exists for: drive a replicated
§5.2 server with rising offered load and watch the tail. Without
admission control the accept backlog absorbs everything past the
saturation knee, so p99 latency is queue wait and grows with offered
load. With a token bucket and a bounded backlog the excess is shed at
SYN time and the tail stays pinned near the knee — goodput costs shed
connections instead of latency. The sweeps below quantify that, compare
the two shed policies, price selective vs full replication for an
externally-driven fleet, and prove the multiplexed client scales to a
five-digit connection count in one process.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.fleet import AdmissionConfig, FleetConfig, run_fleet

#: Inter-SYN gap per sweep step (ns): offered rate is ``1e9 / pace``.
#: The fleet's capacity is set by the accept path — every accept is a
#: globally-ordered rendezvous round trip across the cluster, ~4 krps
#: at 20 us links — so the sweep starts below that knee and crosses it
#: by ~30x.
PACES_NS = (500_000, 120_000, 30_000, 7_500)
SMOKE_PACES_NS = (500_000, 30_000, 7_500)


def smoke() -> bool:
    """CI smoke mode (REPRO_BENCH_SMOKE=1): fewer sweep points and a
    smaller (but still >= 10k) scale row — same assertions."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


def sweep_paces() -> tuple:
    return SMOKE_PACES_NS if smoke() else PACES_NS


def sweep_connections() -> int:
    return 64 if smoke() else 96


def throttled_config() -> AdmissionConfig:
    """The admission setting every sweep uses: a bucket set below the
    knee plus a short backlog, so overload sheds instead of queueing."""
    return AdmissionConfig(queue_capacity=8, rate_per_s=4_000, burst=8)


def _fleet(pace_ns: int, admission: Optional[AdmissionConfig],
           **overrides) -> FleetConfig:
    base = dict(
        server="redis",
        nodes=2,
        connections=sweep_connections(),
        connect_pace_ns=pace_ns,
        admission=admission,
    )
    base.update(overrides)
    return FleetConfig(**base)


def _row(config: FleetConfig, **extra) -> Dict:
    result = run_fleet(config)
    row = result.row()
    row["offered_rps"] = round(1e9 / config.connect_pace_ns, 1)
    row.update(extra)
    assert row["exit_codes"] == [0] * config.nodes, row
    assert not row["diverged"], row
    return row


def offered_load_sweep() -> List[Dict]:
    """Baseline (pass-through) vs throttled rows at each offered rate."""
    rows = []
    for pace in sweep_paces():
        rows.append(_row(_fleet(pace, None), mode="baseline"))
        rows.append(_row(_fleet(pace, throttled_config()), mode="admission"))
    return rows


def shed_policy_rows() -> List[Dict]:
    """reject vs drop at one clearly-overloaded offered rate."""
    pace = sweep_paces()[-1]
    rows = []
    for policy in ("reject", "drop"):
        admission = AdmissionConfig(
            queue_capacity=8, rate_per_s=3_000, burst=8, policy=policy,
            drop_timeout_ns=5_000_000,
        )
        rows.append(_row(_fleet(pace, admission), mode="policy"))
    return rows


def replication_rows() -> List[Dict]:
    """Selective vs full replication, below the knee on a file-serving
    profile: full replication ships every reproducible result (preads,
    log writes, clock reads) the followers could have computed locally,
    so the wire gap is visible even though both serve the same load."""
    pace = sweep_paces()[0]
    return [
        _row(
            _fleet(
                pace, None,
                server="lighttpd-wrk",
                connections=32,
                requests_per_conn=4,
                replication=which,
            ),
            mode="replication",
        )
        for which in ("selective", "full")
    ]


def scale_row(connections: Optional[int] = None) -> Dict:
    """One >= 10k-connection run through a single multiplexed client
    process: the admission controller sheds most of the stampede, so the
    row finishes in CI-smoke time while still exercising every SYN."""
    if connections is None:
        connections = 10_000 if smoke() else 12_000
    admission = AdmissionConfig(queue_capacity=32, rate_per_s=4_000, burst=16)
    config = _fleet(
        2_000, admission,
        connections=connections,
        shard_size=256,
        max_steps=1_200_000_000,
    )
    return _row(config, mode="scale")
