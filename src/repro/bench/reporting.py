"""Formatting helpers: paper-vs-measured tables and series."""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


class Table:
    """A simple fixed-width table accumulating rows."""

    def __init__(self, title: str, columns: List[str]):
        self.title = title
        self.columns = columns
        self.rows: List[List[str]] = []

    def add(self, *cells) -> None:
        self.rows.append([_fmt(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append(
                "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        return "\n".join(lines) + "\n"


def _fmt(cell) -> str:
    if isinstance(cell, float):
        return "%.2f" % cell
    return str(cell)


def shape_check(
    paper: Dict[str, float],
    measured: Dict[str, float],
    ratio_tolerance: float = 2.0,
) -> List[str]:
    """Sanity notes comparing measured values to the paper's.

    Returns a list of human-readable deviations where measured/paper
    overhead ratios exceed the tolerance — used by benches to annotate
    their output, and by tests to assert the shape holds.
    """
    notes = []
    for key, expected in paper.items():
        got = measured.get(key)
        if got is None:
            notes.append("%s: missing measurement" % key)
            continue
        exp_over = max(1e-3, expected - 1.0)
        got_over = max(1e-3, got - 1.0)
        ratio = got_over / exp_over
        if expected > 1.05 and not (1.0 / ratio_tolerance <= ratio <= ratio_tolerance):
            notes.append(
                "%s: measured %.2f vs paper %.2f (overhead ratio %.2fx)"
                % (key, got, expected, ratio)
            )
    return notes


def ordering_preserved(
    paper: Dict[str, float], measured: Dict[str, float], keys: Optional[List[str]] = None
) -> bool:
    """Do the measured values rank the configurations like the paper?

    Ties (within 3%) in the paper are allowed to rank either way.
    """
    keys = keys or list(paper)
    for i, a in enumerate(keys):
        for b in keys[i + 1 :]:
            if a not in measured or b not in measured:
                return False
            pa, pb = paper[a], paper[b]
            if abs(pa - pb) / max(pa, pb) < 0.03:
                continue
            if (pa < pb) != (measured[a] < measured[b]):
                return False
    return True
