"""Benchmark harness regenerating every table and figure of §5.

Each module exposes ``generate()`` (structured results) and ``render()``
(the formatted table, paper-vs-measured). The pytest-benchmark entry
points live in the repository's ``benchmarks/`` directory.

Set ``REPRO_BENCH_SCALE`` (default 1.0, e.g. ``0.25``) to shrink the
virtual workload sizes for quicker, noisier runs.
"""

from repro.bench.harness import (
    bench_scale,
    measure_mvee_overhead,
    measure_server_overhead,
)

__all__ = ["bench_scale", "measure_mvee_overhead", "measure_server_overhead"]
