"""Profile a named sweep and print its hot spots.

Perf PRs should start from data, not guesses. This helper runs one of
the repo's representative sweeps under cProfile and prints the top-20
functions by cumulative time::

    python -m repro.bench.profile storm       # engine microbench
    python -m repro.bench.profile remon       # single-node ReMon sweep
    python -m repro.bench.profile dist        # distributed lanes
    python -m repro.bench.profile sweep64     # 64-node x 32-thread run
    python -m repro.bench.profile storm --top 40 --sort tottime

(The PR-8 engine refactor was scoped from exactly this view: ``_step``,
the ``_wake``/``_wake_cpu`` closures, ``_dispatch`` and heap churn led
the cumulative profile of the ``remon`` sweep.)
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
from typing import Callable, Dict


def _run_storm() -> None:
    from repro.bench.engine import STORM_ROUNDS, STORM_WAITERS, _storm_program
    from repro.sim import Simulator

    sim = Simulator()
    _storm_program(sim, STORM_WAITERS, STORM_ROUNDS)
    sim.run()


def _run_remon() -> None:
    from repro.core import Level, ReMon, ReMonConfig
    from repro.kernel import Kernel
    from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

    workload = SyntheticWorkload(
        name="profile-remon",
        native_ms=2.0,
        mix=CategoryMix(
            {
                "base": 90_000.0,
                "file_ro": 120_000.0,
                "sock_ro": 30_000.0,
                "sock_rw": 30_000.0,
                "mgmt": 15_000.0,
            }
        ),
        threads=3,
    )
    mvee = ReMon(
        Kernel(),
        build_program(workload),
        ReMonConfig(replicas=3, level=Level.SOCKET_RW),
    )
    result = mvee.run(max_steps=400_000_000)
    assert not result.diverged, result.divergence


def _run_dist() -> None:
    from repro.core import Level, ReMonConfig
    from repro.dist import DistConfig, DistMvee
    from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

    workload = SyntheticWorkload(
        name="profile-dist",
        native_ms=1.5,
        mix=CategoryMix(
            {
                "base": 120_000.0,
                "file_ro": 90_000.0,
                "sock_ro": 20_000.0,
                "sock_rw": 20_000.0,
                "mgmt": 30_000.0,
            }
        ),
        threads=3,
    )
    config = ReMonConfig(
        replicas=4,
        level=Level.NO_IPMON,
        dist=DistConfig(link_latency_ns=100_000),
    )
    result = DistMvee(build_program(workload), config).run(max_steps=400_000_000)
    assert not result.diverged, result.divergence


def _run_sweep64() -> None:
    from repro.bench.engine import sweep_64x32

    sweep_64x32()


SWEEPS: Dict[str, Callable[[], None]] = {
    "storm": _run_storm,
    "remon": _run_remon,
    "dist": _run_dist,
    "sweep64": _run_sweep64,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.profile",
        description="Run a named sweep under cProfile and print hot spots.",
    )
    parser.add_argument("sweep", choices=sorted(SWEEPS), help="which sweep to profile")
    parser.add_argument("--top", type=int, default=20,
                        help="number of rows to print (default 20)")
    parser.add_argument("--sort", default="cumulative",
                        choices=["cumulative", "tottime", "ncalls"],
                        help="pstats sort key (default cumulative)")
    parser.add_argument("--out", default=None,
                        help="also dump raw pstats data to this file")
    args = parser.parse_args(argv)

    profiler = cProfile.Profile()
    profiler.enable()
    SWEEPS[args.sweep]()
    profiler.disable()

    if args.out:
        profiler.dump_stats(args.out)
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    return 0


if __name__ == "__main__":
    sys.exit(main())
