"""Availability under injected replica faults (DESIGN.md: fault model &
degraded mode).

Classic ReMon is fail-stop: any replica fault kills the whole MVEE.
With a :class:`~repro.core.DegradationPolicy` the monitor absorbs benign
crashes instead — quarantine, master promotion, N−1 continuation — as
long as a quorum survives. These sweeps quantify what that buys:

1. **Crash-count sweep** — how many successive replica crashes an
   N-replica MVEE survives before the quorum rule fail-stops it.
2. **Random-crash survival** — seeded Poisson-ish crash plans
   (:meth:`FaultPlan.random_crashes`) across many seeds: survival
   fraction and mean quarantines, with and without a policy.
3. **Degraded-tail overhead** — wall-time cost of finishing a run at
   N−1 after a mid-run crash (slave vs master victim) relative to a
   fault-free run of the same workload.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.native import run_native
from repro.bench.reporting import Table
from repro.core import DegradationPolicy, Level, ReMon, ReMonConfig
from repro.dist import DistConfig, DistMvee
from repro.faults import CrashFault, FaultInjector, FaultPlan, NodeRejoinFault
from repro.kernel import Kernel
from repro.lifecycle import LifecycleConfig
from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

MAX_STEPS = 400_000_000


def _workload(name: str = "avail", rate: float = 30_000.0,
              native_ms: float = 10.0) -> SyntheticWorkload:
    return SyntheticWorkload(
        name=name,
        native_ms=native_ms,
        mix=CategoryMix(
            {"base": rate * 0.4, "file_ro": rate * 0.4, "file_rw": rate * 0.2}
        ),
    )


def _run(workload: SyntheticWorkload, replicas: int, plan: Optional[FaultPlan],
         policy: Optional[DegradationPolicy]):
    kernel = Kernel()
    if plan is not None:
        FaultInjector(plan).install(kernel)
    mvee = ReMon(
        kernel,
        build_program(workload),
        ReMonConfig(replicas=replicas, level=Level.NONSOCKET_RW,
                    degradation=policy),
    )
    return mvee.run(max_steps=MAX_STEPS)


def _staggered_crashes(victims, first_ns: int = 1_500_000,
                       spacing_ns: int = 1_500_000) -> FaultPlan:
    return FaultPlan(
        faults=[
            CrashFault(replica=victim, at_ns=first_ns + i * spacing_ns)
            for i, victim in enumerate(victims)
        ]
    )


def crash_count_sweep(replica_counts=(2, 3, 4, 5, 6, 7),
                      min_quorum: int = 2) -> List[Dict]:
    """Crash the highest-index replicas one by one: the run completes
    while survivors >= min_quorum, then fail-stops on the crash that
    breaks quorum."""
    workload = _workload("crash-count")
    rows = []
    for replicas in replica_counts:
        for crashes in range(0, replicas):
            victims = [replicas - 1 - i for i in range(crashes)]
            result = _run(
                workload,
                replicas,
                _staggered_crashes(victims) if victims else None,
                DegradationPolicy(min_quorum=min_quorum),
            )
            rows.append(
                {
                    "replicas": replicas,
                    "crashes": crashes,
                    "outcome": "fail-stop" if result.diverged else "completed",
                    "quarantined": result.stats["replicas_quarantined"],
                    "promotions": result.stats["master_promotions"],
                }
            )
    return rows


def random_crash_survival(seeds=range(6), replicas: int = 4,
                          rates_hz=(100.0, 250.0, 500.0),
                          min_quorum: int = 2) -> List[Dict]:
    """Seeded random crash plans over the workload's native duration:
    survival fraction versus crash rate, with a policy and with classic
    fail-stop."""
    workload = _workload("rand-crash")
    duration_ns = workload.native_ns()
    rows = []
    for label, policy in (
        ("degradation policy", DegradationPolicy(min_quorum=min_quorum)),
        ("classic fail-stop", None),
    ):
        for rate_hz in rates_hz:
            survived = 0
            quarantined = 0
            faults = 0
            for seed in seeds:
                plan = FaultPlan.random_crashes(
                    seed, replicas=replicas, duration_ns=duration_ns,
                    crash_rate_hz=rate_hz,
                )
                result = _run(workload, replicas, plan, policy)
                if not result.diverged:
                    survived += 1
                quarantined += result.stats["replicas_quarantined"]
                faults += result.stats["faults_injected"]
            n = len(list(seeds))
            rows.append(
                {
                    "policy": label,
                    "rate_hz": rate_hz,
                    "runs": n,
                    "survival": survived / n,
                    "mean_quarantined": quarantined / n,
                    "mean_faults": faults / n,
                }
            )
    return rows


def degraded_tail_overhead(replicas: int = 3) -> List[Dict]:
    """Wall-time cost of finishing at N−1 after a mid-run crash."""
    workload = _workload("degraded-tail")
    native = run_native(build_program(workload))
    policy = DegradationPolicy(min_quorum=2)
    baseline = _run(workload, replicas, None, policy)
    assert not baseline.diverged, baseline.divergence
    rows = [
        {
            "scenario": "fault-free",
            "overhead": baseline.wall_time_ns / native.wall_time_ns,
            "quarantined": 0,
            "promotions": 0,
        }
    ]
    crash_at = workload.native_ns() // 3
    for label, victim in (("slave crash", replicas - 1), ("master crash", 0)):
        result = _run(
            workload,
            replicas,
            FaultPlan(faults=[CrashFault(replica=victim, at_ns=crash_at)]),
            policy,
        )
        assert not result.diverged, result.divergence
        rows.append(
            {
                "scenario": label,
                "overhead": result.wall_time_ns / native.wall_time_ns,
                "quarantined": result.stats["replicas_quarantined"],
                "promotions": result.stats["master_promotions"],
            }
        )
    return rows


def _lifecycle_workload(native_ms: float = 2.0,
                        rate: float = 900_000.0) -> SyntheticWorkload:
    # sock_ro keeps the replicated lane busy so the replay window holds
    # RB mirror records, not just rendezvous verdicts.
    return SyntheticWorkload(
        name="lifecycle",
        native_ms=native_ms,
        mix=CategoryMix(
            {"base": rate * 0.35, "file_ro": rate * 0.2,
             "sock_ro": rate * 0.25, "mgmt": rate * 0.2}
        ),
        threads=4,
    )


def _lifecycle_run(plan: Optional[FaultPlan], nodes: int = 4,
                   rejoin: bool = True):
    config = ReMonConfig(
        replicas=nodes,
        level=Level.SOCKET_RO,
        degradation=DegradationPolicy(min_quorum=2),
        dist=DistConfig(
            link_latency_ns=100_000,
            shard_rendezvous=True,
            rendezvous_shards=2,
            lifecycle=LifecycleConfig(rejoin=rejoin, seed=11),
        ),
    )
    mvee = DistMvee(build_program(_lifecycle_workload()), config)
    if plan is not None:
        mvee.attach_faults(FaultInjector(plan))
    result = mvee.run(max_steps=MAX_STEPS)
    return mvee, result


def lifecycle_sweep(nodes: int = 4) -> List[Dict]:
    """Price re-admission: quarantine -> re-image -> window replay ->
    back in the lockstep quorum, for each crash position.

    The fault-free row doubles as the zero-cost check (epoch stays 0, no
    rejoins); the crash rows measure recovery latency (quarantine to
    re-admission under a bumped epoch) and the replayed-artifact volume
    that latency bought.
    """
    crash_at = 2_000_000
    scenarios = [
        ("fault-free", None),
        ("follower crash", FaultPlan(
            faults=[NodeRejoinFault(replica=nodes - 1, at_ns=crash_at)])),
        ("shard-owner crash", FaultPlan(
            faults=[NodeRejoinFault(replica=1, at_ns=crash_at)])),
        ("leader crash", FaultPlan(
            faults=[NodeRejoinFault(replica=0, at_ns=crash_at)])),
    ]
    rows = []
    for label, plan in scenarios:
        mvee, result = _lifecycle_run(plan, nodes=nodes)
        assert not result.diverged, result.divergence
        stats = result.stats
        rejoins = stats.get("lifecycle_rejoins_completed", 0)
        replayed = (
            stats.get("lifecycle_replayed_records", 0)
            + stats.get("lifecycle_replayed_verdicts", 0)
            + stats.get("lifecycle_replayed_local", 0)
        )
        rows.append(
            {
                "scenario": label,
                "rejoins": rejoins,
                "rejoin_ms": stats.get("lifecycle_rejoin_ns_total", 0) / 1e6,
                "replayed": replayed,
                "epoch": mvee.epoch,
                "wall_ms": result.wall_time_ns / 1e6,
                "exit_codes_ok": all(
                    node.process.exit_code == 0 for node in mvee.nodes
                ),
            }
        )
    return rows


def render_all() -> str:
    out = []

    table = Table(
        "Availability: successive crashes vs quorum (min_quorum=2)",
        ["replicas", "crashes", "outcome", "quarantined", "promotions"],
    )
    for row in crash_count_sweep():
        table.add(row["replicas"], row["crashes"], row["outcome"],
                  row["quarantined"], row["promotions"])
    out.append(table.render())

    table = Table(
        "Availability: survival vs crash rate (4 replicas, seeded plans)",
        ["policy", "crashes/s", "runs", "survival", "mean quarantined",
         "mean faults"],
    )
    for row in random_crash_survival():
        table.add(row["policy"], "%.0f" % row["rate_hz"], row["runs"],
                  "%.0f%%" % (100 * row["survival"]),
                  "%.1f" % row["mean_quarantined"], "%.1f" % row["mean_faults"])
    out.append(table.render())

    table = Table(
        "Availability: degraded-tail overhead (3 replicas)",
        ["scenario", "overhead", "quarantined", "promotions"],
    )
    for row in degraded_tail_overhead():
        table.add(row["scenario"], row["overhead"], row["quarantined"],
                  row["promotions"])
    out.append(table.render())

    table = Table(
        "Lifecycle: replay-based re-admission cost (4 nodes, 2 shards)",
        ["scenario", "rejoins", "rejoin ms", "replayed", "epoch", "wall ms"],
    )
    for row in lifecycle_sweep():
        table.add(row["scenario"], row["rejoins"],
                  "%.2f" % row["rejoin_ms"], row["replayed"], row["epoch"],
                  "%.2f" % row["wall_ms"])
    out.append(table.render())
    return "\n".join(out)
