"""Table 2: comparison with other MVEEs (2 replicas).

The literature numbers are constants from the paper's table; we re-run
the server suite at the paper's best-case setup (gigabit with 5 ms
simulated latency, 2 replicas) to produce the ReMon column, re-run
GHUMVEE standalone for its column, and additionally run our VARAN-style
baseline in-simulator (the paper quotes VARAN's published numbers,
measured on a same-rack gigabit link).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bench.harness import measure_server_overhead
from repro.bench.reporting import Table

LATENCY_5MS = 5_000_000
LATENCY_GIGABIT = 100_000

#: Paper-reported overheads (fraction, not percent); None = not reported.
PAPER_REPORTED: Dict[str, Dict[str, Optional[float]]] = {
    # server            Tachyon   Mx     VARAN   Orchestra  GHUMVEE  ReMon(5ms)
    "apache-ab": {"tachyon": 0.024, "mx": None, "varan": None, "orchestra": 0.50,
                  "ghumvee": 0.34, "remon": 0.024},
    "lighttpd-ab": {"tachyon": 7.90, "mx": 2.72, "varan": 0.30, "orchestra": None,
                    "ghumvee": 0.55, "remon": 0.000},
    "thttpd-ab": {"tachyon": 13.20, "mx": 0.17, "varan": 0.00, "orchestra": None,
                  "ghumvee": 0.73, "remon": 0.027},
    "lighttpd-http_load": {"tachyon": None, "mx": 2.49, "varan": 0.04,
                           "orchestra": None, "ghumvee": 0.45, "remon": 0.035},
    "redis": {"tachyon": None, "mx": 15.72, "varan": 0.05, "orchestra": None,
              "ghumvee": 0.45, "remon": 0.001},
    "beanstalkd": {"tachyon": None, "mx": None, "varan": 0.52, "orchestra": None,
                   "ghumvee": 0.45, "remon": 0.006},
    "memcached": {"tachyon": None, "mx": None, "varan": 0.14, "orchestra": None,
                  "ghumvee": 0.084, "remon": 0.003},
    "nginx-wrk": {"tachyon": None, "mx": None, "varan": 0.28, "orchestra": None,
                  "ghumvee": 1.94, "remon": 0.008},
    "lighttpd-wrk": {"tachyon": None, "mx": None, "varan": 0.12, "orchestra": None,
                     "ghumvee": 1.69, "remon": 0.007},
}


def generate() -> Dict:
    rows = []
    for server, reported in PAPER_REPORTED.items():
        native = measure_server_overhead(server, LATENCY_5MS, "native")
        base = native["duration_ns"]
        remon = measure_server_overhead(server, LATENCY_5MS, "remon", replicas=2)
        measured_remon = remon["duration_ns"] / base - 1.0
        # GHUMVEE standalone on the *low-latency* gigabit link — the
        # paper's GHUMVEE column comes from that harsher setup (nothing
        # hides the monitor's serialization there).
        native_fast = measure_server_overhead(server, LATENCY_GIGABIT, "native")
        ghumvee = measure_server_overhead(server, LATENCY_GIGABIT, "ghumvee", replicas=2)
        measured_ghumvee = ghumvee["duration_ns"] / native_fast["duration_ns"] - 1.0
        # Our VARAN-like baseline on the same-rack gigabit setup.
        varan = measure_server_overhead(server, LATENCY_GIGABIT, "varan", replicas=2)
        measured_varan = varan["duration_ns"] / native_fast["duration_ns"] - 1.0
        rows.append(
            {
                "name": server,
                "paper": reported,
                "measured_remon": measured_remon,
                "measured_ghumvee": measured_ghumvee,
                "measured_varan": measured_varan,
            }
        )
    return {"rows": rows}


def render(data: Dict) -> str:
    table = Table(
        "Table 2: server overheads vs other MVEEs (2 replicas; paper-reported "
        "numbers in parentheses; reliability-oriented MVEEs on the left)",
        ["server", "Tachyon*", "Mx*", "VARAN ours(paper)", "Orchestra*",
         "GHUMVEE ours(paper)", "ReMon@5ms ours(paper)"],
    )

    def pct(value):
        return "-" if value is None else "%.1f%%" % (100 * value)

    for row in data["rows"]:
        paper = row["paper"]
        table.add(
            row["name"],
            pct(paper["tachyon"]),
            pct(paper["mx"]),
            "%s (%s)" % (pct(row["measured_varan"]), pct(paper["varan"])),
            pct(paper["orchestra"]),
            "%s (%s)" % (pct(row["measured_ghumvee"]), pct(paper["ghumvee"])),
            "%s (%s)" % (pct(row["measured_remon"]), pct(paper["remon"])),
        )
    return table.render() + "* literature numbers, different testbeds (see paper).\n"
