"""Event-engine throughput benches (repro.sim; DESIGN.md engine section).

Every subsystem in this repo — GHUMVEE rendezvous, IP-MON, the
distributed lanes, shard monitors, WAN transport, fleets — drains
through one pure-Python event loop, so engine throughput *is* the
scaling wall (ROADMAP item 3). Two measurements quantify the PR-8
refactor:

* **Storm microbench** — a rendezvous-storm-shaped workload (N waiters
  released by one ``Event.fire``, interleaved with cpu sleeps) run on
  the calendar-queue engine and on :class:`LegacyHeapSimulator`, a
  compact in-bench reimplementation of the pre-refactor engine (single
  binary heap, per-sleep closures, isinstance effect dispatch). The
  metric is task resumptions per host second — a count both engines
  share analytically, unlike queue callbacks which batch draining
  collapses. CI asserts the new engine wins by >= 2x.
* **64-node x 32-thread sweep** — the dMVX-credibility configuration
  the issue names: a :class:`repro.dist.DistMvee` run at 64 nodes with
  a 32-thread workload, reported as host wall seconds. Must finish in
  the CI smoke budget.
"""

from __future__ import annotations

import heapq
import os
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.sim import Event, Simulator, Sleep, WaitEvent

#: Storm shape: WAITERS tasks rendezvous on a fresh gate each round.
STORM_WAITERS = 256
STORM_ROUNDS = 200


def smoke() -> bool:
    """CI smoke mode (REPRO_BENCH_SMOKE=1). The storm runs at full size
    either way (it is sub-second); only the sweep workload shrinks."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


# ---------------------------------------------------------------------------
# The pre-refactor engine, kept as the comparison baseline
# ---------------------------------------------------------------------------
class LegacyHeapSimulator:
    """The seed engine, condensed: one ``(when, seq, fn, args)`` heap,
    a fresh closure per sleep/timeout, isinstance effect dispatch. Kept
    here (not in ``repro.sim``) purely so the storm bench measures the
    refactor against its real predecessor instead of a guess."""

    def __init__(self, cores: int = 16):
        self.cores = cores
        self.now = 0
        self._queue: list = []
        self._seq = 0
        self._cpu_active = 0
        self.steps = 0

    def call_at(self, when: int, fn: Callable, *args) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (when, self._seq, fn, args))

    def call_soon(self, fn: Callable, *args) -> None:
        self.call_at(self.now, fn, *args)

    def spawn(self, gen: Iterator, name: str = "task"):
        task = _LegacyTask(gen, name)
        self.call_soon(self._step, task, None, None)
        return task

    def fire(self, event: Event, value: Any = None) -> None:
        if event.fired:
            return
        event.fired = True
        event.value = value
        waiters, event._waiters = event._waiters, []
        for task, epoch in waiters:
            if task._wait_epoch == epoch and not task.done:
                self.call_soon(self._step, task, (True, value), None)

    def run(self, until: Optional[int] = None) -> int:
        while self._queue:
            when, _seq, fn, args = self._queue[0]
            if until is not None and when > until:
                self.now = until
                break
            heapq.heappop(self._queue)
            if when > self.now:
                self.now = when
            fn(*args)
            self.steps += 1
        return self.now

    def _step(self, task, send_value, throw_exc) -> None:
        if task.done:
            return
        task._wait_epoch += 1
        try:
            if throw_exc is not None:
                item = task.gen.throw(throw_exc)
            else:
                item = task.gen.send(send_value)
        except StopIteration:
            task.done = True
            return
        if isinstance(item, Sleep):
            self._do_sleep(task, item)
        elif isinstance(item, WaitEvent):
            self._do_wait(task, item)
        else:
            raise SimulationError("legacy bench engine: unsupported %r" % item)

    def _do_sleep(self, task, item: Sleep) -> None:
        if item.cpu:
            self._cpu_active += 1
            factor = max(1.0, self._cpu_active / float(self.cores))
            ns = int(item.ns * factor)

            def _wake_cpu():
                self._cpu_active -= 1
                self._step(task, None, None)

            self.call_at(self.now + ns, _wake_cpu)
        else:
            def _wake():
                self._step(task, None, None)

            self.call_at(self.now + item.ns, _wake)

    def _do_wait(self, task, item: WaitEvent) -> None:
        event = item.event
        if event.fired:
            self.call_soon(self._step, task, (True, event.value), None)
            return
        event._waiters.append((task, task._wait_epoch))
        if item.timeout_ns is not None:
            epoch = task._wait_epoch

            def _timeout():
                if task._wait_epoch == epoch and not task.done:
                    self._step(task, (False, None), None)

            self.call_at(self.now + item.timeout_ns, _timeout)


class _LegacyTask:
    def __init__(self, gen: Iterator, name: str):
        self.gen = gen
        self.name = name
        self.done = False
        self._wait_epoch = 0


# ---------------------------------------------------------------------------
# Storm microbench
# ---------------------------------------------------------------------------
def _storm_program(sim, waiters: int, rounds: int):
    """Rendezvous storm: each round, every waiter blocks on a shared
    gate; a coordinator burns cpu then fires it, releasing all N at one
    virtual instant (the shape GHUMVEE barriers and shard rendezvous
    produce). Waiters alternate cpu/plain sleeps between rounds."""
    gates = [Event("round-%d" % r) for r in range(rounds)]

    def waiter(i):
        for r in range(rounds):
            yield WaitEvent(gates[r])
            yield Sleep(50 + (i & 7), cpu=(r & 1) == 0)

    def coordinator():
        for r in range(rounds):
            yield Sleep(1_000, cpu=True)
            sim.fire(gates[r], r)

    for i in range(waiters):
        sim.spawn(waiter(i), "w%d" % i)
    sim.spawn(coordinator(), "coord")


def storm_resumptions(waiters: int, rounds: int) -> int:
    """Task resumptions the storm performs, counted analytically so both
    engines are scored on identical work: each waiter resumes twice per
    round (gate release + sleep wake) plus its initial step; the
    coordinator resumes once per round plus its initial step."""
    return waiters * rounds * 2 + waiters + rounds + 1


def run_storm(engine_factory: Callable[[], Any],
              waiters: int = STORM_WAITERS,
              rounds: int = STORM_ROUNDS,
              repeats: int = 3) -> Dict:
    """Best-of-``repeats`` storm run (fresh engine each repeat): the
    minimum host time is the least-noisy estimate on a shared CI box."""
    resumptions = storm_resumptions(waiters, rounds)
    best_s = None
    final_now = None
    for _ in range(repeats):
        sim = engine_factory()
        _storm_program(sim, waiters, rounds)
        start = time.perf_counter()
        sim.run()
        host_s = time.perf_counter() - start
        if best_s is None or host_s < best_s:
            best_s = host_s
        final_now = sim.now
    return {
        "waiters": waiters,
        "rounds": rounds,
        "resumptions": resumptions,
        "repeats": repeats,
        "host_seconds": round(best_s, 4),
        "events_per_sec": round(resumptions / best_s, 1),
        "final_now": final_now,
    }


def storm_rows() -> List[Dict]:
    """Old engine vs new engine on the identical storm, plus speedup."""
    legacy = run_storm(LegacyHeapSimulator)
    legacy["engine"] = "legacy-heap"
    current = run_storm(Simulator)
    current["engine"] = "calendar-queue"
    # Identical virtual outcome is part of the bench contract: same
    # program, same final clock, regardless of queue structure.
    assert current["final_now"] == legacy["final_now"], (current, legacy)
    speedup = current["events_per_sec"] / legacy["events_per_sec"]
    current["speedup_vs_legacy"] = round(speedup, 2)
    return [legacy, current]


# ---------------------------------------------------------------------------
# 64-node x 32-thread sweep
# ---------------------------------------------------------------------------
def sweep_64x32() -> Dict:
    """One DistMvee run at the issue's credibility scale: 64 nodes, a
    32-thread workload. Reported in host seconds; the CI smoke job is
    the budget this must fit."""
    from repro.core import DegradationPolicy, Level, ReMonConfig
    from repro.dist import DistConfig, DistMvee
    from repro.workloads.synthetic import CategoryMix, SyntheticWorkload, build_program

    rate = 30_000.0 if smoke() else 90_000.0
    workload = SyntheticWorkload(
        name="sweep-64x32",
        native_ms=0.5 if smoke() else 1.5,
        mix=CategoryMix(
            {
                "base": rate * 0.4,
                "file_ro": rate * 0.35,
                "sock_ro": rate * 0.1,
                "sock_rw": rate * 0.05,
                "mgmt": rate * 0.1,
            }
        ),
        threads=32,
    )
    config = ReMonConfig(
        replicas=64,
        level=Level.NO_IPMON,
        degradation=DegradationPolicy(min_quorum=33),
        dist=DistConfig(link_latency_ns=50_000),
    )
    mvee = DistMvee(build_program(workload), config)
    start = time.perf_counter()
    result = mvee.run(max_steps=400_000_000)
    host_s = time.perf_counter() - start
    assert not result.diverged, result.divergence
    assert result.exit_codes == [0] * 64, result.exit_codes
    return {
        "nodes": 64,
        "threads": 32,
        "smoke": smoke(),
        "host_seconds": round(host_s, 3),
        "virtual_ms": round(result.wall_time_ns / 1e6, 3),
        "sim_steps": mvee.sim.steps,
    }
