"""Figure 5: server benchmarks in two network scenarios, 2-7 replicas.

For each of the nine server configurations and both network scenarios
(~0.1 ms "unlikely worst case" gigabit, 2 ms "realistic" low-latency),
we measure the client-observed completion-time overhead of ReMon at
SOCKET_RW with 2..7 replicas, plus 2 replicas with IP-MON disabled.
"""

from __future__ import annotations

import os
from typing import Dict, List

from repro.bench.harness import measure_server_overhead

SERVER_ORDER = [
    "beanstalkd",
    "lighttpd-wrk",
    "memcached",
    "nginx-wrk",
    "redis",
    "apache-ab",
    "thttpd-ab",
    "lighttpd-ab",
    "lighttpd-http_load",
]

SCENARIOS = {
    "gigabit-0.1ms": 100_000,
    "realistic-2ms": 2_000_000,
}


def replica_counts() -> List[int]:
    """2..7 replicas, trimmed when REPRO_BENCH_SCALE shrinks runs."""
    if os.environ.get("REPRO_BENCH_QUICK"):
        return [2, 4, 7]
    return [2, 3, 4, 5, 6, 7]


def generate(scenario: str = "realistic-2ms") -> Dict:
    latency_ns = SCENARIOS[scenario]
    rows = []
    for server in SERVER_ORDER:
        native = measure_server_overhead(server, latency_ns, "native")
        base = native["duration_ns"]
        entry = {"name": server, "native_rps": native["rps"], "overheads": {}}
        no_ipmon = measure_server_overhead(server, latency_ns, "ghumvee", replicas=2)
        entry["overheads"]["no-ipmon-2"] = no_ipmon["duration_ns"] / base - 1.0
        for n in replica_counts():
            remon = measure_server_overhead(server, latency_ns, "remon", replicas=n)
            entry["overheads"]["remon-%d" % n] = remon["duration_ns"] / base - 1.0
        rows.append(entry)
    return {"scenario": scenario, "latency_ns": latency_ns, "rows": rows}


def render(data: Dict) -> str:
    from repro.bench.reporting import Table

    counts = replica_counts()
    table = Table(
        "Figure 5 (%s): client-observed runtime overhead" % data["scenario"],
        ["server", "2repl no-IPMON"] + ["%d repl" % n for n in counts],
    )
    for row in data["rows"]:
        cells = [row["name"], "%.1f%%" % (100 * row["overheads"]["no-ipmon-2"])]
        for n in counts:
            cells.append("%.1f%%" % (100 * row["overheads"]["remon-%d" % n]))
        table.add(*cells)
    return table.render()
