"""Tracing-overhead sweeps for repro.obs (DESIGN.md §9).

Measures the Figure-3 configurations at four obs settings — no obs
config, metrics-only (the default registry), spans on, spans + flight
recorder — and exposes a traced-run artifact writer for CI (JSON-lines
trace, Prometheus export, seeded-divergence postmortem).

The determinism contract under test: metrics are host-side only, so the
metrics-only wall time must be *identical* to the no-config run; spans
and the recorder charge small fixed costs at instrumented choke points,
so their regression is deterministic and bounded.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.baselines.native import run_native
from repro.bench.dist import smoke
from repro.bench.harness import MAX_STEPS, _find_bench, _scaled
from repro.core import Level, ReMon, ReMonConfig
from repro.guest.program import Program
from repro.kernel import Kernel
from repro.obs import ObsConfig, write_postmortem, write_prometheus, write_trace_jsonl
from repro.workloads.calibrate import calibrate
from repro.workloads.profiles import derive_workload
from repro.workloads.synthetic import build_program

#: Figure-3 subset swept by the overhead bench (full vs CI smoke).
BENCHES_FULL = ("blackscholes", "dedup", "streamcluster", "swaptions")
BENCHES_SMOKE = ("blackscholes", "dedup")
LEVELS = (Level.NO_IPMON, Level.NONSOCKET_RW)


def _run(bench_name: str, level: Level, obs_cfg: Optional[ObsConfig]):
    """One fresh (uncached) MVEE run; returns (result, mvee) so callers
    can read the live registry/tracer, which lru-cached helpers hide."""
    bench = _find_bench(bench_name)
    workload = _scaled(derive_workload(bench, calibrate()))
    program = build_program(workload)
    kernel = Kernel()
    mvee = ReMon(kernel, program, ReMonConfig(level=level, obs=obs_cfg))
    result = mvee.run(max_steps=MAX_STEPS)
    assert not result.diverged, result.divergence
    return result, mvee


def overhead_rows() -> List[Dict]:
    """The obs-overhead sweep: one row per (benchmark, level)."""
    benches = BENCHES_SMOKE if smoke() else BENCHES_FULL
    rows: List[Dict] = []
    for name in benches:
        bench = _find_bench(name)
        workload = _scaled(derive_workload(bench, calibrate()))
        native_ns = run_native(build_program(workload)).wall_time_ns
        for level in LEVELS:
            base, _ = _run(name, level, None)
            metrics, metrics_mvee = _run(name, level, ObsConfig())
            spans, spans_mvee = _run(name, level, ObsConfig(spans=True))
            full, full_mvee = _run(
                name, level, ObsConfig(spans=True, flight_recorder=True)
            )
            hist = metrics_mvee.obs.registry.histograms["rendezvous_wait_ns"]
            recorder = full_mvee.obs.recorder
            rows.append({
                "bench": name,
                "level": level.name,
                "native_ns": native_ns,
                "wall_base_ns": base.wall_time_ns,
                "wall_metrics_ns": metrics.wall_time_ns,
                "wall_spans_ns": spans.wall_time_ns,
                "wall_full_ns": full.wall_time_ns,
                "spans_ratio": spans.wall_time_ns / max(1, base.wall_time_ns),
                "full_ratio": full.wall_time_ns / max(1, base.wall_time_ns),
                "rendezvous_wait_count": hist.count,
                "rendezvous_wait_p50_ns": hist.percentile(50),
                "rendezvous_wait_p99_ns": hist.percentile(99),
                "span_events": len(spans_mvee.obs.tracer.events),
                "span_dropped": spans_mvee.obs.tracer.dropped,
                "recorder_events": recorder.recorded,
            })
    return rows


def _seeded_divergence_program() -> Program:
    """Replica 1 opens a different path than replica 0: the GHUMVEE
    rendezvous argument comparison must catch it on syscall `open`."""

    def main(ctx):
        path = "/data/a" if ctx.process.replica_index == 0 else "/data/b"
        fd = yield from ctx.libc.open(path)
        del fd
        return 0

    return Program(
        "seeded-divergence", main, files={"/data/a": b"x", "/data/b": b"y"}
    )


def run_seeded_divergence(obs_cfg: Optional[ObsConfig] = None):
    """Run the seeded-divergence workload under the flight recorder;
    returns the finished MveeResult (diverged, with a postmortem)."""
    if obs_cfg is None:
        obs_cfg = ObsConfig(spans=True, flight_recorder=True, ring_size=32)
    kernel = Kernel()
    mvee = ReMon(
        kernel, _seeded_divergence_program(), ReMonConfig(obs=obs_cfg)
    )
    result = mvee.run(max_steps=20_000_000)
    assert result.diverged, "seeded divergence did not trigger"
    return result, mvee


def write_artifacts(
    trace_path: str = "obs_trace.jsonl",
    postmortem_path: str = "obs_postmortem.json",
    prom_path: str = "obs_metrics.prom",
) -> Dict:
    """Produce the CI artifacts: a traced clean run (JSON-lines trace +
    Prometheus export) and a seeded-divergence postmortem."""
    _result, mvee = _run(
        "blackscholes",
        Level.NONSOCKET_RW,
        ObsConfig(spans=True, flight_recorder=True),
    )
    events = write_trace_jsonl(trace_path, mvee.obs.tracer)
    write_prometheus(prom_path, mvee.obs.registry)

    div_result, _div_mvee = run_seeded_divergence()
    postmortem = div_result.postmortem
    assert postmortem is not None
    write_postmortem(postmortem_path, postmortem)
    return {
        "trace_events": events,
        "trace_dropped": mvee.obs.tracer.dropped,
        "postmortem_replica": postmortem.replica,
        "postmortem_syscall": postmortem.syscall,
        "postmortem_reason": postmortem.reason,
    }
