"""Seeded deterministic SWIM-style gossip membership.

Each node runs one :class:`GossipAgent`. On every beat the agent picks a
seeded fanout of live peers and ships them its full membership view —
(node, incarnation, state) triples — as a ``T_LIFECYCLE_GOSSIP``
heartbeat. Receiving any frame from a peer refreshes that peer's
liveness; receiving a *view* merges it entry-by-entry under the SWIM
ordering: a higher incarnation always wins, and within one incarnation
the worse state (alive < suspect < dead) wins, so death rumours
propagate epidemically while a rejoined replica's bumped incarnation
overrides its own obituary.

Silence past ``suspicion_timeout_ns`` turns a peer suspect; silence past
twice that declares it dead and fires ``on_dead`` exactly once per
(peer, incarnation). The agent is transport-agnostic — ``send`` is
injected — so membership convergence is property-testable on a scripted
lossy/reordering harness without building a cluster.

All randomness is one LCG stream per agent, seeded from (seed, index):
the same seed produces bit-identical fanout picks and therefore
bit-identical gossip traffic.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dist.wire import GOSSIP_ALIVE, GOSSIP_DEAD, GOSSIP_SUSPECT

_LCG_MULT = 6364136223846793005
_LCG_ADD = 1442695040888963407
_MASK = (1 << 64) - 1

STATE_NAMES = {GOSSIP_ALIVE: "alive", GOSSIP_SUSPECT: "suspect",
               GOSSIP_DEAD: "dead"}


class GossipAgent:
    """One node's membership view plus the SWIM merge/beat/check logic."""

    def __init__(self, index: int, n: int, *, suspicion_timeout_ns: int,
                 fanout: int, seed: int,
                 on_dead: Optional[Callable[[int, int], None]] = None):
        self.index = index
        self.n = n
        self.suspicion_timeout_ns = suspicion_timeout_ns
        self.fanout = fanout
        self.on_dead = on_dead
        self.incarnations: Dict[int, int] = {i: 0 for i in range(n)}
        self.states: Dict[int, int] = {i: GOSSIP_ALIVE for i in range(n)}
        #: Last time liveness of each peer was (directly or transitively)
        #: confirmed; seeded to 0 so a peer that never beats still ages.
        self.last_heard: Dict[int, int] = {i: 0 for i in range(n)}
        self._rng = ((seed & _MASK) * _LCG_MULT + _LCG_ADD + index) & _MASK
        self._dead_fired: set = set()
        #: Seeded-shuffle round-robin of gossip targets (SWIM's probe
        #: discipline): every live peer is contacted within
        #: ceil(peers/fanout) beats, so inter-contact silence is bounded
        #: and a healthy cluster never falsely suspects anyone.
        self._cycle: List[int] = []
        self.beats_sent = 0

    # -- view ----------------------------------------------------------

    def view(self) -> Tuple[Tuple[int, int, int], ...]:
        """The full membership view as wire-ready gossip entries."""
        return tuple(
            (i, self.incarnations[i], self.states[i]) for i in range(self.n)
        )

    def alive_peers(self) -> List[int]:
        return [i for i in range(self.n)
                if i != self.index and self.states[i] != GOSSIP_DEAD]

    def _rand(self) -> int:
        self._rng = (self._rng * _LCG_MULT + _LCG_ADD) & _MASK
        return self._rng >> 16

    # -- beat / merge / check -----------------------------------------

    def beat(self, now: int) -> List[int]:
        """Pick this beat's seeded fanout of gossip targets.

        Beating also reconfirms our own liveness and incarnation in the
        outgoing view (``view()`` is what the caller ships).
        """
        self.states[self.index] = GOSSIP_ALIVE
        self.last_heard[self.index] = now
        peers = self.alive_peers()
        want = min(self.fanout, len(peers))
        targets: List[int] = []
        while len(targets) < want:
            if not self._cycle:
                pool = list(peers)
                while pool:
                    self._cycle.append(pool.pop(self._rand() % len(pool)))
            peer = self._cycle.pop(0)
            if peer in peers and peer not in targets:
                targets.append(peer)
        self.beats_sent += 1
        return sorted(targets)

    def merge(self, now: int, sender: int,
              entries: Tuple[Tuple[int, int, int], ...]) -> None:
        """Fold a received view in under the SWIM ordering."""
        if 0 <= sender < self.n:
            self.last_heard[sender] = now
            # A direct frame refutes suspicion outright; a *dead* mark
            # stays until the peer's bumped incarnation arrives in the
            # entries below (SWIM: only a higher incarnation revives).
            if self.states[sender] == GOSSIP_SUSPECT:
                self.states[sender] = GOSSIP_ALIVE
        for node, incarnation, state in entries:
            if not 0 <= node < self.n:
                continue
            if node == self.index:
                # Refute rumours about ourselves: never adopt them, and
                # outlive them by bumping our incarnation past theirs.
                if state != GOSSIP_ALIVE and incarnation >= self.incarnations[node]:
                    self.incarnations[node] = incarnation + 1
                continue
            have_inc = self.incarnations[node]
            if incarnation > have_inc:
                self.incarnations[node] = incarnation
                self.states[node] = state
                self.last_heard[node] = now
                if state == GOSSIP_DEAD:
                    self._fire_dead(node, incarnation)
            elif incarnation == have_inc and state > self.states[node]:
                self.states[node] = state
                if state == GOSSIP_DEAD:
                    self._fire_dead(node, incarnation)

    def check(self, now: int) -> List[Tuple[int, int]]:
        """Age the view: promote silent peers to suspect/dead.

        Returns the transitions made as (peer, new_state) pairs; dead
        declarations additionally fire ``on_dead``.
        """
        transitions: List[Tuple[int, int]] = []
        for peer in range(self.n):
            if peer == self.index or self.states[peer] == GOSSIP_DEAD:
                continue
            silence = now - self.last_heard[peer]
            if silence > 2 * self.suspicion_timeout_ns:
                self.states[peer] = GOSSIP_DEAD
                transitions.append((peer, GOSSIP_DEAD))
                self._fire_dead(peer, self.incarnations[peer])
            elif (silence > self.suspicion_timeout_ns
                  and self.states[peer] == GOSSIP_ALIVE):
                self.states[peer] = GOSSIP_SUSPECT
                transitions.append((peer, GOSSIP_SUSPECT))
        return transitions

    def _fire_dead(self, peer: int, incarnation: int) -> None:
        key = (peer, incarnation)
        if key in self._dead_fired:
            return
        self._dead_fired.add(key)
        if self.on_dead is not None:
            self.on_dead(peer, incarnation)

    # -- lifecycle events ---------------------------------------------

    def restart(self, now: int) -> None:
        """The local slot was re-imaged: rejoin under a fresh view.

        Bumps our incarnation so the replacement outlives its own
        obituary, and restarts every peer's silence clock — the agent
        was deaf while its slot was down, so accumulated silence
        measures our outage, not the peers' liveness. Suspect marks are
        graced for the same reason; dead marks stay (only a bumped
        incarnation revives the dead, as everywhere else).
        """
        self.incarnations[self.index] += 1
        self.states[self.index] = GOSSIP_ALIVE
        for peer in range(self.n):
            self.last_heard[peer] = now
            if self.states[peer] == GOSSIP_SUSPECT:
                self.states[peer] = GOSSIP_ALIVE

    def revive(self, now: int, peer: int) -> None:
        """A peer rejoined under a bumped incarnation: expect beats again."""
        self.incarnations[peer] += 1
        self.states[peer] = GOSSIP_ALIVE
        self.last_heard[peer] = now

    def grace(self, now: int, peer: int) -> None:
        """Reset a falsely-suspected live peer's silence clock."""
        self.states[peer] = GOSSIP_ALIVE
        self.last_heard[peer] = now
