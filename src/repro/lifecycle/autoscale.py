"""Drift watchdog + auto-scaler over the always-on wait histograms.

The thesis: an MVEE's wait histograms move *before* its verdicts do. A
node that is about to stall shows up first as p99 drift in
``dist_rendezvous_wait_ns`` / ``dist_monitor_wait_ns`` /
``fleet_accept_wait_ns`` and as rendezvous rounds that stay open missing
exactly its vote — long before the (400 ms-scale) rendezvous stall
watchdog declares anyone faulted. The watchdog samples those signals
every ``watch_interval_ns`` of virtual time and drives two actuators:

* **scale** — sustained p99 drift across ``drift_windows`` consecutive
  windows raises the rendezvous shard count by one (HRW makes the
  owner-set change minimal-disruption and clean changes need no epoch
  bump); sustained quiet lowers it back toward ``min_shards``.
* **proactive quarantine** — a round that stays open for
  ``stuck_round_ticks`` windows, where one node accounts for the
  missing votes, gets that node quarantined-and-replaced *before* an
  actual divergence or stall timeout.

Windowed p99 is computed from bucket-count deltas between samples, so a
long healthy history cannot mask a fresh drift. Everything is driven by
virtual time and histogram state — no RNG — so runs stay bit-identical.
"""

from __future__ import annotations

from math import ceil
from typing import Dict, List, Optional, Tuple

#: The always-on wait histograms the watchdog samples.
WATCHED = ("dist_rendezvous_wait_ns", "dist_monitor_wait_ns",
           "fleet_accept_wait_ns")


def _delta_p99(bounds, prev_counts, counts, hist_max) -> Optional[int]:
    """p99 of only the observations added since the previous sample."""
    deltas = [counts[i] - prev_counts[i] for i in range(len(counts))]
    total = sum(deltas)
    if total == 0:
        return None
    rank = max(1, ceil(total * 0.99))
    cumulative = 0
    for index, bucket_count in enumerate(deltas):
        cumulative += bucket_count
        if cumulative >= rank:
            if index >= len(bounds):
                return hist_max
            return bounds[index]
    return hist_max


class _Signal:
    """Per-histogram drift state: baseline + sample-to-sample deltas."""

    __slots__ = ("prev_counts", "baseline_p99")

    def __init__(self):
        self.prev_counts: Optional[List[int]] = None
        self.baseline_p99: Optional[int] = None

    def sample(self, hist) -> Optional[int]:
        counts = list(hist.counts)
        prev = self.prev_counts
        self.prev_counts = counts
        if prev is None:
            prev = [0] * len(counts)
        p99 = _delta_p99(hist.bounds, prev, counts, hist.max)
        if p99 is not None and self.baseline_p99 is None:
            self.baseline_p99 = p99
        return p99


class DriftWatchdog:
    """Pure decision logic; the LifecycleManager owns the timer and the
    actuators (shard-count mutation, quarantine) it recommends."""

    def __init__(self, config):
        self.config = config
        self._signals: Dict[str, _Signal] = {name: _Signal() for name in WATCHED}
        self._drift_streak = 0
        self._quiet_streak = 0
        #: round key -> consecutive ticks observed still-open.
        self._stuck: Dict[tuple, int] = {}
        self.stats = {
            "ticks": 0,
            "drift_windows": 0,
            "scale_up_votes": 0,
            "scale_down_votes": 0,
        }

    # -- histogram drift ----------------------------------------------

    def observe_histograms(self, histograms: Dict[str, object]) -> int:
        """Sample the watched histograms; returns +1 (scale up), -1
        (scale down) or 0 (hold) for this window."""
        self.stats["ticks"] += 1
        drifting = quiet = sampled = 0
        for name in WATCHED:
            hist = histograms.get(name)
            if hist is None:
                continue
            signal = self._signals[name]
            p99 = signal.sample(hist)
            if p99 is None or signal.baseline_p99 is None:
                continue
            sampled += 1
            if p99 >= signal.baseline_p99 * self.config.drift_factor:
                drifting += 1
            elif p99 <= signal.baseline_p99:
                quiet += 1
        if drifting:
            self.stats["drift_windows"] += 1
            self._drift_streak += 1
            self._quiet_streak = 0
        elif sampled and quiet == sampled:
            self._quiet_streak += 1
            self._drift_streak = 0
        else:
            self._drift_streak = 0
            self._quiet_streak = 0
        if self._drift_streak >= self.config.drift_windows:
            self._drift_streak = 0
            self.stats["scale_up_votes"] += 1
            return 1
        if self._quiet_streak >= self.config.drift_windows:
            self._quiet_streak = 0
            self.stats["scale_down_votes"] += 1
            return -1
        return 0

    # -- stuck-round attribution --------------------------------------

    def observe_rounds(
        self, open_rounds: Dict[tuple, Tuple[int, ...]]
    ) -> Optional[int]:
        """Track rounds that stay open tick after tick.

        ``open_rounds`` maps round key -> indices whose vote is still
        missing. Returns the node to blame once some round has been
        stuck for ``stuck_round_ticks`` ticks and a single node accounts
        for a strict majority of all stuck rounds' missing votes.
        """
        stuck_next: Dict[tuple, int] = {}
        blame: Dict[int, int] = {}
        total_missing = 0
        for key, missing in open_rounds.items():
            ticks = self._stuck.get(key, 0) + 1
            stuck_next[key] = ticks
            if ticks >= self.config.stuck_round_ticks:
                for node in missing:
                    blame[node] = blame.get(node, 0) + 1
                    total_missing += 1
        self._stuck = stuck_next
        if not blame:
            return None
        candidate = min(
            blame, key=lambda node: (-blame[node], node)
        )
        if blame[candidate] * 2 > total_missing:
            return candidate
        return None
