"""LifecycleManager: wires gossip, re-admission, and auto-scaling into
a running :class:`~repro.dist.cluster.DistMvee`.

The manager owns three loops, all on the cluster's virtual clock:

* **heartbeats** — one staggered beat timer per node driving its
  :class:`~repro.lifecycle.gossip.GossipAgent`; gossip silence replaces
  the leader's crash-detect timeout as the failure detector, so the
  membership view survives leader loss.
* **re-admission** — an always-on :class:`~repro.lifecycle.window.
  ReplayWindow` records every RB mirror record and rendezvous verdict.
  When a slot is quarantined (and rejoin is on), the manager waits a
  provision delay, re-images the slot with a fresh kernel/process at
  the same layout and address, ships the recorded window as billed
  ``T_LIFECYCLE_STATE`` frames, and boots the replacement in *replay
  mode*: it adopts recorded artifacts at ``lifecycle_replay_ns`` each
  (rr-style: no digests, no round trips) until it misses one — the
  live frontier — at which point it is re-admitted under a bumped
  ownership epoch and votes like everyone else.
* **drift watchdog** — a periodic tick sampling the always-on wait
  histograms and the open rendezvous rounds; sustained p99 drift
  scales the shard count, and a node that keeps whole rounds open is
  proactively quarantined-and-replaced before a divergence.

Nothing here exists unless a :class:`LifecycleConfig` is attached:
lifecycle-free runs take zero new frames, zero new stats, and stay
bit-identical to the pre-lifecycle design.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.events import DivergenceReport
from repro.dist.node import DistInterceptor, ReplicaView
from repro.dist.remote_rb import RBMirror
from repro.dist.selective import CLS_HANDOFF, CLS_LIFECYCLE
from repro.dist.shard import MonitorShard
from repro.dist.wire import (
    Frame,
    GOSSIP_SUSPECT,
    STATE_RECORD,
    STATE_VERDICT,
    T_LIFECYCLE_GOSSIP,
    T_LIFECYCLE_STATE,
    T_SHARD_HANDOFF,
    digest_payload,
    gossip_payload,
    owners_payload,
    parse_gossip_payload,
    state_payload,
)
from repro.guest.runtime import GuestRuntime
from repro.kernel.kernel import Kernel, KernelConfig
from repro.lifecycle.autoscale import DriftWatchdog
from repro.lifecycle.config import LifecycleConfig
from repro.lifecycle.window import RECORD, ReplayWindow


class LifecycleManager:
    """The elastic-lifecycle controller attached to one DistMvee."""

    def __init__(self, mvee, config: LifecycleConfig):
        self.mvee = mvee
        self.config = config
        self.sim = mvee.sim
        seed = config.seed if config.seed is not None else (
            mvee.config.seed or 1
        )
        #: One agent per slot; agents outlive re-images (the replacement
        #: inherits the slot's view under a bumped incarnation).
        self.agents: List = []
        if config.gossip:
            from repro.lifecycle.gossip import GossipAgent

            self.agents = [
                GossipAgent(
                    index, mvee.n,
                    suspicion_timeout_ns=config.suspicion_timeout_ns,
                    fanout=config.gossip_fanout,
                    seed=seed,
                    on_dead=lambda peer, inc, i=index: self._on_agent_dead(
                        i, peer, inc
                    ),
                )
                for index in range(mvee.n)
            ]
        #: Always recorded while the manager exists: a NodeRejoinFault
        #: can force a rejoin even with config.rejoin off, and a window
        #: that only starts recording at the crash is a window with a
        #: hole.
        self.window = ReplayWindow(config.replay_window)
        self.watchdog = DriftWatchdog(config) if config.autoscale else None
        #: Slot index -> in-flight rejoin bookkeeping.
        self._rejoins: Dict[int, Dict] = {}
        self._forced: set = set()
        self.stats = {
            "beats_sent": 0,
            "gossip_frames": 0,
            "heartbeat_cpu_ns": 0,
            "suspicions": 0,
            "false_suspicions": 0,
            "gossip_detections": 0,
            "stall_notes": 0,
            "rejoins_scheduled": 0,
            "rejoins_refused": 0,
            "rejoins_started": 0,
            "rejoins_completed": 0,
            "rejoin_ns_total": 0,
            "state_frames": 0,
            "replayed_records": 0,
            "replayed_verdicts": 0,
            "replayed_local": 0,
            "scale_ups": 0,
            "scale_downs": 0,
            "proactive_quarantines": 0,
        }

    # ------------------------------------------------------------------
    @property
    def gossip_on(self) -> bool:
        return bool(self.agents)

    def detects_crashes(self) -> bool:
        """Gossip silence replaces the crash-detect timeout when armed."""
        return self.gossip_on

    def provision_ns(self) -> int:
        if self.config.provision_ns is not None:
            return self.config.provision_ns
        return self.mvee._costs().lifecycle_provision_ns

    def _halted(self) -> bool:
        mvee = self.mvee
        return mvee.shutting_down or mvee.diverged or mvee.group.all_exited()

    # ------------------------------------------------------------------
    # Heartbeats + gossip
    # ------------------------------------------------------------------
    def start(self) -> None:
        interval = self.config.heartbeat_interval_ns
        if self.gossip_on:
            for index in range(self.mvee.n):
                # Stagger first beats so N nodes never flush one synchronized
                # burst; the offsets are pure functions of the index.
                offset = interval * (index + 1) // (self.mvee.n + 1)
                self.sim.call_at(interval + offset, self._beat, index)
        if self.watchdog is not None:
            self.sim.call_at(self.config.watch_interval_ns, self._watch_tick)

    def _beat(self, index: int) -> None:
        if self._halted():
            return
        mvee = self.mvee
        node = mvee.nodes[index]
        process = node.process
        if not process.exited and not process.quarantined:
            agent = self.agents[index]
            now = self.sim.now
            for _peer, state in agent.check(now):
                if state == GOSSIP_SUSPECT:
                    self.stats["suspicions"] += 1
            targets = agent.beat(now)
            payload = gossip_payload(agent.view())
            for dst in targets:
                frame = Frame(
                    T_LIFECYCLE_GOSSIP, index, 0, 0,
                    aux=agent.incarnations[index], payload=payload,
                )
                mvee.send_frame(index, dst, frame, cls=CLS_LIFECYCLE)
                self.stats["gossip_frames"] += 1
            self.stats["beats_sent"] += 1
            self.stats["heartbeat_cpu_ns"] += (
                mvee._costs().lifecycle_heartbeat_ns
            )
        self.sim.call_at(
            self.sim.now + self.config.heartbeat_interval_ns,
            self._beat, index,
        )

    def on_gossip_frame(self, dst: int, frame: Frame) -> None:
        if not self.gossip_on or self._halted():
            return
        entries = parse_gossip_payload(frame.payload)
        self.agents[dst].merge(self.sim.now, frame.sender, entries)

    def _on_agent_dead(self, observer: int, peer: int, incarnation: int) -> None:
        if self._halted():
            return
        mvee = self.mvee
        node = mvee.nodes[peer]
        process = node.process
        if process.quarantined or node.rejoining:
            return
        code = process.exit_code or 0
        if process.exited and code >= 128:
            # The cluster-level detection event; _handle_crash is
            # idempotent, so N observers converge on one quarantine.
            self.stats["gossip_detections"] += 1
            mvee._handle_crash(node, code)
        elif not process.exited:
            # A live process was gossiped dead (lost beats): refute
            # locally rather than quarantine on rumour alone.
            self.stats["false_suspicions"] += 1
            self.agents[observer].grace(self.sim.now, peer)
        # A cleanly exited peer is *expected* to fall silent: the dead
        # mark just stops the observer expecting beats.

    # ------------------------------------------------------------------
    # Replay window recording (hooks from the leader's hot path)
    # ------------------------------------------------------------------
    def record_result(self, vtid: int, seq: int, record) -> None:
        self.window.record(vtid, seq, record)

    def record_release(
        self, vtid: int, seq: int, verdict: int, digest: int = 0
    ) -> None:
        self.window.release(vtid, seq, verdict, digest)

    def note_stall(self, blame: int) -> None:
        self.stats["stall_notes"] += 1

    # ------------------------------------------------------------------
    # Re-admission
    # ------------------------------------------------------------------
    def force_rejoin(self, index: int) -> None:
        """A NodeRejoinFault demands this slot rejoin even if the
        config would not rejoin ordinary quarantines."""
        self._forced.add(index)

    def on_quarantine(self, index: int, report: DivergenceReport) -> None:
        if self._halted():
            return
        if not (self.config.rejoin or index in self._forced):
            return
        if self.window.overflowed:
            # A window with a hole cannot be replayed soundly; refuse.
            self.stats["rejoins_refused"] += 1
            return
        pending = self._rejoins.get(index)
        if pending is not None and pending.get("pending"):
            return
        self.stats["rejoins_scheduled"] += 1
        self._rejoins[index] = {
            "pending": True,
            "quarantined_ns": self.sim.now,
            "kind": report.kind,
        }
        self.sim.call_at(
            self.sim.now + self.provision_ns(), self._provision, index
        )

    def _provision(self, index: int) -> None:
        """Re-image the quarantined slot: fresh kernel + process at the
        same layout and address, then ship the recorded window."""
        if self._halted():
            return
        info = self._rejoins.get(index)
        if info is None or not info.get("pending"):
            return
        if self.window.overflowed:
            # The window overflowed between quarantine and provision: a
            # truncated snapshot replays a prefix whose first miss is
            # NOT the live frontier — the replacement would wait forever
            # for records the leader shipped before the re-image. Refuse
            # (bounded-by-refusal), leave the slot quarantined.
            self.stats["rejoins_refused"] += 1
            info["pending"] = False
            return
        mvee = self.mvee
        node = mvee.nodes[index]
        dconfig = mvee.dconfig
        old_kernel = node.kernel
        # Re-imaging wipes the node's TCP state: listeners the dead
        # kernel registered in the shared network would otherwise shadow
        # the replacement's binds with EADDRINUSE during replay.
        network = mvee.network
        if network is not None:
            stale = [key for key, sock in network.listeners.items()
                     if sock.kernel is old_kernel]
            for key in stale:
                del network.listeners[key]
        kernel = Kernel(
            sim=self.sim,
            config=KernelConfig(cores=dconfig.node_cores),
            network=mvee.network,
        )
        kernel.attach_obs(mvee.obs)
        mvee.program.install_files(kernel)
        process = kernel.create_process(
            "%s.n%d.r%d" % (
                mvee.program.name, index, self.stats["rejoins_scheduled"],
            ),
            mmap_base=node.layout.mmap_base,
            brk_base=node.layout.brk_base,
            host_ip="10.1.%d.1" % index,
        )
        process.compute_factor = 1.0
        injector = getattr(old_kernel, "fault_injector", None)
        if injector is not None:
            kernel.fault_injector = injector
        # Swap the slot: the group keeps its width, replica_index is
        # pinned (ReplicaGroup.add would append).
        mvee.group.processes[index] = process
        process.replica_index = index
        node.kernel = kernel
        node.process = process
        node.mirror = RBMirror(index)
        node.link_degraded = False
        node.rejoining = True
        node.replaying = True
        node.view = ReplicaView(process, mvee.policy, mvee.epoll_map, index)
        node.interceptor = DistInterceptor(mvee, node)
        kernel.syscall_hooks.append(node.interceptor)
        node.runtime = GuestRuntime(
            kernel, process, mvee.program, layout=node.layout
        )
        process.exit_event.add_listener(
            lambda code, n=node: mvee._on_node_exit(n, code)
        )
        if self.gossip_on:
            # The replacement outlives its own obituary by announcing a
            # bumped incarnation; peers revive the slot on merge. Its
            # peer silence clocks restart too — the agent was deaf for
            # the whole outage, so the accumulated silence says nothing
            # about the peers.
            self.agents[index].restart(self.sim.now)
        # Ship the recorded window as billed lifecycle state frames from
        # the current leader (who holds the authoritative record).
        entries = self.window.snapshot()
        leader = mvee.leader_index
        for kind, vtid, seq, artifact in entries:
            if kind == RECORD:
                frame = Frame(
                    T_LIFECYCLE_STATE, leader, vtid, seq,
                    aux=artifact.result,
                    payload=state_payload(
                        STATE_RECORD, artifact.name, artifact.payload
                    ),
                )
            else:
                verdict, digest = artifact
                frame = Frame(
                    T_LIFECYCLE_STATE, leader, vtid, seq,
                    aux=verdict,
                    payload=state_payload(
                        STATE_VERDICT, "", digest_payload(digest, "")
                    ),
                )
            mvee.send_frame(leader, index, frame, cls=CLS_LIFECYCLE)
        self.stats["state_frames"] += len(entries)
        info["replay_start_ns"] = self.sim.now
        info["window_entries"] = len(entries)
        # The window is applied (and the guest booted) once the state
        # frames have physically crossed the link — same scheduled-
        # delivery discipline as verdict releases.
        self.sim.call_at(
            self.sim.now + mvee.release_lag_ns(),
            self._boot_replacement, node, entries,
        )

    def _boot_replacement(self, node, entries) -> None:
        if self._halted():
            return
        sim = self.sim
        for kind, vtid, seq, artifact in entries:
            if kind == RECORD:
                node.mirror.put(vtid, seq, artifact, sim)
            else:
                verdict, digest = artifact
                node.mirror.release(vtid, seq, verdict, sim, digest=digest)
        # The window is a totally ordered log: the replaying interceptor
        # adopts entries in this exact order so shared-namespace
        # allocation (fd numbers) interleaves as recorded (§13).
        node.replay_plan = [
            (kind, vtid, seq) for kind, vtid, seq, _ in entries
        ]
        node.replay_cursor = 0
        self.stats["rejoins_started"] += 1
        obs = self.mvee.obs
        if obs.tracer.enabled:
            obs.tracer.instant(
                "lifecycle", "replay_start",
                node=node.index, entries=len(entries),
            )
        node.runtime.start()

    def reach_frontier(self, node) -> None:
        """The replaying replica missed a recorded artifact: it has
        caught up to the live frontier. Re-admit it under a bumped
        ownership epoch and let it vote like everyone else."""
        if not node.rejoining:
            return
        mvee = self.mvee
        now = self.sim.now
        node.rejoining = False
        # Every re-admission opens a new ownership epoch, exactly like
        # the quarantine that vacated the slot: in-flight old-epoch
        # frames become rejectable and waiting participants re-collect
        # against the new owner set (which the rejoiner re-enters).
        mvee.epoch += 1
        mvee.last_epoch_bump_ns = now
        if mvee.dconfig.shard_rendezvous:
            dead = mvee.monitor._shards.get(node.index)
            if dead is not None and dead.dead:
                fresh = MonitorShard(node.index)
                fresh.rounds = dead.rounds
                mvee.monitor._shards[node.index] = fresh
                node.shard = fresh
        info = self._rejoins.get(node.index) or {}
        info["pending"] = False
        self.stats["rejoins_completed"] += 1
        registry = mvee.obs.registry
        if "quarantined_ns" in info:
            rejoin_ns = now - info["quarantined_ns"]
            registry.histogram("lifecycle_rejoin_ns").observe(rejoin_ns)
            self.stats["rejoin_ns_total"] += rejoin_ns
        if "replay_start_ns" in info:
            registry.histogram("lifecycle_replay_lag_ns").observe(
                now - info["replay_start_ns"]
            )
        # Announce the bumped epoch + owner set to the survivors (the
        # physical bytes of the membership change, like a handoff).
        leader = mvee.leader_index
        announce = Frame(
            T_SHARD_HANDOFF, leader, 0, 0, aux=mvee.epoch,
            payload=owners_payload(mvee.shard_owners()),
        )
        for peer in mvee.live_peers(leader):
            mvee.send_frame(leader, peer, announce, cls=CLS_HANDOFF, urgent=True)
        if mvee.obs.tracer.enabled:
            mvee.obs.tracer.instant(
                "lifecycle", "rejoin", node=node.index, epoch=mvee.epoch,
            )
        mvee.monitor.on_membership_change()

    # ------------------------------------------------------------------
    # Drift watchdog + auto-scaling
    # ------------------------------------------------------------------
    def _watch_tick(self) -> None:
        if self._halted():
            return
        mvee = self.mvee
        config = self.config
        dconfig = mvee.dconfig
        decision = self.watchdog.observe_histograms(
            mvee.obs.registry.histograms
        )
        if (
            decision
            and dconfig.shard_rendezvous
            and dconfig.rendezvous_shards is not None
        ):
            shards = dconfig.rendezvous_shards
            if decision > 0 and shards < config.max_shards:
                # Clean membership change: HRW remaps ~1/N of new rounds,
                # open rounds stay addressable via their hosting shard,
                # and no epoch bump is needed.
                dconfig.rendezvous_shards = shards + 1
                self.stats["scale_ups"] += 1
                mvee.monitor.on_membership_change()
                if mvee.obs.tracer.enabled:
                    mvee.obs.tracer.instant(
                        "lifecycle", "scale_up", shards=shards + 1,
                    )
            elif decision < 0 and shards > config.min_shards:
                dconfig.rendezvous_shards = shards - 1
                self.stats["scale_downs"] += 1
                mvee.monitor.on_membership_change()
                if mvee.obs.tracer.enabled:
                    mvee.obs.tracer.instant(
                        "lifecycle", "scale_down", shards=shards - 1,
                    )
        participants = mvee.participants()
        open_rounds = {}
        for shard in mvee.monitor._shards.values():
            if shard.dead:
                continue
            for key, state in shard.open_rounds():
                missing = tuple(
                    p for p in participants if p not in state.digests
                )
                if missing:
                    open_rounds[key] = missing
        blame = self.watchdog.observe_rounds(open_rounds)
        if blame is not None and config.proactive_quarantine:
            node = mvee.nodes[blame]
            process = node.process
            if (
                not process.exited
                and not process.quarantined
                and not node.rejoining
            ):
                self.stats["proactive_quarantines"] += 1
                report = DivergenceReport(
                    self.sim.now,
                    0,
                    "",
                    "lifecycle watchdog: node %d holds open rounds "
                    "(drift); proactive quarantine-and-replace" % blame,
                    detected_by="lifecycle-watchdog",
                    kind="stall",
                )
                report.replica = blame
                mvee.replica_fault(process, report)
        self.sim.call_at(
            self.sim.now + config.watch_interval_ns, self._watch_tick
        )

    # ------------------------------------------------------------------
    # Finalize / attribution
    # ------------------------------------------------------------------
    def export_stats(self, registry) -> None:
        registry.ingest("lifecycle_", self.stats, source="lifecycle")
        registry.expose("lifecycle_window_records", self.window.records)
        registry.expose("lifecycle_window_verdicts", self.window.verdicts)
        registry.expose(
            "lifecycle_window_overflowed", int(self.window.overflowed)
        )
        if self.watchdog is not None:
            registry.ingest(
                "lifecycle_watch_", self.watchdog.stats, source="lifecycle"
            )

    def attribution(self) -> Dict:
        """Postmortem attribution for replayed replicas."""
        return {
            "rejoined_nodes": sorted(
                index for index, info in self._rejoins.items()
                if not info.get("pending")
            ),
            "rejoins_pending": sorted(
                index for index, info in self._rejoins.items()
                if info.get("pending")
            ),
            "replayed_records": self.stats["replayed_records"],
            "replayed_verdicts": self.stats["replayed_verdicts"],
            "window_entries": len(self.window),
        }
