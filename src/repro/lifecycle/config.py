"""Configuration for the elastic cluster lifecycle.

A :class:`LifecycleConfig` attached to ``DistConfig.lifecycle`` arms the
three lifecycle subsystems independently:

* **gossip** — SWIM-style heartbeats + epidemic membership dissemination
  replacing the leader's crash-detect timeout, so the view survives
  leader loss;
* **rejoin** — replay-based re-admission: a quarantined slot is
  re-imaged and the replacement fast-replays the recorded RB/verdict
  window back to the live frontier;
* **autoscale** — a drift watchdog over the always-on wait histograms
  that scales the rendezvous shard count and proactively
  quarantines-and-replaces a node that stops voting.

Everything is seeded and deterministic: the same config + seed produce
bit-identical gossip traffic, stats, and wire bytes run-to-run. With no
config attached (the default) the lifecycle layer does not exist at
all — zero new frames, zero new stats, bit-identical to the pre-
lifecycle design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import PolicyError


@dataclass
class LifecycleConfig:
    """Tuning for gossip membership, re-admission, and auto-scaling."""

    #: Master switch; False behaves exactly like no config at all.
    enabled: bool = True

    # -- gossip membership + heartbeats -------------------------------
    #: Arm the SWIM-style heartbeat/suspicion protocol. When armed it
    #: *replaces* the cluster's crash-detect timeout as the failure
    #: detector (gossip silence is the signal).
    gossip: bool = True
    #: Interval between one node's heartbeats.
    heartbeat_interval_ns: int = 1_000_000
    #: Silence (no direct or gossiped liveness) before a peer turns
    #: suspect; a peer silent for twice this is declared dead.
    suspicion_timeout_ns: int = 3_000_000
    #: Heartbeat fanout: peers gossiped to per beat (seeded pick).
    gossip_fanout: int = 2

    # -- replay-based re-admission ------------------------------------
    #: Re-image quarantined slots and replay them back into the quorum.
    rejoin: bool = True
    #: Spin-up delay before the replacement starts replaying; None uses
    #: ``CostModel.lifecycle_provision_ns``.
    provision_ns: Optional[int] = None
    #: Bound on the recorded window (RB records + rendezvous verdicts).
    #: Overflow stops recording and *refuses* later rejoins rather than
    #: replaying from a hole — bounded-by-refusal, never silently wrong.
    replay_window: int = 65536

    # -- auto-scaling + drift watchdogs -------------------------------
    #: Arm the p99-drift watchdog over the always-on wait histograms.
    autoscale: bool = False
    #: Watchdog sampling interval.
    watch_interval_ns: int = 2_000_000
    #: Windowed p99 must exceed baseline p99 by this factor to count as
    #: a drifting window.
    drift_factor: float = 4.0
    #: Consecutive drifting (or quiet) windows before scaling up (down).
    drift_windows: int = 3
    #: Rendezvous shard-count bounds the scaler moves within.
    min_shards: int = 1
    max_shards: int = 8
    #: Quarantine-and-replace a node that keeps whole rounds open
    #: (stopped voting) for ``stuck_round_ticks`` watchdog intervals —
    #: proactive replacement long before the rendezvous stall watchdog
    #: would fire.
    proactive_quarantine: bool = False
    stuck_round_ticks: int = 3

    #: Gossip fanout RNG seed; None inherits the MVEE config seed.
    seed: Optional[int] = None

    def __post_init__(self):
        if self.heartbeat_interval_ns <= 0:
            raise PolicyError("heartbeat_interval_ns must be positive")
        if self.suspicion_timeout_ns <= 0:
            raise PolicyError("suspicion_timeout_ns must be positive")
        if self.gossip_fanout < 1:
            raise PolicyError("gossip_fanout must be at least 1")
        if self.replay_window < 1:
            raise PolicyError("replay_window must be at least 1")
        if self.watch_interval_ns <= 0:
            raise PolicyError("watch_interval_ns must be positive")
        if self.drift_factor <= 1.0:
            raise PolicyError("drift_factor must exceed 1.0")
        if self.drift_windows < 1:
            raise PolicyError("drift_windows must be at least 1")
        if not 1 <= self.min_shards <= self.max_shards:
            raise PolicyError("need 1 <= min_shards <= max_shards")
        if self.stuck_round_ticks < 1:
            raise PolicyError("stuck_round_ticks must be at least 1")
