"""Elastic cluster lifecycle: gossip membership, replay-based
re-admission, and auto-scaling (ROADMAP item 1).

Attach a :class:`LifecycleConfig` to ``DistConfig.lifecycle`` to arm
the subsystem; without one, nothing here is even imported and runs
stay bit-identical to the pre-lifecycle design. See DESIGN.md §12.
"""

from repro.lifecycle.autoscale import WATCHED, DriftWatchdog
from repro.lifecycle.config import LifecycleConfig
from repro.lifecycle.gossip import GossipAgent
from repro.lifecycle.manager import LifecycleManager
from repro.lifecycle.window import ReplayWindow

__all__ = [
    "DriftWatchdog",
    "GossipAgent",
    "LifecycleConfig",
    "LifecycleManager",
    "ReplayWindow",
    "WATCHED",
]
