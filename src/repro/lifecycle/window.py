"""Bounded replay window: the recorded state a replacement replays.

The rr insight (O'Callahan et al.) applied to the MVEE: a replica's
entire divergence-relevant input is what crossed the monitor — the RB
mirror records the leader shipped and the rendezvous verdicts the
sharded monitor released. Record those two streams as they happen and a
fresh process, being deterministic, can be driven back to the live
frontier by replaying them instead of restarting the world.

The window is bounded by ``replay_window`` entries. On overflow it
stops recording and refuses all later rejoins — a replay from a window
with a hole would silently diverge, and refusal is the only answer that
keeps the §4 security argument intact. (The "checkpoint" the leader
keeps is the program image itself: every node boots from the identical
installed filesystem, so the window never needs a base snapshot.)
"""

from __future__ import annotations

from typing import List, Tuple

#: Window entry kinds (match wire.STATE_VERDICT / wire.STATE_RECORD).
VERDICT = 0
RECORD = 1


class ReplayWindow:
    """Append-only recorded stream of RB records + rendezvous verdicts."""

    __slots__ = ("limit", "entries", "overflowed", "records", "verdicts")

    def __init__(self, limit: int):
        self.limit = limit
        #: (kind, vtid, seq, artifact): artifact is a (verdict,
        #: canonical-digest) pair or the RemoteRecord, in recorded
        #: (= release/put) order.
        self.entries: List[Tuple[int, int, int, object]] = []
        self.overflowed = False
        self.records = 0
        self.verdicts = 0

    def __len__(self) -> int:
        return len(self.entries)

    def _push(self, kind: int, vtid: int, seq: int, artifact) -> None:
        if self.overflowed:
            return
        if len(self.entries) >= self.limit:
            self.overflowed = True
            return
        self.entries.append((kind, vtid, seq, artifact))

    def record(self, vtid: int, seq: int, record) -> None:
        """A leader-replicated result entered the mirrors."""
        self.records += 1
        self._push(RECORD, vtid, seq, record)

    def release(self, vtid: int, seq: int, verdict: int, digest: int = 0) -> None:
        """A rendezvous verdict was released to every node. ``digest``
        is the canonical digest the round agreed on (0 on mismatch):
        replayed re-admissions verify their own canonical bytes against
        it instead of trusting the bare verdict (DESIGN.md §13)."""
        self.verdicts += 1
        self._push(VERDICT, vtid, seq, (verdict, digest))

    def snapshot(self) -> List[Tuple[int, int, int, object]]:
        """The window as of now, in recorded order (ship this)."""
        return list(self.entries)
