"""repro.fleet — §5.2 server workloads as a distributed fleet.

Replicas of a server spread across :class:`~repro.dist.cluster.DistMvee`
nodes, with external simulated clients hitting the leader only. The
leader survives tens of thousands of clients per run through admission
control at the accept path: a bounded accept queue (queue-based load
leveling), a token-bucket rate limiter, and a configurable shed policy
(reject-with-backpressure vs. silent drop).
"""

from repro.fleet.admission import (
    ADMIT,
    POLICY_DROP,
    POLICY_REJECT,
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.fleet.runner import FleetConfig, FleetResult, run_fleet

__all__ = [
    "ADMIT",
    "POLICY_DROP",
    "POLICY_REJECT",
    "AdmissionConfig",
    "AdmissionController",
    "TokenBucket",
    "FleetConfig",
    "FleetResult",
    "run_fleet",
]
