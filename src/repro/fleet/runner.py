"""Run one §5.2 server as a distributed fleet under offered load.

Topology: the server program is replicated across ``nodes`` DistMvee
nodes in external-service mode (leader-only accepts, adopted readiness
— see :mod:`repro.dist.selective`); a connection-multiplexing client
process lives on its own simulated host sharing the cluster's switch
and drives every connection at the *leader* node only. The leader's
listening socket carries the admission controller.

Always-on fleet instruments (registered on every run, throttled or
not): the ``fleet_accept_wait_ns`` histogram — time a connection spends
in the accept backlog, the queue-based-load-leveling term — and
``client_req_latency_ns`` — client-observed request latency, merged
from the client process at the end of the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.policies import Level
from repro.core.remon import ReMonConfig
from repro.dist.cluster import DistConfig, DistMvee
from repro.dist.selective import fleet_replication
from repro.fleet.admission import AdmissionConfig, AdmissionController
from repro.guest import GuestRuntime
from repro.kernel.kernel import Kernel, KernelConfig
from repro.workloads.clients import (
    ClientResult,
    MuxClientSpec,
    build_mux_client_program,
)
from repro.workloads.servers import SERVERS

FLEET_CLIENT_HOST = "10.9.0.99"


@dataclass
class FleetConfig:
    server: str = "redis"
    nodes: int = 2
    replication: str = "selective"  # selective | full
    #: None = unthrottled baseline: a pass-through controller (no token
    #: bucket, queue bound comfortably above the offered load) that
    #: still stamps accept-queue waits.
    admission: Optional[AdmissionConfig] = None
    connections: int = 256
    requests_per_conn: int = 1
    shard_size: int = 64
    connect_pace_ns: int = 20_000
    request_pace_ns: int = 0
    link_latency_ns: int = 20_000
    client_cores: int = 8
    #: Disarm the controller before the client's shutdown connection so
    #: QUIT always drains the run deterministically.
    drain_admission: bool = True
    max_steps: int = 400_000_000
    obs: Optional[object] = None


@dataclass
class FleetResult:
    config: FleetConfig
    client: ClientResult
    admission: AdmissionController
    mvee_result: object
    stats: dict = field(default_factory=dict)

    def row(self) -> dict:
        """One machine-readable sweep row (BENCH_fleet.json shape)."""
        client = self.client
        ctl = self.admission
        return {
            "server": self.config.server,
            "nodes": self.config.nodes,
            "replication": self.config.replication,
            "throttled": ctl.bucket is not None,
            "policy": ctl.config.policy,
            "connections": self.config.connections,
            "offered": ctl.offered,
            "admitted": ctl.admitted,
            "shed": ctl.shed,
            "shed_fraction": round(ctl.shed_fraction(), 4),
            "completed": client.completed,
            "refused": client.refused,
            "dropped": client.dropped,
            "errors": client.errors,
            "goodput_rps": round(client.throughput_rps(), 2),
            "p50_ns": client.latency_percentile(50),
            "p99_ns": client.latency_percentile(99),
            "max_accept_wait_ns": ctl.max_wait_ns,
            "wire_bytes": self.stats.get("dist_wire_bytes", 0),
            "exit_codes": list(self.mvee_result.exit_codes),
            "diverged": self.mvee_result.diverged,
        }


def run_fleet(config: FleetConfig) -> FleetResult:
    """Build the cluster + client world, run it to completion."""
    spec = SERVERS[config.server]
    dconfig = DistConfig(
        external_service=True,
        link_latency_ns=config.link_latency_ns,
        replication=fleet_replication(full=config.replication == "full"),
        obs=config.obs,
    )
    mvee = DistMvee(
        spec.program(),
        ReMonConfig(replicas=config.nodes, level=Level.SOCKET_RW,
                    dist=dconfig),
    )
    registry = mvee.obs.registry
    accept_hist = registry.histogram("fleet_accept_wait_ns")
    latency_hist = registry.histogram("client_req_latency_ns")

    admission_config = config.admission
    if admission_config is None:
        admission_config = AdmissionConfig(
            queue_capacity=max(config.connections + 8, 128)
        )
    controller = AdmissionController(admission_config)
    controller.accept_wait_hist = accept_hist
    controller.tracer = mvee.obs.tracer
    mvee.nodes[mvee.leader_index].kernel.admission_control = controller

    mvee.start()
    client_kernel = Kernel(
        sim=mvee.sim,
        network=mvee.network,
        config=KernelConfig(cores=config.client_cores),
    )
    result = ClientResult()
    mux = MuxClientSpec(
        connections=config.connections,
        requests_per_conn=config.requests_per_conn,
        shard_size=config.shard_size,
        connect_pace_ns=config.connect_pace_ns,
        request_pace_ns=config.request_pace_ns,
        response_bytes=spec.response_bytes,
        drain_hook=controller.disarm if config.drain_admission else None,
    )
    leader_ip = mvee.nodes[mvee.leader_index].host_ip
    program = build_mux_client_program(leader_ip, spec.port, mux, result)
    process = client_kernel.create_process(
        "mux-client", host_ip=FLEET_CLIENT_HOST
    )
    GuestRuntime(client_kernel, process, program).start()
    mvee.sim.run(max_steps=config.max_steps)

    latency_hist.merge(result.latency)
    for key, value in controller.stats().items():
        registry.expose("fleet_" + key, value)
    for key, value in result.stats().items():
        registry.expose("fleet_client_" + key, value)
    mvee_result = mvee.finalize()
    return FleetResult(
        config=config,
        client=result,
        admission=controller,
        mvee_result=mvee_result,
        stats=dict(mvee_result.stats),
    )
