"""Leader-side admission control for the accept path.

Two cloud patterns compose here (ROADMAP item 1's queue-based load
leveling and throttling/rate-limiting): a token bucket decides whether a
SYN may even join the accept backlog, and the backlog itself is bounded
so queue wait — the dominant tail-latency term past the saturation knee
— cannot grow without bound. What cannot be admitted is *shed* under a
configurable policy:

* ``reject`` — backpressure: the client sees an immediate RST
  (ECONNREFUSED) and can back off or retry elsewhere;
* ``drop`` — the SYN silently vanishes; the client burns its own
  connect timeout (ETIMEDOUT) before noticing. Cheaper for the server,
  crueller to the client — the sweep in :mod:`repro.bench.fleet`
  quantifies the difference.

The controller is pure bookkeeping over virtual time: all math is
integer (token-nanos), so identical runs are bit-identical. The kernel
socket layer talks to it through a three-string protocol —
:meth:`AdmissionController.on_syn` returns ``"admit"``/``"reject"``/
``"drop"`` — keeping ``repro.kernel`` free of fleet imports.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

ADMIT = "admit"
POLICY_REJECT = "reject"
POLICY_DROP = "drop"

_NS_PER_S = 1_000_000_000


class TokenBucket:
    """Deterministic token bucket over virtual nanoseconds.

    Tokens are tracked in token-nanos (1 token == 1e9 token-nanos) so
    refill at ``rate_per_s`` tokens/second needs no floating point:
    ``elapsed_ns * rate_per_s`` token-nanos accrue per elapsed virtual
    nanosecond. The bucket starts full and never holds more than
    ``burst`` tokens.
    """

    __slots__ = ("rate_per_s", "burst", "_token_ns", "_last_ns")

    def __init__(self, rate_per_s: int, burst: int, now_ns: int = 0):
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst <= 0:
            raise ValueError("burst must be positive")
        self.rate_per_s = int(rate_per_s)
        self.burst = int(burst)
        self._token_ns = self.burst * _NS_PER_S
        self._last_ns = now_ns

    def _refill(self, now_ns: int) -> None:
        if now_ns > self._last_ns:
            self._token_ns = min(
                self.burst * _NS_PER_S,
                self._token_ns + (now_ns - self._last_ns) * self.rate_per_s,
            )
            self._last_ns = now_ns

    def try_take(self, now_ns: int) -> bool:
        """Consume one token if available; False means rate-shed."""
        self._refill(now_ns)
        if self._token_ns >= _NS_PER_S:
            self._token_ns -= _NS_PER_S
            return True
        return False

    def tokens(self, now_ns: int) -> int:
        """Whole tokens currently available (after refill)."""
        self._refill(now_ns)
        return self._token_ns // _NS_PER_S


@dataclass(frozen=True)
class AdmissionConfig:
    """Knobs for one listener's admission controller.

    ``rate_per_s=None`` disables the token bucket (queue bound only);
    that is also how the unthrottled baseline is modelled — a
    pass-through controller with a huge queue, so queue-wait stamping
    stays on and both modes report ``fleet_accept_wait_ns``.
    """

    queue_capacity: int = 128
    rate_per_s: Optional[int] = None
    burst: int = 64
    policy: str = POLICY_REJECT
    #: Client-side connect timeout modelled for silently dropped SYNs
    #: (kernel retransmits folded in).
    drop_timeout_ns: int = 250_000_000

    def __post_init__(self):
        if self.policy not in (POLICY_REJECT, POLICY_DROP):
            raise ValueError("unknown shed policy %r" % (self.policy,))
        if self.queue_capacity <= 0:
            raise ValueError("queue_capacity must be positive")


class AdmissionController:
    """Admission decisions + accounting for one listening socket.

    Invariants (property-tested in ``tests/fleet``):

    * ``admitted + shed == offered`` after every decision;
    * the accept backlog never exceeds ``queue_capacity``;
    * admission is FIFO — connections are accepted in SYN-arrival order
      (the queue-wait stamps are a parallel deque to the kernel backlog).
    """

    def __init__(self, config: AdmissionConfig, now_ns: int = 0):
        self.config = config
        self.bucket = (
            TokenBucket(config.rate_per_s, config.burst, now_ns)
            if config.rate_per_s is not None
            else None
        )
        self.enabled = True
        self.offered = 0
        self.admitted = 0
        self.shed_rate = 0  # token bucket said no
        self.shed_queue = 0  # backlog at capacity
        self.accepted = 0  # dequeued by accept(2)
        self.total_wait_ns = 0
        self.max_wait_ns = 0
        self._enq_ns: deque = deque()
        #: Optional repro.obs hooks, set by the fleet runner.
        self.accept_wait_hist = None
        self.tracer = None

    # -- kernel-facing protocol (duck-typed from repro.kernel.sockets) ----
    @property
    def drop_timeout_ns(self) -> int:
        return self.config.drop_timeout_ns

    def attach(self, listener) -> None:
        """Install on a listening socket (called from sys_listen)."""
        listener.admission = self
        listener.backlog_limit = self.config.queue_capacity

    def disarm(self) -> None:
        """Stop shedding (used to drain the final shutdown connection)."""
        self.enabled = False

    def on_syn(self, now_ns: int, backlog_len: int) -> str:
        self.offered += 1
        if self.enabled:
            if self.bucket is not None and not self.bucket.try_take(now_ns):
                self.shed_rate += 1
                self._trace("shed_rate", now_ns)
                return self.config.policy
            if backlog_len >= self.config.queue_capacity:
                self.shed_queue += 1
                self._trace("shed_queue", now_ns)
                return self.config.policy
        self.admitted += 1
        return ADMIT

    def on_enqueue(self, now_ns: int) -> None:
        self._enq_ns.append(now_ns)

    def on_dequeue(self, now_ns: int) -> int:
        """Stamp one accept; returns the connection's backlog wait."""
        wait = now_ns - self._enq_ns.popleft() if self._enq_ns else 0
        self.accepted += 1
        self.total_wait_ns += wait
        if wait > self.max_wait_ns:
            self.max_wait_ns = wait
        if self.accept_wait_hist is not None:
            self.accept_wait_hist.observe(wait)
        return wait

    # -- reporting --------------------------------------------------------
    @property
    def shed(self) -> int:
        return self.shed_rate + self.shed_queue

    def shed_fraction(self) -> float:
        return self.shed / self.offered if self.offered else 0.0

    def stats(self) -> dict:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "shed": self.shed,
            "shed_rate_limited": self.shed_rate,
            "shed_queue_full": self.shed_queue,
            "accepted": self.accepted,
            "max_accept_wait_ns": self.max_wait_ns,
        }

    def _trace(self, what: str, now_ns: int) -> None:
        tracer = self.tracer
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.instant("fleet", what, t=now_ns)
