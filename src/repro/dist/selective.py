"""Selective replication policies (dMVX §4's central idea).

In a distributed MVEE, every syscall result the leader ships to its
followers costs cross-node messages. Naive ("full") replication ships
everything, which is what makes distributed MVEEs slow. dMVX observes
that followers can *reproduce* most results locally — file reads hit an
identical local filesystem image, process-info calls are deterministic,
sleeps need no data — and only results that depend on state a follower
does not have (external socket I/O, the leader's clock) must cross the
network.

:class:`SelectiveReplication` classifies each unmonitored call as

* ``LOCAL`` — every node executes it against its own kernel; followers
  ship an async digest of the arguments for lazy cross-checking;
* ``REPLICATED`` — only the leader executes it (leader-only execution
  of externally visible I/O); followers adopt the result from the
  remote replication buffer mirror.

Monitored (rendezvous) calls never reach this classifier — they take
the lockstep path regardless of policy.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Optional

LOCAL = "local"
REPLICATED = "replicated"

#: Wire traffic classes (per-class byte/frame accounting on the
#: transport). Replicated results additionally suffix their coarse
#: syscall class: ``result_<syscall_class()>``.
CLS_DIGEST = "digest"
CLS_RENDEZVOUS = "rendezvous"
CLS_CONTROL = "control"
CLS_HANDOFF = "handoff"
CLS_LIFECYCLE = "lifecycle"
CLS_RESULT_PREFIX = "result_"

FRAME_CLASSES = (CLS_DIGEST, CLS_RENDEZVOUS, CLS_CONTROL, CLS_HANDOFF,
                 CLS_LIFECYCLE)


def frame_class(frame_type: int) -> str:
    """Default traffic class for a wire frame type (replicated results
    are classified per-syscall by the sender instead)."""
    from repro.dist import wire

    if frame_type in (wire.T_CALL_DIGEST,):
        return CLS_DIGEST
    if frame_type in (wire.T_RENDEZVOUS_REQ, wire.T_RENDEZVOUS_OK,
                      wire.T_ROUND_RESUBMIT):
        return CLS_RENDEZVOUS
    if frame_type == wire.T_SHARD_HANDOFF:
        return CLS_HANDOFF
    if frame_type in (wire.T_LIFECYCLE_GOSSIP, wire.T_LIFECYCLE_STATE):
        return CLS_LIFECYCLE
    return CLS_CONTROL

#: Calls whose effect is inherently per-process/per-node: replicating a
#: result would be meaningless (a futex wake on node A does not wake a
#: thread on node B). Always LOCAL, even under full replication.
_PROCESS_LOCAL = frozenset(
    {
        "futex",
        "madvise",
        "fadvise64",
        "sched_yield",
        "nanosleep",
        "epoll_wait",
        "epoll_ctl",
        "alarm",
        "setitimer",
        "getitimer",
        "timerfd_settime",
        "timerfd_gettime",
    }
)

#: Wall-clock queries: the one non-I/O class a follower cannot reproduce
#: (its clock skews from the leader's).
_TIME_CALLS = frozenset({"clock_gettime", "gettimeofday", "time"})

#: Socket-data calls that are replicated by name alone (no fd needed to
#: tell they touch the network).
_SOCKET_DATA = frozenset(
    {
        "recvfrom",
        "recvmsg",
        "recvmmsg",
        "sendto",
        "sendmsg",
        "sendmmsg",
        "sendfile",
    }
)

#: fd-polymorphic data calls: socket-data iff the descriptor is one.
_FD_DATA = frozenset(
    {"read", "readv", "pread64", "preadv", "write", "writev", "pwrite64", "pwritev"}
)

#: External-service mode (repro.fleet): calls whose results only the
#: leader can produce, because the clients generating the events live
#: outside the cluster and their SYNs/segments reach the leader's node
#: only. ``accept``/``accept4`` stay on the rendezvous lane for lockstep
#: argument agreement but execute leader-only (followers adopt the fd);
#: readiness calls switch from process-local to replicated so followers
#: observe the leader's event stream instead of their forever-idle
#: listening sockets.
EXTERNAL_LEADER_CALLS = frozenset({"accept", "accept4"})

_EXTERNAL_READINESS = frozenset({"epoll_wait", "epoll_ctl", "poll", "select"})

_PROC_INFO = frozenset(
    {
        "getpid",
        "gettid",
        "getpgrp",
        "getppid",
        "getgid",
        "getegid",
        "getuid",
        "geteuid",
        "getcwd",
        "getpriority",
        "getrusage",
        "times",
        "capget",
        "sysinfo",
        "uname",
    }
)

_SOCKETISH_KINDS = ("sock", "listen")


@lru_cache(maxsize=None)
def syscall_class(name: str, fd_kind: Optional[str] = None) -> str:
    """Coarse syscall class used to break down wire traffic in stats:
    ``time`` / ``sock`` / ``file`` / ``proc`` / ``mgmt``."""
    if name in _TIME_CALLS:
        return "time"
    if name in _SOCKET_DATA or (name in _FD_DATA and fd_kind in _SOCKETISH_KINDS):
        return "sock"
    if name in _FD_DATA or name in (
        "lseek", "stat", "lstat", "fstat", "newfstatat", "getdents",
        "readlink", "readlinkat", "access", "faccessat", "sync", "syncfs",
        "fsync", "fdatasync", "select", "poll", "ioctl", "fcntl",
    ):
        return "file"
    if name in _PROC_INFO or name in _PROCESS_LOCAL:
        return "proc"
    return "mgmt"


class SelectiveReplication:
    """A replication policy: which unmonitored calls cross the network.

    Args:
        name: label used in benchmark tables.
        replicate_time: ship the leader's clock reads to followers
            (keeps time-dependent control flow identical across nodes).
        full: replicate *every* reproducible call too — the naive
            baseline dMVX measures against.
        external: the service's clients live outside the cluster (only
            the leader's node receives their traffic), so readiness
            calls become replicated — see :data:`EXTERNAL_LEADER_CALLS`.
    """

    def __init__(self, name: str = "selective", replicate_time: bool = True,
                 full: bool = False, external: bool = False):
        self.name = name
        self.replicate_time = replicate_time
        self.full = full
        self.external = external
        # classify() runs once per unmonitored syscall on every node;
        # the (name, fd_kind) domain is tiny, so memoize it.
        self._memo = {}

    def classify(self, name: str, fd_kind: Optional[str] = None) -> str:
        key = (name, fd_kind)
        lane = self._memo.get(key)
        if lane is None:
            lane = self._memo[key] = self._classify(name, fd_kind)
        return lane

    def _classify(self, name: str, fd_kind: Optional[str]) -> str:
        if self.external and name in _EXTERNAL_READINESS:
            return REPLICATED
        if name in _PROCESS_LOCAL:
            return LOCAL
        if self.full:
            return REPLICATED
        if name in _SOCKET_DATA:
            return REPLICATED
        if name in _FD_DATA and fd_kind in _SOCKETISH_KINDS:
            return REPLICATED
        if self.replicate_time and name in _TIME_CALLS:
            return REPLICATED
        return LOCAL

    def __repr__(self):
        return "SelectiveReplication(%r, full=%r)" % (self.name, self.full)


def selective_replication() -> SelectiveReplication:
    """dMVX-style: replicate only what followers cannot reproduce."""
    return SelectiveReplication("selective")


def full_replication() -> SelectiveReplication:
    """Naive baseline: replicate every non-process-local result."""
    return SelectiveReplication("full", full=True)


def fleet_replication(full: bool = False) -> SelectiveReplication:
    """External-service policies for `repro.fleet` server fleets."""
    if full:
        return SelectiveReplication("full-fleet", full=True, external=True)
    return SelectiveReplication("selective-fleet", external=True)
