"""Self-describing payload codec for RB mirror traffic.

Replicated syscall results dominate cross-node wire volume, and their
payloads are extremely redundant: a server loop replays near-identical
reads (dMVX's transfer units carry the same response bytes over and
over), and out-buffers are full of byte runs. This module shrinks those
payloads with two cheap, allocation-light schemes:

* **RLE** — byte-run coding tuned for out-buffer fill patterns;
* **dictionary** — a small per-channel ring of recently shipped
  payloads; an exact repeat is sent as a 6-byte reference instead of
  the payload itself.

Every coded payload is *self-describing*: one tag byte (``TAG_RAW`` /
``TAG_RLE`` / ``TAG_DICT``) followed by the tag-specific body, so a
frame can always be decoded without negotiation, and incompressible
payloads ship raw behind a one-byte tag. Dictionary references carry a
CRC32 of the original payload: a desynchronized or corrupted reference
is rejected as a :class:`~repro.errors.WireError` (a transmission
fault), never silently expanded into wrong bytes.

Synchronization: the transport keeps one sender-side dictionary per
outgoing channel and one receiver-side dictionary per directed pair.
Delivery is FIFO per directed pair, and both sides push every processed
payload in frame order, so the receiver's ring always matches the state
the sender encoded against.

RLE body layout — a sequence of blocks, each one control byte ``c``::

    c < 0x80   literal: the next c+1 bytes are copied verbatim (1..128)
    c >= 0x80  run: the next byte repeats (c & 0x7F) + 3 times (3..130)
"""

from __future__ import annotations

import struct
import zlib
from typing import List, Optional

from repro.errors import WireError

TAG_RAW = 0
TAG_RLE = 1
TAG_DICT = 2

TAG_NAMES = {TAG_RAW: "raw", TAG_RLE: "rle", TAG_DICT: "dict"}

#: Ring slots per directed channel; u8 slot index on the wire.
DICT_SLOTS = 16

_TAG_RAW_B = bytes([TAG_RAW])
_TAG_RLE_B = bytes([TAG_RLE])
_TAG_DICT_B = bytes([TAG_DICT])

_DICT_REF = struct.Struct("<BI")  # slot index, crc32 of the raw payload

_MAX_LITERAL = 128
_MAX_RUN = 130


def rle_encode(data: bytes) -> bytes:
    """Byte-run coding of ``data`` (body only, no tag)."""
    out = bytearray()
    literal = bytearray()

    def flush_literal() -> None:
        offset = 0
        while offset < len(literal):
            chunk = literal[offset:offset + _MAX_LITERAL]
            out.append(len(chunk) - 1)
            out.extend(chunk)
            offset += _MAX_LITERAL
        del literal[:]

    i, n = 0, len(data)
    while i < n:
        byte = data[i]
        j = i + 1
        while j < n and data[j] == byte:
            j += 1
        count = j - i
        i = j
        while count >= 3:
            take = min(count, _MAX_RUN)
            flush_literal()
            out.append(0x80 | (take - 3))
            out.append(byte)
            count -= take
        if count:
            literal.extend([byte] * count)
    flush_literal()
    return bytes(out)


def rle_decode(body: bytes) -> bytes:
    """Inverse of :func:`rle_encode`; raises WireError on truncation."""
    out = bytearray()
    i, n = 0, len(body)
    while i < n:
        control = body[i]
        i += 1
        if control < 0x80:
            length = control + 1
            if i + length > n:
                raise WireError("truncated RLE literal block")
            out += body[i:i + length]
            i += length
        else:
            if i >= n:
                raise WireError("truncated RLE run block")
            out += bytes([body[i]]) * ((control & 0x7F) + 3)
            i += 1
    return bytes(out)


class PayloadDict:
    """A small ring of recently seen payloads, shared by convention
    between the two ends of one directed channel (FIFO delivery keeps
    the rings in lockstep without any negotiation)."""

    __slots__ = ("slots", "_index", "_next")

    def __init__(self, nslots: int = DICT_SLOTS):
        self.slots: List[Optional[bytes]] = [None] * nslots
        self._index = {}
        self._next = 0

    def find(self, payload: bytes) -> Optional[int]:
        return self._index.get(payload)

    def push(self, payload: bytes) -> None:
        if payload in self._index:
            return
        slot = self._next
        old = self.slots[slot]
        if old is not None:
            del self._index[old]
        self.slots[slot] = payload
        self._index[payload] = slot
        self._next = (slot + 1) % len(self.slots)

    def get(self, slot: int) -> bytes:
        if not 0 <= slot < len(self.slots) or self.slots[slot] is None:
            raise WireError("dictionary reference to empty slot %d" % slot)
        return self.slots[slot]


def encode_payload(payload: bytes, dictionary: Optional[PayloadDict] = None) -> bytes:
    """Code one payload into ``tag + body``.

    With a dictionary, an exact repeat becomes a 6-byte reference;
    otherwise RLE is tried and kept only if it actually shrinks the
    payload — incompressible data ships raw behind the tag byte. The
    payload is entered into the dictionary either way (mirrored by
    :func:`decode_payload` on the other side).
    """
    payload = bytes(payload)
    coded = None
    if dictionary is not None:
        slot = dictionary.find(payload)
        if slot is not None:
            coded = _TAG_DICT_B + _DICT_REF.pack(
                slot, zlib.crc32(payload) & 0xFFFFFFFF
            )
        dictionary.push(payload)
    if coded is None:
        body = rle_encode(payload)
        if len(body) + 1 < len(payload):
            coded = _TAG_RLE_B + body
        else:
            coded = _TAG_RAW_B + payload
    return coded


def decode_payload(coded: bytes, dictionary: Optional[PayloadDict] = None) -> bytes:
    """Inverse of :func:`encode_payload`; raises WireError on any
    malformed tag, truncated body, or dictionary mismatch."""
    if len(coded) < 1:
        raise WireError("coded payload missing its tag byte")
    tag = coded[0]
    body = coded[1:]
    if tag == TAG_RAW:
        raw = bytes(body)
    elif tag == TAG_RLE:
        raw = rle_decode(body)
    elif tag == TAG_DICT:
        if dictionary is None:
            raise WireError("dictionary-coded payload on a dictionary-less channel")
        if len(body) != _DICT_REF.size:
            raise WireError("dictionary reference is %d bytes, want %d"
                            % (len(body), _DICT_REF.size))
        slot, crc = _DICT_REF.unpack(body)
        raw = dictionary.get(slot)
        if zlib.crc32(raw) & 0xFFFFFFFF != crc:
            raise WireError("dictionary payload checksum mismatch in slot %d" % slot)
    else:
        raise WireError("unknown codec tag %d" % tag)
    if dictionary is not None:
        dictionary.push(raw)
    return raw
