"""Per-node state and the distributed syscall interceptor.

Each simulated node owns a full kernel (its own filesystem image,
scheduler cores, fd space) and runs exactly one replica. There is no
ptrace tracer and no in-process RB: the node's
:class:`DistInterceptor` hooks the kernel's syscall path and sorts
every call into one of three lanes:

* **rendezvous** — monitored calls (resource management and anything
  the relaxation policy keeps monitored). All nodes submit an argument
  digest to the leader-hosted monitor, wait for its verdict, then — on
  agreement — every node executes the call against its *own* kernel.
  This differs from single-machine GHUMVEE, where only the master
  executes most monitored calls: here each node has real local
  resources (files, mappings, descriptors), so local execution is both
  possible and necessary, and descriptor numbers stay aligned across
  nodes because allocation order is identical.
* **replicated** — unmonitored calls whose results followers cannot
  reproduce (the :mod:`repro.dist.selective` policy decides). The
  leader executes, then pushes the result + out-buffers to every
  follower's RB mirror; followers adopt without executing.
* **local** — unmonitored calls every node can reproduce. Executed
  locally everywhere; followers ship an async digest the monitor
  lazily cross-checks (the distributed analogue of the paper's §4
  run-ahead window: a diverged follower is caught one message latency
  late, never allowed to affect the outside world directly, since all
  externally-visible I/O is leader-only or rendezvous).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.comparator import serialize_args
from repro.dist import selective as sel
from repro.diversity.profile import make_node_profiles
from repro.dist.remote_rb import RBMirror, RemoteRecord
from repro.dist.wire import (
    Frame,
    STATE_RECORD,
    STATE_VERDICT,
    T_CALL_DIGEST,
    T_RENDEZVOUS_REQ,
    T_ROUND_RESUBMIT,
    T_SYSCALL_RESULT,
    call_digest,
    digest_payload,
)
from repro.kernel import constants as C
from repro.kernel.sockets import AdoptedSocket
from repro.kernel.structs import SOCKADDR_SIZE
from repro.kernel.vfs import OpenFileDescription
from repro.kernel.waitq import wait_interruptible
from repro.sim import Sleep


class NodeFdView:
    """FileMapView stand-in reading the node's own descriptor table.

    Single-machine IP-MON reads fd kinds from the shared metadata page
    GHUMVEE maintains; a distributed node has no shared page but *does*
    own real descriptors, so the kinds come straight from its fd table.
    """

    def __init__(self, process):
        self.process = process

    def fd_kind(self, fd: int) -> Optional[str]:
        entry = self.process.fdtable.get(fd)
        if entry is None:
            return None
        return getattr(entry.ofd.file, "kind", None)

    def is_nonblocking(self, fd: int) -> bool:
        entry = self.process.fdtable.get(fd)
        return bool(entry and entry.ofd.nonblocking)

    def may_block(self, name: str, fd: int) -> bool:
        kind = self.fd_kind(fd)
        if kind in ("reg", "dir", "chr", None):
            return False
        return not self.is_nonblocking(fd)


class ReplicaView:
    """The view object the shared IpmonHandler table operates through."""

    def __init__(self, process, policy, epoll_map, node_index: int):
        self.space = process.space
        self.policy = policy
        self.filemap = NodeFdView(process)
        self.epoll_map = epoll_map
        self.replica_index = node_index


class Node:
    """One simulated machine: a kernel, one replica, and mirror state."""

    def __init__(self, index: int, kernel, process, layout, profile=None):
        self.index = index
        self.kernel = kernel
        self.process = process
        self.layout = layout
        #: This node's diversity transform (DESIGN.md §13). Omitted, the
        #: node runs the canonical (homogeneous) profile: shared layout
        #: family, canonical guest ABI, no canonicalization work.
        self.profile = (
            profile
            if profile is not None
            else make_node_profiles(index + 1)[index]
        )
        self.mirror = RBMirror(index)
        #: This node's MonitorShard, once it owns rendezvous rounds
        #: (attached by DistMonitor.shard on first service).
        self.shard = None
        self.view: Optional[ReplicaView] = None
        self.runtime = None
        self.interceptor: Optional["DistInterceptor"] = None
        #: True while this node's monitor link is routed around by an
        #: open circuit breaker: it keeps executing and adopting the
        #: leader's replicated results (those arrive via scheduled
        #: delivery), but its vote is excluded from rendezvous quorums.
        self.link_degraded = False
        #: Replay-based re-admission (repro.lifecycle). ``rejoining``
        #: is True from re-image to the live frontier: the slot holds a
        #: fresh replacement process whose vote gates nothing yet.
        #: ``replaying`` keeps the interceptor consulting the mirror
        #: for pre-recorded artifacts (cheap adoption instead of
        #: re-voting rounds the cluster already decided).
        self.rejoining = False
        self.replaying = False
        #: Recorded window order for replay (list of (kind, vtid, seq)
        #: in release/put order) plus the adoption cursor. Live nodes
        #: wake in uniform release order; a replay that adopted at
        #: per-thread speed could interleave shared-namespace
        #: allocation (fd numbers) differently and fail the canonical
        #: digest verification against the recorded run.
        self.replay_plan: list = []
        self.replay_cursor = 0

    @property
    def host_ip(self) -> str:
        return self.process.host_ip

    def __repr__(self):
        return "Node(%d, %s)" % (self.index, self.host_ip)


class _DigestView:
    """A request stand-in fed to serialize_args with virtualized args."""

    __slots__ = ("name", "args")

    def __init__(self, name: str, args: tuple):
        self.name = name
        self.args = args


class DistInterceptor:
    """Kernel syscall hook routing one node's calls through the MVEE."""

    def __init__(self, mvee, node: Node):
        self.mvee = mvee
        self.node = node
        self._seq: Dict[int, int] = {}
        self._self_ip = node.host_ip.encode()
        self._self_ip_str = node.host_ip
        # inet_aton form, as it appears inside serialized sockaddr bufs.
        # A 4-byte pattern can in principle collide with unrelated data,
        # but the x.y.z.w octets of our node addresses make that vanishly
        # unlikely in practice and a collision only *loosens* one digest.
        self._self_ip_packed = bytes(
            int(octet) for octet in node.host_ip.split(".")
        )

    def _scrub(self, blob: bytes) -> bytes:
        """Strip this node's own IP (text and inet_aton forms) from a
        serialized record: a node-local identifier, compared by role."""
        if self._self_ip in blob:
            blob = blob.replace(self._self_ip, b"<self-addr>")
        if self._self_ip_packed in blob:
            blob = blob.replace(self._self_ip_packed, b"<self-addr>")
        return blob

    def _virtualized(self, req):
        """Address virtualization (dMVX rewrites sockaddrs the same way
        before comparison): a node's own IP is a node-local identifier,
        so an argument naming it — e.g. connecting to one's own loopback
        listener — is compared by role, not by value, exactly like a
        pointer under ASLR. Arguments naming a *different* host are
        still compared raw."""
        if not any(a == self._self_ip_str for a in req.args):
            return req
        return _DigestView(
            req.name,
            tuple(
                "<self-addr>" if a == self._self_ip_str else a for a in req.args
            ),
        )

    # -- kernel hook protocol ---------------------------------------------
    def intercept(self, thread, req):
        if thread.process is not self.node.process:
            return None
        if getattr(req, "bypass_agents", False):
            return None
        return self._run(thread, req)

    # ------------------------------------------------------------------
    def _run(self, thread, req):
        mvee = self.mvee
        node = self.node
        kernel = node.kernel
        if (
            mvee.solo
            or mvee.shutting_down
            or node.process.quarantined
            or node.process.exited
        ):
            result = yield from kernel.invoke(thread, req)
            return result
        costs = kernel.config.costs
        vtid = thread.vtid
        seq = self._seq.get(vtid, 0)
        self._seq[vtid] = seq + 1
        if node.replaying:
            # Re-admission fast-replay: adopt recorded artifacts at
            # lifecycle_replay_ns each (no digest, no round trip). A
            # miss on an artifact-bearing lane is the live frontier —
            # the node is re-admitted and the call falls through to the
            # normal path below.
            handled, result = yield from self._replay(thread, req, seq)
            if handled:
                return result
        blob = serialize_args(
            self._virtualized(req), node.process.space, abi=node.profile.abi
        )
        local = self._scrub(blob.encode())
        yield Sleep(costs.compare_cost_ns(len(local), len(req.args)), cpu=True)
        if node.profile.abi.canonical:
            # Canonical-ABI nodes — every node of a homogeneous cluster —
            # hash their local bytes directly: the local encoding *is*
            # the canonical form, so no re-encode and no extra virtual
            # time (a Sleep(0) here would still perturb event ordering).
            canonical = local
            canonical_ns = 0
        else:
            # Heterogeneous ABI: the guest-memory encoding is node-
            # private (widths/padding), so the digest pipeline re-encodes
            # to canonical form and bills the rewrite (DESIGN.md §13).
            canonical = self._scrub(blob.canonical())
            canonical_ns = costs.canonical_cost_ns(len(canonical))
            yield Sleep(canonical_ns, cpu=True)
            stats = mvee.stats
            stats["canonical_calls"] = stats.get("canonical_calls", 0) + 1
            stats["canonical_cost_ns"] = (
                stats.get("canonical_cost_ns", 0) + canonical_ns
            )
        mvee.obs.registry.histogram("dist_canonical_wait_ns").observe(canonical_ns)
        digest = call_digest(req.name, canonical)
        handler = mvee.handlers.get(req.name)
        view = node.view
        if mvee.external and req.name in sel.EXTERNAL_LEADER_CALLS:
            result = yield from self._external_accept(thread, req, seq, digest)
            return result
        if handler is None or handler.maybe_checked(view, req):
            result = yield from self._rendezvous(thread, req, seq, digest)
            return result
        fd_kind = view.filemap.fd_kind(req.arg(0)) if req.args else None
        cls = sel.syscall_class(req.name, fd_kind)
        if mvee.replication.classify(req.name, fd_kind) == sel.LOCAL:
            result = yield from self._local(thread, req, seq, digest, cls)
            return result
        if node.index == mvee.leader_index:
            result = yield from self._lead_replicated(
                thread, req, seq, digest, cls, handler, view
            )
            return result
        result = yield from self._follow_replicated(
            thread, req, seq, digest, cls, handler, view
        )
        return result

    # -- replay lane (repro.lifecycle re-admission) ------------------------
    def _replay(self, thread, req, seq):
        """Adopt one recorded artifact, or report the live frontier.

        Returns ``(True, result)`` when the call was satisfied from the
        replayed window, ``(False, None)`` when the caller must take the
        normal path. Artifact-bearing lanes (rendezvous, replicated,
        external accept) treat a missing artifact as the frontier: the
        cluster has not decided this call yet, so the replica is
        re-admitted and votes from here on. Local calls execute against
        the node's own kernel exactly as they would live — replay only
        skips their digest traffic while still pre-frontier.
        """
        mvee, node = self.mvee, self.node
        lifecycle = mvee.lifecycle
        costs = node.kernel.config.costs
        vtid = thread.vtid
        view = node.view
        handler = mvee.handlers.get(req.name)
        if mvee.external and req.name in sel.EXTERNAL_LEADER_CALLS:
            record = node.mirror.get(vtid, seq)
            if record is None:
                if node.rejoining:
                    lifecycle.reach_frontier(node)
                return False, None
            yield from self._claim_replay_turn(thread, STATE_RECORD, vtid, seq)
            yield Sleep(costs.lifecycle_replay_ns, cpu=True)
            if record.result >= 0:
                self._materialize_accept(thread, req, record)
            node.mirror.consume(vtid, seq)
            lifecycle.stats["replayed_records"] += 1
            self._finish_replay_turn()
            return True, record.result
        if handler is None or handler.maybe_checked(view, req):
            verdict = node.mirror.verdict(vtid, seq)
            if verdict is None:
                if node.rejoining:
                    lifecycle.reach_frontier(node)
                return False, None
            yield from self._claim_replay_turn(thread, STATE_VERDICT, vtid, seq)
            yield Sleep(costs.lifecycle_replay_ns, cpu=True)
            lifecycle.stats["replayed_verdicts"] += 1
            if verdict != 1:
                self._finish_replay_turn()
                result = yield from mvee.park(thread)
                return True, result
            # Re-admission verification (DESIGN.md §13): the recorded
            # verdict carries the round's *canonical* digest, so the
            # replayed replica proves it would have voted with the
            # cluster — against canonical bytes, never the recorder's
            # node-local encoding (which a heterogeneous ABI makes
            # incomparable by construction).
            expected = node.mirror.verdict_digest(vtid, seq)
            if expected:
                verified = yield from self._verify_replay(
                    thread, req, expected
                )
                if not verified:
                    self._finish_replay_turn()
                    result = yield from mvee.park(thread)
                    return True, result
            result = yield from node.kernel.invoke(thread, req)
            self._finish_replay_turn()
            return True, result
        fd_kind = view.filemap.fd_kind(req.arg(0)) if req.args else None
        if mvee.replication.classify(req.name, fd_kind) == sel.LOCAL:
            if not node.rejoining:
                # Past the frontier: local calls resume digest traffic.
                return False, None
            yield Sleep(costs.lifecycle_replay_ns, cpu=True)
            lifecycle.stats["replayed_local"] += 1
            result = yield from node.kernel.invoke(thread, req)
            return True, result
        record = node.mirror.get(vtid, seq)
        if record is None:
            # Nothing recorded (or promoted to leader mid-replay): the
            # normal lane handles waiting/executing.
            if node.rejoining:
                lifecycle.reach_frontier(node)
            return False, None
        # Same replica-local bookkeeping as a live adoption (e.g. epoll
        # data tags), just billed at replay cost.
        yield from self._claim_replay_turn(thread, STATE_RECORD, vtid, seq)
        observe = getattr(handler, "observe", None)
        if observe is not None:
            observe(view, req)
        yield Sleep(costs.lifecycle_replay_ns, cpu=True)
        handler.apply_results(view, req, record.result, record.payload)
        node.mirror.consume(vtid, seq)
        lifecycle.stats["replayed_records"] += 1
        self._finish_replay_turn()
        return True, record.result

    def _claim_replay_turn(self, thread, kind, vtid, seq):
        """Block until this recorded artifact is next in window order.

        Live nodes wake threads in uniform scheduled release order (the
        discipline `_release` documents); a replay that adopted at
        per-thread speed can interleave shared-namespace allocation —
        fd numbers most visibly — differently from the recorded run,
        and the canonical digest verification would (correctly) refuse
        the re-admission. Replaying the window as a totally ordered
        log, rr-style, reproduces the recorded interleaving exactly.
        """
        node = self.node
        plan = node.replay_plan
        if not plan:
            return
        want = (kind, vtid, seq)
        while (
            node.replay_cursor < len(plan)
            and plan[node.replay_cursor] != want
        ):
            event = node.mirror.waitq.register()
            status, _ = yield from wait_interruptible(thread, event)
            if status != "fired":
                node.mirror.waitq.unregister(event)

    def _finish_replay_turn(self):
        """Advance the window cursor and wake the next claimant."""
        node = self.node
        if not node.replay_plan:
            return
        node.replay_cursor += 1
        node.mirror.waitq.notify_all(self.mvee.sim)

    def _verify_replay(self, thread, req, expected):
        """Recompute this node's canonical digest for one replayed
        rendezvous and compare it to the recorded verdict's. Returns
        False (after flagging a divergence) on mismatch."""
        from repro.core.events import DivergenceReport

        mvee, node = self.mvee, self.node
        costs = node.kernel.config.costs
        lifecycle = mvee.lifecycle
        blob = serialize_args(
            self._virtualized(req), node.process.space, abi=node.profile.abi
        )
        canonical = self._scrub(blob.canonical())
        verify_ns = costs.compare_cost_ns(len(canonical), len(req.args))
        if not node.profile.abi.canonical:
            verify_ns += costs.canonical_cost_ns(len(canonical))
        yield Sleep(verify_ns, cpu=True)
        stats = lifecycle.stats
        if call_digest(req.name, canonical) == expected:
            stats["replayed_verified"] = stats.get("replayed_verified", 0) + 1
            return True
        stats["replay_verify_failures"] = (
            stats.get("replay_verify_failures", 0) + 1
        )
        mvee.divergence(
            DivergenceReport(
                mvee.sim.now,
                thread.vtid,
                req.name,
                "replayed %s diverges from the recorded canonical verdict "
                "digest on node %d" % (req.name, node.index),
                detected_by="replay",
                replica=node.index,
            )
        )
        return False

    # -- local lane --------------------------------------------------------
    def _local(self, thread, req, seq, digest, cls):
        mvee, node = self.mvee, self.node
        mvee.stats["local_calls"] += 1
        if node.index == mvee.leader_index:
            mvee.monitor.record_reference(thread.vtid, seq, req.name, digest)
        else:
            frame = Frame(
                T_CALL_DIGEST, node.index, thread.vtid, seq,
                payload=digest_payload(digest, req.name),
            )
            yield Sleep(
                node.kernel.config.costs.dist_frame_cost_ns(frame.size()), cpu=True
            )
            mvee.send_frame(
                node.index, mvee.leader_index, frame, cls=sel.CLS_DIGEST
            )
        result = yield from node.kernel.invoke(thread, req)
        return result

    # -- replicated lane ---------------------------------------------------
    def _lead_replicated(self, thread, req, seq, digest, cls, handler, view):
        mvee, node = self.mvee, self.node
        costs = node.kernel.config.costs
        mvee.stats["replicated_calls"] += 1
        mvee.monitor.record_reference(thread.vtid, seq, req.name, digest)
        # Replica-local bookkeeping before execution (EpollCtlHandler
        # records each replica's own data tags so adopted epoll events
        # can be localized). Only external-service policies route calls
        # with an observe() hook through this lane.
        observe = getattr(handler, "observe", None)
        if observe is not None:
            observe(view, req)
        result = yield from node.kernel.invoke(thread, req)
        if not isinstance(result, int):
            return result
        payload = handler.collect_results(view, req, result)
        frame = Frame(
            T_SYSCALL_RESULT, node.index, thread.vtid, seq,
            aux=result, payload=payload,
        )
        # dMVX's copy-to-transfer-unit tax: the leader's critical path
        # pays the RB write plus the frame encode for every replicated
        # call — the term selective replication exists to shrink. With
        # compression on it also pays the codec scan over the raw bytes
        # (the CPU side of the bytes-vs-CPU trade).
        encode_ns = costs.rb_write_base_ns + costs.dist_frame_cost_ns(frame.size())
        if mvee.dconfig.compress is not None and payload:
            encode_ns += costs.dist_compress_cost_ns(len(payload))
        yield Sleep(encode_ns, cpu=True)
        sim = node.kernel.sim
        record = RemoteRecord(result, payload, req.name)
        node.mirror.put(thread.vtid, seq, record, sim)
        if mvee.lifecycle is not None:
            mvee.lifecycle.record_result(thread.vtid, seq, record)
        for peer in mvee.live_peers(node.index):
            mvee.send_frame(
                node.index, peer, frame, cls=sel.CLS_RESULT_PREFIX + cls
            )
        # Scheduled delivery (same discipline as rendezvous releases):
        # the record becomes visible on every follower at ONE instant,
        # one release lag out, regardless of how batching staggered the
        # physical frames — urgent flushes on one channel must not let
        # that follower wake earlier than its peers.
        mvee.sim.call_at(
            sim.now + mvee.release_lag_ns(), self._mirror_peers,
            thread.vtid, seq, record,
        )
        return result

    def _mirror_peers(self, vtid, seq, record):
        """Land one replicated record in every live peer's mirror (the
        scheduled-delivery instant; membership is read at fire time)."""
        mvee, node = self.mvee, self.node
        for peer in mvee.live_peers(node.index):
            mvee.nodes[peer].mirror.put(vtid, seq, record, mvee.sim)

    def _follow_replicated(self, thread, req, seq, digest, cls, handler, view):
        mvee, node = self.mvee, self.node
        costs = node.kernel.config.costs
        sim = node.kernel.sim
        dcfg = mvee.dconfig
        digest_frame = Frame(
            T_CALL_DIGEST, node.index, thread.vtid, seq,
            payload=digest_payload(digest, req.name),
        )
        yield Sleep(costs.dist_frame_cost_ns(digest_frame.size()), cpu=True)
        mvee.send_frame(
            node.index, mvee.leader_index, digest_frame, cls=sel.CLS_DIGEST
        )
        # Same replica-local bookkeeping the leader does before
        # executing; a follower never executes this call, so the hook is
        # its only chance to record e.g. its own epoll data tags.
        observe = getattr(handler, "observe", None)
        if observe is not None:
            observe(view, req)
        deadline = sim.now + dcfg.stall_timeout_ns
        backoff = dcfg.backoff_initial_ns
        while True:
            record = node.mirror.get(thread.vtid, seq)
            if record is not None:
                adopt_ns = (
                    costs.rb_read_base_ns + costs.rb_copy_ns(len(record.payload))
                )
                if mvee.dconfig.compress is not None and record.payload:
                    # Codec expansion happens on the adoption copy path.
                    adopt_ns += costs.dist_decompress_cost_ns(len(record.payload))
                yield Sleep(adopt_ns, cpu=True)
                handler.apply_results(view, req, record.result, record.payload)
                node.mirror.consume(thread.vtid, seq)
                mvee.stats["adopted_results"] += 1
                return record.result
            if mvee.shutting_down or node.process.exited or node.process.quarantined:
                result = yield from mvee.park(thread)
                return result
            if node.index == mvee.leader_index:
                # Promoted mid-wait: the old leader died before shipping
                # this record and nobody holds it — execute as leader.
                mvee.stats["promoted_executions"] += 1
                result = yield from self._lead_replicated(
                    thread, req, seq, digest, cls, handler, view
                )
                return result
            if sim.now >= deadline:
                mvee.report_stall(
                    node, thread, req,
                    blame=mvee.leader_index,
                    detail="no replicated result for %s after %d ns"
                    % (req.name, dcfg.stall_timeout_ns),
                )
                deadline = sim.now + dcfg.stall_timeout_ns
                continue
            event = node.mirror.waitq.register()
            status, _ = yield from wait_interruptible(
                thread, event,
                timeout_ns=min(backoff, max(1, deadline - sim.now)),
            )
            if status != "fired":
                node.mirror.waitq.unregister(event)
            mvee.stats["backoff_retries"] += 1
            backoff = min(backoff * 2, dcfg.backoff_max_ns)

    # -- rendezvous lane ---------------------------------------------------
    def _rendezvous(self, thread, req, seq, digest):
        mvee, node = self.mvee, self.node
        costs = node.kernel.config.costs
        verdict = yield from self._rendezvous_sync(thread, req, seq, digest)
        if verdict != 1:
            result = yield from mvee.park(thread)
            return result
        yield Sleep(costs.dist_rendezvous_service_ns + mvee.obs.dispatch_cost_ns,
                    cpu=True)
        result = yield from node.kernel.invoke(thread, req)
        return result

    def _rendezvous_sync(self, thread, req, seq, digest):
        """The lockstep half of a rendezvous: submit the argument digest
        to the round's owner and wait for the verdict. Callers decide
        what execution follows agreement (all-nodes for the normal lane,
        leader-only for external accepts)."""
        mvee, node = self.mvee, self.node
        costs = node.kernel.config.costs
        vtid = thread.vtid
        mvee.stats["rendezvous_calls"] += 1
        # Digests go straight to the round's owning shard (the leader,
        # unless DistConfig.shard_rendezvous spreads ownership).
        owner = mvee.shard_owner(vtid, seq)
        obs = mvee.obs
        span = None
        wait_from = mvee.sim.now
        if obs.recorder is not None:
            obs.recorder.record(node.index, wait_from, "rendezvous",
                                req.name, vtid=vtid, seq=seq, owner=owner)
        if obs.tracer.enabled:
            span = obs.tracer.begin(
                "dist", "rendezvous", syscall=req.name, vtid=vtid,
                seq=seq, node=node.index, owner=owner,
            )
        route_ns = (
            costs.dist_shard_route_ns if mvee.dconfig.shard_rendezvous else 0
        )
        if node.index == owner:
            if route_ns:
                yield Sleep(route_ns, cpu=True)
            mvee.monitor.submit(node.index, vtid, seq, req.name, digest)
        else:
            # The frame carries the ownership epoch it was sent under
            # (aux stays 0 until a quarantine bumps it, so fault-free
            # frames are byte-identical to the pre-epoch wire format).
            frame = Frame(
                T_RENDEZVOUS_REQ, node.index, vtid, seq, aux=mvee.epoch,
                payload=digest_payload(digest, req.name),
            )
            yield Sleep(costs.dist_frame_cost_ns(frame.size()) + route_ns, cpu=True)
            mvee.send_frame(
                node.index, owner, frame, cls=sel.CLS_RENDEZVOUS, urgent=True
            )
            mvee.stats["round_trips"] += 1
        verdict = yield from self._await_verdict(thread, req, vtid, seq, digest)
        obs.registry.histogram("dist_rendezvous_wait_ns").observe(
            mvee.sim.now - wait_from
        )
        if span is not None:
            span.finish(verdict=verdict)
        return verdict

    def _await_verdict(self, thread, req, vtid, seq, digest):
        mvee, node = self.mvee, self.node
        sim = node.kernel.sim
        costs = node.kernel.config.costs
        dcfg = mvee.dconfig
        deadline = sim.now + dcfg.stall_timeout_ns
        backoff = dcfg.backoff_initial_ns
        was_owner = node.index == mvee.shard_owner(vtid, seq)
        sent_epoch = mvee.epoch
        while True:
            # Ownership can move under us (quarantine reshuffles the
            # shard map; a promotion moves the default owner), so it is
            # recomputed each pass.
            owner = mvee.shard_owner(vtid, seq)
            state = mvee.monitor.state_for(vtid, seq)
            if mvee.epoch != sent_epoch:
                # The epoch moved while we waited. If our vote died with
                # the old owner's shard, re-collect it: the round's
                # state is rebuilt on the new owner from resubmissions.
                sent_epoch = mvee.epoch
                if state is None or node.index not in state.digests:
                    if node.index == owner:
                        mvee.monitor.submit(
                            node.index, vtid, seq, req.name, digest,
                            resubmit=True,
                        )
                        was_owner = True
                        state = mvee.monitor.state_for(vtid, seq)
                    else:
                        frame = Frame(
                            T_ROUND_RESUBMIT, node.index, vtid, seq,
                            aux=mvee.epoch,
                            payload=digest_payload(digest, req.name),
                        )
                        yield Sleep(
                            costs.dist_frame_cost_ns(frame.size()), cpu=True
                        )
                        mvee.send_frame(
                            node.index, owner, frame,
                            cls=sel.CLS_RENDEZVOUS, urgent=True,
                        )
                        mvee.stats["round_trips"] += 1
                        continue
            if node.index == owner:
                if not was_owner:
                    # Became the owner mid-rendezvous: re-submit so the
                    # (re-hosted) monitor re-checks the round.
                    mvee.monitor.submit(node.index, vtid, seq, req.name, digest)
                    state = mvee.monitor.state_for(vtid, seq)
                    was_owner = True
                verdict = state.verdict if state is not None else None
                if verdict is None:
                    # The release may have shipped before ownership
                    # moved here; the mirror then already holds it.
                    verdict = node.mirror.verdict(vtid, seq)
            else:
                was_owner = False
                verdict = node.mirror.verdict(vtid, seq)
                if (
                    verdict is None
                    and state is not None
                    and state.verdict is not None
                    and state.owner == node.index
                ):
                    # This node owned the round when the verdict landed
                    # (no release frame was addressed to it) and lost
                    # ownership afterwards: read its own monitor state.
                    verdict = state.verdict
            if verdict is not None:
                return verdict
            if mvee.shutting_down or node.process.exited or node.process.quarantined:
                return 0
            if sim.now >= deadline:
                blame = mvee.missing_participant(vtid, seq, node.index)
                if blame is not None:
                    mvee.report_stall(
                        node, thread, req, blame=blame,
                        detail="rendezvous on %s stalled for %d ns"
                        % (req.name, dcfg.stall_timeout_ns),
                    )
                # blame=None: every participant has voted, so the round
                # is completing and only the release is in flight — a
                # watchdog report now would punish an innocent node.
                deadline = sim.now + dcfg.stall_timeout_ns
                continue
            if node.index == owner and state is not None:
                waitq = state.waitq
            else:
                waitq = node.mirror.waitq
            event = waitq.register()
            status, _ = yield from wait_interruptible(
                thread, event,
                timeout_ns=min(backoff, max(1, deadline - sim.now)),
            )
            if status != "fired":
                waitq.unregister(event)
            mvee.stats["backoff_retries"] += 1
            backoff = min(backoff * 2, dcfg.backoff_max_ns)

    # -- external-service accept lane --------------------------------------
    def _external_accept(self, thread, req, seq, digest):
        """accept(2) on an externally-reachable listener (repro.fleet).

        The call keeps the lockstep half of the rendezvous lane — every
        node submits its argument digest and waits for agreement, so a
        compromised replica cannot smuggle divergent accept arguments —
        but execution is leader-only: the client's SYN exists only in
        the leader node's kernel. The leader ships the resulting fd (and
        sockaddr out-buffer, if requested) through the RB mirror exactly
        like a replicated result; followers adopt it by materialising an
        :class:`~repro.kernel.sockets.AdoptedSocket` at the same
        descriptor index, keeping fd numbering aligned for every later
        call on the connection.
        """
        mvee, node = self.mvee, self.node
        costs = node.kernel.config.costs
        sim = node.kernel.sim
        vtid = thread.vtid
        verdict = yield from self._rendezvous_sync(thread, req, seq, digest)
        if verdict != 1:
            result = yield from mvee.park(thread)
            return result
        yield Sleep(costs.dist_rendezvous_service_ns + mvee.obs.dispatch_cost_ns,
                    cpu=True)
        if node.index == mvee.leader_index:
            result = yield from node.kernel.invoke(thread, req)
            if not isinstance(result, int):
                return result
            payload = b""
            if result >= 0 and req.arg(1):
                payload = bytes(
                    node.process.space.read(req.arg(1), SOCKADDR_SIZE)
                )
            frame = Frame(
                T_SYSCALL_RESULT, node.index, vtid, seq,
                aux=result, payload=payload,
            )
            encode_ns = (
                costs.rb_write_base_ns + costs.dist_frame_cost_ns(frame.size())
            )
            yield Sleep(encode_ns, cpu=True)
            record = RemoteRecord(result, payload, req.name)
            node.mirror.put(vtid, seq, record, sim)
            if mvee.lifecycle is not None:
                mvee.lifecycle.record_result(vtid, seq, record)
            for peer in mvee.live_peers(node.index):
                mvee.send_frame(
                    node.index, peer, frame, cls=sel.CLS_RESULT_PREFIX + "sock"
                )
            mvee.sim.call_at(
                sim.now + mvee.release_lag_ns(), self._mirror_peers,
                vtid, seq, record,
            )
            return result
        # Follower: wait for the leader's record, then adopt the fd.
        dcfg = mvee.dconfig
        deadline = sim.now + dcfg.stall_timeout_ns
        backoff = dcfg.backoff_initial_ns
        while True:
            record = node.mirror.get(vtid, seq)
            if record is not None:
                yield Sleep(
                    costs.rb_read_base_ns + costs.rb_copy_ns(len(record.payload)),
                    cpu=True,
                )
                if record.result >= 0:
                    self._materialize_accept(thread, req, record)
                node.mirror.consume(vtid, seq)
                mvee.stats["adopted_results"] += 1
                return record.result
            if mvee.shutting_down or node.process.exited or node.process.quarantined:
                result = yield from mvee.park(thread)
                return result
            if node.index == mvee.leader_index:
                # Promoted mid-wait: nobody will ship the record. The
                # new leader's own listener is idle (external clients
                # still target the old address), so executing locally
                # yields a harmless EAGAIN and the guest retries.
                mvee.stats["promoted_executions"] += 1
                result = yield from node.kernel.invoke(thread, req)
                return result
            if sim.now >= deadline:
                mvee.report_stall(
                    node, thread, req,
                    blame=mvee.leader_index,
                    detail="no adopted accept result for %s after %d ns"
                    % (req.name, dcfg.stall_timeout_ns),
                )
                deadline = sim.now + dcfg.stall_timeout_ns
                continue
            event = node.mirror.waitq.register()
            status, _ = yield from wait_interruptible(
                thread, event,
                timeout_ns=min(backoff, max(1, deadline - sim.now)),
            )
            if status != "fired":
                node.mirror.waitq.unregister(event)
            mvee.stats["backoff_retries"] += 1
            backoff = min(backoff * 2, dcfg.backoff_max_ns)

    def _materialize_accept(self, thread, req, record):
        """Install a phantom connection fd mirroring the leader's."""
        from repro.core.events import DivergenceReport

        mvee, node = self.mvee, self.node
        process = node.process
        sock = AdoptedSocket(
            node.kernel, process.host_ip, name="adopted:%d" % record.result
        )
        ofd_flags = C.O_RDWR
        flags = req.arg(3) if req.name == "accept4" else 0
        if flags & C.SOCK_NONBLOCK:
            ofd_flags |= C.O_NONBLOCK
        # Install at the *leader's* fd number (dup2-style), keeping the
        # descriptor tables aligned by construction: concurrent worker
        # threads may consume adopted records in a different order than
        # the leader's accepts ran, so lowest-free allocation would
        # skew. A still-occupied slot is the real desync signal.
        fd = record.result
        if process.fdtable.get(fd) is not None:
            mvee.divergence(
                DivergenceReport(
                    mvee.sim.now,
                    thread.vtid,
                    req.name,
                    "leader's accept fd %d already open here (descriptor "
                    "tables desynced)" % fd,
                    detected_by="dist-external",
                    replica=node.index,
                )
            )
            return
        process.fdtable.install(
            fd,
            OpenFileDescription(sock, ofd_flags),
            cloexec=bool(flags & C.SOCK_CLOEXEC),
        )
        if record.payload and req.arg(1):
            process.space.write(req.arg(1), record.payload)
            if req.arg(2):
                process.space.write_u32(req.arg(2), SOCKADDR_SIZE)
        node.kernel.on_fd_opened(process, fd)
