"""Wire format for cross-node MVEE traffic.

Every unit of monitor traffic between nodes — replicated syscall
results, async call digests, lockstep rendezvous rounds, control
messages — is a fixed-header *frame*. Frames are coalesced into
*batches* (dMVX's transfer units) by the transport; a batch is what
actually crosses the simulated link.

The format is deliberately strict: magic, version, length, and a CRC32
over header and payload are all validated on decode, and any violation
raises :class:`~repro.errors.WireError`. A distributed monitor must
treat a damaged frame as a transmission fault, never as data — a
corrupted "result" silently adopted by a follower would be a
cross-node divergence vector.

Layout (little-endian)::

    frame header (36 bytes)
      u16 magic      0xD15C
      u8  version    1
      u8  type       T_* below
      u16 sender     node index of the producer
      u16 flags
      u32 vtid       virtual thread the frame concerns
      u64 seq        per-thread syscall sequence number
      i64 aux        type-specific (result value, verdict, ...)
      u32 payload_len
      u32 crc32      over header-sans-crc + payload
    payload (payload_len bytes)

    batch header (8 bytes)
      u16 magic      0xBA7C
      u16 count      number of frames
      u32 body_len   total frame bytes following

    reliable batch header (16 bytes)
      u16 magic      0xBA7D
      u16 count      number of frames
      u32 body_len   total frame bytes following
      u32 seq        batch sequence number (0 = unsequenced / ack-only)
      u32 ack        cumulative ack for the reverse channel

The reliable header only appears when the transport runs in reliable
mode (lossy links); loss-free runs keep the legacy 8-byte header so
their wire bytes stay bit-identical to the pre-reliability design.
"""

from __future__ import annotations

import struct
import zlib
from typing import Dict, List, Tuple

from repro.core.digests import DigestInterner, interner
from repro.errors import WireError

MAGIC = 0xD15C
VERSION = 1
BATCH_MAGIC = 0xBA7C
RBATCH_MAGIC = 0xBA7D

#: Frame flag: the payload is codec-wrapped (see :mod:`repro.dist.codec`);
#: the transport decodes it back to raw bytes before dispatch.
F_CODED = 0x0001

#: Async cross-check digest of a locally-executed call's arguments.
T_CALL_DIGEST = 1
#: A follower's request to join a lockstep rendezvous.
T_RENDEZVOUS_REQ = 2
#: The leader's verdict releasing a rendezvous (aux: 1 ok, 0 diverged).
T_RENDEZVOUS_OK = 3
#: A replicated syscall result (aux: return value; payload: out-buffers).
T_SYSCALL_RESULT = 4
#: Membership / failover control traffic.
T_CONTROL = 5
#: Shard-ownership handoff after a membership change (aux: new epoch).
#: With vtid=seq=0 it announces the epoch + owner set; otherwise it
#: transfers one surviving round's collected state to its new owner.
T_SHARD_HANDOFF = 6
#: A participant re-submitting its digest for a round whose hosting
#: shard died with its owner (aux: the epoch it was sent under).
T_ROUND_RESUBMIT = 7
#: SWIM-style lifecycle heartbeat carrying a gossiped membership view
#: (payload: gossip_payload below). Physical bytes only — membership
#: state is merged where the frame is billed, never re-dispatched.
T_LIFECYCLE_GOSSIP = 8
#: Replay-window state transfer to a re-admitted replica: one recorded
#: RB mirror record (aux: result) or rendezvous verdict (aux: verdict).
T_LIFECYCLE_STATE = 9

FRAME_TYPES = (
    T_CALL_DIGEST,
    T_RENDEZVOUS_REQ,
    T_RENDEZVOUS_OK,
    T_SYSCALL_RESULT,
    T_CONTROL,
    T_SHARD_HANDOFF,
    T_ROUND_RESUBMIT,
    T_LIFECYCLE_GOSSIP,
    T_LIFECYCLE_STATE,
)

_HEADER = struct.Struct("<HBBHHIQqII")
_BATCH_HEADER = struct.Struct("<HHI")
_RBATCH_HEADER = struct.Struct("<HHIII")
_DIGEST = struct.Struct("<Q")
_CRC = struct.Struct("<I")

HEADER_SIZE = _HEADER.size  # 36
BATCH_HEADER_SIZE = _BATCH_HEADER.size  # 8
RBATCH_HEADER_SIZE = _RBATCH_HEADER.size  # 16

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


class Frame:
    """One decoded unit of cross-node monitor traffic."""

    __slots__ = ("type", "sender", "vtid", "seq", "aux", "flags", "payload")

    def __init__(self, type: int, sender: int, vtid: int, seq: int,
                 aux: int = 0, flags: int = 0, payload: bytes = b""):
        self.type = type
        self.sender = sender
        self.vtid = vtid
        self.seq = seq
        self.aux = aux
        self.flags = flags
        self.payload = payload

    def size(self) -> int:
        return HEADER_SIZE + len(self.payload)

    def _key(self):
        return (self.type, self.sender, self.vtid, self.seq, self.aux,
                self.flags, self.payload)

    def __eq__(self, other):
        if not isinstance(other, Frame):
            return NotImplemented
        return self._key() == other._key()

    def __repr__(self):
        return ("Frame(type=%d, sender=%d, vtid=%d, seq=%d, aux=%d, "
                "flags=0x%04X, payload=%d bytes)"
                % (self.type, self.sender, self.vtid, self.seq, self.aux,
                   self.flags, len(self.payload)))


#: Backwards-compatible aliases: the wire-path digest cache is now the
#: MVEE-wide interner in :mod:`repro.core.digests`, shared with the
#: CP/IP-MON comparator so an identical blob hashes once per round, not
#: once per replica per node per subsystem.
DigestCache = DigestInterner
digest_cache = interner


def call_digest(name: str, blob_bytes: bytes) -> int:
    """64-bit digest of one syscall's name + serialised arguments."""
    return interner.digest(name, blob_bytes)


def digest_payload(digest: int, name: str) -> bytes:
    """Payload for T_CALL_DIGEST / T_RENDEZVOUS_REQ frames."""
    return _DIGEST.pack(digest) + name.encode()


def parse_digest_payload(payload: bytes) -> Tuple[int, str]:
    if len(payload) < _DIGEST.size:
        raise WireError("digest payload too short: %d bytes" % len(payload))
    (digest,) = _DIGEST.unpack_from(payload)
    return digest, payload[_DIGEST.size:].decode(errors="replace")


_U16 = struct.Struct("<H")
_HANDOFF_VOTE = struct.Struct("<HQH")  # sender, digest, name length


def owners_payload(owners: Tuple[int, ...]) -> bytes:
    """Payload of a T_SHARD_HANDOFF epoch announcement: the owner set."""
    return _U16.pack(len(owners)) + b"".join(_U16.pack(o) for o in owners)


def parse_owners_payload(payload: bytes) -> Tuple[int, ...]:
    if len(payload) < _U16.size:
        raise WireError("owners payload too short: %d bytes" % len(payload))
    (count,) = _U16.unpack_from(payload)
    need = _U16.size * (1 + count)
    if len(payload) < need:
        raise WireError(
            "owners payload truncated: want %d bytes, have %d"
            % (need, len(payload))
        )
    return tuple(
        _U16.unpack_from(payload, _U16.size * (1 + i))[0] for i in range(count)
    )


def handoff_payload(digests: Dict[int, Tuple[str, int]]) -> bytes:
    """Payload of a T_SHARD_HANDOFF state transfer: one open round's
    collected votes, so the state-transfer bytes the transport bills
    scale with how much the dying/remapped shard actually held."""
    parts = [_U16.pack(len(digests))]
    for sender in sorted(digests):
        name, digest = digests[sender]
        encoded = name.encode()
        parts.append(_HANDOFF_VOTE.pack(sender, digest, len(encoded)))
        parts.append(encoded)
    return b"".join(parts)


def parse_handoff_payload(payload: bytes) -> Dict[int, Tuple[str, int]]:
    if len(payload) < _U16.size:
        raise WireError("handoff payload too short: %d bytes" % len(payload))
    (count,) = _U16.unpack_from(payload)
    offset = _U16.size
    digests: Dict[int, Tuple[str, int]] = {}
    for _ in range(count):
        if len(payload) - offset < _HANDOFF_VOTE.size:
            raise WireError("handoff payload truncated at vote header")
        sender, digest, name_len = _HANDOFF_VOTE.unpack_from(payload, offset)
        offset += _HANDOFF_VOTE.size
        if len(payload) - offset < name_len:
            raise WireError("handoff payload truncated at vote name")
        name = payload[offset:offset + name_len].decode(errors="replace")
        offset += name_len
        digests[sender] = (name, digest)
    if offset != len(payload):
        raise WireError(
            "handoff payload has %d trailing bytes" % (len(payload) - offset)
        )
    return digests


_GOSSIP_ENTRY = struct.Struct("<HIB")  # node index, incarnation, state
_STATE_HEAD = struct.Struct("<BH")     # entry kind, name length

#: Gossip membership states carried in T_LIFECYCLE_GOSSIP entries.
GOSSIP_ALIVE = 0
GOSSIP_SUSPECT = 1
GOSSIP_DEAD = 2

#: Replay-window entry kinds carried in T_LIFECYCLE_STATE frames.
STATE_VERDICT = 0
STATE_RECORD = 1


def gossip_payload(entries) -> bytes:
    """Payload of a T_LIFECYCLE_GOSSIP heartbeat: the sender's full
    membership view as (node, incarnation, state) triples."""
    parts = [_U16.pack(len(entries))]
    for node, incarnation, state in entries:
        parts.append(_GOSSIP_ENTRY.pack(node, incarnation & 0xFFFFFFFF, state))
    return b"".join(parts)


def parse_gossip_payload(payload: bytes) -> Tuple[Tuple[int, int, int], ...]:
    if len(payload) < _U16.size:
        raise WireError("gossip payload too short: %d bytes" % len(payload))
    (count,) = _U16.unpack_from(payload)
    need = _U16.size + _GOSSIP_ENTRY.size * count
    if len(payload) != need:
        raise WireError(
            "gossip payload length mismatch: want %d bytes, have %d"
            % (need, len(payload))
        )
    return tuple(
        _GOSSIP_ENTRY.unpack_from(payload, _U16.size + _GOSSIP_ENTRY.size * i)
        for i in range(count)
    )


def state_payload(kind: int, name: str, data: bytes = b"") -> bytes:
    """Payload of a T_LIFECYCLE_STATE transfer entry: the syscall name
    plus, for records, the replicated out-buffer bytes."""
    encoded = name.encode()
    return _STATE_HEAD.pack(kind, len(encoded)) + encoded + data


def parse_state_payload(payload: bytes) -> Tuple[int, str, bytes]:
    if len(payload) < _STATE_HEAD.size:
        raise WireError("state payload too short: %d bytes" % len(payload))
    kind, name_len = _STATE_HEAD.unpack_from(payload)
    offset = _STATE_HEAD.size
    if len(payload) - offset < name_len:
        raise WireError("state payload truncated at name")
    name = payload[offset:offset + name_len].decode(errors="replace")
    return kind, name, payload[offset + name_len:]


def encode_frame(frame: Frame) -> bytes:
    if frame.type not in FRAME_TYPES:
        raise WireError("unknown frame type %r" % (frame.type,))
    if not (_I64_MIN <= frame.aux <= _I64_MAX):
        raise WireError("aux out of i64 range: %r" % (frame.aux,))
    payload = bytes(frame.payload)
    head = _HEADER.pack(
        MAGIC,
        VERSION,
        frame.type,
        frame.sender & 0xFFFF,
        frame.flags & 0xFFFF,
        frame.vtid & 0xFFFFFFFF,
        frame.seq & 0xFFFFFFFFFFFFFFFF,
        frame.aux,
        len(payload),
        0,
    )
    crc = zlib.crc32(head[:-4] + payload) & 0xFFFFFFFF
    return head[:-4] + _CRC.pack(crc) + payload


def decode_frame(data: bytes, offset: int = 0) -> Tuple[Frame, int]:
    """Decode one frame at ``offset``; returns (frame, bytes consumed)."""
    if len(data) - offset < HEADER_SIZE:
        raise WireError(
            "truncated frame header: %d of %d bytes"
            % (max(0, len(data) - offset), HEADER_SIZE)
        )
    (magic, version, ftype, sender, flags, vtid, seq, aux, payload_len,
     crc) = _HEADER.unpack_from(data, offset)
    if magic != MAGIC:
        raise WireError("bad frame magic 0x%04X" % magic)
    if version != VERSION:
        raise WireError("unsupported wire version %d" % version)
    if ftype not in FRAME_TYPES:
        raise WireError("unknown frame type %d" % ftype)
    end = offset + HEADER_SIZE + payload_len
    if end > len(data):
        raise WireError(
            "truncated frame payload: want %d bytes, have %d"
            % (payload_len, len(data) - offset - HEADER_SIZE)
        )
    payload = bytes(data[offset + HEADER_SIZE:end])
    expect = zlib.crc32(
        bytes(data[offset:offset + HEADER_SIZE - 4]) + payload
    ) & 0xFFFFFFFF
    if crc != expect:
        raise WireError("frame CRC mismatch: 0x%08X != 0x%08X" % (crc, expect))
    frame = Frame(
        type=ftype, sender=sender, vtid=vtid, seq=seq, aux=aux,
        flags=flags, payload=payload,
    )
    return frame, HEADER_SIZE + payload_len


def encode_batch(frames: List[Frame]) -> bytes:
    if len(frames) > 0xFFFF:
        raise WireError("batch too large: %d frames" % len(frames))
    body = b"".join(encode_frame(f) for f in frames)
    return _BATCH_HEADER.pack(BATCH_MAGIC, len(frames), len(body)) + body


def encode_reliable_batch(frames: List[Frame], seq: int, ack: int) -> bytes:
    """Encode a batch under the 16-byte reliable header.

    ``seq`` numbers the batch on its directed channel (0 = unsequenced,
    used for pure-ack batches); ``ack`` is the cumulative ack for the
    reverse channel. Data sequence numbers start at 1.
    """
    if len(frames) > 0xFFFF:
        raise WireError("batch too large: %d frames" % len(frames))
    body = b"".join(encode_frame(f) for f in frames)
    return _RBATCH_HEADER.pack(
        RBATCH_MAGIC, len(frames), len(body),
        seq & 0xFFFFFFFF, ack & 0xFFFFFFFF,
    ) + body


def parse_batch(data: bytes):
    """Decode a batch under either header.

    Returns ``(frames, seq, ack)``; a legacy 8-byte batch yields
    ``(frames, None, None)``.
    """
    if len(data) < BATCH_HEADER_SIZE:
        raise WireError("truncated batch header: %d bytes" % len(data))
    magic, count, body_len = _BATCH_HEADER.unpack_from(data)
    seq = ack = None
    if magic == BATCH_MAGIC:
        offset = BATCH_HEADER_SIZE
    elif magic == RBATCH_MAGIC:
        if len(data) < RBATCH_HEADER_SIZE:
            raise WireError(
                "truncated reliable batch header: %d bytes" % len(data)
            )
        magic, count, body_len, seq, ack = _RBATCH_HEADER.unpack_from(data)
        offset = RBATCH_HEADER_SIZE
    else:
        raise WireError("bad batch magic 0x%04X" % magic)
    if offset + body_len != len(data):
        raise WireError(
            "batch length mismatch: header says %d body bytes, have %d"
            % (body_len, len(data) - offset)
        )
    frames: List[Frame] = []
    for _ in range(count):
        frame, used = decode_frame(data, offset)
        frames.append(frame)
        offset += used
    if offset != len(data):
        raise WireError(
            "batch has %d trailing bytes after %d frames"
            % (len(data) - offset, count)
        )
    return frames, seq, ack


def decode_batch(data: bytes) -> List[Frame]:
    if len(data) >= BATCH_HEADER_SIZE:
        magic = _U16.unpack_from(data)[0]
        if magic == RBATCH_MAGIC:
            raise WireError("reliable batch on an unreliable decode path")
    frames, _seq, _ack = parse_batch(data)
    return frames


def batch_frame_count(data: bytes):
    """Frame count claimed by a batch header, or None if even the
    header is unreadable. Used to account frames lost inside a
    CRC-damaged batch without trusting anything past the count field."""
    if len(data) < BATCH_HEADER_SIZE:
        return None
    magic, count, _body_len = _BATCH_HEADER.unpack_from(data)
    if magic in (BATCH_MAGIC, RBATCH_MAGIC):
        return count
    return None
