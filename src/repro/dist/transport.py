"""Batched, pipelined monitor transport between simulated nodes.

Frames (see :mod:`repro.dist.wire`) are not sent one syscall at a time —
that would pay a per-message syscall/NIC cost per event and drown in
link latency. Instead each directed node pair owns a :class:`Channel`
that coalesces frames into a transfer unit which is flushed when it
reaches ``batch_bytes``, when a flush timer expires, or immediately for
*urgent* frames (rendezvous rounds, control traffic — anything a thread
is synchronously blocked on).

Sending is asynchronous (async pipelining): the producer queues the
frame and keeps running; only the per-frame encode cost lands on its
critical path. The per-message CPU cost
(:meth:`~repro.costs.model.CostModel.dist_message_cost_ns`) plus the
link's latency/bandwidth/jitter delay (charged by
:meth:`~repro.kernel.sockets.Network.transmit`, which also guarantees
FIFO delivery per directed pair) is folded into the delivery time of
the batch.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dist.wire import BATCH_HEADER_SIZE, Frame, decode_batch, encode_batch
from repro.errors import WireError
from repro.kernel.sockets import Address


class Channel:
    """The outgoing frame queue for one directed node pair."""

    __slots__ = ("src", "dst", "pending", "pending_bytes", "timer_armed")

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        self.pending: List[Frame] = []
        self.pending_bytes = 0
        self.timer_armed = False


class Transport:
    """All monitor channels of one cluster, sharing a Network."""

    def __init__(self, sim, network, addresses: List[Address], costs,
                 batch_bytes: int = 4096, flush_interval_ns: int = 50_000):
        self.sim = sim
        self.network = network
        self.addresses = addresses
        self.costs = costs
        self.batch_bytes = batch_bytes
        self.flush_interval_ns = flush_interval_ns
        #: Installed by the cluster: ``dispatch(dst_index, frame)``.
        self.dispatch: Optional[Callable[[int, Frame], None]] = None
        self._channels: Dict[Tuple[int, int], Channel] = {}
        self.stats = {
            "messages_sent": 0,
            "wire_bytes": 0,
            "frames_sent": 0,
            "wire_errors": 0,
            "flushes_size": 0,
            "flushes_timer": 0,
            "flushes_urgent": 0,
        }
        self.bytes_by_class: Dict[str, int] = {}
        self.frames_by_class: Dict[str, int] = {}

    def _channel(self, src: int, dst: int) -> Channel:
        channel = self._channels.get((src, dst))
        if channel is None:
            channel = Channel(src, dst)
            self._channels[(src, dst)] = channel
        return channel

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, frame: Frame, cls: str = "control",
             urgent: bool = False) -> None:
        """Queue one frame from node ``src`` to node ``dst``.

        Returns immediately; the caller pays only the frame-encode cost
        (and even that is charged by the caller, since only the leader's
        critical path matters for overhead accounting).
        """
        if src == dst:
            raise WireError("a node does not message itself")
        channel = self._channel(src, dst)
        channel.pending.append(frame)
        channel.pending_bytes += frame.size()
        self.stats["frames_sent"] += 1
        self.frames_by_class[cls] = self.frames_by_class.get(cls, 0) + 1
        self.bytes_by_class[cls] = (
            self.bytes_by_class.get(cls, 0) + frame.size()
        )
        if urgent or BATCH_HEADER_SIZE + channel.pending_bytes >= self.batch_bytes:
            self.stats["flushes_urgent" if urgent else "flushes_size"] += 1
            self._flush(channel)
        elif not channel.timer_armed:
            channel.timer_armed = True
            self.sim.call_at(
                self.sim.now + self.flush_interval_ns, self._timer_flush, channel
            )

    def flush_all(self) -> None:
        for channel in self._channels.values():
            if channel.pending:
                self._flush(channel)

    # ------------------------------------------------------------------
    def _timer_flush(self, channel: Channel) -> None:
        channel.timer_armed = False
        if channel.pending:
            self.stats["flushes_timer"] += 1
            self._flush(channel)

    def _flush(self, channel: Channel) -> None:
        frames, channel.pending = channel.pending, []
        channel.pending_bytes = 0
        data = encode_batch(frames)
        self.stats["messages_sent"] += 1
        self.stats["wire_bytes"] += len(data)
        src_addr = self.addresses[channel.src]
        dst_addr = self.addresses[channel.dst]
        dst = channel.dst
        # The sender-side per-message CPU cost is folded into delivery
        # time (the sending thread is not blocked on it: a kernel worker
        # does the pushing in the systems we model).
        send_cost = self.costs.dist_message_cost_ns(len(data))

        def _transmit():
            self.network.transmit(
                self.sim, src_addr, dst_addr, len(data), self._deliver, dst, data
            )

        self.sim.call_at(self.sim.now + send_cost, _transmit)

    def _deliver(self, dst: int, data: bytes) -> None:
        try:
            frames = decode_batch(data)
        except WireError:
            # A damaged transfer unit is a transmission fault: count and
            # drop it rather than act on its contents.
            self.stats["wire_errors"] += 1
            return
        if self.dispatch is None:
            return
        for frame in frames:
            self.dispatch(dst, frame)
