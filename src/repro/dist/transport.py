"""Batched, pipelined monitor transport between simulated nodes.

Frames (see :mod:`repro.dist.wire`) are not sent one syscall at a time —
that would pay a per-message syscall/NIC cost per event and drown in
link latency. Instead each directed node pair owns a :class:`Channel`
that coalesces frames into a transfer unit which is flushed when it
reaches ``batch_bytes``, when a flush timer expires, or immediately for
*urgent* frames (rendezvous rounds, control traffic — anything a thread
is synchronously blocked on).

Sending is asynchronous (async pipelining): the producer queues the
frame and keeps running; only the per-frame encode cost lands on its
critical path. The per-message CPU cost
(:meth:`~repro.costs.model.CostModel.dist_message_cost_ns`) plus the
link's latency/bandwidth/jitter delay (charged by
:meth:`~repro.kernel.sockets.Network.transmit`, which also guarantees
FIFO delivery per directed pair) is folded into the delivery time of
the batch.

With a ``codec`` configured (``"rle"`` or ``"dict"``, see
:mod:`repro.dist.codec`), replicated-result payloads are compressed
here — *before* a frame enters its channel queue — so batch thresholds,
per-class byte accounting, and the wire-byte stats all see one truth:
the size of the frame as actually encoded. Frames are decoded back to
raw payloads on delivery, before dispatch; a frame whose coded payload
fails to decode is a transmission fault (counted and dropped), exactly
like a CRC-damaged frame.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dist.codec import TAG_NAMES, PayloadDict, decode_payload, encode_payload
from repro.dist.reliable import (
    CircuitBreaker,
    ReceiverWindow,
    RetransmitPolicy,
    SenderWindow,
)
from repro.dist.selective import frame_class
from repro.dist.wire import (
    BATCH_HEADER_SIZE,
    F_CODED,
    RBATCH_HEADER_SIZE,
    Frame,
    T_CONTROL,
    T_SYSCALL_RESULT,
    batch_frame_count,
    decode_batch,
    encode_batch,
    encode_reliable_batch,
    parse_batch,
)
from repro.errors import WireError
from repro.kernel.sockets import Address

#: Codec names accepted by Transport/DistConfig. ``None`` ships raw.
CODECS = ("rle", "dict")

#: Payloads below this length cannot win (dict reference is 6 bytes,
#: and the tag byte costs 1): ship them unwrapped.
MIN_CODEC_LEN = 8

#: Adaptive codec fallback: per-channel sliding window of outcomes, the
#: win rate below which a channel downgrades to raw, and how many result
#: frames pass between re-upgrade probes while downgraded.
ADAPT_WINDOW = 32
ADAPT_MIN_WIN_RATE = 0.25
ADAPT_PROBE_EVERY = 16

#: Payload of a circuit-breaker half-open probe. Probes are ordinary
#: sequenced control frames — they exist to be acked — but terminate at
#: the transport and are never dispatched to the cluster.
_PROBE_PAYLOAD = b"breaker-probe"


class Channel:
    """The outgoing frame queue for one directed node pair."""

    __slots__ = ("src", "dst", "pending", "pending_bytes", "timer_armed",
                 "enc_dict", "next_depart", "codec_score", "codec_down",
                 "codec_probe_in")

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        self.pending: List[Frame] = []
        self.pending_bytes = 0
        self.timer_armed = False
        #: Sender-side payload dictionary (dict codec only; lazily built).
        self.enc_dict: Optional[PayloadDict] = None
        #: Earliest time the next batch may enter the network: one
        #: kernel worker pushes a channel's batches in flush order, so
        #: a large batch's bigger per-message cost can never let a later
        #: small batch overtake it (overtaking would break the FIFO
        #: delivery the payload dictionaries are synchronized by).
        self.next_depart = 0
        #: Adaptive codec fallback: recent win/loss outcomes, whether
        #: the channel is currently downgraded to raw, and the frame
        #: countdown to the next re-upgrade probe.
        self.codec_score: List[bool] = []
        self.codec_down = False
        self.codec_probe_in = 0


class Transport:
    """All monitor channels of one cluster, sharing a Network."""

    def __init__(self, sim, network, addresses: List[Address], costs,
                 batch_bytes: int = 4096, flush_interval_ns: int = 50_000,
                 codec: Optional[str] = None):
        if codec is not None and codec not in CODECS:
            raise WireError("unknown transport codec %r (want one of %r)"
                            % (codec, CODECS))
        self.sim = sim
        self.network = network
        self.addresses = addresses
        self.costs = costs
        self.batch_bytes = batch_bytes
        self.flush_interval_ns = flush_interval_ns
        self.codec = codec
        #: Installed by the cluster: ``dispatch(dst_index, frame)``.
        self.dispatch: Optional[Callable[[int, Frame], None]] = None
        #: Optional epoch gate, consulted per frame at delivery before
        #: dispatch: True means the frame is stale (sent under an older
        #: ownership epoch to a shard that no longer hosts its round)
        #: and is dropped — the sender re-submits under the new epoch.
        self.stale_filter: Optional[Callable[[int, Frame], bool]] = None
        self._channels: Dict[Tuple[int, int], Channel] = {}
        #: Receiver-side payload dictionaries, keyed by directed pair.
        self._dec_dicts: Dict[Tuple[int, int], PayloadDict] = {}
        self.stats = {
            "messages_sent": 0,
            "wire_bytes": 0,
            "frames_sent": 0,
            "frame_bytes": 0,
            "wire_errors": 0,
            "flushes_size": 0,
            "flushes_timer": 0,
            "flushes_urgent": 0,
            "payload_raw_bytes": 0,
            "payload_coded_bytes": 0,
            "codec_raw": 0,
            "codec_rle": 0,
            "codec_dict": 0,
            "stale_drops": 0,
        }
        self.bytes_by_class: Dict[str, int] = {}
        self.frames_by_class: Dict[str, int] = {}
        #: Frames lost in transit and never dispatched (CRC-damaged
        #: batches, undecodable codec payloads), by traffic class — so
        #: loss experiments can reconcile frames_sent against dispatch.
        self.frames_dropped_by_class: Dict[str, int] = {}
        #: Optional repro.obs.Obs hub, installed by the cluster; used
        #: only for span-tracing flush/codec decisions when enabled.
        self.obs = None
        # -- reliable delivery (off until enable_reliable) -------------
        self.reliable = False
        self.retransmit_policy: Optional[RetransmitPolicy] = None
        self.window_size = 32
        self._breaker_factory: Callable[[], CircuitBreaker] = CircuitBreaker
        self._send_windows: Dict[Tuple[int, int], SenderWindow] = {}
        self._recv_windows: Dict[Tuple[int, int], ReceiverWindow] = {}
        self._breakers: Dict[Tuple[int, int], CircuitBreaker] = {}
        self._links_down: set = set()
        self._breaker_spans: Dict[Tuple[int, int], object] = {}
        #: Installed by the cluster: called with (src, dst) when a
        #: link's breaker opens / re-closes.
        self.on_link_down: Optional[Callable[[int, int], None]] = None
        self.on_link_up: Optional[Callable[[int, int], None]] = None

    def enable_reliable(self, policy: Optional[RetransmitPolicy] = None,
                        window: int = 32,
                        breaker_factory: Optional[Callable[[], CircuitBreaker]]
                        = None) -> None:
        """Switch every channel to sequenced, acked, retransmitted
        batches (the 16-byte reliable header). Must run before any
        traffic: mixing header formats mid-run would desynchronize the
        per-channel sequence spaces."""
        if self.stats["frames_sent"] or self.stats["messages_sent"]:
            raise WireError("reliable mode must be enabled before traffic")
        self.reliable = True
        self.retransmit_policy = policy or RetransmitPolicy()
        self.window_size = window
        self._breaker_factory = breaker_factory or CircuitBreaker

    def _bump(self, key: str, n: int = 1) -> None:
        # Stats that exist only in reliable/lossy runs are created on
        # first use, so loss-free runs keep the pre-change stats view
        # byte-identical (the PR-5 equivalence discipline).
        self.stats[key] = self.stats.get(key, 0) + n

    def _drop_frames(self, cls: str, n: int = 1) -> None:
        if n <= 0:
            return
        self._bump("frames_dropped", n)
        self.frames_dropped_by_class[cls] = (
            self.frames_dropped_by_class.get(cls, 0) + n
        )

    def _channel(self, src: int, dst: int) -> Channel:
        channel = self._channels.get((src, dst))
        if channel is None:
            channel = Channel(src, dst)
            self._channels[(src, dst)] = channel
        return channel

    # ------------------------------------------------------------------
    # Codec plumbing
    # ------------------------------------------------------------------
    def _encode_payload(self, channel: Channel, frame: Frame) -> Frame:
        """Wrap a replicated-result payload with the configured codec.

        Returns a *new* frame (the caller may broadcast the original to
        several channels, each with its own dictionary state). Only
        ``T_SYSCALL_RESULT`` frames are coded: RB mirror traffic is
        where the redundant bytes live, and rendezvous/digest frames are
        small and latency-critical.
        """
        if (
            self.codec is None
            or frame.type != T_SYSCALL_RESULT
            or frame.flags & F_CODED
            or len(frame.payload) < MIN_CODEC_LEN
        ):
            return frame
        if channel.codec_down:
            channel.codec_probe_in -= 1
            if channel.codec_probe_in > 0:
                # Downgraded stream: ship raw with no tag byte. The
                # encode is skipped entirely, so neither end's payload
                # dictionary advances and the rings stay in sync for
                # the next re-upgrade probe.
                return frame
        dictionary = None
        if self.codec == "dict":
            if channel.enc_dict is None:
                channel.enc_dict = PayloadDict()
            dictionary = channel.enc_dict
        raw_len = len(frame.payload)
        coded = encode_payload(frame.payload, dictionary)
        self._track_codec(channel, len(coded) < raw_len)
        self.stats["payload_raw_bytes"] += raw_len
        self.stats["payload_coded_bytes"] += len(coded)
        self.stats["codec_" + TAG_NAMES[coded[0]]] += 1
        if self.obs is not None and self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "transport", "codec", src=channel.src, dst=channel.dst,
                tag=TAG_NAMES[coded[0]], raw=raw_len, coded=len(coded),
            )
        return Frame(
            frame.type, frame.sender, frame.vtid, frame.seq,
            aux=frame.aux, flags=frame.flags | F_CODED, payload=coded,
        )

    def _track_codec(self, channel: Channel, win: bool) -> None:
        """Adaptive fallback: downgrade a channel whose codec stopped
        winning (win rate below ADAPT_MIN_WIN_RATE over a full sliding
        window), probe every ADAPT_PROBE_EVERY frames while down, and
        re-upgrade on the first probe that compresses again."""
        if channel.codec_down:
            # This frame was a probe.
            if win:
                channel.codec_down = False
                channel.codec_score = []
                self._bump("codec_upgrades")
                if self.obs is not None and self.obs.tracer.enabled:
                    self.obs.tracer.instant(
                        "transport", "codec_upgrade",
                        src=channel.src, dst=channel.dst,
                    )
            else:
                channel.codec_probe_in = ADAPT_PROBE_EVERY
            return
        score = channel.codec_score
        score.append(win)
        if len(score) > ADAPT_WINDOW:
            score.pop(0)
        if (len(score) >= ADAPT_WINDOW
                and sum(score) < ADAPT_MIN_WIN_RATE * len(score)):
            channel.codec_down = True
            channel.codec_probe_in = ADAPT_PROBE_EVERY
            channel.codec_score = []
            self._bump("codec_downgrades")
            if self.obs is not None and self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "transport", "codec_downgrade",
                    src=channel.src, dst=channel.dst,
                )

    def _decode_frame(self, dst: int, frame: Frame) -> Optional[Frame]:
        """Unwrap a codec-coded payload on delivery; None = drop."""
        if not frame.flags & F_CODED:
            return frame
        dictionary = None
        if self.codec == "dict":
            key = (frame.sender, dst)
            dictionary = self._dec_dicts.get(key)
            if dictionary is None:
                dictionary = self._dec_dicts[key] = PayloadDict()
        try:
            raw = decode_payload(frame.payload, dictionary)
        except WireError:
            # A payload that cannot be decoded is a transmission fault:
            # count and drop the frame, never act on its contents.
            self.stats["wire_errors"] += 1
            return None
        frame.payload = raw
        frame.flags &= ~F_CODED
        return frame

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, frame: Frame, cls: str = "control",
             urgent: bool = False) -> int:
        """Queue one frame from node ``src`` to node ``dst``.

        Returns the queued frame's encoded size in bytes (post-codec) —
        the single source of truth the caller's cost accounting and the
        wire-byte stats both see. Returns immediately; the caller pays
        only the frame-encode cost (and even that is charged by the
        caller, since only the leader's critical path matters for
        overhead accounting).
        """
        if src == dst:
            raise WireError("a node does not message itself")
        channel = self._channel(src, dst)
        frame = self._encode_payload(channel, frame)
        size = frame.size()
        channel.pending.append(frame)
        channel.pending_bytes += size
        self.stats["frames_sent"] += 1
        self.stats["frame_bytes"] += size
        self.frames_by_class[cls] = self.frames_by_class.get(cls, 0) + 1
        self.bytes_by_class[cls] = self.bytes_by_class.get(cls, 0) + size
        if urgent or BATCH_HEADER_SIZE + channel.pending_bytes >= self.batch_bytes:
            self.stats["flushes_urgent" if urgent else "flushes_size"] += 1
            self._flush(channel)
        elif not channel.timer_armed:
            channel.timer_armed = True
            self.sim.call_at(
                self.sim.now + self.flush_interval_ns, self._timer_flush, channel
            )
        return size

    def flush_all(self) -> None:
        for channel in self._channels.values():
            if channel.pending:
                self._flush(channel)

    # ------------------------------------------------------------------
    def _timer_flush(self, channel: Channel) -> None:
        channel.timer_armed = False
        if channel.pending:
            self.stats["flushes_timer"] += 1
            self._flush(channel)

    def _flush(self, channel: Channel) -> None:
        frames, channel.pending = channel.pending, []
        # One source of truth for sizing: the bytes counted at send()
        # are exactly the bytes encode_batch produces (header aside).
        pending_bytes, channel.pending_bytes = channel.pending_bytes, 0
        if self.reliable:
            self._flush_reliable(channel, frames, pending_bytes)
            return
        data = encode_batch(frames)
        assert len(data) == BATCH_HEADER_SIZE + pending_bytes, (
            "frame byte accounting diverged from encoded batch size"
        )
        self.stats["messages_sent"] += 1
        self.stats["wire_bytes"] += len(data)
        if self.obs is not None and self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "transport", "flush", src=channel.src, dst=channel.dst,
                nbytes=len(data), frames=len(frames),
            )
        src_addr = self.addresses[channel.src]
        dst_addr = self.addresses[channel.dst]
        dst = channel.dst
        # The sender-side per-message CPU cost is folded into delivery
        # time (the sending thread is not blocked on it: a kernel worker
        # does the pushing in the systems we model). Departures are
        # serialized per channel so batches never overtake each other.
        send_cost = self.costs.dist_message_cost_ns(len(data))

        def _transmit():
            self.network.transmit(
                self.sim, src_addr, dst_addr, len(data), self._deliver, dst, data
            )

        depart = max(self.sim.now + send_cost, channel.next_depart)
        channel.next_depart = depart
        self.sim.call_at(depart, _transmit)

    def _deliver(self, dst: int, data: bytes) -> None:
        try:
            frames = decode_batch(data)
        except WireError:
            # A damaged transfer unit is a transmission fault: count and
            # drop it rather than act on its contents — but account the
            # frames it carried so loss experiments can reconcile
            # frames_sent against dispatch.
            self.stats["wire_errors"] += 1
            count = batch_frame_count(data)
            self._drop_frames("undecodable", count if count is not None else 1)
            return
        self._dispatch_frames(dst, frames)

    def _dispatch_frames(self, dst: int, frames: List[Frame]) -> None:
        if self.dispatch is None:
            return
        for frame in frames:
            if frame.type == T_CONTROL and frame.payload == _PROBE_PAYLOAD:
                # A breaker half-open probe: it exists only to be acked
                # by the sequence layer, never shown to the cluster.
                continue
            decoded = self._decode_frame(dst, frame)
            if decoded is None:
                self._drop_frames(frame_class(frame.type))
                continue
            if self.stale_filter is not None and self.stale_filter(dst, decoded):
                self.stats["stale_drops"] += 1
                continue
            self.dispatch(dst, decoded)

    # ------------------------------------------------------------------
    # Reliable path: seq/ack window, retransmit timers, circuit breaker
    # ------------------------------------------------------------------
    def _send_window(self, key: Tuple[int, int]) -> SenderWindow:
        window = self._send_windows.get(key)
        if window is None:
            window = self._send_windows[key] = SenderWindow(self.window_size)
        return window

    def _recv_window(self, key: Tuple[int, int]) -> ReceiverWindow:
        window = self._recv_windows.get(key)
        if window is None:
            window = self._recv_windows[key] = ReceiverWindow()
        return window

    def _breaker(self, key: Tuple[int, int]) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = self._breakers[key] = self._breaker_factory()
        return breaker

    def _flush_reliable(self, channel: Channel, frames: List[Frame],
                        pending_bytes: int) -> None:
        key = (channel.src, channel.dst)
        window = self._send_window(key)
        if not window.can_send():
            # Window full (or a backlog already waits): FIFO-defer the
            # whole batch; it ships as acks advance the window.
            window.defer(frames, pending_bytes)
            self._bump("window_stalls")
            return
        self._send_sequenced(key, channel, frames, pending_bytes)

    def _send_sequenced(self, key: Tuple[int, int], channel: Channel,
                        frames: List[Frame], pending_bytes: int) -> None:
        window = self._send_window(key)
        reverse = self._recv_windows.get((channel.dst, channel.src))
        ack = reverse.cumulative_ack if reverse is not None else 0
        seq = window.next_seq
        data = encode_reliable_batch(frames, seq, ack)
        assert len(data) == RBATCH_HEADER_SIZE + pending_bytes, (
            "frame byte accounting diverged from encoded batch size"
        )
        self.stats["messages_sent"] += 1
        self.stats["wire_bytes"] += len(data)
        if self.obs is not None and self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "transport", "flush", src=channel.src, dst=channel.dst,
                nbytes=len(data), frames=len(frames), seq=seq,
            )
        send_cost = self.costs.dist_message_cost_ns(len(data))
        depart = max(self.sim.now + send_cost, channel.next_depart)
        channel.next_depart = depart
        window.register(data, len(data), depart)
        self.sim.call_at(depart, self._transmit_reliable, key, data)
        self.sim.call_at(
            depart + self.retransmit_policy.timeout_for(0),
            self._retransmit_check, key, seq,
        )

    def _transmit_reliable(self, key: Tuple[int, int], data: bytes) -> None:
        src, dst = key
        self.network.transmit(
            self.sim, self.addresses[src], self.addresses[dst], len(data),
            self._deliver_reliable, src, dst, data,
        )

    def _retransmit_check(self, key: Tuple[int, int], seq: int) -> None:
        window = self._send_windows.get(key)
        if window is None:
            return
        entry = window.mark_retransmit(seq)
        if entry is None:
            return  # acked in time
        src, dst = key
        self._bump("retransmits")
        self._bump("retransmit_bytes", entry.size)
        self.stats["wire_bytes"] += entry.size
        # Re-pushing a stored batch costs CPU plus the normal per-byte
        # message cost; retransmits are not serialized behind the
        # channel's fresh batches (they re-enter the wire directly).
        cost = (self.costs.dist_retransmit_ns
                + self.costs.dist_message_cost_ns(entry.size))
        if self.obs is not None:
            self.obs.registry.histogram("dist_retransmit_ns").observe(cost)
            if self.obs.tracer.enabled:
                self.obs.tracer.instant(
                    "transport", "retransmit", src=src, dst=dst, seq=seq,
                    attempt=entry.attempts,
                )
        if self._breaker(key).record_failure(self.sim.now):
            self._breaker_opened(key)
        depart = self.sim.now + cost
        self.sim.call_at(depart, self._transmit_reliable, key, entry.data)
        self.sim.call_at(
            depart + self.retransmit_policy.timeout_for(entry.attempts),
            self._retransmit_check, key, seq,
        )

    def _deliver_reliable(self, src: int, dst: int, data: bytes) -> None:
        try:
            frames, seq, ack = parse_batch(data)
        except WireError:
            self.stats["wire_errors"] += 1
            count = batch_frame_count(data)
            self._drop_frames("undecodable", count if count is not None else 1)
            return
        if ack:
            # The ack acknowledges the reverse channel: traffic this
            # node (dst) sent towards the batch's sender (src).
            self._apply_ack((dst, src), ack)
        if not seq:
            # Pure-ack (seq 0) batch: nothing to sequence or re-ack.
            self._dispatch_frames(dst, frames)
            return
        key = (src, dst)
        window = self._recv_window(key)
        dups, ooo = window.dups, window.ooo
        ready = window.accept(seq, frames)
        if window.dups > dups:
            self._bump("dup_batches_dropped")
        if window.ooo > ooo:
            self._bump("ooo_batches")
        for batch_frames in ready:
            self._dispatch_frames(dst, batch_frames)
        # Ack every sequenced arrival, duplicates included — a dup means
        # the sender retransmitted, likely because our last ack was lost.
        self._send_ack(dst, src)

    def _apply_ack(self, key: Tuple[int, int], ack: int) -> None:
        window = self._send_windows.get(key)
        if window is None:
            return
        now = self.sim.now
        acked, samples = window.ack(ack, now)
        breaker = self._breaker(key)
        for sample in samples:
            if self.obs is not None:
                self.obs.registry.histogram("dist_link_rtt_ns").observe(sample)
            if breaker.record_rtt(sample, window.min_rtt_ns, now):
                self._breaker_opened(key)
        if not acked:
            return
        if breaker.record_success():
            self._breaker_closed(key)
        deferred = window.pop_deferred()
        while deferred is not None:
            frames, size = deferred
            self._send_sequenced(key, self._channel(*key), frames, size)
            deferred = window.pop_deferred()

    def _send_ack(self, from_node: int, to_node: int) -> None:
        window = self._recv_windows.get((to_node, from_node))
        ack = window.cumulative_ack if window is not None else 0
        if ack == 0:
            return
        data = encode_reliable_batch([], 0, ack)
        self._bump("acks_sent")
        self.stats["wire_bytes"] += len(data)
        cost = self.costs.dist_ack_ns + self.costs.dist_message_cost_ns(len(data))
        self.sim.call_at(
            self.sim.now + cost, self._transmit_reliable,
            (from_node, to_node), data,
        )

    # -- circuit breaker ----------------------------------------------
    def _breaker_opened(self, key: Tuple[int, int]) -> None:
        src, dst = key
        breaker = self._breakers[key]
        self._bump("breaker_opens")
        if self.obs is not None and self.obs.tracer.enabled:
            if key not in self._breaker_spans:
                self._breaker_spans[key] = self.obs.tracer.begin(
                    "transport", "breaker_open", src=src, dst=dst,
                )
        if key not in self._links_down:
            self._links_down.add(key)
            if self.on_link_down is not None:
                self.on_link_down(src, dst)
        self.sim.call_at(
            self.sim.now + breaker.current_cooldown_ns, self._maybe_probe, key
        )

    def _maybe_probe(self, key: Tuple[int, int]) -> None:
        breaker = self._breakers.get(key)
        if breaker is None or not breaker.probe_due(self.sim.now):
            return
        breaker.begin_probe()
        self._bump("probes_sent")
        src, dst = key
        if self.obs is not None and self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "transport", "breaker_probe", src=src, dst=dst,
            )
        probe = Frame(T_CONTROL, src, 0, 0, payload=_PROBE_PAYLOAD)
        self.send(src, dst, probe, cls="control", urgent=True)

    def _breaker_closed(self, key: Tuple[int, int]) -> None:
        src, dst = key
        self._bump("breaker_closes")
        span = self._breaker_spans.pop(key, None)
        if span is not None:
            span.finish(probes=self._breakers[key].probes)
        if key in self._links_down:
            self._links_down.discard(key)
            if self.on_link_up is not None:
                self.on_link_up(src, dst)
