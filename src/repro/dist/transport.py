"""Batched, pipelined monitor transport between simulated nodes.

Frames (see :mod:`repro.dist.wire`) are not sent one syscall at a time —
that would pay a per-message syscall/NIC cost per event and drown in
link latency. Instead each directed node pair owns a :class:`Channel`
that coalesces frames into a transfer unit which is flushed when it
reaches ``batch_bytes``, when a flush timer expires, or immediately for
*urgent* frames (rendezvous rounds, control traffic — anything a thread
is synchronously blocked on).

Sending is asynchronous (async pipelining): the producer queues the
frame and keeps running; only the per-frame encode cost lands on its
critical path. The per-message CPU cost
(:meth:`~repro.costs.model.CostModel.dist_message_cost_ns`) plus the
link's latency/bandwidth/jitter delay (charged by
:meth:`~repro.kernel.sockets.Network.transmit`, which also guarantees
FIFO delivery per directed pair) is folded into the delivery time of
the batch.

With a ``codec`` configured (``"rle"`` or ``"dict"``, see
:mod:`repro.dist.codec`), replicated-result payloads are compressed
here — *before* a frame enters its channel queue — so batch thresholds,
per-class byte accounting, and the wire-byte stats all see one truth:
the size of the frame as actually encoded. Frames are decoded back to
raw payloads on delivery, before dispatch; a frame whose coded payload
fails to decode is a transmission fault (counted and dropped), exactly
like a CRC-damaged frame.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.dist.codec import TAG_NAMES, PayloadDict, decode_payload, encode_payload
from repro.dist.wire import (
    BATCH_HEADER_SIZE,
    F_CODED,
    Frame,
    T_SYSCALL_RESULT,
    decode_batch,
    encode_batch,
)
from repro.errors import WireError
from repro.kernel.sockets import Address

#: Codec names accepted by Transport/DistConfig. ``None`` ships raw.
CODECS = ("rle", "dict")

#: Payloads below this length cannot win (dict reference is 6 bytes,
#: and the tag byte costs 1): ship them unwrapped.
MIN_CODEC_LEN = 8


class Channel:
    """The outgoing frame queue for one directed node pair."""

    __slots__ = ("src", "dst", "pending", "pending_bytes", "timer_armed",
                 "enc_dict", "next_depart")

    def __init__(self, src: int, dst: int):
        self.src = src
        self.dst = dst
        self.pending: List[Frame] = []
        self.pending_bytes = 0
        self.timer_armed = False
        #: Sender-side payload dictionary (dict codec only; lazily built).
        self.enc_dict: Optional[PayloadDict] = None
        #: Earliest time the next batch may enter the network: one
        #: kernel worker pushes a channel's batches in flush order, so
        #: a large batch's bigger per-message cost can never let a later
        #: small batch overtake it (overtaking would break the FIFO
        #: delivery the payload dictionaries are synchronized by).
        self.next_depart = 0


class Transport:
    """All monitor channels of one cluster, sharing a Network."""

    def __init__(self, sim, network, addresses: List[Address], costs,
                 batch_bytes: int = 4096, flush_interval_ns: int = 50_000,
                 codec: Optional[str] = None):
        if codec is not None and codec not in CODECS:
            raise WireError("unknown transport codec %r (want one of %r)"
                            % (codec, CODECS))
        self.sim = sim
        self.network = network
        self.addresses = addresses
        self.costs = costs
        self.batch_bytes = batch_bytes
        self.flush_interval_ns = flush_interval_ns
        self.codec = codec
        #: Installed by the cluster: ``dispatch(dst_index, frame)``.
        self.dispatch: Optional[Callable[[int, Frame], None]] = None
        #: Optional epoch gate, consulted per frame at delivery before
        #: dispatch: True means the frame is stale (sent under an older
        #: ownership epoch to a shard that no longer hosts its round)
        #: and is dropped — the sender re-submits under the new epoch.
        self.stale_filter: Optional[Callable[[int, Frame], bool]] = None
        self._channels: Dict[Tuple[int, int], Channel] = {}
        #: Receiver-side payload dictionaries, keyed by directed pair.
        self._dec_dicts: Dict[Tuple[int, int], PayloadDict] = {}
        self.stats = {
            "messages_sent": 0,
            "wire_bytes": 0,
            "frames_sent": 0,
            "frame_bytes": 0,
            "wire_errors": 0,
            "flushes_size": 0,
            "flushes_timer": 0,
            "flushes_urgent": 0,
            "payload_raw_bytes": 0,
            "payload_coded_bytes": 0,
            "codec_raw": 0,
            "codec_rle": 0,
            "codec_dict": 0,
            "stale_drops": 0,
        }
        self.bytes_by_class: Dict[str, int] = {}
        self.frames_by_class: Dict[str, int] = {}
        #: Optional repro.obs.Obs hub, installed by the cluster; used
        #: only for span-tracing flush/codec decisions when enabled.
        self.obs = None

    def _channel(self, src: int, dst: int) -> Channel:
        channel = self._channels.get((src, dst))
        if channel is None:
            channel = Channel(src, dst)
            self._channels[(src, dst)] = channel
        return channel

    # ------------------------------------------------------------------
    # Codec plumbing
    # ------------------------------------------------------------------
    def _encode_payload(self, channel: Channel, frame: Frame) -> Frame:
        """Wrap a replicated-result payload with the configured codec.

        Returns a *new* frame (the caller may broadcast the original to
        several channels, each with its own dictionary state). Only
        ``T_SYSCALL_RESULT`` frames are coded: RB mirror traffic is
        where the redundant bytes live, and rendezvous/digest frames are
        small and latency-critical.
        """
        if (
            self.codec is None
            or frame.type != T_SYSCALL_RESULT
            or frame.flags & F_CODED
            or len(frame.payload) < MIN_CODEC_LEN
        ):
            return frame
        dictionary = None
        if self.codec == "dict":
            if channel.enc_dict is None:
                channel.enc_dict = PayloadDict()
            dictionary = channel.enc_dict
        raw_len = len(frame.payload)
        coded = encode_payload(frame.payload, dictionary)
        self.stats["payload_raw_bytes"] += raw_len
        self.stats["payload_coded_bytes"] += len(coded)
        self.stats["codec_" + TAG_NAMES[coded[0]]] += 1
        if self.obs is not None and self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "transport", "codec", src=channel.src, dst=channel.dst,
                tag=TAG_NAMES[coded[0]], raw=raw_len, coded=len(coded),
            )
        return Frame(
            frame.type, frame.sender, frame.vtid, frame.seq,
            aux=frame.aux, flags=frame.flags | F_CODED, payload=coded,
        )

    def _decode_frame(self, dst: int, frame: Frame) -> Optional[Frame]:
        """Unwrap a codec-coded payload on delivery; None = drop."""
        if not frame.flags & F_CODED:
            return frame
        dictionary = None
        if self.codec == "dict":
            key = (frame.sender, dst)
            dictionary = self._dec_dicts.get(key)
            if dictionary is None:
                dictionary = self._dec_dicts[key] = PayloadDict()
        try:
            raw = decode_payload(frame.payload, dictionary)
        except WireError:
            # A payload that cannot be decoded is a transmission fault:
            # count and drop the frame, never act on its contents.
            self.stats["wire_errors"] += 1
            return None
        frame.payload = raw
        frame.flags &= ~F_CODED
        return frame

    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, frame: Frame, cls: str = "control",
             urgent: bool = False) -> int:
        """Queue one frame from node ``src`` to node ``dst``.

        Returns the queued frame's encoded size in bytes (post-codec) —
        the single source of truth the caller's cost accounting and the
        wire-byte stats both see. Returns immediately; the caller pays
        only the frame-encode cost (and even that is charged by the
        caller, since only the leader's critical path matters for
        overhead accounting).
        """
        if src == dst:
            raise WireError("a node does not message itself")
        channel = self._channel(src, dst)
        frame = self._encode_payload(channel, frame)
        size = frame.size()
        channel.pending.append(frame)
        channel.pending_bytes += size
        self.stats["frames_sent"] += 1
        self.stats["frame_bytes"] += size
        self.frames_by_class[cls] = self.frames_by_class.get(cls, 0) + 1
        self.bytes_by_class[cls] = self.bytes_by_class.get(cls, 0) + size
        if urgent or BATCH_HEADER_SIZE + channel.pending_bytes >= self.batch_bytes:
            self.stats["flushes_urgent" if urgent else "flushes_size"] += 1
            self._flush(channel)
        elif not channel.timer_armed:
            channel.timer_armed = True
            self.sim.call_at(
                self.sim.now + self.flush_interval_ns, self._timer_flush, channel
            )
        return size

    def flush_all(self) -> None:
        for channel in self._channels.values():
            if channel.pending:
                self._flush(channel)

    # ------------------------------------------------------------------
    def _timer_flush(self, channel: Channel) -> None:
        channel.timer_armed = False
        if channel.pending:
            self.stats["flushes_timer"] += 1
            self._flush(channel)

    def _flush(self, channel: Channel) -> None:
        frames, channel.pending = channel.pending, []
        # One source of truth for sizing: the bytes counted at send()
        # are exactly the bytes encode_batch produces (header aside).
        pending_bytes, channel.pending_bytes = channel.pending_bytes, 0
        data = encode_batch(frames)
        assert len(data) == BATCH_HEADER_SIZE + pending_bytes, (
            "frame byte accounting diverged from encoded batch size"
        )
        self.stats["messages_sent"] += 1
        self.stats["wire_bytes"] += len(data)
        if self.obs is not None and self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "transport", "flush", src=channel.src, dst=channel.dst,
                nbytes=len(data), frames=len(frames),
            )
        src_addr = self.addresses[channel.src]
        dst_addr = self.addresses[channel.dst]
        dst = channel.dst
        # The sender-side per-message CPU cost is folded into delivery
        # time (the sending thread is not blocked on it: a kernel worker
        # does the pushing in the systems we model). Departures are
        # serialized per channel so batches never overtake each other.
        send_cost = self.costs.dist_message_cost_ns(len(data))

        def _transmit():
            self.network.transmit(
                self.sim, src_addr, dst_addr, len(data), self._deliver, dst, data
            )

        depart = max(self.sim.now + send_cost, channel.next_depart)
        channel.next_depart = depart
        self.sim.call_at(depart, _transmit)

    def _deliver(self, dst: int, data: bytes) -> None:
        try:
            frames = decode_batch(data)
        except WireError:
            # A damaged transfer unit is a transmission fault: count and
            # drop it rather than act on its contents.
            self.stats["wire_errors"] += 1
            return
        if self.dispatch is None:
            return
        for frame in frames:
            frame = self._decode_frame(dst, frame)
            if frame is None:
                continue
            if self.stale_filter is not None and self.stale_filter(dst, frame):
                self.stats["stale_drops"] += 1
                continue
            self.dispatch(dst, frame)
