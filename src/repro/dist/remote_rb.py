"""Remote replication-buffer mirror.

Single-machine ReMon replicates master results to slaves through the
IP-MON replication buffer: shared memory, so a slave just spins/sleeps
until the master's record appears. Across nodes there is no shared
memory — the leader *pushes* result records over the transport and each
follower keeps a local mirror of the in-flight window of the leader's
RB, keyed like the RB itself by (virtual thread, per-thread sequence
number).

Records are retained after adoption (not trimmed on consume) so that a
follower promoted to leader after a crash can re-broadcast results the
dead leader shipped to *it* but possibly not to every peer — the
distributed analogue of the RB surviving its writer.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.kernel.waitq import WaitQueue

Key = Tuple[int, int]  # (vtid, seq)


class RemoteRecord:
    """One mirrored syscall result: return value + serialised out-buffers."""

    __slots__ = ("result", "payload", "name")

    def __init__(self, result: int, payload: bytes = b"", name: str = ""):
        self.result = result
        self.payload = payload
        self.name = name

    def __repr__(self):
        return "RemoteRecord(%s=%d, %d bytes)" % (
            self.name, self.result, len(self.payload)
        )


class RBMirror:
    """A node's local mirror of the leader's replication buffer."""

    def __init__(self, node_index: int):
        self.node_index = node_index
        self.records: Dict[Key, RemoteRecord] = {}
        self.consumed: Set[Key] = set()
        #: Rendezvous verdicts pushed by the leader (1 ok, 0 diverged).
        self.releases: Dict[Key, int] = {}
        #: Canonical digest each agreed round was decided on (0 when the
        #: verdict predates digest-carrying releases or was a mismatch).
        #: Replayed re-admissions verify against these (DESIGN.md §13).
        self.release_digests: Dict[Key, int] = {}
        self.waitq = WaitQueue("rb-mirror-%d" % node_index)
        self.records_received = 0
        self.records_adopted = 0
        self.releases_received = 0
        self.duplicates_dropped = 0

    # -- result records ----------------------------------------------------
    def put(self, vtid: int, seq: int, record: RemoteRecord, sim=None) -> None:
        key = (vtid, seq)
        if key in self.records:
            # Failover re-broadcasts make duplicates normal, not a bug.
            self.duplicates_dropped += 1
            return
        self.records[key] = record
        self.records_received += 1
        if sim is not None:
            self.waitq.notify_all(sim)

    def get(self, vtid: int, seq: int) -> Optional[RemoteRecord]:
        return self.records.get((vtid, seq))

    def consume(self, vtid: int, seq: int) -> None:
        """Mark a record adopted (it stays available for re-broadcast)."""
        key = (vtid, seq)
        if key in self.records and key not in self.consumed:
            self.consumed.add(key)
            self.records_adopted += 1

    def unconsumed(self) -> Dict[Key, RemoteRecord]:
        """Records held but not yet adopted locally — the window a new
        leader re-broadcasts after a failover."""
        return {
            key: record
            for key, record in self.records.items()
            if key not in self.consumed
        }

    # -- rendezvous releases ----------------------------------------------
    def release(
        self, vtid: int, seq: int, verdict: int, sim=None, digest: int = 0
    ) -> None:
        key = (vtid, seq)
        if key not in self.releases:
            self.releases[key] = verdict
            if digest:
                self.release_digests[key] = digest
            self.releases_received += 1
        if sim is not None:
            self.waitq.notify_all(sim)

    def verdict(self, vtid: int, seq: int) -> Optional[int]:
        return self.releases.get((vtid, seq))

    def verdict_digest(self, vtid: int, seq: int) -> int:
        """The canonical digest an agreed round was decided on (0 when
        unknown: pre-digest releases, or a diverged round)."""
        return self.release_digests.get((vtid, seq), 0)

    def wake(self, sim) -> None:
        """Wake any waiter (membership changed, shutdown, promotion)."""
        self.waitq.notify_all(sim)
