"""repro.dist — distributed multi-variant execution across simulated nodes.

Where :class:`repro.core.ReMon` runs all replicas on one simulated
machine (sharing its kernel, caches, and an IP-MON replication buffer in
shared memory), this package places each replica on its own simulated
node — a private kernel and filesystem image — connected by the
simulated network. The design follows the distributed descendants of
ReMon (dMVX, DMON): a leader node executes externally visible I/O and
mirrors results to followers over an explicit wire format, most other
calls run node-locally with lazy digest cross-checks, and monitored
calls rendezvous in lockstep through per-owner monitor shards (the
leader's alone by default; a rendezvous-hashed owner set under
``DistConfig.shard_rendezvous``). Ownership is versioned by an epoch
bumped on every quarantine, with an explicit, costed handoff protocol
(``T_SHARD_HANDOFF`` / ``T_ROUND_RESUBMIT``) re-homing or re-collecting
a dead owner's open rounds.

Entry points::

    from repro.dist import DistConfig, run_distributed
    cfg = ReMonConfig(replicas=3, dist=DistConfig(link_latency_ns=200_000))
    result = run_distributed(program, cfg)

See DESIGN.md §8 for the model and its simplifications.
"""

from repro.dist.cluster import (
    DistConfig,
    DistMonitor,
    DistMvee,
    run_distributed,
    shard_owner,
)
from repro.dist.codec import (
    PayloadDict,
    TAG_DICT,
    TAG_RAW,
    TAG_RLE,
    decode_payload,
    encode_payload,
    rle_decode,
    rle_encode,
)
from repro.dist.node import DistInterceptor, Node, NodeFdView, ReplicaView
from repro.dist.reliable import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    ReceiverWindow,
    RetransmitPolicy,
    SenderWindow,
)
from repro.dist.shard import MonitorShard, RendezvousState, round_key
from repro.dist.remote_rb import RBMirror, RemoteRecord
from repro.dist.selective import (
    CLS_CONTROL,
    CLS_DIGEST,
    CLS_HANDOFF,
    CLS_LIFECYCLE,
    CLS_RENDEZVOUS,
    FRAME_CLASSES,
    LOCAL,
    REPLICATED,
    frame_class,
    SelectiveReplication,
    full_replication,
    selective_replication,
    syscall_class,
)
from repro.dist.transport import CODECS, Channel, Transport
from repro.dist.wire import (
    DigestCache,
    F_CODED,
    Frame,
    digest_cache,
    T_CALL_DIGEST,
    T_CONTROL,
    T_LIFECYCLE_GOSSIP,
    T_LIFECYCLE_STATE,
    T_RENDEZVOUS_OK,
    T_RENDEZVOUS_REQ,
    T_ROUND_RESUBMIT,
    T_SHARD_HANDOFF,
    T_SYSCALL_RESULT,
    decode_batch,
    decode_frame,
    encode_batch,
    encode_frame,
    gossip_payload,
    parse_gossip_payload,
    parse_state_payload,
    state_payload,
)

__all__ = [
    "DistConfig",
    "DistMonitor",
    "DistMvee",
    "run_distributed",
    "shard_owner",
    "MonitorShard",
    "RendezvousState",
    "round_key",
    "PayloadDict",
    "TAG_DICT",
    "TAG_RAW",
    "TAG_RLE",
    "decode_payload",
    "encode_payload",
    "rle_decode",
    "rle_encode",
    "DistInterceptor",
    "Node",
    "NodeFdView",
    "ReplicaView",
    "RBMirror",
    "RemoteRecord",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "ReceiverWindow",
    "RetransmitPolicy",
    "SenderWindow",
    "CLS_CONTROL",
    "CLS_DIGEST",
    "CLS_HANDOFF",
    "CLS_LIFECYCLE",
    "CLS_RENDEZVOUS",
    "FRAME_CLASSES",
    "frame_class",
    "LOCAL",
    "REPLICATED",
    "SelectiveReplication",
    "full_replication",
    "selective_replication",
    "syscall_class",
    "CODECS",
    "Channel",
    "Transport",
    "DigestCache",
    "F_CODED",
    "digest_cache",
    "Frame",
    "T_CALL_DIGEST",
    "T_CONTROL",
    "T_LIFECYCLE_GOSSIP",
    "T_LIFECYCLE_STATE",
    "T_RENDEZVOUS_OK",
    "T_RENDEZVOUS_REQ",
    "T_ROUND_RESUBMIT",
    "T_SHARD_HANDOFF",
    "T_SYSCALL_RESULT",
    "decode_batch",
    "decode_frame",
    "encode_batch",
    "encode_frame",
    "gossip_payload",
    "parse_gossip_payload",
    "parse_state_payload",
    "state_payload",
]
