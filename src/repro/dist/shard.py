"""Per-owner rendezvous shards and the rendezvous-hash owner map.

PR-3 sharded rendezvous *ownership* (which node's serial monitor
services a round) but kept one shared ``DistMonitor`` map, so on
membership change "re-hosting" was free. This module makes the state
real: each owner node hosts a :class:`MonitorShard` holding only its
own rounds — the :class:`RendezvousState` map, the shard's serial
service timeline (``busy_until``) and its round counter. Losing the
owner loses the shard: its open rounds must be re-collected from the
surviving participants (``T_ROUND_RESUBMIT``), and rounds that merely
*remap* to a different surviving owner are shipped across the wire
(``T_SHARD_HANDOFF``) — both charged through the cost model, so shard
failure has a measurable recovery cost (DESIGN.md §8).

Routing uses highest-random-weight (rendezvous) hashing instead of
``hash % len(owners)``: every node computes ``argmax`` over owners of a
mixed (key, owner) score, which is minimally disruptive — removing an
owner remaps *only* the keys that owner held, so a crash hands off the
dead shard and nothing else (the property the hypothesis suite pins).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import MonitorError
from repro.kernel.waitq import WaitQueue

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a cheap, stable 64-bit avalanche."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


#: Memoized per-owner salts for the HRW score (the owner side of the
#: score never changes, only the key side does).
_OWNER_SALTS: Dict[int, int] = {}


def _owner_salt(owner: int) -> int:
    salt = _OWNER_SALTS.get(owner)
    if salt is None:
        salt = _OWNER_SALTS[owner] = _mix64((owner + 1) * 0x9E3779B97F4A7C15)
    return salt


def round_key(vtid: int, seq: int) -> int:
    """The mixed 64-bit routing key for one rendezvous round."""
    return _mix64(((vtid & 0xFFFFFFFF) << 32) ^ (seq & _M64))


def shard_owner(vtid: int, seq: int, owners: Tuple[int, ...]) -> int:
    """The node owning the rendezvous round ``(vtid, seq)``.

    A pure function of its inputs — every node computes the same owner
    from the same membership without coordination (consistent routing is
    what lets followers send digests straight to the owning shard).
    Highest-random-weight hashing: the owner with the largest mixed
    (key, owner) score wins, so shrinking the owner set remaps only the
    removed owner's keys, and the avalanche keeps consecutive sequence
    numbers of one thread spread across shards.
    """
    if not owners:
        raise MonitorError("shard routing needs at least one owner")
    key = round_key(vtid, seq)
    best = owners[0]
    best_score = -1
    for owner in owners:
        score = _mix64(key ^ _owner_salt(owner))
        if score > best_score:
            best = owner
            best_score = score
    return best


class RendezvousState:
    """One lockstep round's collected digests and verdict."""

    __slots__ = ("digests", "verdict", "completing", "owner", "waitq")

    def __init__(self):
        self.digests: Dict[int, Tuple[str, int]] = {}
        self.verdict: Optional[int] = None
        #: All digests arrived; the owner's monitor is servicing the
        #: round (verdict lands when its serial queue drains).
        self.completing = False
        #: The node that owned the round when its verdict landed.
        self.owner: Optional[int] = None
        self.waitq = WaitQueue("rendezvous")


class MonitorShard:
    """One owner node's slice of the rendezvous monitor.

    The shard is a serial resource living on its owner: rounds it
    services queue on ``busy_until`` one ``dist_monitor_round_ns`` at a
    time. When the owner is quarantined the shard dies with it — its
    open rounds are *lost* (re-collected via resubmission), not
    teleported; only rounds hosted by surviving shards can be handed
    off as state transfers.
    """

    __slots__ = ("owner", "rendezvous", "busy_until", "rounds", "dead")

    def __init__(self, owner: int):
        self.owner = owner
        self.rendezvous: Dict[Tuple[int, int], RendezvousState] = {}
        #: Sim-time this shard's serial monitor becomes free.
        self.busy_until = 0
        #: Rounds this shard has serviced (queued on its timeline).
        self.rounds = 0
        #: Set when the owner is quarantined: the shard's state is gone.
        self.dead = False

    def state_for(self, vtid: int, seq: int) -> Optional[RendezvousState]:
        return self.rendezvous.get((vtid, seq))

    def open_rounds(self):
        """Snapshot of (key, state) pairs with no verdict yet."""
        return [
            (key, state)
            for key, state in self.rendezvous.items()
            if state.verdict is None
        ]

    def __repr__(self):
        return "MonitorShard(owner=%d, rounds=%d, open=%d%s)" % (
            self.owner,
            self.rounds,
            len(self.open_rounds()),
            ", dead" if self.dead else "",
        )
