"""The distributed MVEE: N single-replica nodes on one simulated switch.

:class:`DistMvee` mirrors :class:`repro.core.ReMon`'s public surface
(``run`` → :class:`MveeResult`, ``divergence``/``replica_fault``/
``quarantine`` events, a :class:`~repro.core.remon.ReplicaGroup` the
fault injector binds to) but the replicas live on different simulated
machines: each node owns a full kernel and filesystem image, all nodes
share one discrete-event clock and one :class:`Network`, and monitor
traffic rides the batched :class:`~repro.dist.transport.Transport`.

The monitor state (:class:`DistMonitor`) is logically hosted on the
leader node. We model it as one shared object whose *availability*
tracks the leader: rendezvous rounds cannot complete while a crashed
leader is undetected (its digest is still awaited), and complete only
after the crash-detection timeout quarantines it and promotes a
successor — at which point the monitor is "re-hosted" with its state
intact. Real systems (DMON) rebuild this state from follower logs; the
simplification is documented in DESIGN.md §8.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.epoll_map import EpollShadowMap
from repro.core.events import DivergenceReport, MveeResult
from repro.core.handlers import build_handler_table
from repro.core.remon import ReMonConfig, ReplicaGroup
from repro.obs import Obs
from repro.dist.node import DistInterceptor, Node, ReplicaView
from repro.dist.selective import SelectiveReplication, selective_replication
from repro.dist.transport import CODECS, Transport
from repro.dist.wire import (
    Frame,
    T_CALL_DIGEST,
    T_CONTROL,
    T_RENDEZVOUS_OK,
    T_RENDEZVOUS_REQ,
    T_SYSCALL_RESULT,
    parse_digest_payload,
)
from repro.diversity.aslr import make_layouts
from repro.errors import MonitorError
from repro.guest.program import Program
from repro.guest.runtime import GuestRuntime
from repro.kernel import errno_codes as E
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.sockets import Network
from repro.kernel.waitq import WaitQueue, wait_interruptible
from repro.sim import Simulator

_M64 = (1 << 64) - 1


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a cheap, stable 64-bit avalanche."""
    x &= _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    return x ^ (x >> 31)


def shard_owner(vtid: int, seq: int, owners: Tuple[int, ...]) -> int:
    """The node owning the rendezvous round ``(vtid, seq)``.

    A pure function of its inputs — every node computes the same owner
    from the same membership without coordination (consistent routing is
    what lets followers send digests straight to the owning shard). The
    SplitMix64 avalanche keeps consecutive sequence numbers of one
    thread spread across shards, so a hot thread does not pin one node.
    """
    if not owners:
        raise MonitorError("shard routing needs at least one owner")
    key = _mix64(((vtid & 0xFFFFFFFF) << 32) ^ (seq & _M64))
    return owners[key % len(owners)]


@dataclass
class DistConfig:
    """Distributed-execution knobs, attached to ``ReMonConfig.dist``."""

    #: Node count (None = one node per replica from ReMonConfig.replicas).
    nodes: Optional[int] = None
    node_cores: int = 8
    #: One-way latency / bandwidth / jitter of every inter-node link.
    link_latency_ns: int = 100_000
    link_bandwidth_bps: Optional[float] = 1e9
    link_jitter_ns: int = 0
    #: Transport coalescing: flush a channel at this many pending bytes
    #: or after this long, whichever comes first.
    batch_bytes: int = 4096
    flush_interval_ns: int = 50_000
    replication: SelectiveReplication = field(
        default_factory=selective_replication
    )
    #: A node waiting longer than this on a peer declares it stalled.
    stall_timeout_ns: int = 400_000_000
    backoff_initial_ns: int = 100_000
    backoff_max_ns: int = 16_000_000
    #: Crash-detection lag (None = costs.dist_crash_detect_ns + link latency).
    crash_detect_ns: Optional[int] = None
    #: Fast path (off by default). ``shard_rendezvous`` spreads rendezvous
    #: rounds across nodes by (vtid, seq) hash instead of serializing them
    #: all through the leader's monitor; ``rendezvous_shards`` caps how
    #: many nodes own shards (None = every live node).
    shard_rendezvous: bool = False
    rendezvous_shards: Optional[int] = None
    #: Rendezvous verdicts are applied on every node at a *scheduled*
    #: instant (owner completion + link latency + this slack) rather
    #: than at frame arrival: arrival-order release wakes threads in
    #: node-dependent order — variable batch serialization can swap two
    #: nearby releases, and the broadcaster itself would wake in
    #: completion order — which desynchronizes shared-namespace
    #: allocation (fd numbers, memory races) across nodes. The slack
    #: covers batch serialization and jitter so the release frame is
    #: physically on every node before its delivery time (urgent
    #: release batches are tens of bytes; an occasional frame landing
    #: after its instant only means the uniform apply ran a hair early).
    release_slack_ns: int = 2_000
    #: RB mirror payload codec: None (raw), "rle", or "dict" (RLE plus a
    #: per-channel dictionary over repeated reads). See repro.dist.codec.
    compress: Optional[str] = None
    #: Observability (repro.obs.ObsConfig). None falls back to
    #: ``ReMonConfig.obs``, then to metrics-only defaults.
    obs: Optional[object] = None


class _RendezvousState:
    __slots__ = ("digests", "verdict", "completing", "owner", "waitq")

    def __init__(self):
        self.digests: Dict[int, Tuple[str, int]] = {}
        self.verdict: Optional[int] = None
        #: All digests arrived; the owner's monitor is servicing the
        #: round (verdict lands when its serial queue drains).
        self.completing = False
        #: The node that owned the round when its verdict landed.
        self.owner: Optional[int] = None
        self.waitq = WaitQueue("rendezvous")


class DistMonitor:
    """Rendezvous monitor: lockstep rounds + lazy async checks.

    State is keyed by (vtid, per-thread sequence number); sequence
    counters advance identically on every node because replicas run the
    same program and thread creation is lockstepped, so a key names
    "the same call" cluster-wide. Completed rendezvous states are
    retained (a leader re-reads its verdict after waking) and reference
    digests are kept for the run's lifetime — runs are short and the
    memory is bounded by total syscall count.

    Each round is *owned* by one node (the leader by default; a hashed
    shard owner under ``DistConfig.shard_rendezvous``) and that node's
    monitor is a serial resource: rounds it owns are serviced one at a
    time, each costing ``dist_monitor_round_ns``. With a single owner,
    many-threaded lockstep load queues behind one timeline — the
    serialization sharding exists to break up. The async digest lane
    stays leader-hosted: it is off every thread's critical path, so
    spreading it buys nothing.
    """

    def __init__(self, mvee: "DistMvee"):
        self.mvee = mvee
        self.references: Dict[Tuple[int, int], Tuple[str, int]] = {}
        self.pending_checks: Dict[Tuple[int, int], List[Tuple[int, str, int]]] = {}
        self.rendezvous: Dict[Tuple[int, int], _RendezvousState] = {}
        #: Per-owner serial service timeline (sim-time the owner's
        #: monitor becomes free) and per-owner round counts.
        self._busy_until: Dict[int, int] = {}
        self.rounds_by_owner: Dict[int, int] = {}
        self.stats = {
            "async_checks": 0,
            "async_mismatches": 0,
            "rendezvous_completed": 0,
            "monitor_wait_ns": 0,
        }

    # -- async digest lane -------------------------------------------------
    def record_reference(self, vtid: int, seq: int, name: str, digest: int) -> None:
        key = (vtid, seq)
        self.references[key] = (name, digest)
        for sender, fname, fdigest in self.pending_checks.pop(key, []):
            self._check(sender, key, fname, fdigest)

    def check_digest(self, sender: int, vtid: int, seq: int, name: str,
                     digest: int) -> None:
        key = (vtid, seq)
        if key not in self.references:
            # The follower ran ahead of the leader on this call — park
            # the digest until the leader records its own (§4 run-ahead).
            self.pending_checks.setdefault(key, []).append((sender, name, digest))
            return
        self._check(sender, key, name, digest)

    def _check(self, sender: int, key, name: str, digest: int) -> None:
        self.stats["async_checks"] += 1
        ref_name, ref_digest = self.references[key]
        if name == ref_name and digest == ref_digest:
            return
        self.stats["async_mismatches"] += 1
        self.mvee.divergence(
            DivergenceReport(
                self.mvee.sim.now,
                key[0],
                name,
                "async digest from node %d differs from leader's %s"
                % (sender, ref_name),
                detected_by="dist-async",
            )
        )

    # -- rendezvous lane ---------------------------------------------------
    def state_for(self, vtid: int, seq: int) -> Optional[_RendezvousState]:
        return self.rendezvous.get((vtid, seq))

    def submit(self, sender: int, vtid: int, seq: int, name: str,
               digest: int) -> _RendezvousState:
        key = (vtid, seq)
        state = self.rendezvous.get(key)
        if state is None:
            state = _RendezvousState()
            self.rendezvous[key] = state
        state.digests.setdefault(sender, (name, digest))
        self.try_complete(vtid, seq)
        return state

    def try_complete(self, vtid: int, seq: int) -> None:
        """If every participant has voted, queue the round on its owning
        node's serial monitor timeline; the verdict lands (and is
        broadcast by the owner) when the owner's queue drains."""
        key = (vtid, seq)
        state = self.rendezvous.get(key)
        if state is None or state.verdict is not None or state.completing:
            return
        participants = self.mvee.participants()
        if not participants:
            return
        if any(p not in state.digests for p in participants):
            return
        state.completing = True
        sim = self.mvee.sim
        owner = self.mvee.shard_owner(vtid, seq)
        start = max(sim.now, self._busy_until.get(owner, 0))
        done = start + self.mvee._costs().dist_monitor_round_ns
        self._busy_until[owner] = done
        self.stats["monitor_wait_ns"] += start - sim.now
        obs = self.mvee.obs
        if obs is not None:
            obs.registry.histogram("dist_monitor_wait_ns").observe(
                start - sim.now
            )
        self.rounds_by_owner[owner] = self.rounds_by_owner.get(owner, 0) + 1
        sim.call_at(done, self._complete, vtid, seq)

    def _complete(self, vtid: int, seq: int) -> None:
        """The owner's monitor finished servicing the round: vote over
        the *current* participants (membership may have changed while
        queued) and broadcast the release.

        Releases are *scheduled*, not applied at frame arrival: the
        owner stamps the round with a delivery instant one
        release_lag_ns ahead, and :meth:`_release` applies it on every
        node simultaneously (the frames still travel — they model the
        physical transfer — but delivery timing comes from the stamp,
        PTP-multicast style). Arrival-order release is subtly unsound
        even with the single leader as broadcaster: the leader itself
        would wake in completion order while followers wake in arrival
        order, and variable batch serialization can swap two nearby
        releases — either way nodes wake threads in different orders
        and shared-namespace allocation (fd numbers, memory races)
        desynchronizes. Uniform scheduled delivery is also what makes
        sharding safe at all: with many broadcasters there is no single
        FIFO order to lean on."""
        key = (vtid, seq)
        state = self.rendezvous.get(key)
        if state is None or state.verdict is not None:
            return
        if self.mvee.shutting_down:
            state.completing = False
            return
        participants = self.mvee.participants()
        if not participants or any(p not in state.digests for p in participants):
            # A participant joined or ownership moved while queued;
            # the round re-enters the queue when its digest arrives.
            state.completing = False
            return
        votes = {state.digests[p] for p in participants}
        verdict = 1 if len(votes) == 1 else 0
        owner = self.mvee.shard_owner(vtid, seq)
        for peer in participants:
            if peer == owner:
                continue
            self.mvee.send_frame(
                owner, peer,
                Frame(T_RENDEZVOUS_OK, owner, vtid, seq, aux=verdict),
                cls="rendezvous", urgent=True,
            )
        lag = self.mvee.release_lag_ns()
        if lag:
            self.mvee.sim.call_at(
                self.mvee.sim.now + lag, self._release, vtid, seq, verdict, owner
            )
        else:
            self._release(vtid, seq, verdict, owner)

    def _release(self, vtid: int, seq: int, verdict: int, owner: int) -> None:
        """The verdict becomes visible: record it, report a divergence on
        mismatch, and (under sharding) apply it to every node's mirror at
        this one instant — uniform wake order across nodes."""
        key = (vtid, seq)
        state = self.rendezvous.get(key)
        if state is None or state.verdict is not None:
            return
        state.completing = False
        if self.mvee.shutting_down:
            return
        state.verdict = verdict
        state.owner = owner
        self.stats["rendezvous_completed"] += 1
        if verdict == 0:
            names = sorted({v[0] for v in state.digests.values()})
            self.mvee.divergence(
                DivergenceReport(
                    self.mvee.sim.now,
                    vtid,
                    names[0],
                    "lockstep digest mismatch across nodes (%s)"
                    % ", ".join(names),
                    detected_by="dist-lockstep",
                )
            )
        sim = self.mvee.sim
        # Scheduled delivery: land the release in every mirror at this
        # one instant (the frames carry the bytes; _dispatch leaves
        # their application to this event).
        for node in self.mvee.nodes:
            node.mirror.release(vtid, seq, verdict, sim)
        state.waitq.notify_all(sim)

    def on_membership_change(self) -> None:
        """A node was quarantined (or promoted): re-try every open round
        — the quorum may now be satisfiable without the lost node, and
        rounds owned by the lost node re-route to a surviving owner."""
        for (vtid, seq), state in list(self.rendezvous.items()):
            if state.verdict is None and not state.completing:
                self.try_complete(vtid, seq)


class DistMvee:
    """An MVEE whose replicas run on separate simulated nodes.

    Typical use::

        mvee = DistMvee(program, ReMonConfig(replicas=3, dist=DistConfig()))
        result = mvee.run(max_steps=...)
    """

    def __init__(self, program: Program, config: Optional[ReMonConfig] = None):
        self.program = program
        self.config = config or ReMonConfig(dist=DistConfig())
        dconfig = self.config.dist
        if dconfig is None:
            dconfig = DistConfig()
        if not isinstance(dconfig, DistConfig):
            raise MonitorError(
                "ReMonConfig.dist must be a DistConfig, got %r" % (dconfig,)
            )
        self.dconfig = dconfig
        if dconfig.compress is not None and dconfig.compress not in CODECS:
            raise MonitorError(
                "DistConfig.compress must be None or one of %r, got %r"
                % (CODECS, dconfig.compress)
            )
        self.n = dconfig.nodes if dconfig.nodes is not None else self.config.replicas
        if self.n < 1:
            raise MonitorError("a distributed MVEE needs at least one node")
        self.solo = self.n == 1
        self.policy = self.config.policy()
        self.replication = dconfig.replication
        self.handlers = build_handler_table(self.policy.unmonitored_set())
        self.group = ReplicaGroup()
        self.epoll_map = EpollShadowMap(self.n)
        self.result = MveeResult()
        self.shutting_down = False
        self.master_exit_ns: Optional[int] = None
        self.stats = {
            "local_calls": 0,
            "replicated_calls": 0,
            "adopted_results": 0,
            "rendezvous_calls": 0,
            "round_trips": 0,
            "promoted_executions": 0,
            "backoff_retries": 0,
            "stall_reports": 0,
            "failover_rebroadcasts": 0,
            "control_frames": 0,
        }
        self.degradation_stats = {
            "replicas_quarantined": 0,
            "master_promotions": 0,
        }
        self.sim = Simulator(cores=dconfig.node_cores * self.n)
        self.obs = Obs.create(
            dconfig.obs if dconfig.obs is not None
            else getattr(self.config, "obs", None),
            self.sim,
        )
        if self.obs.tracer.enabled and self.sim.trace_sink is None:
            self.sim.trace_sink = self.obs.tracer
        self.network = Network(
            latency_ns=dconfig.link_latency_ns,
            bandwidth_bps=dconfig.link_bandwidth_bps,
            jitter_ns=dconfig.link_jitter_ns,
            jitter_seed=self.config.seed or 0x5EED,
        )
        self.nodes: List[Node] = []
        self.monitor = DistMonitor(self)
        self._parkq = WaitQueue("dist-park")
        self._started = False
        self._build()

    # ------------------------------------------------------------------
    @property
    def leader_index(self) -> int:
        return self.group.master_index

    @property
    def diverged(self) -> bool:
        return self.result.diverged

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        dconfig = self.dconfig
        layouts = make_layouts(
            self.n, seed=self.config.seed,
            aslr=self.config.aslr, dcl=self.config.dcl,
        )
        for index, layout in enumerate(layouts):
            kernel = Kernel(
                sim=self.sim,
                config=KernelConfig(cores=dconfig.node_cores),
                network=self.network,
            )
            kernel.attach_obs(self.obs)
            self.program.install_files(kernel)
            process = kernel.create_process(
                "%s.n%d" % (self.program.name, index),
                mmap_base=layout.mmap_base,
                brk_base=layout.brk_base,
                host_ip="10.1.%d.1" % index,
            )
            # Nodes do not share caches or DRAM: no cross-replica memory
            # pressure — one of distribution's selling points.
            process.compute_factor = 1.0
            self.group.add(process)
            node = Node(index, kernel, process, layout)
            node.view = ReplicaView(process, self.policy, self.epoll_map, index)
            node.interceptor = DistInterceptor(self, node)
            kernel.syscall_hooks.append(node.interceptor)
            node.runtime = GuestRuntime(kernel, process, self.program, layout=layout)
            self.nodes.append(node)
            process.exit_event.add_listener(
                lambda code, n=node: self._on_node_exit(n, code)
            )
        self.transport = Transport(
            self.sim,
            self.network,
            [(node.host_ip, 0) for node in self.nodes],
            self.nodes[0].kernel.config.costs,
            batch_bytes=dconfig.batch_bytes,
            flush_interval_ns=dconfig.flush_interval_ns,
            codec=dconfig.compress,
        )
        self.transport.obs = self.obs
        self.transport.dispatch = self._dispatch

    def attach_faults(self, injector) -> object:
        """Install a :class:`repro.faults.FaultInjector` cluster-wide:
        timed faults are scheduled on the shared clock; each node's
        kernel consults the injector at its own syscall dispatch."""
        injector.install(self.nodes[0].kernel)
        for node in self.nodes:
            node.kernel.fault_injector = injector
        injector.bind_mvee(self)
        return injector

    #: Fault-injector compatibility: there is no in-process monitor, so
    #: RB-corruption faults are skipped cleanly.
    ipmon = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def participants(self) -> List[int]:
        """Nodes a rendezvous must hear from: everyone not quarantined
        and not *cleanly* exited. A crashed-but-undetected node still
        counts — its silence is what stalls the round until the crash
        detector quarantines it (the honest failure dynamics)."""
        out = []
        for node in self.nodes:
            process = node.process
            if process.quarantined:
                continue
            if process.exited and (process.exit_code or 0) < 128:
                continue
            out.append(node.index)
        return out

    def live_peers(self, exclude: int) -> List[int]:
        return [
            node.index
            for node in self.nodes
            if node.index != exclude
            and not node.process.exited
            and not node.process.quarantined
        ]

    def shard_owners(self) -> Tuple[int, ...]:
        """The nodes currently eligible to own rendezvous rounds.

        Without sharding this is the leader alone (PR-2 semantics: one
        logical monitor serializes every round). With sharding it is
        every live participant, optionally capped at
        ``rendezvous_shards`` owners (lowest indices first, so the
        owner set is identical on every node)."""
        if not self.dconfig.shard_rendezvous:
            return (self.leader_index,)
        live = tuple(self.participants())
        if not live:
            return (self.leader_index,)
        cap = self.dconfig.rendezvous_shards
        if cap is not None:
            live = live[:max(1, cap)]
        return live

    def shard_owner(self, vtid: int, seq: int) -> int:
        return shard_owner(vtid, seq, self.shard_owners())

    def release_lag_ns(self) -> int:
        """Delay between a round's verdict and its cluster-wide
        visibility: verdicts are applied on every node (owner included)
        at owner-completion + this lag, so releases reach all nodes in
        one global order — see :meth:`DistMonitor._complete`."""
        return self.dconfig.link_latency_ns + self.dconfig.release_slack_ns

    def missing_participant(self, vtid: int, seq: int,
                            reporter: int) -> Optional[int]:
        """Whom to blame for a stalled rendezvous: the first participant
        whose digest is missing. None means nobody is actually missing —
        the round is completing and the release is merely in flight, so
        the watchdog must not punish an innocent node."""
        state = self.monitor.state_for(vtid, seq)
        owner = self.shard_owner(vtid, seq)
        if state is not None:
            for index in self.participants():
                if index != reporter and index not in state.digests:
                    return index
            return None
        if owner != reporter:
            return owner
        others = [p for p in self.participants() if p != reporter]
        return others[0] if others else None

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def send_frame(self, src: int, dst: int, frame: Frame, cls: str,
                   urgent: bool = False) -> None:
        if src == dst:
            return
        self.transport.send(src, dst, frame, cls=cls, urgent=urgent)

    def _dispatch(self, dst: int, frame: Frame) -> None:
        if frame.type == T_CALL_DIGEST:
            digest, name = parse_digest_payload(frame.payload)
            self.monitor.check_digest(
                frame.sender, frame.vtid, frame.seq, name, digest
            )
        elif frame.type == T_RENDEZVOUS_REQ:
            digest, name = parse_digest_payload(frame.payload)
            self.monitor.submit(frame.sender, frame.vtid, frame.seq, name, digest)
        elif frame.type in (T_RENDEZVOUS_OK, T_SYSCALL_RESULT):
            # Releases and mirror records are applied by *scheduled*
            # delivery (DistMonitor._release, the leader's scheduled
            # mirror put): one global instant per record, so every node
            # wakes its threads in the same order. These frames are the
            # physical bytes of that transfer — a minimal frame can beat
            # the schedule by a few hundred ns, so acting on arrival
            # here would desynchronize wake order on the margin.
            pass
        else:
            self.stats["control_frames"] += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            node.runtime.start()

    def run(self, until: Optional[int] = None,
            max_steps: Optional[int] = None) -> MveeResult:
        self.start()
        self.sim.run(until=until, max_steps=max_steps)
        return self.finalize()

    def finalize(self) -> MveeResult:
        for node in self.nodes:
            if node.process.quarantined:
                continue
            for thread in node.process.threads.values():
                task = thread.task
                if task is not None and task.failure is not None:
                    raise task.failure
        result = self.result
        result.exit_codes = [node.process.exit_code for node in self.nodes]
        result.wall_time_ns = (
            self.master_exit_ns if self.master_exit_ns is not None else self.sim.now
        )
        result.monitored_calls = self.stats["rendezvous_calls"]
        result.unmonitored_calls = (
            self.stats["local_calls"]
            + self.stats["replicated_calls"]
            + self.stats["adopted_results"]
        )
        # Stats assembly goes through the obs registry adapter: the two
        # live component dicts are ingested under the dist_ prefix, the
        # derived scalars are exposed, and the rendered view is
        # byte-identical to the old hand-built dict.
        registry = self.obs.registry
        registry.ingest("dist_", self.stats, source="mvee")
        registry.ingest("dist_", self.monitor.stats, source="monitor")
        registry.expose("dist_nodes", self.n)
        registry.expose("dist_messages", self.transport.stats["messages_sent"])
        registry.expose("dist_wire_bytes", self.transport.stats["wire_bytes"])
        registry.expose("dist_frames", self.transport.stats["frames_sent"])
        registry.expose("dist_frame_bytes", self.transport.stats["frame_bytes"])
        registry.expose("dist_wire_errors", self.transport.stats["wire_errors"])
        for key in ("flushes_size", "flushes_timer", "flushes_urgent",
                    "payload_raw_bytes", "payload_coded_bytes",
                    "codec_raw", "codec_rle", "codec_dict"):
            registry.expose("dist_" + key, self.transport.stats[key])
        # Owners that actually serviced rounds (shard_owners() shrinks to
        # the leader once every node has exited cleanly, so it is not a
        # faithful after-the-fact count).
        registry.expose("dist_shards", len(self.monitor.rounds_by_owner) or 1)
        for owner, count in sorted(self.monitor.rounds_by_owner.items()):
            registry.expose("dist_rounds_owner_%d" % owner, count)
        registry.expose(
            "dist_rounds_owner_max",
            max(self.monitor.rounds_by_owner.values(), default=0),
        )
        for cls, nbytes in sorted(self.transport.bytes_by_class.items()):
            registry.expose("dist_bytes_" + cls, nbytes)
        for cls, count in sorted(self.transport.frames_by_class.items()):
            registry.expose("dist_frames_" + cls, count)
        registry.expose(
            "replicas_quarantined",
            self.degradation_stats["replicas_quarantined"],
        )
        registry.expose(
            "master_promotions", self.degradation_stats["master_promotions"]
        )
        injector = getattr(self.nodes[0].kernel, "fault_injector", None)
        registry.expose(
            "faults_injected",
            injector.total_injected if injector is not None else 0,
        )
        result.stats = registry.stats_view()
        self.obs.export_files(result.postmortems)
        return result

    def _record_postmortem(self, reason: str, report: DivergenceReport) -> None:
        """Snapshot the flight recorder (if enabled) into the result."""
        postmortem = self.obs.emit_postmortem(
            reason,
            report,
            attribution={
                "vtid": report.vtid,
                "replica": report.replica,
                "leader_index": self.leader_index,
                "quarantined": list(self.result.quarantined_replicas),
                "shard_owners": sorted(self.monitor.rounds_by_owner),
            },
            backoff={
                "backoff_retries": self.stats["backoff_retries"],
                "stall_reports": self.stats["stall_reports"],
                "rounds_by_owner": dict(self.monitor.rounds_by_owner),
            },
        )
        if postmortem is not None:
            self.result.postmortems.append(postmortem)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def divergence(self, report: DivergenceReport) -> None:
        if self.shutting_down or self.result.divergence is not None:
            return
        self.result.divergence = report
        self._record_postmortem("divergence", report)
        if self.group.all_exited():
            if not self.result.shutdown_reason:
                self.result.shutdown_reason = "divergence: %s" % report.detail
            return
        # Teardown is not instantaneous across machines: the kill
        # messages ride the network.
        delay = self.dconfig.link_latency_ns + self._costs().dist_msg_syscall_ns
        self.sim.call_at(
            self.sim.now + delay, self.shutdown, "divergence: %s" % report.detail
        )

    def shutdown(self, reason: str) -> None:
        if self.shutting_down:
            return
        self.shutting_down = True
        self.result.shutdown_reason = reason
        for node in self.nodes:
            if not node.process.exited:
                node.kernel.terminate_process(node.process, 137, signo=9)
        self._wake_everyone()

    def _costs(self):
        return self.nodes[0].kernel.config.costs

    def crash_detect_ns(self) -> int:
        if self.dconfig.crash_detect_ns is not None:
            return self.dconfig.crash_detect_ns
        return self._costs().dist_crash_detect_ns + self.dconfig.link_latency_ns

    def _wake_everyone(self) -> None:
        for node in self.nodes:
            node.mirror.wake(self.sim)
        self._parkq.notify_all(self.sim)

    def _on_node_exit(self, node: Node, code) -> None:
        code = code if isinstance(code, int) else (node.process.exit_code or 0)
        if (
            node.index == self.group.master_index
            and not node.process.quarantined
            and self.master_exit_ns is None
            and code < 128
        ):
            self.master_exit_ns = self.sim.now
        if self.group.all_exited() and not self.result.shutdown_reason:
            self.result.shutdown_reason = "all replicas exited"
        if (
            code >= 128
            and not self.shutting_down
            and not self.diverged
            and not node.process.quarantined
        ):
            # Remote crashes are detected by timeout, not by waitpid.
            self.sim.call_at(
                self.sim.now + self.crash_detect_ns(),
                self._handle_crash, node, code,
            )

    def _handle_crash(self, node: Node, code: int) -> None:
        if (
            self.shutting_down
            or self.diverged
            or node.process.quarantined
        ):
            return
        self.replica_fault(
            node.process,
            DivergenceReport(
                self.sim.now,
                0,
                "",
                "node %d (%s) crashed with code %d"
                % (node.index, node.process.name, code),
                detected_by="dist-heartbeat",
                kind="crash",
            ),
        )

    # ------------------------------------------------------------------
    # Graceful degradation across nodes (reuses repro.core policies)
    # ------------------------------------------------------------------
    def report_stall(self, reporter: Node, thread, req, blame: int,
                     detail: str) -> None:
        self.stats["stall_reports"] += 1
        blamed = self.nodes[blame].process
        self.replica_fault(
            blamed,
            DivergenceReport(
                self.sim.now,
                thread.vtid,
                req.name,
                "node %d reports node %d stalled: %s"
                % (reporter.index, blame, detail),
                detected_by="dist-watchdog",
                kind="stall",
            ),
        )

    def _survivors_excluding(self, process) -> List:
        return [
            p
            for p in self.group.processes
            if p is not process and not p.exited and not p.quarantined
        ]

    def replica_fault(self, process, report: DivergenceReport) -> None:
        if self.shutting_down or self.diverged or process.quarantined:
            return
        policy = self.config.degradation
        if policy is None or policy.classify(report) != "benign":
            self.divergence(report)
            return
        survivors = self._survivors_excluding(process)
        if len(survivors) < policy.min_quorum:
            report.detail += " [quorum lost: %d survivors < min_quorum %d]" % (
                len(survivors),
                policy.min_quorum,
            )
            self.divergence(report)
            return
        self.quarantine(process, report)

    def quarantine(self, process, report: DivergenceReport) -> None:
        index = self.group.index_of(process)
        was_leader = index == self.group.master_index
        policy = self.config.degradation
        if was_leader and (policy is None or not policy.promote_master):
            self.divergence(report)
            return
        process.quarantined = True
        self.result.fault_events.append(report)
        self.result.quarantined_replicas.append(index)
        if report.replica is None:
            report.replica = index
        self._record_postmortem("quarantine", report)
        self.degradation_stats["replicas_quarantined"] += 1
        if was_leader:
            self._promote_leader(index)
        if not process.exited:
            self.nodes[index].kernel.terminate_process(process, 137, signo=9)
        self.monitor.on_membership_change()
        self._wake_everyone()

    def _promote_leader(self, dead_index: int) -> None:
        survivors = self.group.survivors()
        if not survivors:
            return
        new_leader = survivors[0]  # kept in index order
        new_index = self.group.index_of(new_leader)
        self.group.master_index = new_index
        self.degradation_stats["master_promotions"] += 1
        # The new leader re-broadcasts every result it holds but has not
        # consumed: the dead leader may have shipped those records to us
        # and not to every peer (the RB-survives-its-writer analogue).
        node = self.nodes[new_index]
        rebroadcast = sorted(node.mirror.unconsumed().items())
        for (vtid, seq), record in rebroadcast:
            frame = Frame(
                T_SYSCALL_RESULT, new_index, vtid, seq,
                aux=record.result, payload=record.payload,
            )
            for peer in self.live_peers(new_index):
                self.send_frame(new_index, peer, frame, cls="control", urgent=True)
            self.stats["failover_rebroadcasts"] += 1
        if rebroadcast:
            # Scheduled delivery, like the leader's normal mirror push:
            # the rebroadcast records land on every surviving peer at
            # one instant (duplicates drop idempotently).
            self.sim.call_at(
                self.sim.now + self.release_lag_ns(),
                self._deliver_rebroadcast, new_index, rebroadcast,
            )

    def _deliver_rebroadcast(self, leader_index: int, rebroadcast) -> None:
        for (vtid, seq), record in rebroadcast:
            for peer in self.live_peers(leader_index):
                self.nodes[peer].mirror.put(vtid, seq, record, self.sim)

    # ------------------------------------------------------------------
    # Parking (a replica that lost its rendezvous waits for the kill)
    # ------------------------------------------------------------------
    def park(self, thread):
        """Block until this replica's process is torn down. Returning a
        fake errno into the guest would trip its own assertions before
        the kill lands; instead the thread sleeps and the runtime turns
        the process exit into a clean teardown."""
        while not thread.process.exited:
            event = self._parkq.register()
            status, _ = yield from wait_interruptible(
                thread, event, timeout_ns=1_000_000
            )
            if status != "fired":
                self._parkq.unregister(event)
        return -E.EINTR


def run_distributed(program: Program, config: Optional[ReMonConfig] = None,
                    fault_plan=None, until: Optional[int] = None,
                    max_steps: Optional[int] = None) -> MveeResult:
    """Build and run a distributed MVEE in one call."""
    mvee = DistMvee(program, config)
    if fault_plan is not None:
        from repro.faults import FaultInjector

        mvee.attach_faults(FaultInjector(fault_plan))
    return mvee.run(until=until, max_steps=max_steps)
