"""The distributed MVEE: N single-replica nodes on one simulated switch.

:class:`DistMvee` mirrors :class:`repro.core.ReMon`'s public surface
(``run`` → :class:`MveeResult`, ``divergence``/``replica_fault``/
``quarantine`` events, a :class:`~repro.core.remon.ReplicaGroup` the
fault injector binds to) but the replicas live on different simulated
machines: each node owns a full kernel and filesystem image, all nodes
share one discrete-event clock and one :class:`Network`, and monitor
traffic rides the batched :class:`~repro.dist.transport.Transport`.

Rendezvous state is held in per-owner :class:`~repro.dist.shard.
MonitorShard` instances living on their owner nodes (the leader alone
without sharding; a rendezvous-hashed owner set under
``DistConfig.shard_rendezvous``), coordinated by :class:`DistMonitor`.
Ownership is versioned by an **epoch** bumped on every quarantine:
rendezvous frames carry the epoch they were sent under, stale frames
addressed to a shard that no longer hosts their round are rejected,
and an owner crash triggers an explicit handoff — surviving rounds
that remap are shipped to their new owner (``T_SHARD_HANDOFF``), the
dead shard's open rounds are lost and re-collected from the surviving
participants (``T_ROUND_RESUBMIT``) — all charged through the cost
model so recovery latency is measurable (DESIGN.md §8). A *clean*
exit changes membership without an epoch bump: rounds stay on their
hosting shard and nothing is re-sent, which keeps fault-free stats
byte-identical to the pre-shard monitor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.epoll_map import EpollShadowMap
from repro.core.events import DivergenceReport, MveeResult
from repro.core.handlers import build_handler_table
from repro.core.policies import Level
from repro.core.remon import ReMonConfig, ReplicaGroup
from repro.obs import Obs
from repro.dist.node import DistInterceptor, Node, ReplicaView
from repro.dist.reliable import CircuitBreaker, RetransmitPolicy
from repro.dist.selective import (
    CLS_CONTROL,
    CLS_HANDOFF,
    CLS_RENDEZVOUS,
    SelectiveReplication,
    selective_replication,
)
from repro.dist.shard import (
    MonitorShard,
    RendezvousState,
    shard_owner,
)
from repro.dist.transport import CODECS, Transport
from repro.dist.wire import (
    Frame,
    T_CALL_DIGEST,
    T_CONTROL,
    T_LIFECYCLE_GOSSIP,
    T_LIFECYCLE_STATE,
    T_RENDEZVOUS_OK,
    T_RENDEZVOUS_REQ,
    T_ROUND_RESUBMIT,
    T_SHARD_HANDOFF,
    T_SYSCALL_RESULT,
    handoff_payload,
    owners_payload,
    parse_digest_payload,
)
from repro.diversity.aslr import make_layouts
from repro.diversity.profile import make_node_profiles
from repro.errors import MonitorError
from repro.guest.program import Program
from repro.guest.runtime import GuestRuntime
from repro.kernel import errno_codes as E
from repro.kernel.kernel import Kernel, KernelConfig
from repro.kernel.sockets import Network
from repro.kernel.waitq import WaitQueue, wait_interruptible
from repro.sim import Simulator

__all__ = [
    "DistConfig",
    "DistMonitor",
    "DistMvee",
    "run_distributed",
    "shard_owner",  # re-exported from repro.dist.shard (HRW routing)
]


@dataclass
class DistConfig:
    """Distributed-execution knobs, attached to ``ReMonConfig.dist``."""

    #: Node count (None = one node per replica from ReMonConfig.replicas).
    nodes: Optional[int] = None
    node_cores: int = 8
    #: One-way latency / bandwidth / jitter of every inter-node link.
    link_latency_ns: int = 100_000
    link_bandwidth_bps: Optional[float] = 1e9
    link_jitter_ns: int = 0
    #: Transport coalescing: flush a channel at this many pending bytes
    #: or after this long, whichever comes first.
    batch_bytes: int = 4096
    flush_interval_ns: int = 50_000
    replication: SelectiveReplication = field(
        default_factory=selective_replication
    )
    #: A node waiting longer than this on a peer declares it stalled.
    stall_timeout_ns: int = 400_000_000
    backoff_initial_ns: int = 100_000
    backoff_max_ns: int = 16_000_000
    #: Crash-detection lag (None = costs.dist_crash_detect_ns + link latency).
    crash_detect_ns: Optional[int] = None
    #: Fast path (off by default). ``shard_rendezvous`` spreads rendezvous
    #: rounds across nodes by (vtid, seq) hash instead of serializing them
    #: all through the leader's monitor; ``rendezvous_shards`` caps how
    #: many nodes own shards (None = every live node).
    shard_rendezvous: bool = False
    rendezvous_shards: Optional[int] = None
    #: Rendezvous verdicts are applied on every node at a *scheduled*
    #: instant (owner completion + link latency + this slack) rather
    #: than at frame arrival: arrival-order release wakes threads in
    #: node-dependent order — variable batch serialization can swap two
    #: nearby releases, and the broadcaster itself would wake in
    #: completion order — which desynchronizes shared-namespace
    #: allocation (fd numbers, memory races) across nodes. The slack
    #: covers batch serialization and jitter so the release frame is
    #: physically on every node before its delivery time (urgent
    #: release batches are tens of bytes; an occasional frame landing
    #: after its instant only means the uniform apply ran a hair early).
    release_slack_ns: int = 2_000
    #: RB mirror payload codec: None (raw), "rle", or "dict" (RLE plus a
    #: per-channel dictionary over repeated reads). See repro.dist.codec.
    compress: Optional[str] = None
    #: WAN fault knobs applied to every inter-node link (per-link values
    #: go through ``Network.set_link`` / ``LinkDegradeFault``). Any
    #: nonzero probability auto-enables the reliable transport.
    link_loss_prob: float = 0.0
    link_dup_prob: float = 0.0
    link_reorder_prob: float = 0.0
    #: Force the reliable (seq/ack/retransmit) transport on or off;
    #: None = enable exactly when some link can lose/dup/reorder.
    reliable_links: Optional[bool] = None
    #: Retransmission backoff (see repro.dist.reliable.RetransmitPolicy)
    #: and per-channel send window.
    retransmit_initial_ns: int = 800_000
    retransmit_cap_ns: int = 12_800_000
    retransmit_window: int = 32
    #: Per-link circuit breaker thresholds (repro.dist.reliable.
    #: CircuitBreaker): consecutive retransmissions / slow RTT samples
    #: that open a link, and the half-open probe cooldown schedule.
    breaker_failure_threshold: int = 8
    breaker_rtt_factor: float = 4.0
    breaker_slow_threshold: int = 16
    breaker_cooldown_ns: int = 50_000_000
    breaker_cooldown_cap_ns: int = 400_000_000
    #: Observability (repro.obs.ObsConfig). None falls back to
    #: ``ReMonConfig.obs``, then to metrics-only defaults.
    obs: Optional[object] = None
    #: External-service mode (repro.fleet): the replicated program
    #: serves clients that live *outside* the cluster and reach the
    #: leader's node only. accept() executes leader-only with followers
    #: adopting the fd, and readiness calls (epoll/poll/select) are
    #: replicated instead of process-local — see
    #: :data:`repro.dist.selective.EXTERNAL_LEADER_CALLS`. Requires a
    #: relaxation level that leaves socket data calls unmonitored
    #: (Level.SOCKET_RW): at stricter levels recv/send would rendezvous
    #: and execute on follower phantom fds.
    external_service: bool = False
    #: Heterogeneous per-node diversity (DESIGN.md §13, DMON-style).
    #: Every node gets its own :class:`repro.diversity.NodeProfile`:
    #: a private DCL arena, a one-way-mixed ASLR seed stream, and a
    #: divergent guest ABI. Cross-node digests then hash the canonical
    #: serialization (``repro.core.canonical``) instead of raw node
    #: bytes, and the canonicalization rewrite is billed on the
    #: rendezvous hot path. False (the default) keeps the single
    #: homogeneous layout family and is bit-identical to the
    #: pre-profile design.
    heterogeneous: bool = False
    #: Elastic lifecycle (repro.lifecycle.LifecycleConfig, or None):
    #: gossip membership + heartbeats, replay-based re-admission of
    #: quarantined slots, and the drift-watchdog auto-scaler. Typed as
    #: object to keep repro.lifecycle out of the dist import graph;
    #: None (the default) builds no manager at all, so lifecycle-free
    #: runs stay bit-identical — zero new frames, zero new stats.
    lifecycle: Optional[object] = None


class DistMonitor:
    """Rendezvous monitor: lockstep rounds + lazy async checks.

    State is keyed by (vtid, per-thread sequence number); sequence
    counters advance identically on every node because replicas run the
    same program and thread creation is lockstepped, so a key names
    "the same call" cluster-wide. Completed rendezvous states are
    retained (a leader re-reads its verdict after waking) and reference
    digests are kept for the run's lifetime — runs are short and the
    memory is bounded by total syscall count.

    Round state lives in per-owner :class:`MonitorShard` instances on
    the owner nodes; this object is the cluster-side coordinator: it
    routes submissions to the hosting shard (``_home`` tracks where each
    round physically lives — routing can move on membership change, the
    state itself only moves through an explicit handoff), runs the
    handoff protocol after a quarantine, and hosts the async digest
    lane, which stays leader-side: it is off every thread's critical
    path, so spreading it buys nothing.

    Each shard is a serial resource: rounds it owns are serviced one at
    a time, each costing ``dist_monitor_round_ns``. With a single owner,
    many-threaded lockstep load queues behind one timeline — the
    serialization sharding exists to break up.
    """

    def __init__(self, mvee: "DistMvee"):
        self.mvee = mvee
        self.references: Dict[Tuple[int, int], Tuple[str, int]] = {}
        self.pending_checks: Dict[Tuple[int, int], List[Tuple[int, str, int]]] = {}
        #: Which owner's shard currently *hosts* each round's state.
        self._home: Dict[Tuple[int, int], int] = {}
        self._shards: Dict[int, MonitorShard] = {}
        #: Owners in first-service order (stable rounds_by_owner view).
        self._service_order: List[int] = []
        #: Last scheduled release instant. Shard timelines are
        #: independent, so two rounds can complete at the same
        #: nanosecond; their releases must still land in one global
        #: order — owners wait on round state while followers wait on
        #: mirrors, so same-instant releases wake threads in
        #: node-dependent order and shared-namespace allocation (fd
        #: numbers) desynchronizes. Serializing release instants keeps
        #: delivery uniform; collision-free runs are untouched.
        self._release_clock = 0
        self.stats = {
            "async_checks": 0,
            "async_mismatches": 0,
            "rendezvous_completed": 0,
            "monitor_wait_ns": 0,
        }
        #: Recovery-path counters, kept out of ``stats`` so fault-free
        #: runs render a stats view byte-identical to the pre-shard
        #: monitor; finalize folds them in only once the epoch moved.
        self.handoff_stats = {
            "handoff_rounds": 0,
            "handoff_lost_rounds": 0,
            "round_resubmits": 0,
            "stale_epoch_rejects": 0,
            "handoff_cost_ns": 0,
        }
        #: Round keys evicted with a dead shard / re-collected after,
        #: for postmortems and the blast-radius assertions in tests.
        self.lost_keys: set = set()
        self.resubmitted_keys: set = set()
        self._handoff_span = None
        self._pending_adoptions = 0

    # -- shard plumbing ----------------------------------------------------
    def shard(self, owner: int) -> MonitorShard:
        """The owner's shard, created on first use and attached to the
        owner node (the state physically lives there)."""
        shard = self._shards.get(owner)
        if shard is None:
            shard = self._shards[owner] = MonitorShard(owner)
            self.mvee.nodes[owner].shard = shard
        return shard

    @property
    def rounds_by_owner(self) -> Dict[int, int]:
        """Per-owner serviced-round counts, in first-service order."""
        return {
            owner: self._shards[owner].rounds for owner in self._service_order
        }

    def host_of(self, vtid: int, seq: int) -> Optional[int]:
        """The owner whose shard currently hosts this round, if any."""
        return self._home.get((vtid, seq))

    # -- async digest lane -------------------------------------------------
    def record_reference(self, vtid: int, seq: int, name: str, digest: int) -> None:
        key = (vtid, seq)
        self.references[key] = (name, digest)
        for sender, fname, fdigest in self.pending_checks.pop(key, []):
            self._check(sender, key, fname, fdigest)

    def check_digest(self, sender: int, vtid: int, seq: int, name: str,
                     digest: int) -> None:
        key = (vtid, seq)
        if key not in self.references:
            # The follower ran ahead of the leader on this call — park
            # the digest until the leader records its own (§4 run-ahead).
            self.pending_checks.setdefault(key, []).append((sender, name, digest))
            return
        self._check(sender, key, name, digest)

    def _check(self, sender: int, key, name: str, digest: int) -> None:
        self.stats["async_checks"] += 1
        ref_name, ref_digest = self.references[key]
        if name == ref_name and digest == ref_digest:
            return
        self.stats["async_mismatches"] += 1
        self.mvee.divergence(
            DivergenceReport(
                self.mvee.sim.now,
                key[0],
                name,
                "async digest from node %d differs from leader's %s"
                % (sender, ref_name),
                detected_by="dist-async",
            )
        )

    # -- rendezvous lane ---------------------------------------------------
    def state_for(self, vtid: int, seq: int) -> Optional[RendezvousState]:
        host = self._home.get((vtid, seq))
        if host is None:
            return None
        return self._shards[host].rendezvous.get((vtid, seq))

    def submit(self, sender: int, vtid: int, seq: int, name: str,
               digest: int, resubmit: bool = False) -> RendezvousState:
        key = (vtid, seq)
        host = self._home.get(key)
        if host is None or self._shards[host].dead:
            # First submission for this round (or its old host died and
            # evicted it): the current owner's shard hosts it. Routing
            # may later drift on *clean* membership changes without the
            # state moving — the home map keeps it addressable.
            host = self.mvee.shard_owner(vtid, seq)
            self._home[key] = host
        shard = self.shard(host)
        state = shard.rendezvous.get(key)
        if state is None:
            state = shard.rendezvous[key] = RendezvousState()
            if resubmit:
                # Rebuilding a round lost with its shard: the new owner
                # pays the per-round recovery work on its timeline.
                self._charge_handoff(shard)
        if resubmit:
            self.handoff_stats["round_resubmits"] += 1
            self.resubmitted_keys.add(key)
        state.digests.setdefault(sender, (name, digest))
        self.try_complete(vtid, seq)
        return state

    def try_complete(self, vtid: int, seq: int) -> None:
        """If every participant has voted, queue the round on its owning
        node's serial monitor timeline; the verdict lands (and is
        broadcast by the owner) when the owner's queue drains."""
        state = self.state_for(vtid, seq)
        if state is None or state.verdict is not None or state.completing:
            return
        participants = self.mvee.participants()
        if not participants:
            return
        if any(p not in state.digests for p in participants):
            return
        state.completing = True
        sim = self.mvee.sim
        owner = self.mvee.shard_owner(vtid, seq)
        shard = self.shard(owner)
        start = max(sim.now, shard.busy_until)
        done = start + self.mvee._costs().dist_monitor_round_ns
        shard.busy_until = done
        self.stats["monitor_wait_ns"] += start - sim.now
        obs = self.mvee.obs
        if obs is not None:
            obs.registry.histogram("dist_monitor_wait_ns").observe(
                start - sim.now
            )
        if shard.rounds == 0:
            self._service_order.append(owner)
        shard.rounds += 1
        sim.call_at(done, self._complete, vtid, seq)

    def _complete(self, vtid: int, seq: int) -> None:
        """The owner's monitor finished servicing the round: vote over
        the *current* participants (membership may have changed while
        queued) and broadcast the release.

        Releases are *scheduled*, not applied at frame arrival: the
        owner stamps the round with a delivery instant one
        release_lag_ns ahead, and :meth:`_release` applies it on every
        node simultaneously (the frames still travel — they model the
        physical transfer — but delivery timing comes from the stamp,
        PTP-multicast style). Arrival-order release is subtly unsound
        even with the single leader as broadcaster: the leader itself
        would wake in completion order while followers wake in arrival
        order, and variable batch serialization can swap two nearby
        releases — either way nodes wake threads in different orders
        and shared-namespace allocation (fd numbers, memory races)
        desynchronizes. Uniform scheduled delivery is also what makes
        sharding safe at all: with many broadcasters there is no single
        FIFO order to lean on."""
        state = self.state_for(vtid, seq)
        if state is None or state.verdict is not None:
            return
        if self.mvee.shutting_down:
            state.completing = False
            return
        participants = self.mvee.participants()
        if not participants or any(p not in state.digests for p in participants):
            # A participant joined or ownership moved while queued;
            # the round re-enters the queue when its digest arrives.
            state.completing = False
            return
        votes = {state.digests[p] for p in participants}
        verdict = 1 if len(votes) == 1 else 0
        # The canonical digest the round agreed on (DESIGN.md §13): on
        # agreement every vote is the same (name, digest) pair. Carried
        # through the release into each mirror (and the lifecycle
        # window), so a replayed re-admission can verify its own
        # canonical bytes against what the cluster actually decided.
        agreed = next(iter(votes))[1] if verdict == 1 else 0
        owner = self.mvee.shard_owner(vtid, seq)
        for peer in participants:
            if peer == owner:
                continue
            self.mvee.send_frame(
                owner, peer,
                Frame(T_RENDEZVOUS_OK, owner, vtid, seq, aux=verdict),
                cls=CLS_RENDEZVOUS, urgent=True,
            )
        lag = self.mvee.release_lag_ns()
        if lag:
            when = self.mvee.sim.now + lag
            if when <= self._release_clock:
                when = self._release_clock + 1
            self._release_clock = when
            self.mvee.sim.call_at(
                when, self._release, vtid, seq, verdict, owner, agreed
            )
        else:
            self._release(vtid, seq, verdict, owner, agreed)

    def _release(
        self, vtid: int, seq: int, verdict: int, owner: int, digest: int = 0
    ) -> None:
        """The verdict becomes visible: record it, report a divergence on
        mismatch, and (under sharding) apply it to every node's mirror at
        this one instant — uniform wake order across nodes."""
        state = self.state_for(vtid, seq)
        if state is None or state.verdict is not None:
            return
        state.completing = False
        if self.mvee.shutting_down:
            return
        state.verdict = verdict
        state.owner = owner
        self.stats["rendezvous_completed"] += 1
        if verdict == 0:
            names = sorted({v[0] for v in state.digests.values()})
            self.mvee.divergence(
                DivergenceReport(
                    self.mvee.sim.now,
                    vtid,
                    names[0],
                    "lockstep digest mismatch across nodes (%s)"
                    % ", ".join(names),
                    detected_by="dist-lockstep",
                )
            )
        sim = self.mvee.sim
        # Scheduled delivery: land the release in every mirror at this
        # one instant (the frames carry the bytes; _dispatch leaves
        # their application to this event).
        for node in self.mvee.nodes:
            node.mirror.release(vtid, seq, verdict, sim, digest=digest)
        if self.mvee.lifecycle is not None:
            self.mvee.lifecycle.record_release(vtid, seq, verdict, digest)
        state.waitq.notify_all(sim)

    def on_membership_change(self) -> None:
        """Membership moved: re-try every open round — the quorum may
        now be satisfiable without the lost node, and service ownership
        re-routes to the surviving owner set."""
        for shard in list(self._shards.values()):
            for (vtid, seq), state in list(shard.rendezvous.items()):
                if state.verdict is None and not state.completing:
                    self.try_complete(vtid, seq)

    # -- epoch handoff -----------------------------------------------------
    def _charge_handoff(self, shard: MonitorShard) -> None:
        """One round's recovery work on the adopting shard's timeline."""
        cost = self.mvee._costs().dist_handoff_ns
        shard.busy_until = max(shard.busy_until, self.mvee.sim.now) + cost
        self.handoff_stats["handoff_cost_ns"] += cost

    def begin_handoff(self, dead_index: int) -> None:
        """Run the ownership handoff after ``dead_index`` was
        quarantined (the epoch was already bumped by the caller).

        Three steps, all billed: the leader announces the new epoch +
        owner set; the dead shard's open rounds are evicted (their state
        died with the owner — waiting participants re-collect them via
        ``T_ROUND_RESUBMIT`` when they observe the epoch change); and
        surviving hosted rounds whose routing remapped are shipped to
        their new owner as ``T_SHARD_HANDOFF`` state transfers, adopted
        one release lag later.
        """
        mvee = self.mvee
        sim = mvee.sim
        epoch = mvee.epoch
        owners = mvee.shard_owners()
        leader = mvee.leader_index
        announce = Frame(
            T_SHARD_HANDOFF, leader, 0, 0, aux=epoch,
            payload=owners_payload(owners),
        )
        for peer in mvee.live_peers(leader):
            mvee.send_frame(leader, peer, announce, cls=CLS_HANDOFF, urgent=True)
        if mvee.obs.tracer.enabled and self._handoff_span is None:
            self._handoff_span = mvee.obs.tracer.begin(
                "dist", "handoff", epoch=epoch, dead=dead_index,
            )
        lost = 0
        dead = self._shards.get(dead_index)
        if dead is not None and not dead.dead:
            dead.dead = True
            for key, state in dead.open_rounds():
                del dead.rendezvous[key]
                self._home.pop(key, None)
                self.lost_keys.add(key)
                lost += 1
                # Wake any owner-side waiter parked on the dead state so
                # it re-reads membership and resubmits.
                state.waitq.notify_all(sim)
        self.handoff_stats["handoff_lost_rounds"] += lost
        transfers = []
        for host, shard in list(self._shards.items()):
            if shard.dead:
                continue
            for key, state in shard.open_rounds():
                if state.completing:
                    # Verdict already queued on the old service timeline;
                    # it completes there (the broadcast re-reads the
                    # fresh owner), like a response already in flight.
                    continue
                new_owner = shard_owner(key[0], key[1], owners)
                if new_owner != host:
                    transfers.append((host, new_owner, key, state))
        for host, new_owner, key, state in transfers:
            frame = Frame(
                T_SHARD_HANDOFF, host, key[0], key[1], aux=epoch,
                payload=handoff_payload(state.digests),
            )
            mvee.send_frame(host, new_owner, frame, cls=CLS_HANDOFF, urgent=True)
        self.handoff_stats["handoff_rounds"] += len(transfers)
        if transfers:
            self._pending_adoptions += len(transfers)
            sim.call_at(
                sim.now + mvee.release_lag_ns(), self._adopt_transfers, transfers
            )
        self.on_membership_change()
        if self._pending_adoptions == 0:
            self._finish_handoff_span(lost)

    def _adopt_transfers(self, transfers) -> None:
        """The scheduled arrival of shipped round state: move each round
        to its new owner's shard, charge the adoption work, and retry
        completion under the new membership."""
        mvee = self.mvee
        sim = mvee.sim
        cost = mvee._costs().dist_handoff_ns
        hist = mvee.obs.registry.histogram("dist_handoff_ns")
        for host, new_owner, key, state in transfers:
            self._pending_adoptions -= 1
            source = self._shards.get(host)
            if (
                source is None
                or source.rendezvous.get(key) is not state
                or state.verdict is not None
            ):
                continue
            del source.rendezvous[key]
            shard = self.shard(new_owner)
            shard.rendezvous[key] = state
            self._home[key] = new_owner
            self._charge_handoff(shard)
            hist.observe(sim.now - mvee.last_epoch_bump_ns + cost)
            self.try_complete(*key)
            state.waitq.notify_all(sim)
        if self._pending_adoptions == 0:
            self._finish_handoff_span()

    def _finish_handoff_span(self, lost: Optional[int] = None) -> None:
        span = self._handoff_span
        if span is not None:
            self._handoff_span = None
            span.finish(
                handoff_rounds=self.handoff_stats["handoff_rounds"],
                lost_rounds=(
                    lost if lost is not None
                    else self.handoff_stats["handoff_lost_rounds"]
                ),
            )


class DistMvee:
    """An MVEE whose replicas run on separate simulated nodes.

    Typical use::

        mvee = DistMvee(program, ReMonConfig(replicas=3, dist=DistConfig()))
        result = mvee.run(max_steps=...)
    """

    def __init__(self, program: Program, config: Optional[ReMonConfig] = None):
        self.program = program
        self.config = config or ReMonConfig(dist=DistConfig())
        dconfig = self.config.dist
        if dconfig is None:
            dconfig = DistConfig()
        if not isinstance(dconfig, DistConfig):
            raise MonitorError(
                "ReMonConfig.dist must be a DistConfig, got %r" % (dconfig,)
            )
        self.dconfig = dconfig
        if dconfig.compress is not None and dconfig.compress not in CODECS:
            raise MonitorError(
                "DistConfig.compress must be None or one of %r, got %r"
                % (CODECS, dconfig.compress)
            )
        self.n = dconfig.nodes if dconfig.nodes is not None else self.config.replicas
        if self.n < 1:
            raise MonitorError("a distributed MVEE needs at least one node")
        self.solo = self.n == 1
        self.policy = self.config.policy()
        self.replication = dconfig.replication
        self.external = dconfig.external_service
        if self.external:
            if self.policy.level < Level.SOCKET_RW:
                raise MonitorError(
                    "external_service needs Level.SOCKET_RW or looser: "
                    "monitored socket data calls would rendezvous and "
                    "execute on follower phantom descriptors"
                )
            if not self.replication.external:
                # The policy must route readiness calls through the
                # replicated lane; flip a fresh default policy rather
                # than make every caller pass fleet_replication().
                self.replication.external = True
                self.replication._memo.clear()
        self.handlers = build_handler_table(self.policy.unmonitored_set())
        self.group = ReplicaGroup()
        self.epoll_map = EpollShadowMap(self.n)
        self.result = MveeResult()
        self.shutting_down = False
        self.master_exit_ns: Optional[int] = None
        self.stats = {
            "local_calls": 0,
            "replicated_calls": 0,
            "adopted_results": 0,
            "rendezvous_calls": 0,
            "round_trips": 0,
            "promoted_executions": 0,
            "backoff_retries": 0,
            "stall_reports": 0,
            "failover_rebroadcasts": 0,
            "control_frames": 0,
        }
        self.degradation_stats = {
            "replicas_quarantined": 0,
            "master_promotions": 0,
        }
        #: Soft link degradation (circuit breaker) accounting; folded
        #: into the stats view only when the transport runs reliable.
        self.wan_stats = {"link_degrades": 0, "link_restores": 0}
        #: victim index -> set of (src, dst) links currently open against
        #: it; the victim is restored only when the set drains.
        self._down_links: Dict[int, set] = {}
        self.sim = Simulator(cores=dconfig.node_cores * self.n)
        self.obs = Obs.create(
            dconfig.obs if dconfig.obs is not None
            else getattr(self.config, "obs", None),
            self.sim,
        )
        if self.obs.tracer.enabled and self.sim.trace_sink is None:
            self.sim.trace_sink = self.obs.tracer
        self.network = Network(
            latency_ns=dconfig.link_latency_ns,
            bandwidth_bps=dconfig.link_bandwidth_bps,
            jitter_ns=dconfig.link_jitter_ns,
            jitter_seed=self.config.seed or 0x5EED,
            loss_prob=dconfig.link_loss_prob,
            dup_prob=dconfig.link_dup_prob,
            reorder_prob=dconfig.link_reorder_prob,
            fault_seed=(self.config.seed or 0) ^ 0xFA17,
        )
        self.nodes: List[Node] = []
        self.monitor = DistMonitor(self)
        #: Ownership epoch: bumped on every quarantine (never on a clean
        #: exit), carried in rendezvous frames, and the trigger for the
        #: shard handoff protocol. 0 for a run's whole fault-free life.
        self.epoch = 0
        self.last_epoch_bump_ns = 0
        self._parkq = WaitQueue("dist-park")
        self._started = False
        self._build()
        #: Elastic lifecycle manager, or None. Constructed after the
        #: nodes exist; imported lazily so repro.dist never depends on
        #: repro.lifecycle at module level.
        self.lifecycle = None
        lconfig = dconfig.lifecycle
        if (
            lconfig is not None
            and getattr(lconfig, "enabled", True)
            and not self.solo
        ):
            from repro.lifecycle.manager import LifecycleManager

            self.lifecycle = LifecycleManager(self, lconfig)

    # ------------------------------------------------------------------
    @property
    def leader_index(self) -> int:
        return self.group.master_index

    @property
    def diverged(self) -> bool:
        return self.result.diverged

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        dconfig = self.dconfig
        profiles = make_node_profiles(
            self.n,
            cluster_seed=self.config.seed,
            heterogeneous=dconfig.heterogeneous,
        )
        if dconfig.heterogeneous:
            # One layout per node, each drawn from that node's own seed
            # stream inside its own DCL arena (disjoint across nodes).
            layouts = [
                profile.make_layout(aslr=self.config.aslr, dcl=self.config.dcl)
                for profile in profiles
            ]
        else:
            # The historical single-family draw, byte-identical RNG
            # stream and all — the homogeneous bit-identity gate depends
            # on this path not changing.
            layouts = make_layouts(
                self.n, seed=self.config.seed,
                aslr=self.config.aslr, dcl=self.config.dcl,
            )
        for index, layout in enumerate(layouts):
            kernel = Kernel(
                sim=self.sim,
                config=KernelConfig(cores=dconfig.node_cores),
                network=self.network,
            )
            kernel.attach_obs(self.obs)
            self.program.install_files(kernel)
            process = kernel.create_process(
                "%s.n%d" % (self.program.name, index),
                mmap_base=layout.mmap_base,
                brk_base=layout.brk_base,
                host_ip="10.1.%d.1" % index,
            )
            # Nodes do not share caches or DRAM: no cross-replica memory
            # pressure — one of distribution's selling points.
            process.compute_factor = 1.0
            self.group.add(process)
            node = Node(index, kernel, process, layout, profile=profiles[index])
            node.view = ReplicaView(process, self.policy, self.epoll_map, index)
            node.interceptor = DistInterceptor(self, node)
            kernel.syscall_hooks.append(node.interceptor)
            node.runtime = GuestRuntime(kernel, process, self.program, layout=layout)
            self.nodes.append(node)
            process.exit_event.add_listener(
                lambda code, n=node: self._on_node_exit(n, code)
            )
        self.transport = Transport(
            self.sim,
            self.network,
            [(node.host_ip, 0) for node in self.nodes],
            self.nodes[0].kernel.config.costs,
            batch_bytes=dconfig.batch_bytes,
            flush_interval_ns=dconfig.flush_interval_ns,
            codec=dconfig.compress,
        )
        self.transport.obs = self.obs
        self.transport.dispatch = self._dispatch
        self.transport.stale_filter = self._stale_frame
        reliable = dconfig.reliable_links
        if reliable is None:
            reliable = self.network.lossy()
        if reliable:
            self._enable_reliable_transport()

    def _enable_reliable_transport(self) -> None:
        """Switch the monitor transport to sequenced/acked/retransmitted
        batches, with per-link circuit breakers wired into the soft
        degradation path. Idempotent; must run before any traffic."""
        if self.transport.reliable:
            return
        dconfig = self.dconfig
        self.transport.enable_reliable(
            policy=RetransmitPolicy(
                initial_ns=dconfig.retransmit_initial_ns,
                cap_ns=dconfig.retransmit_cap_ns,
            ),
            window=dconfig.retransmit_window,
            breaker_factory=lambda: CircuitBreaker(
                failure_threshold=dconfig.breaker_failure_threshold,
                rtt_factor=dconfig.breaker_rtt_factor,
                slow_threshold=dconfig.breaker_slow_threshold,
                cooldown_ns=dconfig.breaker_cooldown_ns,
                cooldown_cap_ns=dconfig.breaker_cooldown_cap_ns,
            ),
        )
        self.transport.on_link_down = self._on_link_down
        self.transport.on_link_up = self._on_link_up

    def attach_faults(self, injector) -> object:
        """Install a :class:`repro.faults.FaultInjector` cluster-wide:
        timed faults are scheduled on the shared clock; each node's
        kernel consults the injector at its own syscall dispatch."""
        injector.install(self.nodes[0].kernel)
        for node in self.nodes:
            node.kernel.fault_injector = injector
        injector.bind_mvee(self)
        # A plan that will degrade a link mid-run needs the reliable
        # transport armed from the start (it cannot switch header
        # formats once traffic has flowed).
        from repro.faults import LinkDegradeFault

        if any(isinstance(f, LinkDegradeFault) for f in injector.plan):
            self._enable_reliable_transport()
        return injector

    #: Fault-injector compatibility: there is no in-process monitor, so
    #: RB-corruption faults are skipped cleanly.
    ipmon = None

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def participants(self) -> List[int]:
        """Nodes a rendezvous must hear from: everyone not quarantined
        and not *cleanly* exited. A crashed-but-undetected node still
        counts — its silence is what stalls the round until the crash
        detector quarantines it (the honest failure dynamics)."""
        out = []
        for node in self.nodes:
            process = node.process
            if process.quarantined:
                continue
            if process.exited and (process.exit_code or 0) < 128:
                continue
            if node.rejoining:
                # A replacement replica fast-replaying the recorded
                # window adopts verdicts; its vote gates nothing until
                # it reaches the live frontier and is re-admitted.
                continue
            if node.link_degraded:
                # Soft degradation: the node still runs and adopts the
                # leader's replicated results/verdicts (those land via
                # scheduled delivery, not per-frame dispatch), but its
                # vote no longer gates rendezvous — leader-replicated-
                # only mode until the breaker's probe restores the link.
                continue
            out.append(node.index)
        return out

    def live_peers(self, exclude: int) -> List[int]:
        return [
            node.index
            for node in self.nodes
            if node.index != exclude
            and not node.process.exited
            and not node.process.quarantined
        ]

    def shard_owners(self) -> Tuple[int, ...]:
        """The nodes currently eligible to own rendezvous rounds.

        Without sharding this is the leader alone (PR-2 semantics: one
        logical monitor serializes every round). With sharding it is
        every live participant, optionally capped at
        ``rendezvous_shards`` owners (lowest indices first, so the
        owner set is identical on every node)."""
        if not self.dconfig.shard_rendezvous:
            return (self.leader_index,)
        live = tuple(self.participants())
        if not live:
            return (self.leader_index,)
        cap = self.dconfig.rendezvous_shards
        if cap is not None:
            live = live[:max(1, cap)]
        return live

    def shard_owner(self, vtid: int, seq: int) -> int:
        return shard_owner(vtid, seq, self.shard_owners())

    def release_lag_ns(self) -> int:
        """Delay between a round's verdict and its cluster-wide
        visibility: verdicts are applied on every node (owner included)
        at owner-completion + this lag, so releases reach all nodes in
        one global order — see :meth:`DistMonitor._complete`."""
        return self.dconfig.link_latency_ns + self.dconfig.release_slack_ns

    def missing_participant(self, vtid: int, seq: int,
                            reporter: int) -> Optional[int]:
        """Whom to blame for a stalled rendezvous: the first participant
        whose digest is missing. None means nobody is actually missing —
        the round is completing and the release is merely in flight, so
        the watchdog must not punish an innocent node."""
        state = self.monitor.state_for(vtid, seq)
        owner = self.shard_owner(vtid, seq)
        if state is not None:
            for index in self.participants():
                if index != reporter and index not in state.digests:
                    return index
            return None
        if owner != reporter:
            return owner
        others = [p for p in self.participants() if p != reporter]
        return others[0] if others else None

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def send_frame(self, src: int, dst: int, frame: Frame, cls: str,
                   urgent: bool = False) -> None:
        if src == dst:
            return
        self.transport.send(src, dst, frame, cls=cls, urgent=urgent)

    def _stale_frame(self, dst: int, frame: Frame) -> bool:
        """Epoch gate, checked by the transport before dispatch.

        True drops the frame: it was sent under an older epoch and the
        handoff has since moved (or killed) the shard it addressed, so
        merging it into a fresh shard's state would smuggle pre-handoff
        votes past the re-collection protocol. The sender re-submits
        when it observes the epoch change, so nothing is lost. Frames
        whose target still hosts the round pass: digests are
        epoch-independent content, and a same-owner frame raced only by
        the bump itself is exactly a valid resubmission.
        """
        if frame.type not in (
            T_CALL_DIGEST, T_RENDEZVOUS_REQ, T_ROUND_RESUBMIT
        ):
            return False
        if self.nodes[frame.sender].process.quarantined:
            # A dead node's in-flight digest must never count as a vote.
            self.monitor.handoff_stats["stale_epoch_rejects"] += 1
            return True
        if frame.type == T_CALL_DIGEST or frame.aux >= self.epoch:
            return False
        if dst != self.shard_owner(frame.vtid, frame.seq) and (
            self.monitor.host_of(frame.vtid, frame.seq) != dst
        ):
            self.monitor.handoff_stats["stale_epoch_rejects"] += 1
            return True
        return False

    def _dispatch(self, dst: int, frame: Frame) -> None:
        if frame.type == T_CALL_DIGEST:
            digest, name = parse_digest_payload(frame.payload)
            self.monitor.check_digest(
                frame.sender, frame.vtid, frame.seq, name, digest
            )
        elif frame.type == T_RENDEZVOUS_REQ:
            digest, name = parse_digest_payload(frame.payload)
            self.monitor.submit(frame.sender, frame.vtid, frame.seq, name, digest)
        elif frame.type == T_ROUND_RESUBMIT:
            digest, name = parse_digest_payload(frame.payload)
            self.monitor.submit(
                frame.sender, frame.vtid, frame.seq, name, digest, resubmit=True
            )
        elif frame.type == T_SHARD_HANDOFF:
            # Epoch announcements and state transfers are applied by the
            # scheduled handoff (DistMonitor.begin_handoff); the frames
            # are the physical bytes of that transfer.
            pass
        elif frame.type == T_LIFECYCLE_GOSSIP:
            if self.lifecycle is not None:
                self.lifecycle.on_gossip_frame(dst, frame)
        elif frame.type == T_LIFECYCLE_STATE:
            # Replay-window transfers are applied by scheduled delivery
            # (LifecycleManager._boot_replacement) — these frames are
            # the physical bytes of the window crossing the link.
            pass
        elif frame.type in (T_RENDEZVOUS_OK, T_SYSCALL_RESULT):
            # Releases and mirror records are applied by *scheduled*
            # delivery (DistMonitor._release, the leader's scheduled
            # mirror put): one global instant per record, so every node
            # wakes its threads in the same order. These frames are the
            # physical bytes of that transfer — a minimal frame can beat
            # the schedule by a few hundred ns, so acting on arrival
            # here would desynchronize wake order on the margin.
            pass
        else:
            self.stats["control_frames"] += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for node in self.nodes:
            node.runtime.start()
        if self.lifecycle is not None:
            self.lifecycle.start()

    def run(self, until: Optional[int] = None,
            max_steps: Optional[int] = None) -> MveeResult:
        self.start()
        self.sim.run(until=until, max_steps=max_steps)
        return self.finalize()

    def finalize(self) -> MveeResult:
        for node in self.nodes:
            if node.process.quarantined:
                continue
            for thread in node.process.threads.values():
                task = thread.task
                if task is not None and task.failure is not None:
                    raise task.failure
        result = self.result
        result.exit_codes = [node.process.exit_code for node in self.nodes]
        result.wall_time_ns = (
            self.master_exit_ns if self.master_exit_ns is not None else self.sim.now
        )
        result.monitored_calls = self.stats["rendezvous_calls"]
        result.unmonitored_calls = (
            self.stats["local_calls"]
            + self.stats["replicated_calls"]
            + self.stats["adopted_results"]
        )
        # Stats assembly goes through the obs registry adapter: the two
        # live component dicts are ingested under the dist_ prefix, the
        # derived scalars are exposed, and the rendered view is
        # byte-identical to the old hand-built dict.
        registry = self.obs.registry
        registry.ingest("dist_", self.stats, source="mvee")
        registry.ingest("dist_", self.monitor.stats, source="monitor")
        registry.expose("dist_nodes", self.n)
        registry.expose("dist_messages", self.transport.stats["messages_sent"])
        registry.expose("dist_wire_bytes", self.transport.stats["wire_bytes"])
        registry.expose("dist_frames", self.transport.stats["frames_sent"])
        registry.expose("dist_frame_bytes", self.transport.stats["frame_bytes"])
        registry.expose("dist_wire_errors", self.transport.stats["wire_errors"])
        for key in ("flushes_size", "flushes_timer", "flushes_urgent",
                    "payload_raw_bytes", "payload_coded_bytes",
                    "codec_raw", "codec_rle", "codec_dict"):
            registry.expose("dist_" + key, self.transport.stats[key])
        # Owners that actually serviced rounds (shard_owners() shrinks to
        # the leader once every node has exited cleanly, so it is not a
        # faithful after-the-fact count).
        registry.expose("dist_shards", len(self.monitor.rounds_by_owner) or 1)
        for owner, count in sorted(self.monitor.rounds_by_owner.items()):
            registry.expose("dist_rounds_owner_%d" % owner, count)
        registry.expose(
            "dist_rounds_owner_max",
            max(self.monitor.rounds_by_owner.values(), default=0),
        )
        if self.epoch:
            # Recovery accounting exists only once a membership change
            # happened: a fault-free run's stats stay byte-identical to
            # the pre-shard monitor (the PR-4 adapter contract).
            registry.expose("dist_epoch", self.epoch)
            for key in sorted(self.monitor.handoff_stats):
                registry.expose("dist_" + key, self.monitor.handoff_stats[key])
            registry.expose(
                "dist_stale_drops", self.transport.stats["stale_drops"]
            )
        for cls, nbytes in sorted(self.transport.bytes_by_class.items()):
            registry.expose("dist_bytes_" + cls, nbytes)
        for cls, count in sorted(self.transport.frames_by_class.items()):
            registry.expose("dist_frames_" + cls, count)
        tstats = self.transport.stats
        if self.transport.reliable:
            # Reliability accounting exists only when the transport runs
            # in reliable mode: loss-free legacy runs keep a stats view
            # byte-identical to the pre-reliability design.
            for key in ("retransmits", "retransmit_bytes", "acks_sent",
                        "dup_batches_dropped", "ooo_batches",
                        "window_stalls", "probes_sent", "breaker_opens",
                        "breaker_closes"):
                registry.expose("dist_" + key, tstats.get(key, 0))
            registry.expose("net_segments_lost", self.network.segments_lost)
            registry.expose(
                "net_segments_duplicated", self.network.segments_duplicated
            )
            registry.expose(
                "net_segments_reordered", self.network.segments_reordered
            )
            registry.expose("dist_link_degrades", self.wan_stats["link_degrades"])
            registry.expose("dist_link_restores", self.wan_stats["link_restores"])
        for key in ("codec_downgrades", "codec_upgrades", "frames_dropped"):
            if tstats.get(key, 0):
                registry.expose("dist_" + key, tstats[key])
        for cls, count in sorted(self.transport.frames_dropped_by_class.items()):
            registry.expose("dist_frames_dropped_" + cls, count)
        registry.expose(
            "replicas_quarantined",
            self.degradation_stats["replicas_quarantined"],
        )
        registry.expose(
            "master_promotions", self.degradation_stats["master_promotions"]
        )
        injector = getattr(self.nodes[0].kernel, "fault_injector", None)
        registry.expose(
            "faults_injected",
            injector.total_injected if injector is not None else 0,
        )
        if self.dconfig.heterogeneous:
            # Diversity accounting exists only under per-node profiles:
            # homogeneous runs keep a stats view bit-identical to the
            # pre-profile design (the §13 invisibility contract).
            registry.expose("dist_heterogeneous", 1)
            registry.expose(
                "dist_abi_variants",
                len({node.profile.abi for node in self.nodes}),
            )
            registry.expose(
                "dist_arena_variants",
                len({node.profile.arena_base for node in self.nodes}),
            )
        if self.lifecycle is not None:
            # Lifecycle accounting exists only when a manager was built:
            # lifecycle-free runs keep a stats view bit-identical to the
            # pre-lifecycle design.
            self.lifecycle.export_stats(registry)
        result.stats = registry.stats_view()
        self.obs.export_files(result.postmortems)
        return result

    def _record_postmortem(self, reason: str, report: DivergenceReport) -> None:
        """Snapshot the flight recorder (if enabled) into the result."""
        attribution = {
            "vtid": report.vtid,
            "replica": report.replica,
            "leader_index": self.leader_index,
            "quarantined": list(self.result.quarantined_replicas),
            "shard_owners": sorted(self.monitor.rounds_by_owner),
            "epoch": self.epoch,
            "lost_rounds": sorted(self.monitor.lost_keys),
        }
        if self.lifecycle is not None:
            attribution["lifecycle"] = self.lifecycle.attribution()
        postmortem = self.obs.emit_postmortem(
            reason,
            report,
            attribution=attribution,
            backoff={
                "backoff_retries": self.stats["backoff_retries"],
                "stall_reports": self.stats["stall_reports"],
                "rounds_by_owner": dict(self.monitor.rounds_by_owner),
                "handoff": dict(self.monitor.handoff_stats),
            },
        )
        if postmortem is not None:
            self.result.postmortems.append(postmortem)

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def divergence(self, report: DivergenceReport) -> None:
        if self.shutting_down or self.result.divergence is not None:
            return
        self.result.divergence = report
        self._record_postmortem("divergence", report)
        if self.group.all_exited():
            if not self.result.shutdown_reason:
                self.result.shutdown_reason = "divergence: %s" % report.detail
            return
        # Teardown is not instantaneous across machines: the kill
        # messages ride the network.
        delay = self.dconfig.link_latency_ns + self._costs().dist_msg_syscall_ns
        self.sim.call_at(
            self.sim.now + delay, self.shutdown, "divergence: %s" % report.detail
        )

    def shutdown(self, reason: str) -> None:
        if self.shutting_down:
            return
        self.shutting_down = True
        self.result.shutdown_reason = reason
        for node in self.nodes:
            if not node.process.exited:
                node.kernel.terminate_process(node.process, 137, signo=9)
        self._wake_everyone()

    def _costs(self):
        return self.nodes[0].kernel.config.costs

    def crash_detect_ns(self) -> int:
        if self.dconfig.crash_detect_ns is not None:
            return self.dconfig.crash_detect_ns
        return self._costs().dist_crash_detect_ns + self.dconfig.link_latency_ns

    def _wake_everyone(self) -> None:
        for node in self.nodes:
            node.mirror.wake(self.sim)
        self._parkq.notify_all(self.sim)

    def _on_node_exit(self, node: Node, code) -> None:
        code = code if isinstance(code, int) else (node.process.exit_code or 0)
        if (
            node.index == self.group.master_index
            and not node.process.quarantined
            and self.master_exit_ns is None
            and code < 128
        ):
            self.master_exit_ns = self.sim.now
        if self.group.all_exited() and not self.result.shutdown_reason:
            self.result.shutdown_reason = "all replicas exited"
        if (
            code >= 128
            and not self.shutting_down
            and not self.diverged
            and not node.process.quarantined
        ):
            if self.lifecycle is not None and self.lifecycle.detects_crashes():
                # Gossip is the failure detector: the crashed node's
                # heartbeats stop, peers suspect it, and the epidemic
                # dead declaration triggers _handle_crash instead of
                # this leader-side timeout.
                return
            # Remote crashes are detected by timeout, not by waitpid.
            self.sim.call_at(
                self.sim.now + self.crash_detect_ns(),
                self._handle_crash, node, code,
            )

    def _handle_crash(self, node: Node, code: int) -> None:
        if (
            self.shutting_down
            or self.diverged
            or node.process.quarantined
        ):
            return
        self.replica_fault(
            node.process,
            DivergenceReport(
                self.sim.now,
                0,
                "",
                "node %d (%s) crashed with code %d"
                % (node.index, node.process.name, code),
                detected_by="dist-heartbeat",
                kind="crash",
            ),
        )

    # ------------------------------------------------------------------
    # Graceful degradation across nodes (reuses repro.core policies)
    # ------------------------------------------------------------------
    def report_stall(self, reporter: Node, thread, req, blame: int,
                     detail: str) -> None:
        self.stats["stall_reports"] += 1
        if self.lifecycle is not None:
            self.lifecycle.note_stall(blame)
        blamed = self.nodes[blame].process
        self.replica_fault(
            blamed,
            DivergenceReport(
                self.sim.now,
                thread.vtid,
                req.name,
                "node %d reports node %d stalled: %s"
                % (reporter.index, blame, detail),
                detected_by="dist-watchdog",
                kind="stall",
            ),
        )

    # -- soft link degradation (circuit breaker callbacks) ---------------
    def _link_victim(self, src: int, dst: int) -> int:
        """Which node a bad directed link indicts: the non-leader end
        (the leader stays authoritative; routing around it would mean a
        promotion, which a *link* fault does not justify)."""
        return dst if dst != self.leader_index else src

    def _on_link_down(self, src: int, dst: int) -> None:
        if self.shutting_down or self.diverged:
            return
        victim = self._link_victim(src, dst)
        self._down_links.setdefault(victim, set()).add((src, dst))
        node = self.nodes[victim]
        process = node.process
        if node.link_degraded or process.quarantined or process.exited:
            return
        report = DivergenceReport(
            self.sim.now,
            0,
            "",
            "circuit breaker opened link %d->%d: node %d degraded to "
            "leader-replicated-only" % (src, dst, victim),
            detected_by="dist-breaker",
            kind="link",
        )
        report.replica = victim
        policy = self.config.degradation
        if policy is None or policy.classify(report) != "benign":
            # No degradation policy: a broken monitor link is a fault
            # the cluster cannot paper over.
            self.replica_fault(process, report)
            return
        voting_others = [
            p for p in self.participants() if p != victim
        ]
        if len(voting_others) < policy.min_quorum:
            report.detail += " [quorum lost: %d voters < min_quorum %d]" % (
                len(voting_others), policy.min_quorum,
            )
            self.replica_fault(process, report)
            return
        node.link_degraded = True
        self.wan_stats["link_degrades"] += 1
        self.result.fault_events.append(report)
        if self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "dist", "link_degrade", src=src, dst=dst, victim=victim,
            )
        # Open rounds may now be completable without the degraded vote.
        self.monitor.on_membership_change()

    def _on_link_up(self, src: int, dst: int) -> None:
        victim = self._link_victim(src, dst)
        down = self._down_links.get(victim)
        if down is not None:
            down.discard((src, dst))
            if down:
                return  # another link against this node is still open
        node = self.nodes[victim]
        if not node.link_degraded:
            return
        node.link_degraded = False
        self.wan_stats["link_restores"] += 1
        if self.obs.tracer.enabled:
            self.obs.tracer.instant(
                "dist", "link_restore", src=src, dst=dst, victim=victim,
            )
        # The restored node's vote is required again from here on.
        self.monitor.on_membership_change()

    def _survivors_excluding(self, process) -> List:
        return [
            p
            for p in self.group.processes
            if p is not process and not p.exited and not p.quarantined
        ]

    def replica_fault(self, process, report: DivergenceReport) -> None:
        if self.shutting_down or self.diverged or process.quarantined:
            return
        policy = self.config.degradation
        if policy is None or policy.classify(report) != "benign":
            self.divergence(report)
            return
        survivors = self._survivors_excluding(process)
        if len(survivors) < policy.min_quorum:
            report.detail += " [quorum lost: %d survivors < min_quorum %d]" % (
                len(survivors),
                policy.min_quorum,
            )
            self.divergence(report)
            return
        self.quarantine(process, report)

    def quarantine(self, process, report: DivergenceReport) -> None:
        index = self.group.index_of(process)
        was_leader = index == self.group.master_index
        policy = self.config.degradation
        if was_leader and (policy is None or not policy.promote_master):
            self.divergence(report)
            return
        process.quarantined = True
        self.result.fault_events.append(report)
        self.result.quarantined_replicas.append(index)
        if report.replica is None:
            report.replica = index
        self._record_postmortem("quarantine", report)
        self.degradation_stats["replicas_quarantined"] += 1
        # Every quarantine opens a new ownership epoch: in-flight frames
        # from the old epoch become rejectable, waiting participants
        # observe the bump and re-collect rounds the dead shard lost.
        self.epoch += 1
        self.last_epoch_bump_ns = self.sim.now
        if was_leader:
            self._promote_leader(index)
        if not process.exited:
            self.nodes[index].kernel.terminate_process(process, 137, signo=9)
        self.monitor.begin_handoff(index)
        self._wake_everyone()
        if self.lifecycle is not None:
            self.lifecycle.on_quarantine(index, report)

    def _promote_leader(self, dead_index: int) -> None:
        survivors = self.group.survivors()
        if not survivors:
            return
        # Prefer a survivor with healthy links: promoting a node the
        # breakers have already routed around would put the whole
        # cluster behind a degraded leader.
        for candidate in survivors:
            if not self.nodes[self.group.index_of(candidate)].link_degraded:
                new_leader = candidate
                break
        else:
            new_leader = survivors[0]  # kept in index order
        new_index = self.group.index_of(new_leader)
        self.group.master_index = new_index
        self.degradation_stats["master_promotions"] += 1
        # The new leader re-broadcasts every result it holds but has not
        # consumed: the dead leader may have shipped those records to us
        # and not to every peer (the RB-survives-its-writer analogue).
        node = self.nodes[new_index]
        rebroadcast = sorted(node.mirror.unconsumed().items())
        for (vtid, seq), record in rebroadcast:
            frame = Frame(
                T_SYSCALL_RESULT, new_index, vtid, seq,
                aux=record.result, payload=record.payload,
            )
            for peer in self.live_peers(new_index):
                self.send_frame(
                    new_index, peer, frame, cls=CLS_CONTROL, urgent=True
                )
            self.stats["failover_rebroadcasts"] += 1
        if rebroadcast:
            # Scheduled delivery, like the leader's normal mirror push:
            # the rebroadcast records land on every surviving peer at
            # one instant (duplicates drop idempotently).
            self.sim.call_at(
                self.sim.now + self.release_lag_ns(),
                self._deliver_rebroadcast, new_index, rebroadcast,
            )

    def _deliver_rebroadcast(self, leader_index: int, rebroadcast) -> None:
        for (vtid, seq), record in rebroadcast:
            for peer in self.live_peers(leader_index):
                self.nodes[peer].mirror.put(vtid, seq, record, self.sim)

    # ------------------------------------------------------------------
    # Parking (a replica that lost its rendezvous waits for the kill)
    # ------------------------------------------------------------------
    def park(self, thread):
        """Block until this replica's process is torn down. Returning a
        fake errno into the guest would trip its own assertions before
        the kill lands; instead the thread sleeps and the runtime turns
        the process exit into a clean teardown."""
        while not thread.process.exited:
            event = self._parkq.register()
            status, _ = yield from wait_interruptible(
                thread, event, timeout_ns=1_000_000
            )
            if status != "fired":
                self._parkq.unregister(event)
        return -E.EINTR


def run_distributed(program: Program, config: Optional[ReMonConfig] = None,
                    fault_plan=None, until: Optional[int] = None,
                    max_steps: Optional[int] = None) -> MveeResult:
    """Build and run a distributed MVEE in one call."""
    mvee = DistMvee(program, config)
    if fault_plan is not None:
        from repro.faults import FaultInjector

        mvee.attach_faults(FaultInjector(fault_plan))
    return mvee.run(until=until, max_steps=max_steps)
