"""Reliability primitives for WAN-grade monitor links.

The transport (:mod:`repro.dist.transport`) stays in its loss-free fast
path until a link can actually drop, duplicate, or reorder segments;
then each directed channel grows a :class:`SenderWindow` (sequence
numbers, retransmit timers, smoothed RTT), a :class:`ReceiverWindow`
(reorder buffer with exactly-once in-order release, cumulative acks),
and a :class:`CircuitBreaker` tracking the link's health. These classes
are pure state machines — no simulator access — so the transport owns
all scheduling and cost billing, and the state machines stay unit-
testable in isolation.

Sequence numbers count *batches* on a directed channel, starting at 1;
seq 0 marks an unsequenced (pure-ack or probe-carrier) batch. Acks are
cumulative: acking N acknowledges every batch through N, TCP-style.
RTT estimation follows Karn's algorithm — only never-retransmitted
batches produce samples — with the classic srtt += (sample - srtt)/8
low-pass filter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = [
    "RetransmitPolicy",
    "SenderWindow",
    "ReceiverWindow",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]


class RetransmitPolicy:
    """Exponential backoff schedule for batch retransmission.

    Attempt ``k`` (0-based: the first *re*transmission is attempt 0)
    waits ``min(initial << k, cap)`` virtual ns. Retransmission never
    gives up — a batch retries at the capped interval forever; the
    circuit breaker, not the retransmit layer, decides when a link is
    bad enough to route around.
    """

    __slots__ = ("initial_ns", "cap_ns")

    def __init__(self, initial_ns: int = 800_000, cap_ns: int = 12_800_000):
        if initial_ns <= 0 or cap_ns < initial_ns:
            raise ValueError("want 0 < initial_ns <= cap_ns")
        self.initial_ns = initial_ns
        self.cap_ns = cap_ns

    def timeout_for(self, attempt: int) -> int:
        """Backoff delay before retransmission ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        # Guard the shift: 2**attempt overflows usefulness long before
        # it overflows Python ints.
        if attempt >= (self.cap_ns // self.initial_ns).bit_length():
            return self.cap_ns
        return min(self.initial_ns << attempt, self.cap_ns)


class _Unacked:
    """Sender-side bookkeeping for one in-flight sequenced batch."""

    __slots__ = ("data", "size", "sent_at", "attempts", "retransmitted")

    def __init__(self, data: bytes, size: int, sent_at: int):
        self.data = data
        self.size = size
        self.sent_at = sent_at
        self.attempts = 0
        #: Karn's algorithm: a batch that was ever retransmitted yields
        #: no RTT sample (the ack is ambiguous between transmissions).
        self.retransmitted = False


class SenderWindow:
    """Sliding send window for one directed channel.

    Assigns sequence numbers, holds unacked batch bytes for
    retransmission, defers sends past the window limit, and keeps a
    smoothed RTT estimate from ack timing.
    """

    __slots__ = ("window", "next_seq", "unacked", "deferred", "srtt_ns",
                 "min_rtt_ns")

    def __init__(self, window: int = 32):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.next_seq = 1
        #: seq -> _Unacked, insertion-ordered (monotonic seqs).
        self.unacked: Dict[int, _Unacked] = {}
        #: Flushes that arrived while the window was full, FIFO. The
        #: payload is opaque to the window: the transport defers raw
        #: frame lists so the seq/ack header is stamped at actual send
        #: time, not at defer time.
        self.deferred: List[Tuple[object, int]] = []
        self.srtt_ns = 0
        self.min_rtt_ns = 0

    @property
    def in_flight(self) -> int:
        return len(self.unacked)

    def can_send(self) -> bool:
        return len(self.unacked) < self.window and not self.deferred

    def register(self, data: bytes, size: int, now: int) -> int:
        """Claim the next sequence number for an outgoing batch."""
        seq = self.next_seq
        self.next_seq += 1
        self.unacked[seq] = _Unacked(data, size, now)
        return seq

    def defer(self, payload: object, size: int) -> None:
        self.deferred.append((payload, size))

    def pop_deferred(self) -> Optional[Tuple[object, int]]:
        if self.deferred and len(self.unacked) < self.window:
            return self.deferred.pop(0)
        return None

    def mark_retransmit(self, seq: int) -> Optional[_Unacked]:
        """Record one retransmission attempt; None if already acked."""
        entry = self.unacked.get(seq)
        if entry is not None:
            entry.attempts += 1
            entry.retransmitted = True
        return entry

    def ack(self, ack_seq: int, now: int) -> Tuple[List[int], List[int]]:
        """Apply a cumulative ack.

        Returns ``(acked_seqs, rtt_samples_ns)``; samples only come
        from batches never retransmitted (Karn's algorithm).
        """
        acked: List[int] = []
        samples: List[int] = []
        for seq in list(self.unacked):
            if seq > ack_seq:
                break  # insertion order is seq order
            entry = self.unacked.pop(seq)
            acked.append(seq)
            if not entry.retransmitted:
                sample = now - entry.sent_at
                samples.append(sample)
                self._observe_rtt(sample)
        return acked, samples

    def _observe_rtt(self, sample: int) -> None:
        if self.srtt_ns == 0:
            self.srtt_ns = sample
        else:
            self.srtt_ns += (sample - self.srtt_ns) // 8
        if self.min_rtt_ns == 0 or sample < self.min_rtt_ns:
            self.min_rtt_ns = sample


class ReceiverWindow:
    """Reorder buffer with exactly-once in-order release.

    ``accept(seq, data)`` returns the list of payloads now deliverable
    in order (possibly empty while a gap persists, possibly several once
    the gap fills). Duplicates — both already-delivered seqs and
    duplicates still waiting in the buffer — are rejected exactly once.
    """

    __slots__ = ("expect", "buffer", "dups", "ooo")

    def __init__(self):
        self.expect = 1
        self.buffer: Dict[int, bytes] = {}
        self.dups = 0
        self.ooo = 0

    @property
    def cumulative_ack(self) -> int:
        """Highest seq such that everything through it was released."""
        return self.expect - 1

    def accept(self, seq: int, data: bytes) -> List[bytes]:
        if seq < self.expect or seq in self.buffer:
            self.dups += 1
            return []
        if seq != self.expect:
            self.ooo += 1
            self.buffer[seq] = data
            return []
        ready = [data]
        self.expect += 1
        while self.expect in self.buffer:
            ready.append(self.buffer.pop(self.expect))
            self.expect += 1
        return ready


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-link health state machine: closed -> open -> half-open.

    Opens on either ``failure_threshold`` consecutive retransmissions
    without an intervening ack, or ``slow_threshold`` consecutive RTT
    samples above ``rtt_factor`` times the link's best observed RTT
    (smoothed-RTT drift: the wire still delivers, but so slowly that
    lockstep rendezvous over it is worse than routing around it). After
    ``cooldown_ns`` an open breaker admits one half-open probe; an ack
    while half-open re-closes it, a failure re-opens it with the
    cooldown doubled (capped at ``cooldown_cap_ns``).
    """

    __slots__ = ("failure_threshold", "rtt_factor", "slow_threshold",
                 "cooldown_ns", "cooldown_cap_ns", "state",
                 "consecutive_failures", "consecutive_slow", "opened_at",
                 "current_cooldown_ns", "opens", "closes", "probes")

    def __init__(self, failure_threshold: int = 8, rtt_factor: float = 4.0,
                 slow_threshold: int = 16, cooldown_ns: int = 50_000_000,
                 cooldown_cap_ns: int = 400_000_000):
        self.failure_threshold = failure_threshold
        self.rtt_factor = rtt_factor
        self.slow_threshold = slow_threshold
        self.cooldown_ns = cooldown_ns
        self.cooldown_cap_ns = cooldown_cap_ns
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.consecutive_slow = 0
        self.opened_at = 0
        self.current_cooldown_ns = cooldown_ns
        self.opens = 0
        self.closes = 0
        self.probes = 0

    def record_failure(self, now: int) -> bool:
        """One retransmission fired. True if this opens the breaker."""
        if self.state == BREAKER_HALF_OPEN:
            # The probe died too: back to open, twice the patience.
            self.current_cooldown_ns = min(
                self.current_cooldown_ns * 2, self.cooldown_cap_ns
            )
            self._open(now)
            return True
        self.consecutive_failures += 1
        if (self.state == BREAKER_CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self._open(now)
            return True
        return False

    def record_rtt(self, sample: int, min_rtt: int, now: int) -> bool:
        """One clean RTT sample. True if drift opens the breaker."""
        if self.state != BREAKER_CLOSED or min_rtt <= 0:
            return False
        if sample > self.rtt_factor * min_rtt:
            self.consecutive_slow += 1
            if self.consecutive_slow >= self.slow_threshold:
                self._open(now)
                return True
        else:
            self.consecutive_slow = 0
        return False

    def record_success(self) -> bool:
        """An ack landed. True if this closes a half-open breaker."""
        self.consecutive_failures = 0
        self.consecutive_slow = 0
        if self.state == BREAKER_HALF_OPEN:
            self.state = BREAKER_CLOSED
            self.closes += 1
            self.current_cooldown_ns = self.cooldown_ns
            return True
        return False

    def probe_due(self, now: int) -> bool:
        """Open and cooled down: time to try one half-open probe?"""
        return (self.state == BREAKER_OPEN
                and now - self.opened_at >= self.current_cooldown_ns)

    def begin_probe(self) -> None:
        self.state = BREAKER_HALF_OPEN
        self.probes += 1

    def _open(self, now: int) -> None:
        self.state = BREAKER_OPEN
        self.opened_at = now
        self.opens += 1
        self.consecutive_failures = 0
        self.consecutive_slow = 0
