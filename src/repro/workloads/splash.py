"""SPLASH-2x reconstruction (Figure 3, right half).

``cholesky`` is excluded (gcc incompatibility in the original study).
"""

from repro.workloads.profiles import (
    SPLASH_BENCHMARKS,
    SPLASH_GEOMEAN_TARGETS,
    derive_workload,
    workloads_for,
)

__all__ = [
    "SPLASH_BENCHMARKS",
    "SPLASH_GEOMEAN_TARGETS",
    "derive_workload",
    "workloads_for",
]
